// Perf-regression harness for the transform-tape Laplace kernel.  Four
// single-device response scenarios spanning the tape's op repertoire:
//
//   mm1k_full        4 backend processes, M/M/1/K disk queue (paper default)
//   mg1k_chain       4 backend processes, exact M/G/1/K embedded chain
//   single_process   1 backend process (pure P-K / compound-Poisson path)
//   degraded_scaled  1.5x-inflated disks (Scaled nodes, what-if shape)
//
// Each scenario times a CDF sweep over an SLA grid in four modes:
//
//   scalar     cdf_from_laplace on the distribution tree walk (baseline)
//   batched    batched-contour cdf_from_laplace, tree walk per node
//   tape       TransformTape::cdf per point (flattened kernel)
//   tape_many  TransformTape::cdf_many, one concatenated-contour call
//   simd       TransformTape::cdf per point, TapeEvalMode::kSimd (the
//              structure-of-arrays evaluator over the runtime-dispatched
//              vector kernels — still bit-identical to scalar)
//   simd_many  cdf_many under kSimd, one concatenated-contour call
//   simd_fast  cdf_many under kSimdFast (vector transcendentals; NOT
//              bit-identical — gated by a CDF-level ULP bound instead,
//              see docs/PERFORMANCE.md §7)
//
// verifies every mode except simd_fast reproduces the scalar outputs
// bit-for-bit (the tape's hard contract), verifies simd_fast stays
// inside its documented ULP bound, and emits machine-readable
// BENCH_numerics.json.  Exit status: 0 ok, 1 outputs not bit-identical
// (or simd_fast out of bound), 2 a speedup gate unmet, 3 JSON
// write/readback failure.
//
// Flags: --points=N       (SLA points per sweep; default 24)
//        --repeat=R       (timing repetitions, best-of; default 3)
//        --min-speedup=S  (tape-vs-scalar gate per scenario; default 0 = off)
//        --min-simd-speedup=S  (simd-vs-scalar gate; at least two
//                          scenarios must reach S; default 0 = off)
//        --out=PATH       (default BENCH_numerics.json)
#include <algorithm>
#include <chrono>
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/ulp.hpp"
#include "core/system_model.hpp"
#include "numerics/compose.hpp"
#include "numerics/lt_inversion.hpp"
#include "numerics/simd_kernels.hpp"
#include "numerics/transform_tape.hpp"
#include "obs/obs.hpp"

namespace {

using cosm::core::DeviceParams;
using cosm::core::ModelOptions;
using cosm::core::SystemModel;
using cosm::core::SystemParams;
using cosm::numerics::BatchLaplaceFn;
using cosm::numerics::cdf_from_laplace;
using cosm::numerics::DistPtr;
using cosm::numerics::LaplaceFn;
using cosm::numerics::TapeEvalMode;
using cosm::numerics::TransformTape;

// CDF-level tolerance for the simd_fast mode: the vector transcendentals
// are a few ULP off per evaluation and the deviations compound through
// the tape's combinators and the Euler sum, so the gate is on the final
// CDF double, not the transform components — and it is ABSOLUTE, because
// a CDF is a probability: near-zero tail values make relative/ULP
// distance meaningless while an absolute 1e-9 is far below any decision
// threshold the model serves.  Derivation: docs/PERFORMANCE.md §7.
constexpr double kFastCdfAbsBound = 1e-9;

struct Config {
  int sla_points = 24;
  int repeat = 3;
  double min_speedup = 0.0;       // 0 disables the perf gate
  double min_simd_speedup = 0.0;  // 0 disables the simd perf gate
  std::string out = "BENCH_numerics.json";
  std::string trace_json;  // empty = observability stays disabled
};

Config parse_args(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--points=", 0) == 0) {
      config.sla_points = std::stoi(value_of("--points="));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      config.repeat = std::stoi(value_of("--repeat="));
    } else if (arg.rfind("--min-simd-speedup=", 0) == 0) {
      config.min_simd_speedup = std::stod(value_of("--min-simd-speedup="));
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      config.min_speedup = std::stod(value_of("--min-speedup="));
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out = value_of("--out=");
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      config.trace_json = value_of("--trace-json=");
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(3);
    }
  }
  config.sla_points = std::max(config.sla_points, 1);
  config.repeat = std::max(config.repeat, 1);
  return config;
}

// One single-device cluster with the perf_pipeline disk profile; the
// response distribution is what every mode inverts.
SystemParams make_device(double rate, unsigned processes,
                         double disk_inflation) {
  using cosm::numerics::Degenerate;
  using cosm::numerics::Gamma;
  using cosm::numerics::scale_dist;
  SystemParams params;
  params.frontend.arrival_rate = rate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse = std::make_shared<Degenerate>(0.8e-3);
  DeviceParams device;
  device.arrival_rate = rate;
  device.data_read_rate = rate * 1.2;
  device.index_miss_ratio = 0.3;
  device.meta_miss_ratio = 0.3;
  device.data_miss_ratio = 0.7;
  device.index_disk =
      scale_dist(std::make_shared<Gamma>(3.0, 300.0), disk_inflation);
  device.meta_disk =
      scale_dist(std::make_shared<Gamma>(2.5, 312.5), disk_inflation);
  device.data_disk =
      scale_dist(std::make_shared<Gamma>(2.8, 233.33), disk_inflation);
  device.backend_parse = std::make_shared<Degenerate>(0.5e-3);
  device.processes = processes;
  params.devices.push_back(device);
  return params;
}

struct Scenario {
  std::string name;
  SystemParams params;
  ModelOptions options;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> list;
  list.push_back({"mm1k_full", make_device(30.0, 4, 1.0), {}});
  ModelOptions mg1k;
  mg1k.disk_queue = ModelOptions::DiskQueue::kMG1K;
  list.push_back({"mg1k_chain", make_device(30.0, 4, 1.0), mg1k});
  list.push_back({"single_process", make_device(30.0, 1, 1.0), {}});
  list.push_back({"degraded_scaled", make_device(24.0, 4, 1.5), {}});
  return list;
}

std::vector<double> sla_grid(int points) {
  // 5 ms .. 250 ms, the band the paper's Table 1 SLAs live in.
  const double lo = 0.005;
  const double hi = 0.25;
  std::vector<double> ts;
  ts.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    ts.push_back(points == 1 ? lo : lo + (hi - lo) * i / (points - 1));
  }
  return ts;
}

struct ModeResult {
  std::string name;
  double wall_ms = 0.0;  // best over repetitions
  bool bit_identical = true;
  std::int64_t max_ulp = 0;  // max ULP distance to scalar over the sweep
  double max_abs = 0.0;      // max absolute deviation from scalar
  std::vector<double> outputs;
};

template <typename Sweep>
ModeResult run_mode(const std::string& name, int repeat, const Sweep& sweep) {
  ModeResult result;
  result.name = name;
  for (int rep = 0; rep < repeat; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<double> outputs = sweep();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < result.wall_ms) result.wall_ms = ms;
    result.outputs = std::move(outputs);
  }
  return result;
}

struct ScenarioResult {
  std::string name;
  std::size_t op_count = 0;
  std::size_t slot_count = 0;
  std::size_t generic_leaves = 0;
  std::vector<ModeResult> modes;
  double tape_speedup = 0.0;  // tape vs scalar, per-point sweep
  double simd_speedup = 0.0;  // simd vs scalar, per-point sweep
};

ScenarioResult run_scenario(const Scenario& scenario,
                            const std::vector<double>& ts, int repeat) {
  const SystemModel model(scenario.params, scenario.options);
  const DistPtr response = model.devices()[0].response_time();
  const TransformTape& tape = model.devices()[0].response_tape();

  ScenarioResult result;
  result.name = scenario.name;
  result.op_count = tape.op_count();
  result.slot_count = tape.slot_count();
  result.generic_leaves = tape.generic_leaf_count();

  const LaplaceFn scalar_lt = [&response](std::complex<double> s) {
    return response->laplace(s);
  };
  // Batched contour API, but still walking the tree per node: isolates
  // the contour batching from the tape flattening.
  const BatchLaplaceFn batched_lt =
      [&response](std::span<const std::complex<double>> s,
                  std::span<std::complex<double>> out) {
        for (std::size_t i = 0; i < s.size(); ++i) {
          out[i] = response->laplace(s[i]);
        }
      };

  result.modes.push_back(run_mode("scalar", repeat, [&] {
    std::vector<double> out;
    out.reserve(ts.size());
    for (const double t : ts) out.push_back(cdf_from_laplace(scalar_lt, t));
    return out;
  }));
  result.modes.push_back(run_mode("batched", repeat, [&] {
    std::vector<double> out;
    out.reserve(ts.size());
    for (const double t : ts) out.push_back(cdf_from_laplace(batched_lt, t));
    return out;
  }));
  result.modes.push_back(run_mode("tape", repeat, [&] {
    std::vector<double> out;
    out.reserve(ts.size());
    for (const double t : ts) out.push_back(tape.cdf(t));
    return out;
  }));
  result.modes.push_back(
      run_mode("tape_many", repeat, [&] { return tape.cdf_many(ts); }));
  result.modes.push_back(run_mode("simd", repeat, [&] {
    std::vector<double> out;
    out.reserve(ts.size());
    for (const double t : ts) {
      out.push_back(tape.cdf(t, 20, TapeEvalMode::kSimd));
    }
    return out;
  }));
  result.modes.push_back(run_mode("simd_many", repeat, [&] {
    return tape.cdf_many(ts, 20, TapeEvalMode::kSimd);
  }));
  result.modes.push_back(run_mode("simd_fast", repeat, [&] {
    return tape.cdf_many(ts, 20, TapeEvalMode::kSimdFast);
  }));

  const ModeResult& scalar = result.modes.front();
  for (ModeResult& mode : result.modes) {
    mode.bit_identical = mode.outputs == scalar.outputs;  // exact doubles
    for (std::size_t i = 0; i < mode.outputs.size(); ++i) {
      mode.max_ulp = std::max(
          mode.max_ulp,
          cosm::common::ulp_distance(mode.outputs[i], scalar.outputs[i]));
      mode.max_abs = std::max(
          mode.max_abs, std::abs(mode.outputs[i] - scalar.outputs[i]));
    }
  }
  const ModeResult& tape_mode = result.modes[2];
  result.tape_speedup = scalar.wall_ms / tape_mode.wall_ms;
  // The simd figure is the best of the SoA family (simd, simd_many,
  // simd_fast): kSimd holds bit-identity, kSimdFast holds the documented
  // ULP/absolute bound — both are gated, so the family's best wall time
  // is a legitimate "what vectorization buys" number.
  double simd_best_ms = result.modes[4].wall_ms;
  simd_best_ms = std::min(simd_best_ms, result.modes[5].wall_ms);
  simd_best_ms = std::min(simd_best_ms, result.modes[6].wall_ms);
  result.simd_speedup = scalar.wall_ms / simd_best_ms;
  return result;
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = parse_args(argc, argv);
  if (!config.trace_json.empty()) cosm::obs::set_enabled(true);
  const std::vector<double> ts = sla_grid(config.sla_points);

  std::vector<ScenarioResult> results;
  for (const Scenario& scenario : scenarios()) {
    results.push_back(run_scenario(scenario, ts, config.repeat));
  }

  bool all_identical = true;
  bool fast_within_bound = true;
  bool speedup_ok = true;
  double min_tape_speedup = 0.0;
  double min_simd_speedup = 0.0;
  std::vector<double> simd_speedups;
  std::cout << "perf_numerics_tape: " << ts.size()
            << " SLA points per sweep, repeat=" << config.repeat
            << ", simd dispatch=" << cosm::numerics::simd::dispatch_name() << "\n";
  for (const ScenarioResult& scenario : results) {
    std::cout << "\n  " << scenario.name << " (" << scenario.op_count
              << " ops, " << scenario.slot_count << " CSE slots, "
              << scenario.generic_leaves << " generic leaves)\n";
    const double scalar_ms = scenario.modes.front().wall_ms;
    for (const ModeResult& mode : scenario.modes) {
      const bool is_fast = mode.name == "simd_fast";
      std::string verdict;
      if (is_fast) {
        // simd_fast trades bit-identity for speed; its contract is the
        // CDF-level absolute bound.
        const bool within = mode.max_abs <= kFastCdfAbsBound;
        fast_within_bound = fast_within_bound && within;
        std::ostringstream abs_text;
        abs_text.precision(2);
        abs_text << std::scientific << mode.max_abs;
        verdict = "max |dF| " + abs_text.str() +
                  (within ? " (within bound)" : " (OUT OF BOUND)");
      } else {
        verdict = mode.bit_identical ? "bit-identical" : "DIVERGED";
        all_identical = all_identical && mode.bit_identical;
      }
      std::cout << "    " << mode.name
                << std::string(12 - std::min<std::size_t>(11,
                                                          mode.name.size()),
                               ' ')
                << fmt(mode.wall_ms, 3) << " ms   "
                << fmt(scalar_ms / mode.wall_ms, 2) << "x   " << verdict
                << "\n";
    }
    if (min_tape_speedup == 0.0 ||
        scenario.tape_speedup < min_tape_speedup) {
      min_tape_speedup = scenario.tape_speedup;
    }
    if (min_simd_speedup == 0.0 ||
        scenario.simd_speedup < min_simd_speedup) {
      min_simd_speedup = scenario.simd_speedup;
    }
    simd_speedups.push_back(scenario.simd_speedup);
    if (config.min_speedup > 0.0 &&
        scenario.tape_speedup < config.min_speedup) {
      speedup_ok = false;
    }
  }
  std::cout << "\n  min tape speedup across scenarios: "
            << fmt(min_tape_speedup, 2) << "x (gate: "
            << (config.min_speedup > 0.0 ? fmt(config.min_speedup, 2) : "off")
            << ")\n";
  // The simd gate asks that the vectorized evaluator pays off broadly,
  // not just on one lucky shape: at least TWO scenarios must reach the
  // threshold (ranked second-best decides).
  std::sort(simd_speedups.begin(), simd_speedups.end(),
            std::greater<double>());
  const double simd_second_best =
      simd_speedups.size() > 1 ? simd_speedups[1] : simd_speedups.front();
  if (config.min_simd_speedup > 0.0 &&
      simd_second_best < config.min_simd_speedup) {
    speedup_ok = false;
  }
  std::cout << "  simd speedup vs scalar: min " << fmt(min_simd_speedup, 2)
            << "x, second-best " << fmt(simd_second_best, 2) << "x (gate: "
            << (config.min_simd_speedup > 0.0 ? fmt(config.min_simd_speedup, 2)
                                              : "off")
            << ")\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"perf_numerics_tape\",\n"
       << "  \"schema_version\": 1,\n"
       << "  \"config\": {\n"
       << "    \"sla_points\": " << ts.size() << ",\n"
       << "    \"repeat\": " << config.repeat << ",\n"
       << "    \"min_speedup\": " << fmt(config.min_speedup, 2) << ",\n"
       << "    \"min_simd_speedup\": " << fmt(config.min_simd_speedup, 2)
       << ",\n"
       << "    \"simd_dispatch\": \"" << cosm::numerics::simd::dispatch_name()
       << "\",\n"
       << "    \"fast_cdf_abs_bound\": " << kFastCdfAbsBound << "\n"
       << "  },\n"
       << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& scenario = results[i];
    const double scalar_ms = scenario.modes.front().wall_ms;
    json << "    {\n"
         << "      \"name\": \"" << scenario.name << "\",\n"
         << "      \"tape_ops\": " << scenario.op_count << ",\n"
         << "      \"cse_slots\": " << scenario.slot_count << ",\n"
         << "      \"generic_leaves\": " << scenario.generic_leaves << ",\n"
         << "      \"modes\": [\n";
    for (std::size_t k = 0; k < scenario.modes.size(); ++k) {
      const ModeResult& mode = scenario.modes[k];
      json << "        {\n"
           << "          \"name\": \"" << mode.name << "\",\n"
           << "          \"wall_ms\": " << fmt(mode.wall_ms, 3) << ",\n"
           << "          \"speedup_vs_scalar\": "
           << fmt(scalar_ms / mode.wall_ms, 3) << ",\n"
           << "          \"bit_identical_to_scalar\": "
           << (mode.bit_identical ? "true" : "false") << ",\n"
           << "          \"max_ulp_vs_scalar\": " << mode.max_ulp << ",\n"
           << "          \"max_abs_vs_scalar\": " << mode.max_abs << "\n"
           << "        }" << (k + 1 == scenario.modes.size() ? "\n" : ",\n");
    }
    json << "      ],\n"
         << "      \"tape_speedup\": " << fmt(scenario.tape_speedup, 3)
         << ",\n"
         << "      \"simd_speedup\": " << fmt(scenario.simd_speedup, 3)
         << "\n"
         << "    }" << (i + 1 == results.size() ? "\n" : ",\n");
  }
  json << "  ],\n"
       << "  \"min_tape_speedup\": " << fmt(min_tape_speedup, 3) << ",\n"
       << "  \"min_simd_speedup\": " << fmt(min_simd_speedup, 3) << ",\n"
       << "  \"simd_second_best_speedup\": " << fmt(simd_second_best, 3)
       << ",\n"
       << "  \"checks\": {\n"
       << "    \"bit_identical\": " << (all_identical ? "true" : "false")
       << ",\n"
       << "    \"simd_fast_within_bound\": "
       << (fast_within_bound ? "true" : "false") << ",\n"
       << "    \"min_speedup_met\": " << (speedup_ok ? "true" : "false")
       << "\n"
       << "  }\n"
       << "}\n";

  {
    std::ofstream out(config.out);
    if (!out) {
      std::cerr << "cannot open " << config.out << " for writing\n";
      return 3;
    }
    out << json.str();
  }
  // Readback gate: parse the artifact and enforce its schema contract
  // (schema_version match, no unknown top-level fields).
  if (!cosm_bench::verify_bench_json(
          config.out, 1,
          {"benchmark", "schema_version", "config", "scenarios",
           "min_tape_speedup", "min_simd_speedup", "simd_second_best_speedup",
           "checks"})) {
    return 3;
  }
  std::cout << "  wrote " << config.out << "\n";

  if (!config.trace_json.empty()) {
    std::ofstream trace(config.trace_json);
    if (!trace) {
      std::cerr << "cannot open " << config.trace_json << " for writing\n";
      return 3;
    }
    cosm::obs::export_json(trace);
    std::cout << "  wrote " << config.trace_json << "\n";
  }

  if (!all_identical) {
    std::cerr << "FAIL: a mode's outputs differ from the scalar tree walk\n";
    return 1;
  }
  if (!fast_within_bound) {
    std::cerr << "FAIL: simd_fast exceeded its CDF-level absolute bound of "
              << kFastCdfAbsBound << "\n";
    return 1;
  }
  if (!speedup_ok) {
    std::cerr << "FAIL: a speedup gate was unmet (tape gate "
              << fmt(config.min_speedup, 2) << "x, simd gate "
              << fmt(config.min_simd_speedup, 2) << "x)\n";
    return 2;
  }
  return 0;
}
