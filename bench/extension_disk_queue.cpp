// Extension experiment: replacing the paper's M/M/1/K disk-queue
// substitution with the exact M/G/1/K solution (embedded-chain state
// weights + stationary-residual sojourn transform).
//
// The paper (Sec. III-B) explicitly allows this: "Other approximating
// approaches would be also applicable for the model, on the condition
// that the sojourn time pdf of the approximation has a closed-form
// Laplace Transform", and attributes S16's systematic error to the
// M/M/1/K simplification.  This bench re-runs the S16 sweep and prints
// the prediction error of both variants side by side, per SLA.
#include <iostream>

#include "common/table.hpp"
#include "experiment.hpp"
#include "stats/sla.hpp"

int main(int argc, char** argv) {
  using cosm::Table;
  auto config = cosm::experiments::scenario_s16();
  cosm::experiments::apply_scale_from_args(config, argc, argv);
  const auto result = cosm::experiments::run_sweep(config);

  for (std::size_t s = 0; s < config.slas.size(); ++s) {
    Table table({"rate(req/s)", "observed", "MM1K_model(paper)",
                 "MG1K_model(exact)", "err_MM1K", "err_MG1K"});
    cosm::stats::PredictionErrorSummary mm1k_summary;
    cosm::stats::PredictionErrorSummary mg1k_summary;
    for (const auto& point : result.points) {
      // The paper's analysis rule: skip overloaded and timeout points.
      if (!point.model_ok || point.timeouts > 0) continue;
      mm1k_summary.add(point.ours[s], point.observed[s]);
      mg1k_summary.add(point.ours_mg1k[s], point.observed[s]);
      table.add_row(
          {Table::num(point.rate, 0), Table::percent(point.observed[s]),
           Table::percent(point.ours[s]),
           Table::percent(point.ours_mg1k[s]),
           Table::percent(point.ours[s] - point.observed[s]),
           Table::percent(point.ours_mg1k[s] - point.observed[s])});
    }
    table.print(std::cout,
                "Extension — S16 disk-queue model, SLA " +
                    Table::num(config.slas[s] * 1e3, 0) + " ms");
    std::cout << "mean |error|: MM1K "
              << Table::percent(mm1k_summary.mean_abs_error()) << ", MG1K "
              << Table::percent(mg1k_summary.mean_abs_error()) << "\n\n";
  }
  return 0;
}
