// Ablation: the M/M/1/K substitution for the shared disk queue
// (Sec. III-B, N_be > 1).
//
// The paper approximates the M/G/1/K disk queue with an M/M/1/K "for
// simplicity" and attributes the S16 scenario's larger errors to it.
// This bench quantifies that substitution against (a) the exact M/G/1/K
// embedded-chain solution and (b) a discrete-event simulation of the
// bounded disk queue, across buffer sizes and service-time variability
// (Gamma CV^2 < 1 is the realistic disk case from Fig. 5).
//
// Expected shape: for CV^2 < 1 the M/M/1/K approximation *overestimates*
// blocking and sojourn (exponential is more variable than the disk), and
// the gap grows with utilization; the embedded-chain solution matches the
// simulation.
#include <deque>
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "queueing/mg1k.hpp"
#include "queueing/mm1k.hpp"
#include "sim/engine.hpp"
#include "stats/summary.hpp"

namespace {

using cosm::Table;

struct SimEstimate {
  double blocking = 0.0;
  double mean_sojourn = 0.0;
};

// Direct discrete-event simulation of an M/G/1/K queue.
SimEstimate simulate_mg1k(double rate, const cosm::numerics::Distribution& b,
                          int capacity, double duration,
                          std::uint64_t seed) {
  cosm::sim::Engine engine;
  cosm::Rng arrivals(seed);
  cosm::Rng service(seed + 1);
  std::deque<double> queue;  // admission timestamps, head in service
  std::uint64_t arrived = 0;
  std::uint64_t blocked = 0;
  cosm::stats::StreamingStats sojourns;
  std::function<void()> complete = [&] {
    sojourns.add(engine.now() - queue.front());
    queue.pop_front();
    if (!queue.empty()) {
      engine.schedule_after(b.sample(service), complete);
    }
  };
  std::function<void()> arrive = [&] {
    ++arrived;
    if (static_cast<int>(queue.size()) >= capacity) {
      ++blocked;
    } else {
      queue.push_back(engine.now());
      if (queue.size() == 1) {
        engine.schedule_after(b.sample(service), complete);
      }
    }
    const double gap = arrivals.exponential(rate);
    if (engine.now() + gap < duration) {
      engine.schedule_after(gap, arrive);
    }
  };
  engine.schedule_at(0.0, arrive);
  engine.run_all();
  return {static_cast<double>(blocked) / static_cast<double>(arrived),
          sojourns.mean()};
}

}  // namespace

int main() {
  Table table({"K", "CV2", "offered_util", "block_MM1K", "block_exact",
               "block_sim", "sojourn_MM1K_ms", "sojourn_exact_ms",
               "sojourn_sim_ms"});
  const double mean_service = 0.011;  // ~ the HDD profile's pooled mean
  for (const int capacity : {2, 4, 8, 16}) {
    for (const double cv2 : {0.35, 1.0, 2.5}) {
      // Gamma with the requested squared coefficient of variation.
      const double shape = 1.0 / cv2;
      const auto service = std::make_shared<cosm::numerics::Gamma>(
          shape, shape / mean_service);
      for (const double util : {0.8, 1.1}) {
        const double rate = util / mean_service;
        const cosm::queueing::MM1K markov(rate, 1.0 / mean_service,
                                          capacity);
        const cosm::queueing::MG1K exact(rate, service, capacity);
        const SimEstimate sim = simulate_mg1k(
            rate, *service, capacity, 4000.0,
            20170813 + capacity * 100 + static_cast<int>(cv2 * 10));
        table.add_row(
            {std::to_string(capacity), Table::num(cv2, 2),
             Table::num(util, 2),
             Table::num(markov.blocking_probability(), 4),
             Table::num(exact.blocking_probability(), 4),
             Table::num(sim.blocking, 4),
             Table::num(markov.mean_sojourn_time() * 1e3, 2),
             Table::num(exact.mean_sojourn_time() * 1e3, 2),
             Table::num(sim.mean_sojourn * 1e3, 2)});
      }
    }
  }
  table.print(std::cout,
              "Ablation — disk queue: M/M/1/K (paper) vs exact M/G/1/K vs "
              "simulation");
  return 0;
}
