// Extension experiment: when does redundancy help the tail, and does the
// order-statistic model know?
//
// The redundancy extension claims two things:
//  1. The simulator's hedged GETs and (n,k) fan-out reads trade extra
//     attempt load for tail diversity, so each policy has a help->hurt
//     crossover in offered load: below it the order statistic wins, above
//     it the self-inflicted load loses.
//  2. The model predicts the helping side from healthy observations
//     alone: core::redundant_sla_percentile wraps the device response in
//     the matching order statistic and re-solves at the attempt-inflated
//     rates (fixed point for hedges), so an operator can pick a policy
//     without simulating it.
//
// The harness sweeps offered load x {baseline, hedged, mirrored 2x,
// coded (3,2)} with Pareto object sizes, then gates:
//  * crossover — at the lowest load some redundant policy beats the
//    baseline sim p99, at the highest load some policy is worse (the
//    hurt side exists);
//  * agreement — on the helping side (model says the policy beats the
//    baseline and stays stable) the predicted SLA attainment tracks the
//    redundant simulation within the paper's Table I error band;
//  * determinism — a repeated same-seed hedged run is bit-identical.
//
// Emits BENCH_redundancy.json and exits non-zero on any gate failure.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "calibration/online_metrics.hpp"
#include "common/table.hpp"
#include "core/whatif.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

namespace {

constexpr double kSlas[3] = {0.020, 0.050, 0.100};
constexpr unsigned kDevices = 4;
// Total req/s over 4 devices: ~10%, ~40%, ~65% healthy device utilization.
// Doubling attempts is cheap at the low end and fatal at the high end.
constexpr double kLoads[3] = {30.0, 120.0, 200.0};
constexpr double kHedgeDelay = 0.04;  // near the healthy p90
constexpr double kPaperBand = 0.17;   // Table I worst case, rounded up
constexpr std::uint64_t kSeed = 20260807;

struct PolicyConfig {
  const char* name;
  // Simulator knobs.
  double hedge_delay = 0.0;
  std::uint32_t fanout_n = 0;
  std::uint32_t fanout_k = 1;
  // Matching model options.
  cosm::core::RedundancyOptions model = {};
};

std::vector<PolicyConfig> policies() {
  using Mode = cosm::core::RedundancyOptions::Mode;
  std::vector<PolicyConfig> list;
  list.push_back({.name = "baseline"});
  PolicyConfig hedge{.name = "hedge-40ms", .hedge_delay = kHedgeDelay};
  hedge.model.mode = Mode::kHedge;
  hedge.model.hedge_delay = kHedgeDelay;
  list.push_back(hedge);
  PolicyConfig mirror{.name = "mirror-2x", .fanout_n = 2, .fanout_k = 1};
  mirror.model.mode = Mode::kMinOfN;
  mirror.model.n = 2;
  list.push_back(mirror);
  PolicyConfig coded{.name = "coded-(3,2)", .fanout_n = 3, .fanout_k = 2};
  coded.model.mode = Mode::kKthOfN;
  coded.model.n = 3;
  coded.model.k = 2;
  list.push_back(coded);
  return list;
}

struct RunResult {
  double observed[3] = {0.0, 0.0, 0.0};  // fraction meeting each SLA
  double p99 = 0.0;                      // sim response-latency p99 (s)
  double latency_sum = 0.0;              // bitwise determinism probe
  std::uint64_t completed = 0;
  cosm::core::SystemParams params;  // online-observed (baseline runs only)
};

RunResult run(double rate, const PolicyConfig& policy,
              double measure_seconds) {
  cosm::sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = kDevices;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.hedge_delay = policy.hedge_delay;
  config.fanout_n = policy.fanout_n;
  config.fanout_k = policy.fanout_k;
  config.seed = kSeed;
  cosm::sim::Cluster cluster(config);

  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  // Long-tailed Pareto sizes (mean ~24 KB, infinite variance at shape
  // 1.5): the stragglers redundancy is supposed to shave.
  cat_config.size_distribution =
      std::make_shared<cosm::numerics::Pareto>(1.5, 8192.0);
  // Keep the Pareto tail finite enough for the model's second moments
  // (and for smoke-scale runs to actually sample it).
  cat_config.max_object_bytes = 8ull << 20;
  cat_config.seed = kSeed + 1;
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement({.partition_count = 1024,
                                             .replica_count = 3,
                                             .device_count = kDevices,
                                             .seed = kSeed + 2});
  cosm::workload::PhasePlan plan;
  plan.warmup_rate = rate;
  plan.warmup_duration = 20.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = rate;
  plan.benchmark_end_rate = rate;
  plan.benchmark_step_duration = measure_seconds;

  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(kSeed + 3));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  RunResult result;
  cosm::stats::SampleSet latencies;
  for (const auto& sample : cluster.metrics().requests()) {
    latencies.add(sample.response_latency);
    result.latency_sum += sample.response_latency;
  }
  result.completed = cluster.metrics().completed_requests();
  for (int i = 0; i < 3; ++i) {
    result.observed[i] = latencies.fraction_below(kSlas[i]);
  }
  result.p99 = latencies.quantile(0.99);

  // Online-observed model inputs, as an operator would assemble them.
  // Only the baseline (single-attempt) runs feed the model: the whole
  // point is predicting redundant policies from healthy observations.
  result.params.frontend.processes = config.frontend_processes;
  result.params.frontend.frontend_parse = cluster.config().frontend_parse;
  const double window = source.horizon();
  double total_rate = 0.0;
  for (std::uint32_t d = 0; d < kDevices; ++d) {
    const auto obs =
        cosm::calibration::observe_device(cluster.metrics(), d, window);
    cosm::core::DeviceParams device;
    device.arrival_rate = obs.request_rate;
    device.data_read_rate = obs.data_read_rate;
    device.index_miss_ratio = obs.index_miss_ratio;
    device.meta_miss_ratio = obs.meta_miss_ratio;
    device.data_miss_ratio = obs.data_miss_ratio;
    device.index_disk = cluster.config().disk.index_service;
    device.meta_disk = cluster.config().disk.meta_service;
    device.data_disk = cluster.config().disk.data_service;
    device.backend_parse = cluster.config().backend_parse;
    device.processes = 1;
    total_rate += obs.request_rate;
    result.params.devices.push_back(std::move(device));
  }
  result.params.frontend.arrival_rate = total_rate;
  return result;
}

double parse_scale(int argc, char** argv) {
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = std::atof(arg.c_str() + 8);
    }
  }
  if (const char* env = std::getenv("COSM_BENCH_SCALE")) {
    scale = std::atof(env);
  }
  if (!(scale > 0.0)) {
    std::cerr << "--scale must be positive\n";
    std::exit(2);
  }
  return scale;
}

std::string parse_out(int argc, char** argv) {
  std::string out = "BENCH_redundancy.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out = arg.substr(6);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  const std::string out_path = parse_out(argc, argv);
  const double measure = 240.0 * scale;
  const std::vector<PolicyConfig> configs = policies();

  // One sweep: loads x policies.  cell[l][c] is the sim observation;
  // baseline runs also carry the observed model inputs for that load.
  std::vector<std::vector<RunResult>> cell(3);
  for (int l = 0; l < 3; ++l) {
    for (const PolicyConfig& policy : configs) {
      cell[l].push_back(run(kLoads[l], policy, measure));
    }
  }

  bool ok = true;
  std::ostringstream json;
  json << "{\n  \"bench\": \"extension_redundancy\",\n  \"scale\": " << scale
       << ",\n  \"hedge_delay\": " << kHedgeDelay << ",\n  \"cells\": [\n";

  // Model predictions + the agreement gate (helping side only).
  double healthy_band = 0.0;   // worst baseline model-vs-sim error
  double worst_helping_err = 0.0;
  int helping_points = 0;
  bool first_cell = true;
  for (int l = 0; l < 3; ++l) {
    const RunResult& base = cell[l][0];
    const cosm::core::SystemModel base_model(base.params);
    double base_pred[3];
    for (int i = 0; i < 3; ++i) {
      base_pred[i] = base_model.predict_sla_percentile(kSlas[i]);
    }
    cosm::Table table({"policy", "sim p99 (ms)", "SLA 20ms sim", "model",
                       "SLA 50ms sim", "model", "SLA 100ms sim", "model"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const RunResult& sim = cell[l][c];
      double predicted[3];
      bool helping[3] = {false, false, false};
      for (int i = 0; i < 3; ++i) {
        if (c == 0) {
          predicted[i] = base_pred[i];
          healthy_band =
              std::max(healthy_band, std::abs(predicted[i] - sim.observed[i]));
        } else {
          cosm::core::ModelOptions options;
          options.redundancy = configs[c].model;
          predicted[i] = cosm::core::redundant_sla_percentile(
              base.params, kSlas[i], options);
          // A helping point: the model says this policy is stable and at
          // least matches the baseline prediction at this SLA.  (A 40 ms
          // hedge cannot help a 20 ms SLA; help is per-SLA, not per-cell.)
          helping[i] = predicted[i] > 0.0 && predicted[i] >= base_pred[i];
          if (helping[i]) {
            ++helping_points;
            worst_helping_err = std::max(
                worst_helping_err, std::abs(predicted[i] - sim.observed[i]));
          }
        }
      }
      table.add_row({configs[c].name, cosm::Table::num(sim.p99 * 1000.0, 1),
                     cosm::Table::percent(sim.observed[0]),
                     cosm::Table::percent(predicted[0]),
                     cosm::Table::percent(sim.observed[1]),
                     cosm::Table::percent(predicted[1]),
                     cosm::Table::percent(sim.observed[2]),
                     cosm::Table::percent(predicted[2])});
      if (!first_cell) json << ",\n";
      first_cell = false;
      json << "    {\"load_rps\": " << kLoads[l] << ", \"policy\": \""
           << configs[c].name << "\", \"sim_p99_s\": " << sim.p99
           << ", \"completed\": " << sim.completed << ", \"helping\": ["
           << (helping[0] ? "true" : "false") << ", "
           << (helping[1] ? "true" : "false") << ", "
           << (helping[2] ? "true" : "false") << "], \"sla\": [" << kSlas[0]
           << ", " << kSlas[1] << ", " << kSlas[2] << "], \"sim\": ["
           << sim.observed[0] << ", " << sim.observed[1] << ", "
           << sim.observed[2] << "], \"model\": [" << predicted[0] << ", "
           << predicted[1] << ", " << predicted[2] << "]}";
    }
    std::ostringstream title;
    title << "Extension — redundancy policies at " << kLoads[l]
          << " req/s over 4 devices (Pareto sizes, replica count 3)";
    table.print(std::cout, title.str());
    std::cout << "\n";
  }

  // Gate 1: the help->hurt crossover exists in the simulator.  At the
  // lowest load some policy beats the baseline p99; at the highest load
  // some policy is strictly worse (redundancy turned self-destructive).
  const double base_low_p99 = cell[0][0].p99;
  const double base_high_p99 = cell[2][0].p99;
  double best_low_p99 = base_low_p99;
  std::string best_low;
  double worst_high_p99 = base_high_p99;
  std::string worst_high;
  for (std::size_t c = 1; c < configs.size(); ++c) {
    if (cell[0][c].p99 < best_low_p99) {
      best_low_p99 = cell[0][c].p99;
      best_low = configs[c].name;
    }
    if (cell[2][c].p99 > worst_high_p99) {
      worst_high_p99 = cell[2][c].p99;
      worst_high = configs[c].name;
    }
  }
  std::cout << "crossover: at " << kLoads[0] << " req/s "
            << (best_low.empty() ? "no policy" : best_low)
            << " improves p99 to " << best_low_p99 * 1000.0 << " ms (baseline "
            << base_low_p99 * 1000.0 << " ms); at " << kLoads[2] << " req/s "
            << (worst_high.empty() ? "no policy" : worst_high)
            << " degrades p99 to " << worst_high_p99 * 1000.0
            << " ms (baseline " << base_high_p99 * 1000.0 << " ms)\n";
  if (best_low.empty()) {
    std::cout << "FAIL: no redundant policy helps p99 at the lowest load\n";
    ok = false;
  }
  if (worst_high.empty()) {
    std::cout << "FAIL: no redundant policy hurts p99 at the highest load "
                 "(crossover not demonstrated)\n";
    ok = false;
  }

  // Gate 2: model-vs-sim agreement on the helping side, held to the same
  // band the degraded what-if honours (short smoke runs are noisier, so
  // the measured healthy band is the floor).
  const double allowed = std::max(kPaperBand, healthy_band + 0.03);
  std::cout << "healthy-model error band: "
            << cosm::Table::percent(healthy_band) << "; helping points: "
            << helping_points << "; worst helping-side error: "
            << cosm::Table::percent(worst_helping_err) << " (allowed "
            << cosm::Table::percent(allowed) << ")\n";
  if (helping_points == 0) {
    std::cout << "FAIL: the model found no helping (load, policy, SLA) "
                 "point\n";
    ok = false;
  }
  if (worst_helping_err > allowed) {
    std::cout << "FAIL: helping-side prediction left the band ("
              << cosm::Table::percent(worst_helping_err) << " > "
              << cosm::Table::percent(allowed) << ")\n";
    ok = false;
  }

  // Gate 3: redundant runs are seed-reproducible — repeat the hedged run
  // at the middle load and compare latency sums bitwise.
  const RunResult repeat = run(kLoads[1], configs[1], measure);
  const RunResult& reference = cell[1][1];
  if (repeat.latency_sum != reference.latency_sum ||
      repeat.completed != reference.completed) {
    std::cout << "FAIL: same-seed hedged run not bit-identical ("
              << reference.latency_sum << " vs " << repeat.latency_sum << ", "
              << reference.completed << " vs " << repeat.completed
              << " requests)\n";
    ok = false;
  } else {
    std::cout << "determinism: two same-seed hedged runs bit-identical ("
              << reference.completed << " requests, latency sum "
              << reference.latency_sum << " s)\n";
  }

  json << "\n  ],\n  \"crossover\": {\"help_load_rps\": " << kLoads[0]
       << ", \"help_policy\": \"" << best_low << "\", \"hurt_load_rps\": "
       << kLoads[2] << ", \"hurt_policy\": \"" << worst_high
       << "\"},\n  \"healthy_band\": " << healthy_band
       << ",\n  \"worst_helping_err\": " << worst_helping_err
       << ",\n  \"helping_points\": " << helping_points
       << ",\n  \"deterministic\": "
       << (repeat.latency_sum == reference.latency_sum ? "true" : "false")
       << ",\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
  std::ofstream out(out_path);
  out << json.str();
  if (!out) {
    std::cerr << "FAIL: cannot write " << out_path << "\n";
    ok = false;
  }
  std::cout << "wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
