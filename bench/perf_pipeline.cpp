// Perf-regression harness for the parallel + memoized prediction
// pipeline.  Times one Table-1-style sweep — rate points x model
// variants (full / noWTA / MG1K) x SLA points over a homogeneous
// 4-device cluster — under four execution modes:
//
//   serial           num_threads=1, no cache (the baseline)
//   parallel         num_threads=T, no cache
//   cached           num_threads=1, fresh PredictionCache
//   parallel_cached  num_threads=T, fresh PredictionCache
//
// verifies every mode reproduces the serial outputs bit-for-bit, and
// emits machine-readable BENCH_pipeline.json (see docs/PERFORMANCE.md
// for the field glossary).  Exit status: 0 ok, 1 outputs not
// bit-identical, 2 cached mode more than 2x slower than serial (cache
// overhead regression), 3 JSON write/readback failure.
//
// Flags: --threads=T (0 = all hardware threads; default 0)
//        --points=N  (rate points per sweep; default 6)
//        --repeat=R  (timing repetitions, best-of; default 3)
//        --out=PATH  (default BENCH_pipeline.json)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/system_model.hpp"
#include "numerics/distribution.hpp"
#include "obs/obs.hpp"

namespace {

using cosm::core::DeviceParams;
using cosm::core::ModelOptions;
using cosm::core::PredictionCache;
using cosm::core::PredictOptions;
using cosm::core::SystemModel;
using cosm::core::SystemParams;

struct Config {
  unsigned threads = 0;  // 0 = all hardware threads
  int rate_points = 6;
  int repeat = 3;
  std::string out = "BENCH_pipeline.json";
  std::string trace_json;  // empty = observability stays disabled
};

Config parse_args(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--threads=", 0) == 0) {
      config.threads =
          static_cast<unsigned>(std::stoul(value_of("--threads=")));
    } else if (arg.rfind("--points=", 0) == 0) {
      config.rate_points = std::stoi(value_of("--points="));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      config.repeat = std::stoi(value_of("--repeat="));
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out = value_of("--out=");
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      config.trace_json = value_of("--trace-json=");
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(3);
    }
  }
  config.rate_points = std::max(config.rate_points, 1);
  config.repeat = std::max(config.repeat, 1);
  return config;
}

constexpr unsigned kDevices = 4;
constexpr unsigned kProcesses = 4;

// The homogeneous cluster shape real deployments (and the paper's
// testbed) use — and the shape the PredictionCache exploits: identical
// devices share one backend build and one CDF inversion per SLA point.
SystemParams make_cluster(double system_rate) {
  using cosm::numerics::Degenerate;
  using cosm::numerics::Gamma;
  SystemParams params;
  params.frontend.arrival_rate = system_rate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse = std::make_shared<Degenerate>(0.8e-3);
  for (unsigned d = 0; d < kDevices; ++d) {
    DeviceParams device;
    device.arrival_rate = system_rate / kDevices;
    device.data_read_rate = device.arrival_rate * 1.2;
    device.index_miss_ratio = 0.3;
    device.meta_miss_ratio = 0.3;
    device.data_miss_ratio = 0.7;
    device.index_disk = std::make_shared<Gamma>(3.0, 300.0);   // 10 ms
    device.meta_disk = std::make_shared<Gamma>(2.5, 312.5);    //  8 ms
    device.data_disk = std::make_shared<Gamma>(2.8, 233.33);   // 12 ms
    device.backend_parse = std::make_shared<Degenerate>(0.5e-3);
    device.processes = kProcesses;
    params.devices.push_back(device);
  }
  return params;
}

const std::vector<ModelOptions>& variants() {
  static const std::vector<ModelOptions> kVariants = [] {
    std::vector<ModelOptions> v(3);
    v[1].include_wta = false;                            // noWTA baseline
    v[2].disk_queue = ModelOptions::DiskQueue::kMG1K;    // exact-chain
    return v;
  }();
  return kVariants;
}

std::vector<double> rate_grid(int points) {
  // System rates spreading per-device load from light (~25 req/s) to busy
  // (~55 req/s), all safely inside stability for the profile above.
  const double lo = 100.0;
  const double hi = 220.0;
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    rates.push_back(points == 1 ? lo : lo + (hi - lo) * i / (points - 1));
  }
  return rates;
}

const std::vector<double>& slas() {
  static const std::vector<double> kSlas = {0.05, 0.075, 0.1, 0.15, 0.2};
  return kSlas;
}

// One full sweep: every (rate, variant) builds a model, every model
// answers every SLA point.  Outputs are appended in a fixed order so two
// sweeps can be compared element-for-element.
std::vector<double> run_sweep(const std::vector<double>& rates,
                              const PredictOptions& predict) {
  std::vector<double> outputs;
  outputs.reserve(rates.size() * variants().size() * slas().size());
  for (const double rate : rates) {
    for (const ModelOptions& options : variants()) {
      const SystemModel model(make_cluster(rate), options, predict);
      const std::vector<double> percentiles =
          model.predict_sla_percentiles(slas());
      outputs.insert(outputs.end(), percentiles.begin(), percentiles.end());
    }
  }
  return outputs;
}

struct ModeResult {
  std::string name;
  unsigned threads = 1;
  bool cache_enabled = false;
  double wall_ms = 0.0;  // best over repetitions
  bool bit_identical = true;
  cosm::numerics::CacheStats stats{};
  std::vector<double> outputs;
};

ModeResult run_mode(const std::string& name, unsigned threads,
                    bool cache_enabled, const std::vector<double>& rates,
                    int repeat) {
  ModeResult result;
  result.name = name;
  result.threads = threads;
  result.cache_enabled = cache_enabled;
  for (int rep = 0; rep < repeat; ++rep) {
    // A fresh cache per repetition keeps every repetition doing identical
    // work (best-of timing stays meaningful).
    PredictionCache cache;
    const PredictOptions predict{threads, cache_enabled ? &cache : nullptr};
    const auto start = std::chrono::steady_clock::now();
    std::vector<double> outputs = run_sweep(rates, predict);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < result.wall_ms) result.wall_ms = ms;
    result.outputs = std::move(outputs);
    if (cache_enabled) result.stats = cache.combined_stats();
  }
  return result;
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

void append_mode_json(std::ostringstream& json, const ModeResult& mode,
                      double serial_ms, bool last) {
  json << "    {\n"
       << "      \"name\": \"" << mode.name << "\",\n"
       << "      \"threads\": " << mode.threads << ",\n"
       << "      \"cache_enabled\": " << (mode.cache_enabled ? "true" : "false")
       << ",\n"
       << "      \"wall_ms\": " << fmt(mode.wall_ms, 3) << ",\n"
       << "      \"speedup_vs_serial\": "
       << fmt(serial_ms / mode.wall_ms, 3) << ",\n"
       << "      \"bit_identical_to_serial\": "
       << (mode.bit_identical ? "true" : "false") << ",\n";
  if (mode.cache_enabled) {
    json << "      \"cache\": {\n"
         << "        \"hits\": " << mode.stats.hits << ",\n"
         << "        \"misses\": " << mode.stats.misses << ",\n"
         << "        \"evictions\": " << mode.stats.evictions << ",\n"
         << "        \"entries\": " << mode.stats.size << ",\n"
         << "        \"hit_rate\": " << fmt(mode.stats.hit_rate(), 4) << "\n"
         << "      }\n";
  } else {
    json << "      \"cache\": null\n";
  }
  json << "    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = parse_args(argc, argv);
  if (!config.trace_json.empty()) cosm::obs::set_enabled(true);
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const unsigned fanout =
      config.threads == 0 ? hardware : config.threads;

  const std::vector<double> rates = rate_grid(config.rate_points);
  std::vector<ModeResult> modes;
  modes.push_back(run_mode("serial", 1, false, rates, config.repeat));
  modes.push_back(run_mode("parallel", fanout, false, rates, config.repeat));
  modes.push_back(run_mode("cached", 1, true, rates, config.repeat));
  modes.push_back(
      run_mode("parallel_cached", fanout, true, rates, config.repeat));

  const ModeResult& serial = modes.front();
  bool all_identical = true;
  double best_speedup = 1.0;
  for (ModeResult& mode : modes) {
    mode.bit_identical = mode.outputs == serial.outputs;  // exact doubles
    all_identical = all_identical && mode.bit_identical;
    if (&mode != &serial) {
      best_speedup = std::max(best_speedup, serial.wall_ms / mode.wall_ms);
    }
  }

  std::cout << "perf_pipeline: " << rates.size() << " rate points x "
            << variants().size() << " variants x " << slas().size()
            << " SLA points, " << kDevices << " devices ("
            << kProcesses << " processes each), repeat=" << config.repeat
            << ", fanout=" << fanout << " thread(s)\n\n";
  std::cout << "  mode              wall_ms   speedup  bit-identical  cache hit-rate\n";
  for (const ModeResult& mode : modes) {
    std::cout << "  " << mode.name << std::string(18 - mode.name.size(), ' ')
              << fmt(mode.wall_ms, 2) << "   "
              << fmt(serial.wall_ms / mode.wall_ms, 2) << "x     "
              << (mode.bit_identical ? "yes" : "NO ") << "          "
              << (mode.cache_enabled ? fmt(mode.stats.hit_rate(), 3) : "-")
              << "\n";
  }
  std::cout << "\n  best speedup vs serial: " << fmt(best_speedup, 2)
            << "x\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"perf_pipeline\",\n"
       << "  \"schema_version\": 1,\n"
       << "  \"config\": {\n"
       << "    \"rate_points\": " << rates.size() << ",\n"
       << "    \"sla_points\": " << slas().size() << ",\n"
       << "    \"variants\": " << variants().size() << ",\n"
       << "    \"devices_per_cluster\": " << kDevices << ",\n"
       << "    \"processes_per_device\": " << kProcesses << ",\n"
       << "    \"repeat\": " << config.repeat << ",\n"
       << "    \"requested_threads\": " << config.threads << ",\n"
       << "    \"resolved_threads\": " << fanout << ",\n"
       << "    \"hardware_threads\": " << hardware << "\n"
       << "  },\n"
       << "  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    append_mode_json(json, modes[i], serial.wall_ms, i + 1 == modes.size());
  }
  const ModeResult& cached = modes[2];
  const bool cache_ok = cached.wall_ms <= 2.0 * serial.wall_ms;
  json << "  ],\n"
       << "  \"best_speedup\": " << fmt(best_speedup, 3) << ",\n"
       << "  \"checks\": {\n"
       << "    \"bit_identical\": " << (all_identical ? "true" : "false")
       << ",\n"
       << "    \"cached_within_2x_of_serial\": "
       << (cache_ok ? "true" : "false") << "\n"
       << "  }\n"
       << "}\n";

  {
    std::ofstream out(config.out);
    if (!out) {
      std::cerr << "cannot open " << config.out << " for writing\n";
      return 3;
    }
    out << json.str();
  }
  // Readback gate: parse the artifact and enforce its schema contract
  // (schema_version match, no unknown top-level fields).
  if (!cosm_bench::verify_bench_json(config.out, 1,
                                     {"benchmark", "schema_version", "config",
                                      "modes", "best_speedup", "checks"})) {
    return 3;
  }
  std::cout << "  wrote " << config.out << "\n";

  if (!config.trace_json.empty()) {
    std::ofstream trace(config.trace_json);
    if (!trace) {
      std::cerr << "cannot open " << config.trace_json << " for writing\n";
      return 3;
    }
    cosm::obs::export_json(trace);
    std::cout << "  wrote " << config.trace_json << "\n";
  }

  if (!all_identical) {
    std::cerr << "FAIL: a mode's outputs differ from serial\n";
    return 1;
  }
  if (!cache_ok) {
    std::cerr << "FAIL: cached mode more than 2x slower than serial "
              << "(cache overhead regression)\n";
    return 2;
  }
  return 0;
}
