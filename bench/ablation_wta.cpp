// Ablation: the waiting-time-for-being-accept()-ed model (Sec. III-C).
//
// The paper approximates the accept wait by the full accept lifetime,
// W_a = W_be, and concedes this overestimates ("increases as the length
// of the request processing queue increases").  The sketched exact
// refinement — a connection arrives uniformly during the lifetime —
// integrates to CDF_Wa(t) = t ∫_t^∞ F_A(x)/x² dx.  This bench compares,
// on a single-device cluster across load levels:
//
//   observed        simulated percentile meeting the SLA,
//   noWTA           no accept-wait term at all,
//   approx (paper)  W_a = W_be,
//   exact           the uniform-arrival refinement (grid convolution).
//
// Expected shape: noWTA over-predicts, approx under-predicts increasingly
// with load, exact sits between — showing how much of the paper's
// high-load error its own approximation causes.
#include <cmath>
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/system_model.hpp"
#include "numerics/grid.hpp"
#include "sim/cluster.hpp"
#include "stats/summary.hpp"

namespace {

using cosm::Table;
using cosm::numerics::DistPtr;
using cosm::numerics::GridDensity;

constexpr double kSla = 0.050;
constexpr double kDt = 2.5e-4;
constexpr double kHorizon = 1.0;

// Discretized CDF of the exact accept wait given the lifetime CDF grid.
GridDensity exact_wta_grid(const GridDensity& lifetime) {
  // survival-style accumulation: CDF(t) = t * sum_{x >= t} F(x)/x^2 dx.
  const std::size_t n = lifetime.bins();
  std::vector<double> cdf(n, 0.0);
  // Precompute F at bin midpoints.
  std::vector<double> f(n);
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = lifetime.cdf((static_cast<double>(i) + 0.5) * kDt);
  }
  // Suffix sums of F(x)/x^2 dx.
  std::vector<double> suffix(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    const double x = (static_cast<double>(i) + 0.5) * kDt;
    suffix[i] = suffix[i + 1] + f[i] / (x * x) * kDt;
  }
  std::vector<double> mass(n, 0.0);
  double prev = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i + 1) * kDt;
    const auto bucket = std::min<std::size_t>(i + 1, n - 1);
    double c = t * suffix[bucket];
    c = std::min(c, 1.0);
    mass[i] = std::max(0.0, c - prev);
    prev = std::max(prev, c);
  }
  // Tail mass to keep the grid proper.
  if (prev < 1.0) mass[n - 1] += 1.0 - prev;
  return GridDensity(kDt, std::move(mass));
}

struct Observed {
  double percentile = 0.0;        // P[response <= SLA]
  double accept_wait_mean = 0.0;  // component-level WTA measurement
  double accept_wait_p90 = 0.0;
};

Observed observe(double rate, std::uint64_t seed) {
  cosm::sim::ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = 1;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.seed = seed;
  cosm::sim::Cluster cluster(config);
  cosm::Rng arrivals(seed + 5);
  double t = 0.0;
  cosm::Rng object_picker(seed + 6);
  while (t < 400.0) {
    t += arrivals.exponential(rate);
    const double at = t;
    cluster.engine().schedule_at(at, [&cluster, &object_picker] {
      // ~20% of requests span 2 chunks, matching r_data/r = 1.2.
      const std::uint64_t size =
          object_picker.bernoulli(0.2) ? 100000 : 20000;
      cluster.submit_request(object_picker.next_u64() % 20000, size, 0);
    });
  }
  cluster.engine().run_all();
  cosm::stats::SampleSet latencies;
  cosm::stats::SampleSet waits;
  for (const auto& sample : cluster.metrics().requests()) {
    if (sample.frontend_arrival < 40.0) continue;
    latencies.add(sample.response_latency);
    waits.add(sample.accept_wait);
  }
  return {latencies.fraction_below(kSla), waits.mean(),
          waits.quantile(0.9)};
}

cosm::core::DeviceParams device_params(double rate) {
  cosm::core::DeviceParams device;
  device.arrival_rate = rate;
  device.data_read_rate = rate * 1.2;
  device.index_miss_ratio = 0.3;
  device.meta_miss_ratio = 0.3;
  device.data_miss_ratio = 0.7;
  const auto profile = cosm::sim::default_hdd_profile();
  device.index_disk = profile.index_service;
  device.meta_disk = profile.meta_service;
  device.data_disk = profile.data_service;
  device.backend_parse = std::make_shared<cosm::numerics::Degenerate>(0.5e-3);
  device.processes = 1;
  return device;
}

}  // namespace

int main() {
  Table table({"rate(req/s)", "utilization", "observed", "noWTA",
               "approx_WTA(paper)", "exact_WTA"});
  Table component({"rate(req/s)", "sim_wait_mean_ms", "model_W_be_mean_ms",
                   "sim_wait_p90_ms", "model_W_be_p90_ms"});
  for (const double rate : {15.0, 25.0, 35.0, 45.0, 55.0}) {
    cosm::core::SystemParams params;
    params.frontend.arrival_rate = rate;
    params.frontend.processes = 1;
    params.frontend.frontend_parse =
        std::make_shared<cosm::numerics::Degenerate>(0.8e-3);
    params.devices = {device_params(rate)};

    const cosm::core::SystemModel full(params);
    const cosm::core::SystemModel no_wta(params, {.include_wta = false});
    const auto& backend = full.devices().front().backend();

    // Exact variant by grid convolution: S_q (*) Wa_exact (*) S_be.
    const GridDensity s_q = GridDensity::discretize(
        *full.frontend().queueing_latency(), kDt, kHorizon);
    const GridDensity s_be =
        GridDensity::discretize(*backend.response_time(), kDt, kHorizon);
    const GridDensity lifetime =
        GridDensity::discretize(*backend.waiting_time(), kDt, kHorizon);
    const GridDensity wa_exact = exact_wta_grid(lifetime);
    const std::size_t max_bins =
        static_cast<std::size_t>(kHorizon / kDt) * 2;
    const GridDensity response =
        s_q.convolve_with(wa_exact, max_bins).convolve_with(s_be, max_bins);

    const Observed obs = observe(rate, 555 + static_cast<int>(rate));
    table.add_row({Table::num(rate, 0),
                   Table::num(backend.utilization(), 3),
                   Table::percent(obs.percentile),
                   Table::percent(no_wta.predict_sla_percentile(kSla)),
                   Table::percent(full.predict_sla_percentile(kSla)),
                   Table::percent(response.cdf(kSla))});

    // Component-level check of Sec. III-C: with deferred accepts, the
    // simulated accept wait should track the W_be model (PASTA claim).
    const auto w_be = backend.waiting_time();
    double model_p90 = 0.0;
    {
      // crude quantile by bisection on the model CDF
      double lo = 0.0, hi = 1.0;
      for (int iter = 0; iter < 40; ++iter) {
        const double mid = 0.5 * (lo + hi);
        (w_be->cdf(mid) < 0.9 ? lo : hi) = mid;
      }
      model_p90 = 0.5 * (lo + hi);
    }
    component.add_row({Table::num(rate, 0),
                       Table::num(obs.accept_wait_mean * 1e3, 2),
                       Table::num(w_be->mean() * 1e3, 2),
                       Table::num(obs.accept_wait_p90 * 1e3, 2),
                       Table::num(model_p90 * 1e3, 2)});
  }
  table.print(std::cout,
              "Ablation — accept-wait model variants, single device, "
              "SLA 50 ms (end-to-end).  On a work-conserving FIFO\n"
              "simulator pool wait and op-queue wait share one M/G/1 wait, "
              "so noWTA tracks observed and the paper's additive\n"
              "approximation is pessimistic (cf. EXPERIMENTS.md).");
  std::cout << '\n';
  component.print(std::cout,
                  "Ablation — the W_a = W_be component model itself "
                  "(Sec. III-C): simulated accept wait vs model");
  return 0;
}
