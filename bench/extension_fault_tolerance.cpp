// Extension experiment: does the degraded what-if track a *faulted*
// simulator as well as the healthy model tracks a healthy one?
//
// The robustness extension claims that a degraded cluster is just a
// transformed parameter set (core::degrade): a disk slowdown becomes a
// Scaled service distribution, and the same Eq. 1-3 machinery predicts
// the degraded percentiles.  This harness checks the claim end to end:
//
//  1. Healthy run: simulate, observe online metrics, predict with the
//     healthy model.  The per-SLA |predicted - observed| errors define
//     the reference error band (Table I's worst case is ~17 points).
//  2. Fault run: same cluster with a x3 disk slowdown scripted on one
//     device for the whole run.  The prediction is degrade(healthy
//     params) — the model never sees the faulted simulator's metrics —
//     and must stay inside the healthy band against the faulted
//     observation.
//  3. Determinism: the pure-slowdown fault run is repeated with the same
//     seed and must be bit-identical (latency sums compared exactly).
//
// Exits non-zero when the degraded prediction leaves the band or the
// repeat run diverges, so CI catches regressions in either property.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "calibration/online_metrics.hpp"
#include "common/table.hpp"
#include "core/whatif.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

namespace {

constexpr double kSlas[3] = {0.010, 0.050, 0.100};
constexpr double kRate = 60.0;           // ~20% healthy device utilization
constexpr unsigned kDevices = 4;
constexpr std::uint32_t kSlowDevice = 2;
constexpr double kInflation = 3.0;       // slow device's ops run 3x longer
// Paper Table I worst cases (15.04%, 16.61%) round up to this band; the
// healthy model itself is held to it in tests/integration.
constexpr double kPaperBand = 0.17;

struct RunResult {
  double observed[3] = {0.0, 0.0, 0.0};  // fraction meeting each SLA
  double latency_sum = 0.0;              // bitwise determinism probe
  std::uint64_t completed = 0;
  cosm::core::SystemParams params;       // online-observed model inputs
};

RunResult run(double measure_seconds, bool with_fault, std::uint64_t seed) {
  cosm::sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = kDevices;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.seed = seed;
  if (with_fault) {
    // Cover warmup and the whole measure window so the run is a single
    // degraded steady state, matching the what-if's stationary model.
    config.faults.disk_slowdown(kSlowDevice, 0.0, 1e9, kInflation);
  }
  cosm::sim::Cluster cluster(config);

  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  cat_config.seed = seed + 1;
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement({.partition_count = 1024,
                                             .replica_count = 3,
                                             .device_count = kDevices,
                                             .seed = seed + 2});
  cosm::workload::PhasePlan plan;
  plan.warmup_rate = kRate;
  plan.warmup_duration = 30.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = kRate;
  plan.benchmark_end_rate = kRate;
  plan.benchmark_step_duration = measure_seconds;

  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(seed + 3));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  RunResult result;
  cosm::stats::SampleSet latencies;
  for (const auto& sample : cluster.metrics().requests()) {
    latencies.add(sample.response_latency);
    result.latency_sum += sample.response_latency;
  }
  result.completed = cluster.metrics().completed_requests();
  for (int i = 0; i < 3; ++i) {
    result.observed[i] = latencies.fraction_below(kSlas[i]);
  }

  // Model inputs as an operator would assemble them: online rates and
  // miss ratios plus the (healthy) ground-truth service distributions.
  result.params.frontend.processes = config.frontend_processes;
  result.params.frontend.frontend_parse = cluster.config().frontend_parse;
  const double window = source.horizon();
  double total_rate = 0.0;
  for (std::uint32_t d = 0; d < kDevices; ++d) {
    const auto obs =
        cosm::calibration::observe_device(cluster.metrics(), d, window);
    cosm::core::DeviceParams device;
    device.arrival_rate = obs.request_rate;
    device.data_read_rate = obs.data_read_rate;
    device.index_miss_ratio = obs.index_miss_ratio;
    device.meta_miss_ratio = obs.meta_miss_ratio;
    device.data_miss_ratio = obs.data_miss_ratio;
    device.index_disk = cluster.config().disk.index_service;
    device.meta_disk = cluster.config().disk.meta_service;
    device.data_disk = cluster.config().disk.data_service;
    device.backend_parse = cluster.config().backend_parse;
    device.processes = 1;
    total_rate += obs.request_rate;
    result.params.devices.push_back(std::move(device));
  }
  result.params.frontend.arrival_rate = total_rate;
  return result;
}

double parse_scale(int argc, char** argv) {
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = std::atof(arg.c_str() + 8);  // garbage parses to 0, caught below
    }
  }
  if (const char* env = std::getenv("COSM_BENCH_SCALE")) {
    scale = std::atof(env);
  }
  if (!(scale > 0.0)) {
    std::cerr << "--scale must be positive\n";
    std::exit(2);
  }
  return scale;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  const double measure = 300.0 * scale;

  const RunResult healthy = run(measure, /*with_fault=*/false, 20170813);
  const RunResult faulted = run(measure, /*with_fault=*/true, 20170813);

  const cosm::core::SystemModel healthy_model(healthy.params);
  cosm::core::DegradedScenario scenario;
  scenario.slow_device = kSlowDevice;
  scenario.service_inflation = kInflation;

  cosm::Table table({"SLA (ms)", "healthy sim", "healthy model", "err",
                     "faulted sim", "degraded what-if", "err"});
  double band = 0.0;
  double worst_degraded_err = 0.0;
  for (int i = 0; i < 3; ++i) {
    const double healthy_pred = healthy_model.predict_sla_percentile(kSlas[i]);
    const double degraded_pred = cosm::core::degraded_sla_percentile(
        healthy.params, scenario, kSlas[i]);
    const double healthy_err = std::abs(healthy_pred - healthy.observed[i]);
    const double degraded_err = std::abs(degraded_pred - faulted.observed[i]);
    band = std::max(band, healthy_err);
    worst_degraded_err = std::max(worst_degraded_err, degraded_err);
    table.add_row({cosm::Table::num(kSlas[i] * 1000.0, 0),
                   cosm::Table::percent(healthy.observed[i]),
                   cosm::Table::percent(healthy_pred),
                   cosm::Table::percent(healthy_err),
                   cosm::Table::percent(faulted.observed[i]),
                   cosm::Table::percent(degraded_pred),
                   cosm::Table::percent(degraded_err)});
  }
  table.print(std::cout,
              "Extension — degraded what-if vs fault-injected simulator "
              "(device 2 disk x3 for the whole run, 60 req/s over 4 "
              "devices)");
  std::cout << "\nhealthy-model error band: " << cosm::Table::percent(band)
            << "  (paper Table I worst case: "
            << cosm::Table::percent(kPaperBand) << ")\n"
            << "worst degraded what-if error: "
            << cosm::Table::percent(worst_degraded_err) << "\n";

  // The degraded prediction must do no worse than the healthy model is
  // allowed to: inside the paper band, with the measured healthy error
  // as the tighter reference when it is larger (short smoke runs are
  // noisier, so the band is the floor, not the ceiling).
  const double allowed = std::max(kPaperBand, band + 0.03);
  bool ok = true;
  if (worst_degraded_err > allowed) {
    std::cout << "FAIL: degraded what-if left the healthy error band ("
              << cosm::Table::percent(worst_degraded_err) << " > "
              << cosm::Table::percent(allowed) << ")\n";
    ok = false;
  }

  // Pure-slowdown fault runs are seed-reproducible: repeat and compare
  // the latency sums bitwise.
  const RunResult repeat = run(measure, /*with_fault=*/true, 20170813);
  if (repeat.latency_sum != faulted.latency_sum ||
      repeat.completed != faulted.completed) {
    std::cout << "FAIL: same-seed fault run not bit-identical ("
              << faulted.latency_sum << " vs " << repeat.latency_sum
              << ", " << faulted.completed << " vs " << repeat.completed
              << " requests)\n";
    ok = false;
  } else {
    std::cout << "determinism: two same-seed fault runs bit-identical ("
              << faulted.completed << " requests, latency sum "
              << faulted.latency_sum << " s)\n";
  }
  return ok ? 0 : 1;
}
