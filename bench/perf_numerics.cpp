// Microbenchmarks (google-benchmark) for the numerics hot paths: Laplace
// inversion (the cost of one percentile query), FFT grid convolution (the
// cross-check path), distribution fitting (calibration cost), a full
// model build-and-predict cycle (the unit of every what-if sweep), and
// the transform-tape kernel against the scalar tree walk it replaces
// (perf_numerics_tape.cpp is the gated regression harness; these are the
// profiling-grade microbenches).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/system_model.hpp"
#include "numerics/fft.hpp"
#include "numerics/fitting.hpp"
#include "numerics/grid.hpp"
#include "numerics/lt_inversion.hpp"
#include "numerics/transform_tape.hpp"

namespace {

using namespace cosm::numerics;  // NOLINT — bench-local brevity

void BM_EulerCdfInversion(benchmark::State& state) {
  const Gamma gamma(2.8, 233.33);
  const LaplaceFn lt = [&gamma](std::complex<double> s) {
    return gamma.laplace(s);
  };
  double t = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdf_from_laplace(lt, t));
    t = t < 0.1 ? t + 0.001 : 0.001;
  }
}
BENCHMARK(BM_EulerCdfInversion);

void BM_TalbotInversion(benchmark::State& state) {
  const Gamma gamma(2.8, 233.33);
  const LaplaceFn lt = [&gamma](std::complex<double> s) {
    return gamma.laplace(s) / s;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(invert_talbot(lt, 0.02));
  }
}
BENCHMARK(BM_TalbotInversion);

void BM_FftConvolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n, 1.0 / static_cast<double>(n));
  std::vector<double> b(n, 1.0 / static_cast<double>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(convolve(a, b));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_FftConvolve)->Range(1 << 8, 1 << 14)->Complexity();

void BM_GammaMleFit(benchmark::State& state) {
  cosm::Rng rng(7);
  std::vector<double> samples(static_cast<std::size_t>(state.range(0)));
  for (auto& x : samples) x = rng.gamma(2.8, 233.33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_gamma(samples));
  }
}
BENCHMARK(BM_GammaMleFit)->Arg(1000)->Arg(10000);

void BM_GridDiscretize(benchmark::State& state) {
  const Gamma gamma(2.8, 233.33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GridDensity::discretize(gamma, 1e-4, 0.25));
  }
}
BENCHMARK(BM_GridDiscretize);

void BM_ModelBuildAndPredict(benchmark::State& state) {
  cosm::core::SystemParams params;
  params.frontend.arrival_rate = 120.0;
  params.frontend.processes = 3;
  params.frontend.frontend_parse = std::make_shared<Degenerate>(0.8e-3);
  for (int d = 0; d < 4; ++d) {
    cosm::core::DeviceParams device;
    device.arrival_rate = 30.0;
    device.data_read_rate = 36.0;
    device.index_miss_ratio = 0.3;
    device.meta_miss_ratio = 0.3;
    device.data_miss_ratio = 0.7;
    device.index_disk = std::make_shared<Gamma>(3.0, 300.0);
    device.meta_disk = std::make_shared<Gamma>(2.5, 312.5);
    device.data_disk = std::make_shared<Gamma>(2.8, 233.33);
    device.backend_parse = std::make_shared<Degenerate>(0.5e-3);
    params.devices.push_back(device);
  }
  for (auto _ : state) {
    const cosm::core::SystemModel model(params);
    benchmark::DoNotOptimize(model.predict_sla_percentile(0.1));
  }
}
BENCHMARK(BM_ModelBuildAndPredict);

// One realistic 4-process device response (S_q * W_a * S_be with the
// M/M/1/K disk substitution) — the distribution every percentile query
// inverts, shared by the scalar-vs-tape pairs below.
const cosm::core::SystemModel& tape_bench_model() {
  static const cosm::core::SystemModel model = [] {
    cosm::core::SystemParams params;
    params.frontend.arrival_rate = 30.0;
    params.frontend.processes = 3;
    params.frontend.frontend_parse = std::make_shared<Degenerate>(0.8e-3);
    cosm::core::DeviceParams device;
    device.arrival_rate = 30.0;
    device.data_read_rate = 36.0;
    device.index_miss_ratio = 0.3;
    device.meta_miss_ratio = 0.3;
    device.data_miss_ratio = 0.7;
    device.index_disk = std::make_shared<Gamma>(3.0, 300.0);
    device.meta_disk = std::make_shared<Gamma>(2.5, 312.5);
    device.data_disk = std::make_shared<Gamma>(2.8, 233.33);
    device.backend_parse = std::make_shared<Degenerate>(0.5e-3);
    device.processes = 4;
    params.devices.push_back(device);
    return cosm::core::SystemModel(params);
  }();
  return model;
}

void BM_ScalarTreeCdf(benchmark::State& state) {
  const DistPtr response = tape_bench_model().devices()[0].response_time();
  const LaplaceFn lt = [&response](std::complex<double> s) {
    return response->laplace(s);
  };
  double t = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdf_from_laplace(lt, t));
    t = t < 0.2 ? t + 0.01 : 0.01;
  }
}
BENCHMARK(BM_ScalarTreeCdf);

void BM_TapeCdf(benchmark::State& state) {
  const TransformTape& tape = tape_bench_model().devices()[0].response_tape();
  double t = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tape.cdf(t));
    t = t < 0.2 ? t + 0.01 : 0.01;
  }
}
BENCHMARK(BM_TapeCdf);

void BM_TapeCdfMany(benchmark::State& state) {
  // A 24-point SLA sweep in one call: tape setup and dispatch amortize
  // across the whole grid (the predict_sla_percentiles fast path).
  const TransformTape& tape = tape_bench_model().devices()[0].response_tape();
  std::vector<double> ts;
  for (int i = 1; i <= 24; ++i) ts.push_back(0.01 * i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tape.cdf_many(ts));
  }
}
BENCHMARK(BM_TapeCdfMany);

void BM_TapeCompile(benchmark::State& state) {
  const DistPtr response = tape_bench_model().devices()[0].response_time();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransformTape::compile(response));
  }
}
BENCHMARK(BM_TapeCompile);

}  // namespace

BENCHMARK_MAIN();
