// Fig. 5 reproduction: "The results of fitting the disk service times".
//
// Runs the Sec. IV-A disk benchmark (fill + random single-outstanding
// reads) against the simulated HDD, fits the paper's four candidate
// distributions per operation kind, and prints (a) the KS model-selection
// table — Gamma must win, as in the paper — and (b) the recorded vs
// fitted-Gamma CDF series across the service-time range, i.e. the curves
// of Fig. 5.
#include <iostream>

#include "calibration/disk_benchmark.hpp"
#include "common/table.hpp"
#include "stats/summary.hpp"

int main() {
  using cosm::Table;
  const cosm::sim::DiskProfile profile = cosm::sim::default_hdd_profile();
  const auto calibration =
      cosm::calibration::benchmark_disk(profile, {.objects = 30000});

  // --- model-selection table --------------------------------------------
  Table selection({"operation", "candidate", "KS_statistic", "fitted_mean_ms",
                   "winner"});
  const struct {
    const char* name;
    const cosm::calibration::OperationFit* fit;
  } ops[] = {{"index_lookup", &calibration.index},
             {"meta_read", &calibration.meta},
             {"data_read", &calibration.data}};
  for (const auto& op : ops) {
    for (const auto& candidate : op.fit->selection.candidates) {
      selection.add_row({op.name, candidate.name,
                         Table::num(candidate.ks, 5),
                         Table::num(candidate.dist->mean() * 1e3, 3),
                         candidate.name ==
                                 op.fit->selection.best().name
                             ? "<-- best"
                             : ""});
    }
  }
  selection.print(std::cout,
                  "Fig. 5 — distribution fitting of disk service times "
                  "(model selection by KS)");
  std::cout << '\n';

  // --- recorded vs fitted CDF series (the Fig. 5 curves) -----------------
  Table curves({"service_time_ms", "recorded_index", "gamma_index",
                "recorded_meta", "gamma_meta", "recorded_data",
                "gamma_data"});
  cosm::stats::SampleSet index_set;
  cosm::stats::SampleSet meta_set;
  cosm::stats::SampleSet data_set;
  for (const double s : calibration.index.samples) index_set.add(s);
  for (const double s : calibration.meta.samples) meta_set.add(s);
  for (const double s : calibration.data.samples) data_set.add(s);
  const auto& g_index = *calibration.index.selection.best().dist;
  const auto& g_meta = *calibration.meta.selection.best().dist;
  const auto& g_data = *calibration.data.selection.best().dist;
  for (double ms = 2.0; ms <= 80.0; ms += (ms < 30 ? 2.0 : 5.0)) {
    const double t = ms * 1e-3;
    curves.add_row({Table::num(ms, 0),
                    Table::num(index_set.fraction_below(t), 4),
                    Table::num(g_index.cdf(t), 4),
                    Table::num(meta_set.fraction_below(t), 4),
                    Table::num(g_meta.cdf(t), 4),
                    Table::num(data_set.fraction_below(t), 4),
                    Table::num(g_data.cdf(t), 4)});
  }
  curves.print(std::cout,
               "Fig. 5 — recorded vs Gamma-fitted CDFs per operation");
  return 0;
}
