#include "bench_json.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/json.hpp"

namespace cosm_bench {

bool verify_bench_json(const std::string& path, int expected_version,
                       const std::vector<std::string_view>& allowed_keys) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "readback of " << path << ": cannot open\n";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const cosm::common::JsonParseResult parsed =
      cosm::common::json_parse(buffer.str());
  if (!parsed.ok) {
    std::cerr << "readback of " << path << ": invalid JSON: " << parsed.error
              << "\n";
    return false;
  }
  if (!parsed.value.is_object()) {
    std::cerr << "readback of " << path << ": top level is not an object\n";
    return false;
  }
  const cosm::common::JsonValue* version = parsed.value.find("schema_version");
  if (version == nullptr || !version->is_number()) {
    std::cerr << "readback of " << path << ": missing schema_version\n";
    return false;
  }
  if (version->as_number() != static_cast<double>(expected_version)) {
    std::cerr << "readback of " << path << ": schema_version "
              << version->as_number() << ", expected " << expected_version
              << "\n";
    return false;
  }
  bool ok = true;
  for (const auto& [key, value] : parsed.value.members()) {
    if (std::find(allowed_keys.begin(), allowed_keys.end(), key) ==
        allowed_keys.end()) {
      std::cerr << "readback of " << path << ": unknown top-level field \""
                << key << "\"\n";
      ok = false;
    }
  }
  for (const std::string_view key : allowed_keys) {
    if (parsed.value.find(key) == nullptr) {
      std::cerr << "readback of " << path << ": missing top-level field \""
                << key << "\"\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace cosm_bench
