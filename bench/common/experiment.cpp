#include "experiment.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

#include "calibration/online_metrics.hpp"
#include "common/require.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/system_model.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

namespace cosm::experiments {

namespace {

sim::ClusterConfig cluster_config(const ScenarioConfig& config,
                                  std::uint64_t seed) {
  sim::ClusterConfig cluster;
  cluster.frontend_processes = config.frontend_processes;
  cluster.device_count = config.device_count;
  cluster.processes_per_device = config.processes_per_device;
  cluster.cache.index_miss_ratio = config.index_miss;
  cluster.cache.meta_miss_ratio = config.meta_miss;
  cluster.cache.data_miss_ratio = config.data_miss;
  cluster.request_timeout = config.request_timeout;
  cluster.seed = seed;
  return cluster;
}

// Builds the three model variants from calibrated inputs and evaluates
// them at the SLAs; any overload marks the point as not modellable.
void predict_point(const ScenarioConfig& config,
                   const SweepResult& calibrated, sim::Cluster& cluster,
                   double window, RatePoint& point) {
  core::SystemParams params;
  params.frontend.processes = config.frontend_processes;
  params.frontend.frontend_parse =
      calibrated.parse_calibration.frontend_fit.best().dist;
  double total_rate = 0.0;
  const auto& disk_cal = calibrated.disk_calibration;
  for (std::uint32_t d = 0; d < config.device_count; ++d) {
    const auto obs =
        calibration::observe_device(cluster.metrics(), d, window);
    // The aggregate disk service time an operator reads from iostat:
    // total busy time over total ops, all kinds pooled.
    const auto& counters = cluster.metrics().device(d);
    double busy = 0.0;
    std::uint64_t ops = 0;
    for (int kind = 0; kind < 3; ++kind) {
      busy += counters.disk_service_sum[kind];
      ops += counters.disk_ops[kind];
    }
    const double aggregate = ops > 0
                                 ? busy / static_cast<double>(ops)
                                 : disk_cal.data.mean;
    params.devices.push_back(calibration::build_device_params(
        obs, disk_cal, calibrated.parse_calibration.backend_fit.best().dist,
        config.processes_per_device, aggregate));
    total_rate += obs.request_rate;
  }
  params.frontend.arrival_rate = total_rate;

  const auto evaluate = [&](core::ModelOptions options,
                            std::vector<double>& out) {
    const core::SystemModel model(params, options);
    out.clear();
    for (const double sla : config.slas) {
      out.push_back(model.predict_sla_percentile(sla));
    }
  };
  try {
    evaluate({}, point.ours);
    evaluate({.include_wta = false}, point.nowta);
    evaluate({.odopr = true}, point.odopr);
    evaluate({.disk_queue = core::ModelOptions::DiskQueue::kMG1K},
             point.ours_mg1k);
  } catch (const std::invalid_argument&) {
    point.model_ok = false;
    point.ours.assign(config.slas.size(), 0.0);
    point.nowta.assign(config.slas.size(), 0.0);
    point.odopr.assign(config.slas.size(), 0.0);
    point.ours_mg1k.assign(config.slas.size(), 0.0);
  }
}

RatePoint run_point(const ScenarioConfig& config,
                    const SweepResult& calibrated, double rate,
                    std::uint64_t seed) {
  sim::Cluster cluster(cluster_config(config, seed));
  workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  cat_config.size_distribution = workload::default_size_distribution();
  cat_config.seed = seed + 1;
  const workload::ObjectCatalog catalog(cat_config);
  const workload::Placement placement(
      {.partition_count = 1024,
       .replica_count = 3,
       .device_count = config.device_count,
       .seed = seed + 2});

  workload::PhasePlan plan;
  plan.warmup_rate = rate;
  plan.warmup_duration = config.warmup_seconds * config.time_scale;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = rate;
  plan.benchmark_end_rate = rate;
  plan.benchmark_step_duration = config.measure_seconds * config.time_scale;

  sim::OpenLoopSource source(cluster, catalog, placement, plan,
                             cosm::Rng(seed + 3));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  RatePoint point;
  point.rate = rate;
  point.timeouts = cluster.metrics().timeouts();
  stats::SampleSet latencies;
  latencies.reserve(cluster.metrics().requests().size());
  for (const auto& sample : cluster.metrics().requests()) {
    if (sample.timed_out) continue;
    latencies.add(sample.response_latency);
  }
  point.samples = latencies.count();
  point.observed.clear();
  for (const double sla : config.slas) {
    point.observed.push_back(
        latencies.empty() ? 0.0 : latencies.fraction_below(sla));
  }
  predict_point(config, calibrated, cluster, source.horizon(), point);
  return point;
}

}  // namespace

SweepResult run_sweep(const ScenarioConfig& config) {
  COSM_REQUIRE(config.rate_step > 0 && config.rate_end >= config.rate_start,
               "invalid rate ladder");
  COSM_REQUIRE(!config.slas.empty(), "sweep needs at least one SLA");
  SweepResult result;
  result.config = config;

  // One-time offline calibration (Sec. IV-A) against the default profile.
  sim::ClusterConfig base = cluster_config(config, config.seed);
  base.finalize();
  result.disk_calibration =
      calibration::benchmark_disk(base.disk, {.objects = 8000,
                                              .seed = config.seed + 11});
  result.parse_calibration = calibration::benchmark_parse(
      base, {.requests = 1000, .seed = config.seed + 13});

  std::vector<double> rates;
  for (double rate = config.rate_start; rate <= config.rate_end + 1e-9;
       rate += config.rate_step) {
    rates.push_back(rate);
  }
  result.points.resize(rates.size());
  ThreadPool pool;
  pool.parallel_for_index(rates.size(), [&](std::size_t i) {
    result.points[i] = run_point(config, result, rates[i],
                                 config.seed + 1000 * (i + 1));
  });
  return result;
}

ScenarioConfig scenario_s1() {
  ScenarioConfig config;
  config.name = "S1";
  config.processes_per_device = 1;
  config.rate_start = 20.0;
  config.rate_end = 240.0;
  config.rate_step = 20.0;
  return config;
}

ScenarioConfig scenario_s16() {
  ScenarioConfig config;
  config.name = "S16";
  config.processes_per_device = 16;
  config.rate_start = 20.0;
  config.rate_end = 260.0;
  config.rate_step = 20.0;
  return config;
}

void apply_scale_from_args(ScenarioConfig& config, int argc, char** argv) {
  if (const char* env = std::getenv("COSM_BENCH_SCALE")) {
    config.time_scale = std::atof(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      config.time_scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      config.csv_dir = argv[i] + 6;
    }
  }
  COSM_REQUIRE(config.time_scale > 0, "time scale must be positive");
}

void print_sweep(const SweepResult& result) {
  const auto& config = result.config;
  for (std::size_t s = 0; s < config.slas.size(); ++s) {
    Table table({"rate(req/s)", "samples", "observed", "our_model",
                 "ODOPR_model", "noWTA_model", "our_error"});
    for (const auto& point : result.points) {
      const std::string marker =
          point.timeouts > 0
              ? " [" + std::to_string(point.timeouts) + " timeouts]"
              : "";
      if (!point.model_ok) {
        table.add_row({Table::num(point.rate, 0),
                       std::to_string(point.samples) + marker,
                       Table::percent(point.observed[s]), "(overload)",
                       "(overload)", "(overload)", "--"});
        continue;
      }
      table.add_row({Table::num(point.rate, 0),
                     std::to_string(point.samples) + marker,
                     Table::percent(point.observed[s]),
                     Table::percent(point.ours[s]),
                     Table::percent(point.odopr[s]),
                     Table::percent(point.nowta[s]),
                     Table::percent(point.ours[s] - point.observed[s])});
    }
    table.print(std::cout,
                "Scenario " + config.name + ", SLA " +
                    Table::num(config.slas[s] * 1e3, 0) +
                    " ms — percentile of requests meeting the SLA");
    std::cout << '\n';
    if (!config.csv_dir.empty()) {
      table.write_csv_file(config.csv_dir + "/" + config.name + "_sla" +
                           Table::num(config.slas[s] * 1e3, 0) + ".csv");
    }
  }
}

}  // namespace cosm::experiments
