// Shared readback gate for the perf_* BENCH_*.json artifacts.
//
// Every perf harness writes a machine-readable JSON file that CI (and the
// docs' field glossaries) key on.  The harnesses used to "verify" the
// write with substring probes, which pass on truncated or mis-quoted
// output and say nothing about fields nobody expected.  This helper
// actually parses the artifact and enforces the schema contract:
//
//  * the file is valid JSON and a top-level object;
//  * "schema_version" is present and equals the version the harness
//    emits — a bumped writer with an un-bumped consumer fails here, not
//    in some downstream tool;
//  * every top-level key is on the harness's whitelist — an unknown
//    field fails LOUDLY, because a stray or renamed field is a consumer
//    break, not noise.
//
// Returns false (with the reason on stderr) on any violation; harnesses
// exit 3, the same status as a failed write.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cosm_bench {

bool verify_bench_json(const std::string& path, int expected_version,
                       const std::vector<std::string_view>& allowed_keys);

}  // namespace cosm_bench
