// Shared experiment harness for the Fig. 6 / Fig. 7 / Table I / Table II
// reproductions.
//
// One "sweep" = the paper's benchmarking phase: a ladder of arrival rates,
// each held for a dwell, with the percentile of requests meeting each SLA
// observed on the simulated cluster and predicted by the three models
// (ours / ODOPR / noWTA) from *calibrated* inputs — the disk and parse
// benchmarks of Sec. IV-A plus the online metrics of Sec. IV-B, never the
// simulator's ground-truth configuration.
//
// Rate points are independent simulations (each with its own warmup at the
// target rate), so the sweep parallelizes across a thread pool.  Scale the
// dwell with --scale=<f> or COSM_BENCH_SCALE for quicker smoke runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "calibration/disk_benchmark.hpp"
#include "calibration/parse_benchmark.hpp"

namespace cosm::experiments {

struct ScenarioConfig {
  std::string name = "S1";
  std::uint32_t processes_per_device = 1;   // N_be
  std::uint32_t device_count = 4;
  std::uint32_t frontend_processes = 3;

  // System arrival-rate ladder (requests/s).
  double rate_start = 20.0;
  double rate_end = 240.0;
  double rate_step = 20.0;

  double warmup_seconds = 40.0;
  double measure_seconds = 300.0;  // the paper's 5 minutes per rate

  std::vector<double> slas = {0.010, 0.050, 0.100};

  // Probabilistic cache configuration (keeps the sweep's miss ratios
  // stationary across rates, as on the paper's warmed-up testbed).
  double index_miss = 0.3;
  double meta_miss = 0.3;
  double data_miss = 0.7;

  // Client timeout, as on the paper's testbed; rate points where ANY
  // request times out are printed but excluded from the error summaries
  // ("we only analyze the prediction results when there is no timeout and
  // retry", Sec. V-B).
  double request_timeout = 0.25;

  std::uint64_t seed = 20170813;  // ICPP'17 week
  double time_scale = 1.0;        // multiplies warmup/measure durations
  // When non-empty, print_sweep also writes one CSV per SLA into this
  // directory (for plotting), named <name>_sla<ms>.csv.
  std::string csv_dir;
};

// One measured+predicted rate point of a sweep.
struct RatePoint {
  double rate = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t timeouts = 0;  // paper: excluded from analysis when > 0
  bool model_ok = true;  // false when the model declares overload
  // One entry per SLA in ScenarioConfig::slas.
  std::vector<double> observed;
  std::vector<double> ours;
  std::vector<double> odopr;
  std::vector<double> nowta;
  // Extension: "ours" with the exact M/G/1/K disk-queue solution instead
  // of the paper's M/M/1/K substitution (identical for N_be = 1).
  std::vector<double> ours_mg1k;
};

struct SweepResult {
  ScenarioConfig config;
  calibration::DiskCalibration disk_calibration;
  calibration::ParseCalibration parse_calibration;
  std::vector<RatePoint> points;
};

// Runs calibration once, then the rate ladder (parallelized).
SweepResult run_sweep(const ScenarioConfig& config);

// The paper's scenario configurations, at a simulation-friendly scale.
ScenarioConfig scenario_s1();
ScenarioConfig scenario_s16();

// Applies --scale=<f> (or env COSM_BENCH_SCALE) to the dwell durations
// and --csv=<dir> to ScenarioConfig::csv_dir.
void apply_scale_from_args(ScenarioConfig& config, int argc, char** argv);

// Prints the per-SLA series as Fig. 6/7-style tables and returns them for
// further aggregation.
void print_sweep(const SweepResult& result);

}  // namespace cosm::experiments
