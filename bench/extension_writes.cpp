// Extension experiment: how far does the paper's "read heavy workloads"
// assumption stretch?
//
// The paper justifies ignoring writes because production read ratios are
// > 95–99%.  This bench injects an increasing write fraction into the S1
// cluster and measures (a) the observed read-latency percentile and (b)
// the error of the (read-only) model fed the measured *read* rates — the
// model never sees the writes, so its error growth quantifies exactly how
// much accuracy the read-heavy assumption is worth at each write ratio.
#include <iostream>
#include <memory>

#include "calibration/online_metrics.hpp"
#include "common/table.hpp"
#include "core/system_model.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

namespace {

constexpr double kSla = 0.050;
constexpr double kRate = 120.0;

struct Outcome {
  double observed = 0.0;
  double predicted = 0.0;
  double write_share = 0.0;
};

Outcome run(double write_fraction) {
  cosm::sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = 4;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.seed = 4242;
  cosm::sim::Cluster cluster(config);

  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement(
      {.partition_count = 1024, .replica_count = 3, .device_count = 4});
  cosm::workload::PhasePlan plan;
  plan.warmup_rate = kRate;
  plan.warmup_duration = 40.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = kRate;
  plan.benchmark_end_rate = kRate;
  plan.benchmark_step_duration = 300.0;
  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(7), write_fraction);
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  Outcome outcome;
  outcome.write_share = source.arrivals() > 0
                            ? static_cast<double>(source.write_arrivals()) /
                                  static_cast<double>(source.arrivals())
                            : 0.0;
  cosm::stats::SampleSet reads;
  for (const auto& sample : cluster.metrics().requests()) {
    if (!sample.is_write) reads.add(sample.response_latency);
  }
  outcome.observed = reads.fraction_below(kSla);

  // Read-only model over the measured *read* traffic.  Miss ratios and
  // rates come from the run (write ops are excluded from the read
  // counters by construction: they are kWrite/kCommit kinds).
  cosm::core::SystemParams params;
  params.frontend.processes = config.frontend_processes;
  params.frontend.frontend_parse = cluster.config().frontend_parse;
  double total = 0.0;
  const double read_share = 1.0 - outcome.write_share;
  for (std::uint32_t d = 0; d < 4; ++d) {
    auto obs =
        cosm::calibration::observe_device(cluster.metrics(), d,
                                          source.horizon());
    // Request counters include writes; scale to the read stream the
    // read-only model describes.
    obs.request_rate *= read_share;
    cosm::core::DeviceParams device;
    device.arrival_rate = obs.request_rate;
    device.data_read_rate = std::max(obs.data_read_rate, obs.request_rate);
    device.index_miss_ratio = obs.index_miss_ratio;
    device.meta_miss_ratio = obs.meta_miss_ratio;
    device.data_miss_ratio = obs.data_miss_ratio;
    device.index_disk = cluster.config().disk.index_service;
    device.meta_disk = cluster.config().disk.meta_service;
    device.data_disk = cluster.config().disk.data_service;
    device.backend_parse = cluster.config().backend_parse;
    device.processes = 1;
    total += device.arrival_rate;
    params.devices.push_back(std::move(device));
  }
  params.frontend.arrival_rate = total;
  const cosm::core::SystemModel model(params);
  outcome.predicted = model.predict_sla_percentile(kSla);
  return outcome;
}

}  // namespace

int main() {
  using cosm::Table;
  Table table({"write_fraction", "observed_reads", "read_only_model",
               "model_error"});
  for (const double f : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    const Outcome outcome = run(f);
    table.add_row({Table::percent(outcome.write_share, 1),
                   Table::percent(outcome.observed),
                   Table::percent(outcome.predicted),
                   Table::percent(outcome.predicted - outcome.observed)});
  }
  table.print(std::cout,
              "Extension — read-heavy assumption: read latency percentile "
              "(SLA 50 ms) vs write fraction, S1 cluster at 120 req/s");
  std::cout << "\nThe paper's >95-99% read ratios keep the assumption "
               "cheap; the error growth above\nshows where it stops "
               "being free.\n";
  return 0;
}
