// Extension experiment: the full Sec. IV pipeline under *emergent* cache
// behaviour.
//
// The figure sweeps use probabilistic caches so the model's miss-ratio
// inputs are exact by construction.  Production systems are not so kind:
// miss ratios emerge from LRU dynamics and Zipf popularity, and the
// operator estimates them with the paper's latency-threshold trick
// ("thanks to the huge speed gap between memory and disk"; threshold
// 0.015 ms).  This bench runs an LRU-cached cluster with a real warmup
// phase, estimates every model input exactly the way the paper says an
// operator would — threshold miss ratios from per-operation latencies,
// iostat-style aggregate disk service split by offline proportions — and
// compares the resulting predictions against both the observed
// percentiles and the true (counter-measured) miss ratios.
#include <iostream>
#include <memory>

#include "calibration/disk_benchmark.hpp"
#include "calibration/online_metrics.hpp"
#include "calibration/parse_benchmark.hpp"
#include "common/table.hpp"
#include "core/system_model.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

int main() {
  using cosm::Table;
  constexpr double kRate = 100.0;

  cosm::sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = 4;
  config.processes_per_device = 1;
  config.cache.mode = cosm::sim::CacheBankConfig::Mode::kLru;
  config.cache.index_entries = 3000;
  config.cache.meta_entries = 3000;
  config.cache.data_chunks = 1500;
  config.seed = 31;
  cosm::sim::Cluster cluster(config);
  cluster.metrics().keep_operation_samples = true;

  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 50000;
  cat_config.zipf_skew = 0.9;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement(
      {.partition_count = 1024, .replica_count = 3, .device_count = 4});

  // Real warmup this time: the caches must fill before measuring.
  cosm::workload::PhasePlan plan;
  plan.warmup_rate = kRate;
  plan.warmup_duration = 400.0;
  plan.transition_rate = 10.0;
  plan.transition_duration = 20.0;
  plan.benchmark_start_rate = kRate;
  plan.benchmark_end_rate = kRate;
  plan.benchmark_step_duration = 300.0;
  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(77));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  // Offline calibration, as in the sweeps.
  const auto disk_cal = cosm::calibration::benchmark_disk(
      cluster.config().disk, {.objects = 8000});
  const auto parse_cal = cosm::calibration::benchmark_parse(config);

  // Per-device inputs via the paper's estimators.
  Table inputs({"device", "est_miss_index", "true_miss_index",
                "est_miss_meta", "true_miss_meta", "est_miss_data",
                "true_miss_data"});
  cosm::core::SystemParams params;
  params.frontend.processes = config.frontend_processes;
  params.frontend.frontend_parse = parse_cal.frontend_fit.best().dist;
  double total_rate = 0.0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    auto obs = cosm::calibration::observe_device(cluster.metrics(), d,
                                                 source.horizon());
    // Operator path: threshold-estimate the miss ratios from the
    // per-operation latency streams (0.015 ms threshold, Sec. IV-B).
    const double est_index = cosm::calibration::estimate_miss_ratio(
        cluster.metrics().operation_samples(d, cosm::sim::AccessKind::kIndex));
    const double est_meta = cosm::calibration::estimate_miss_ratio(
        cluster.metrics().operation_samples(d, cosm::sim::AccessKind::kMeta));
    const double est_data = cosm::calibration::estimate_miss_ratio(
        cluster.metrics().operation_samples(d, cosm::sim::AccessKind::kData));
    inputs.add_row({std::to_string(d), Table::num(est_index, 4),
                    Table::num(obs.index_miss_ratio, 4),
                    Table::num(est_meta, 4),
                    Table::num(obs.meta_miss_ratio, 4),
                    Table::num(est_data, 4),
                    Table::num(obs.data_miss_ratio, 4)});
    obs.index_miss_ratio = est_index;
    obs.meta_miss_ratio = est_meta;
    obs.data_miss_ratio = est_data;
    const auto& counters = cluster.metrics().device(d);
    double busy = 0.0;
    std::uint64_t ops = 0;
    for (const auto kind :
         {cosm::sim::AccessKind::kIndex, cosm::sim::AccessKind::kMeta,
          cosm::sim::AccessKind::kData}) {
      busy += counters.disk_service_sum[static_cast<int>(kind)];
      ops += counters.disk_ops[static_cast<int>(kind)];
    }
    const double aggregate =
        ops > 0 ? busy / static_cast<double>(ops) : disk_cal.data.mean;
    params.devices.push_back(cosm::calibration::build_device_params(
        obs, disk_cal, parse_cal.backend_fit.best().dist, 1, aggregate));
    total_rate += obs.request_rate;
  }
  params.frontend.arrival_rate = total_rate;
  inputs.print(std::cout,
               "Extension — latency-threshold miss-ratio estimation vs "
               "ground truth (LRU caches, Zipf traffic)");
  std::cout << '\n';

  const cosm::core::SystemModel model(params);
  cosm::stats::SampleSet latencies;
  for (const auto& sample : cluster.metrics().requests()) {
    latencies.add(sample.response_latency);
  }
  Table results({"SLA", "observed", "predicted", "error"});
  for (const double sla : {0.010, 0.050, 0.100}) {
    const double observed = latencies.fraction_below(sla);
    const double predicted = model.predict_sla_percentile(sla);
    results.add_row({Table::num(sla * 1e3, 0) + "ms",
                     Table::percent(observed), Table::percent(predicted),
                     Table::percent(predicted - observed)});
  }
  results.print(std::cout,
                "Extension — full operator pipeline prediction "
                "(LRU caches, 100 req/s, S1)");
  return 0;
}
