// Fig. 7 reproduction: scenario S16 (16 processes per storage device).
//
// Same sweep as Fig. 6 with N_be = 16.  Expected shape (paper Sec. V-B):
// larger errors than S1 (M/M/1/K substitution is a systematic error
// source), with our model tending to *over*-predict the percentile
// because the model assumes requests spread uniformly over the 16
// processes while batch accept() concentrates them.
#include "experiment.hpp"

int main(int argc, char** argv) {
  auto config = cosm::experiments::scenario_s16();
  cosm::experiments::apply_scale_from_args(config, argc, argv);
  const auto result = cosm::experiments::run_sweep(config);
  cosm::experiments::print_sweep(result);
  return 0;
}
