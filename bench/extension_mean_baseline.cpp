// Extension experiment: why percentile models at all?
//
// The paper's Sec. I/VI argument — existing multi-tier models predict
// averages, and averages are the wrong tool for SLA questions — made
// quantitative.  A Jackson-style mean-value baseline (M/M/1 stations,
// exponential tail for percentiles) is compared against the full model
// and the simulator: the baseline's *mean* latency tracks reasonably, but
// its percentile answers are wrong in both directions depending on the
// SLA, because the real latency distribution (atoms from cache hits +
// heavy queueing mass) is nothing like exponential.
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/mean_value_baseline.hpp"
#include "core/system_model.hpp"
#include "sim/cluster.hpp"
#include "stats/summary.hpp"

namespace {

cosm::core::SystemParams params_for(double rate) {
  cosm::core::SystemParams params;
  params.frontend.arrival_rate = rate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse =
      std::make_shared<cosm::numerics::Degenerate>(0.8e-3);
  for (int d = 0; d < 4; ++d) {
    cosm::core::DeviceParams device;
    device.arrival_rate = rate / 4.0;
    device.data_read_rate = device.arrival_rate * 1.2;
    device.index_miss_ratio = 0.3;
    device.meta_miss_ratio = 0.3;
    device.data_miss_ratio = 0.7;
    const auto profile = cosm::sim::default_hdd_profile();
    device.index_disk = profile.index_service;
    device.meta_disk = profile.meta_service;
    device.data_disk = profile.data_service;
    device.backend_parse =
        std::make_shared<cosm::numerics::Degenerate>(0.5e-3);
    device.processes = 1;
    params.devices.push_back(std::move(device));
  }
  return params;
}

struct Observed {
  double mean = 0.0;
  double p10ms = 0.0;
  double p50ms = 0.0;
  double p100ms = 0.0;
};

Observed simulate(double rate) {
  cosm::sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = 4;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.seed = 555;
  cosm::sim::Cluster cluster(config);
  cosm::Rng arrivals(3);
  cosm::Rng picker(4);
  double t = 0.0;
  while (t < 300.0) {
    t += arrivals.exponential(rate);
    cluster.engine().schedule_at(t, [&cluster, &picker] {
      const std::uint64_t size = picker.bernoulli(0.2) ? 100000 : 20000;
      cluster.submit_request(picker.next_u64() % 20000, size,
                             static_cast<std::uint32_t>(
                                 picker.next_u64() % 4));
    });
  }
  cluster.engine().run_all();
  cosm::stats::SampleSet latencies;
  for (const auto& sample : cluster.metrics().requests()) {
    if (sample.frontend_arrival < 30.0) continue;
    latencies.add(sample.response_latency);
  }
  return {latencies.mean(), latencies.fraction_below(0.010),
          latencies.fraction_below(0.050), latencies.fraction_below(0.100)};
}

}  // namespace

int main() {
  using cosm::Table;
  Table means({"rate(req/s)", "observed_mean_ms", "baseline_mean_ms",
               "our_model_mean_ms"});
  Table percentiles({"rate(req/s)", "SLA", "observed", "mean_baseline",
                     "our_model"});
  for (const double rate : {60.0, 120.0, 180.0}) {
    const auto params = params_for(rate);
    const cosm::core::MeanValueBaseline baseline(params);
    const cosm::core::SystemModel model(params);
    const Observed obs = simulate(rate);
    means.add_row({Table::num(rate, 0), Table::num(obs.mean * 1e3, 2),
                   Table::num(baseline.mean_response_latency() * 1e3, 2),
                   Table::num(model.mean_response_latency() * 1e3, 2)});
    const double slas[3] = {0.010, 0.050, 0.100};
    const double observed[3] = {obs.p10ms, obs.p50ms, obs.p100ms};
    for (int i = 0; i < 3; ++i) {
      percentiles.add_row(
          {Table::num(rate, 0), Table::num(slas[i] * 1e3, 0) + "ms",
           Table::percent(observed[i]),
           Table::percent(baseline.predict_sla_percentile(slas[i])),
           Table::percent(model.predict_sla_percentile(slas[i]))});
    }
  }
  means.print(std::cout,
              "Extension — mean latency: Jackson-style baseline vs our "
              "model vs simulation");
  std::cout << '\n';
  percentiles.print(
      std::cout,
      "Extension — percentile questions: the exponential-tail baseline "
      "vs our model");
  std::cout << "\nNote: both model means sit above the observed mean (the "
               "full model additionally\ncarries the W_a term), and the "
               "exponential tail misshapes both ends of the\n"
               "distribution — too pessimistic at tight SLAs' "
               "cache-hit atoms, too optimistic in\nthe queueing tail.  "
               "See EXPERIMENTS.md for the discussion.\n";
  return 0;
}
