// Extension experiment: does the model make *correct decisions*, not just
// accurate predictions?
//
// The elastic-storage application (paper Sec. I) powers devices on/off to
// track load.  Here the model picks, for each hour of a diurnal curve,
// the minimum device count it predicts will meet the SLA target — and the
// simulator then replays that hour at the chosen count to check the SLA
// was actually met, plus at one device fewer to check the model is not
// wastefully conservative.  Decision quality is the real currency of a
// capacity-planning model: a biased predictor can still make perfect
// decisions if its bias does not cross the target at the decision
// boundary.
#include <iostream>
#include <memory>
#include <numbers>

#include "common/table.hpp"
#include "core/whatif.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

namespace {

constexpr double kSla = 0.100;
constexpr double kTarget = 0.9;

cosm::core::SystemParams make_params(double rate, unsigned devices) {
  cosm::core::SystemParams params;
  params.frontend.arrival_rate = rate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse =
      std::make_shared<cosm::numerics::Degenerate>(0.8e-3);
  const auto profile = cosm::sim::default_hdd_profile();
  for (unsigned d = 0; d < devices; ++d) {
    cosm::core::DeviceParams device;
    device.arrival_rate = rate / devices;
    device.data_read_rate = device.arrival_rate * 1.2;
    device.index_miss_ratio = 0.3;
    device.meta_miss_ratio = 0.3;
    device.data_miss_ratio = 0.7;
    device.index_disk = profile.index_service;
    device.meta_disk = profile.meta_service;
    device.data_disk = profile.data_service;
    device.backend_parse =
        std::make_shared<cosm::numerics::Degenerate>(0.5e-3);
    device.processes = 1;
    params.devices.push_back(std::move(device));
  }
  return params;
}

// Simulates one hour (scaled to 240 s) at the given device count and
// returns the achieved P[latency <= SLA].
double simulate(double rate, unsigned devices, std::uint64_t seed) {
  cosm::sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = devices;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.seed = seed;
  cosm::sim::Cluster cluster(config);
  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  cat_config.seed = seed + 1;
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement(
      {.partition_count = 1024,
       .replica_count = std::min(3u, devices),
       .device_count = devices,
       .seed = seed + 2});
  cosm::workload::PhasePlan plan;
  plan.warmup_rate = rate;
  plan.warmup_duration = 30.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = rate;
  plan.benchmark_end_rate = rate;
  plan.benchmark_step_duration = 240.0;
  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(seed + 3));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();
  cosm::stats::SampleSet latencies;
  for (const auto& sample : cluster.metrics().requests()) {
    latencies.add(sample.response_latency);
  }
  return latencies.fraction_below(kSla);
}

}  // namespace

int main() {
  using cosm::Table;
  const cosm::core::ClusterFactory factory =
      [](double rate, unsigned devices) {
        return make_params(rate, devices);
      };
  const cosm::core::SlaTarget target{.sla = kSla, .percentile = kTarget};

  Table table({"hour", "req/s", "devices_chosen", "sim_at_chosen",
               "met?", "sim_at_one_fewer", "fewer_would_fail?"});
  int correct = 0;
  int tight = 0;
  int hours = 0;
  for (int hour = 0; hour < 24; hour += 3) {
    const double rate =
        200.0 + 150.0 * std::sin((hour - 8) * std::numbers::pi / 12.0);
    const auto chosen =
        cosm::core::min_devices_for(factory, rate, target, 2, 24);
    if (!chosen) continue;
    ++hours;
    const double achieved = simulate(rate, *chosen, 7000 + hour);
    const bool met = achieved >= kTarget - 0.01;  // 1-pt Monte Carlo slack
    if (met) ++correct;
    double fewer = 1.0;
    bool fewer_fails = true;
    if (*chosen > 2) {
      fewer = simulate(rate, *chosen - 1, 7100 + hour);
      fewer_fails = fewer < kTarget;
      if (fewer_fails) ++tight;
    }
    table.add_row({std::to_string(hour), Table::num(rate, 0),
                   std::to_string(*chosen), Table::percent(achieved),
                   met ? "yes" : "NO",
                   *chosen > 2 ? Table::percent(fewer) : "(min)",
                   *chosen > 2 ? (fewer_fails ? "yes" : "no (1 wasted)")
                               : "--"});
  }
  table.print(std::cout,
              "Extension — model-driven elastic scaling validated in the "
              "simulator (SLA 100 ms, target 90%)");
  std::cout << "\n" << correct << "/" << hours
            << " decisions met the SLA in simulation; " << tight
            << " were provably minimal (one device fewer fails).\n";
  return 0;
}
