// Extension experiment: how Poisson does the workload have to be?
//
// The model's first assumption (Sec. III-A) is Poisson arrivals, citing
// evidence that scale-out workloads are approximately Poisson.  This
// bench drives the S1 cluster with arrival processes of increasing
// burstiness — deterministic (CV 0), Poisson (the assumption), and
// two-state MMPPs of growing amplitude — at the same mean rate, and
// reports observed vs predicted percentiles.  The model's inputs are
// identical in every row (same rates, same miss ratios), so the error
// growth is purely the price of the Poisson assumption.
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/system_model.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

namespace {

constexpr double kRate = 120.0;

double observe(const cosm::workload::ArrivalProcessPtr& arrivals,
               double sla) {
  cosm::sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = 4;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.seed = 808;
  cosm::sim::Cluster cluster(config);
  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement(
      {.partition_count = 1024, .replica_count = 3, .device_count = 4});
  cosm::workload::PhasePlan plan;
  plan.warmup_rate = kRate;
  plan.warmup_duration = 40.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = kRate;
  plan.benchmark_end_rate = kRate;
  plan.benchmark_step_duration = 300.0;
  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(13), 0.0, arrivals);
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();
  cosm::stats::SampleSet latencies;
  for (const auto& sample : cluster.metrics().requests()) {
    latencies.add(sample.response_latency);
  }
  return latencies.fraction_below(sla);
}

}  // namespace

int main() {
  using cosm::Table;
  // The model prediction is the same for every arrival process (it only
  // sees rates and miss ratios).
  cosm::core::SystemParams params;
  params.frontend.arrival_rate = kRate;
  params.frontend.processes = 3;
  params.frontend.frontend_parse =
      std::make_shared<cosm::numerics::Degenerate>(0.8e-3);
  const auto profile = cosm::sim::default_hdd_profile();
  for (int d = 0; d < 4; ++d) {
    cosm::core::DeviceParams device;
    device.arrival_rate = kRate / 4.0;
    device.data_read_rate = device.arrival_rate * 1.2;
    device.index_miss_ratio = 0.3;
    device.meta_miss_ratio = 0.3;
    device.data_miss_ratio = 0.7;
    device.index_disk = profile.index_service;
    device.meta_disk = profile.meta_service;
    device.data_disk = profile.data_service;
    device.backend_parse =
        std::make_shared<cosm::numerics::Degenerate>(0.5e-3);
    device.processes = 1;
    params.devices.push_back(std::move(device));
  }
  const cosm::core::SystemModel model(params);

  struct Row {
    const char* label;
    cosm::workload::ArrivalProcessPtr process;
  };
  const Row rows[] = {
      {"deterministic (CV 0)",
       std::make_shared<cosm::workload::DeterministicArrivals>()},
      {"poisson (assumed)",
       std::make_shared<cosm::workload::PoissonArrivals>()},
      {"MMPP amp 0.5, dwell 2s",
       std::make_shared<cosm::workload::MmppArrivals>(0.5, 2.0)},
      {"MMPP amp 0.8, dwell 2s",
       std::make_shared<cosm::workload::MmppArrivals>(0.8, 2.0)},
      {"MMPP amp 0.8, dwell 10s",
       std::make_shared<cosm::workload::MmppArrivals>(0.8, 10.0)},
  };
  Table table({"arrival_process", "observed_50ms", "model_50ms",
               "error_50ms", "observed_100ms", "error_100ms"});
  for (const Row& row : rows) {
    const double obs50 = observe(row.process, 0.050);
    const double obs100 = observe(row.process, 0.100);
    const double model50 = model.predict_sla_percentile(0.050);
    const double model100 = model.predict_sla_percentile(0.100);
    table.add_row({row.label, Table::percent(obs50),
                   Table::percent(model50),
                   Table::percent(model50 - obs50),
                   Table::percent(obs100),
                   Table::percent(model100 - obs100)});
  }
  table.print(std::cout,
              "Extension — sensitivity to the Poisson-arrival assumption "
              "(S1 at 120 req/s; the model row is constant by design)");
  return 0;
}
