// Extension experiment: how much offline benchmarking does the model
// actually need?
//
// Sec. IV-A's disk benchmark reads N randomly chosen objects; the paper
// never says how large N must be.  This bench sweeps the calibration
// sample count, rebuilds the model from each calibration (keeping the
// online metrics fixed from one reference simulation), and reports the
// prediction error at each SLA — i.e. the marginal value of benchmarking
// longer.  The flat tail tells an operator when to stop.
#include <iostream>
#include <memory>

#include "calibration/disk_benchmark.hpp"
#include "calibration/online_metrics.hpp"
#include "calibration/parse_benchmark.hpp"
#include "common/table.hpp"
#include "core/system_model.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

int main() {
  using cosm::Table;
  constexpr double kRate = 120.0;

  // One reference run provides the observed percentiles and the online
  // metrics; only the offline calibration varies.
  cosm::sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = 4;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.seed = 616;
  cosm::sim::Cluster cluster(config);
  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement(
      {.partition_count = 1024, .replica_count = 3, .device_count = 4});
  cosm::workload::PhasePlan plan;
  plan.warmup_rate = kRate;
  plan.warmup_duration = 40.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = kRate;
  plan.benchmark_end_rate = kRate;
  plan.benchmark_step_duration = 300.0;
  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(9));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  cosm::stats::SampleSet latencies;
  for (const auto& sample : cluster.metrics().requests()) {
    latencies.add(sample.response_latency);
  }
  const double slas[3] = {0.010, 0.050, 0.100};
  double observed[3];
  for (int i = 0; i < 3; ++i) observed[i] = latencies.fraction_below(slas[i]);

  const auto parse_cal = cosm::calibration::benchmark_parse(config);

  Table table({"benchmark_objects", "fitted_index_mean_ms", "err_10ms",
               "err_50ms", "err_100ms"});
  for (const std::uint32_t objects : {50u, 200u, 1000u, 5000u, 20000u}) {
    const auto disk_cal = cosm::calibration::benchmark_disk(
        cluster.config().disk, {.objects = objects, .seed = 1000 + objects});
    cosm::core::SystemParams params;
    params.frontend.processes = config.frontend_processes;
    params.frontend.frontend_parse = parse_cal.frontend_fit.best().dist;
    double total_rate = 0.0;
    for (std::uint32_t d = 0; d < 4; ++d) {
      const auto obs = cosm::calibration::observe_device(
          cluster.metrics(), d, source.horizon());
      const auto& counters = cluster.metrics().device(d);
      double busy = 0.0;
      std::uint64_t ops = 0;
      for (int kind = 0; kind < 3; ++kind) {
        busy += counters.disk_service_sum[kind];
        ops += counters.disk_ops[kind];
      }
      params.devices.push_back(cosm::calibration::build_device_params(
          obs, disk_cal, parse_cal.backend_fit.best().dist, 1,
          busy / static_cast<double>(ops)));
      total_rate += obs.request_rate;
    }
    params.frontend.arrival_rate = total_rate;
    const cosm::core::SystemModel model(params);
    table.add_row(
        {std::to_string(objects),
         Table::num(disk_cal.index.mean * 1e3, 3),
         Table::percent(model.predict_sla_percentile(slas[0]) - observed[0]),
         Table::percent(model.predict_sla_percentile(slas[1]) - observed[1]),
         Table::percent(model.predict_sla_percentile(slas[2]) -
                        observed[2])});
  }
  table.print(std::cout,
              "Extension — prediction error vs offline calibration size "
              "(S1, 120 req/s; Sec. IV-A never sizes its benchmark)");
  std::cout << "\nThe error saturates once the fit is stable — a few "
               "hundred object reads (seconds of\nbenchmarking per disk) "
               "already buy the model's full accuracy.\n";
  return 0;
}
