// Extension experiment: does closing the calibration loop pay?
//
// The paper calibrates once and predicts forever (Sec. IV); the drift
// extension (calibration/drift.hpp, recalibrate.hpp) watches windowed
// online metrics, detects regime change with a two-sided CUSUM, and
// re-fits automatically.  This harness stages the canonical regime
// shift — a stepped arrival ramp, 40 -> 20 req/s on one device (a twin
// calibrated under heavy load whose workload then settles) — and races
// two twins against the simulator's per-window SLA attainment:
//
//  * frozen — the initial calibration, never revisited (the paper's
//    workflow);
//  * closed-loop — a CalibrationLoop consuming the same counter
//    snapshots, re-fitting on confirmed drift.
//
// Gates (exit non-zero on any failure):
//  * no-flap — zero drift-triggered re-fits before the step, and exactly
//    one after it (one regime change = one re-fit);
//  * recalibration pays — over the post-re-fit windows, the closed
//    loop's mean |predicted - observed| attainment error is strictly
//    below the frozen model's;
//  * sanity — the frozen model stays accurate BEFORE the step (the loop
//    must beat a healthy baseline, not a strawman);
//  * determinism — a full same-seed repeat (simulation + loop) is
//    bit-identical: latency sums, re-fit count, and published arrival
//    rates all match exactly.
//
// Emits BENCH_drift.json; --trace-json=<path> additionally enables
// observability and exports the obs trace (the drift-smoke CI job
// validates the calib.* counters in it).
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "calibration/disk_benchmark.hpp"
#include "calibration/recalibrate.hpp"
#include "common/table.hpp"
#include "obs/obs.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"

namespace {

// SLA grid chosen where the analytic model holds the paper's accuracy
// band in BOTH regimes (the model is intentionally conservative in the
// distribution head at high utilisation; scoring there would measure
// model bias, not calibration staleness).
constexpr double kSlas[3] = {0.100, 0.200, 0.300};
constexpr double kWindow = 20.0;  // seconds per calibration window
constexpr double kBaseRate = 40.0;
constexpr double kSteppedRate = 20.0;
constexpr std::uint64_t kSeed = 20260807;

struct Options {
  double scale = 1.0;
  std::string out = "BENCH_drift.json";
  std::string trace_json;  // empty = observability stays disabled
};

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      options.scale = std::atof(arg.c_str() + 8);
    } else if (arg.rfind("--out=", 0) == 0) {
      options.out = arg.substr(6);
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      options.trace_json = arg.substr(13);
    }
  }
  if (const char* env = std::getenv("COSM_BENCH_SCALE")) {
    options.scale = std::atof(env);
  }
  if (!(options.scale > 0.0)) {
    std::cerr << "--scale must be positive\n";
    std::exit(2);
  }
  return options;
}

struct SimRun {
  std::vector<cosm::sim::DeviceCounters> snapshots;  // one per window close
  cosm::sim::DeviceCounters at_benchmark_start;
  // observed[w][i] = fraction of window w's arrivals finishing within
  // kSlas[i] (requests bucketed by frontend arrival time).
  std::vector<std::array<double, 3>> observed;
  cosm::sim::ClusterConfig config;  // finalized
  double latency_sum = 0.0;         // bitwise determinism probe
  std::uint64_t completed = 0;
  int pre_windows = 0;
  int post_windows = 0;
};

SimRun run_sim(int pre_windows, int post_windows) {
  SimRun run;
  run.pre_windows = pre_windows;
  run.post_windows = post_windows;
  cosm::sim::ClusterConfig config;
  config.frontend_processes = 1;
  config.device_count = 1;
  config.processes_per_device = 1;
  config.seed = kSeed;
  cosm::sim::Cluster cluster(config);
  run.config = cluster.config();

  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 3000;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  cat_config.seed = kSeed + 1;
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement({.partition_count = 64,
                                             .replica_count = 1,
                                             .device_count = 1,
                                             .seed = kSeed + 2});

  const double pre = kWindow * pre_windows;
  const double post = kWindow * post_windows;
  cosm::sim::OpenLoopSource source(
      cluster, catalog, placement,
      cosm::workload::stepped_ramp_segments(kBaseRate, 60.0, kBaseRate, pre,
                                            kSteppedRate, post),
      cosm::Rng(kSeed + 3));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  cluster.engine().schedule_at(source.benchmark_start_time(), [&] {
    run.at_benchmark_start = cluster.metrics().device(0);
  });
  const int windows = pre_windows + post_windows;
  run.snapshots.resize(static_cast<std::size_t>(windows));
  for (int w = 0; w < windows; ++w) {
    cluster.engine().schedule_at(
        source.benchmark_start_time() + kWindow * (w + 1),
        [&run, &cluster, w] {
          run.snapshots[static_cast<std::size_t>(w)] =
              cluster.metrics().device(0);
        });
  }
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  // Per-window attainment, requests keyed by their arrival window.
  std::vector<std::array<std::uint64_t, 3>> met(
      static_cast<std::size_t>(windows), {0, 0, 0});
  std::vector<std::uint64_t> total(static_cast<std::size_t>(windows), 0);
  const double start = source.benchmark_start_time();
  for (const auto& sample : cluster.metrics().requests()) {
    run.latency_sum += sample.response_latency;
    const int w = static_cast<int>((sample.frontend_arrival - start) /
                                   kWindow);
    if (w < 0 || w >= windows) continue;
    ++total[static_cast<std::size_t>(w)];
    for (int i = 0; i < 3; ++i) {
      if (sample.response_latency <= kSlas[i]) {
        ++met[static_cast<std::size_t>(w)][static_cast<std::size_t>(i)];
      }
    }
  }
  run.completed = cluster.metrics().completed_requests();
  run.observed.resize(static_cast<std::size_t>(windows));
  for (int w = 0; w < windows; ++w) {
    for (int i = 0; i < 3; ++i) {
      const auto uw = static_cast<std::size_t>(w);
      run.observed[uw][static_cast<std::size_t>(i)] =
          total[uw] == 0 ? 0.0
                         : static_cast<double>(
                               met[uw][static_cast<std::size_t>(i)]) /
                               static_cast<double>(total[uw]);
    }
  }
  return run;
}

struct LoopRun {
  // predictions[w][i] = the published P[latency <= kSlas[i]] as of the
  // end of window w (the prediction an operator would be trusting).
  std::vector<std::array<double, 3>> predictions;
  std::vector<std::string> verdicts;
  int drift_refits = 0;
  int refit_window = -1;  // loop index of the drift-triggered re-fit
  std::size_t cache_evictions = 0;
  double initial_rate = 0.0;    // arrival rate of the initial fit
  double published_rate = 0.0;  // arrival rate published at the end
  std::size_t refits_total = 0;
};

LoopRun run_loop(const SimRun& sim,
                 const cosm::calibration::DiskCalibration& disk_cal,
                 cosm::core::PredictionCache* cache) {
  cosm::calibration::RecalibrateConfig config;
  config.window = kWindow;
  config.min_requests = 20;
  config.slas = {kSlas[0], kSlas[1], kSlas[2]};
  config.cache = cache;
  config.drift.warmup_windows = 2;
  config.drift.confirm_windows = 2;
  config.drift.cooldown_windows = 2;

  cosm::core::FrontendParams frontend;
  frontend.processes = sim.config.frontend_processes;
  frontend.frontend_parse = sim.config.frontend_parse;
  cosm::calibration::CalibrationLoop loop(config, disk_cal, frontend,
                                          sim.config.backend_parse, 1);
  loop.prime(sim.at_benchmark_start);

  LoopRun result;
  for (std::size_t w = 0; w < sim.snapshots.size(); ++w) {
    const auto window_result = loop.offer(sim.snapshots[w]);
    result.verdicts.emplace_back(
        cosm::calibration::to_string(window_result.verdict));
    if (window_result.refit && window_result.alarm_mask != 0) {
      ++result.drift_refits;
      if (result.refit_window < 0) result.refit_window = static_cast<int>(w);
    }
    std::array<double, 3> current = {0.0, 0.0, 0.0};
    if (loop.calibrated()) {
      for (int i = 0; i < 3; ++i) {
        current[static_cast<std::size_t>(i)] =
            loop.predictions()[static_cast<std::size_t>(i)];
      }
    }
    result.predictions.push_back(current);
  }
  if (!loop.refits().empty()) {
    result.initial_rate = loop.refits().front().params.arrival_rate;
    result.published_rate = loop.params().arrival_rate;
    for (const auto& refit : loop.refits()) {
      result.cache_evictions += refit.cache_evictions;
    }
  }
  result.refits_total = loop.refits().size();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  if (!options.trace_json.empty()) cosm::obs::set_enabled(true);

  const int pre_windows =
      std::max(4, static_cast<int>(std::lround(10 * options.scale)));
  const int post_windows =
      std::max(5, static_cast<int>(std::lround(10 * options.scale)));

  const SimRun sim = run_sim(pre_windows, post_windows);
  const cosm::calibration::DiskCalibration disk_cal =
      cosm::calibration::benchmark_disk(sim.config.disk,
                                        {.objects = 8000, .seed = kSeed + 4});
  cosm::core::PredictionCache cache;
  const LoopRun loop = run_loop(sim, disk_cal, &cache);

  bool ok = true;
  const int windows = pre_windows + post_windows;

  // Frozen twin: the initial fit's predictions, held for the whole run.
  std::array<double, 3> frozen = {0.0, 0.0, 0.0};
  for (int w = 0; w < windows; ++w) {
    // First window with a published calibration = the initial fit.
    if (loop.predictions[static_cast<std::size_t>(w)][0] > 0.0) {
      frozen = loop.predictions[static_cast<std::size_t>(w)];
      break;
    }
  }

  cosm::Table table({"window", "regime", "verdict", "sim 100ms",
                     "frozen model", "closed loop"});
  double frozen_pre_err = 0.0, frozen_post_err = 0.0, closed_post_err = 0.0;
  int pre_scored = 0, post_scored = 0;
  for (int w = 0; w < windows; ++w) {
    const auto uw = static_cast<std::size_t>(w);
    const bool scored_pre =
        loop.predictions[uw][0] > 0.0 && w < pre_windows;
    const bool scored_post =
        loop.refit_window >= 0 && w > loop.refit_window;
    double frozen_err = 0.0, closed_err = 0.0;
    for (int i = 0; i < 3; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      frozen_err += std::abs(frozen[ui] - sim.observed[uw][ui]) / 3.0;
      closed_err +=
          std::abs(loop.predictions[uw][ui] - sim.observed[uw][ui]) / 3.0;
    }
    if (scored_pre) {
      frozen_pre_err += frozen_err;
      ++pre_scored;
    }
    if (scored_post) {
      frozen_post_err += frozen_err;
      closed_post_err += closed_err;
      ++post_scored;
    }
    table.add_row({std::to_string(w),
                   w < pre_windows ? cosm::Table::num(kBaseRate, 0)
                                   : cosm::Table::num(kSteppedRate, 0),
                   loop.verdicts[uw],
                   cosm::Table::percent(sim.observed[uw][0]),
                   cosm::Table::percent(frozen[0]),
                   cosm::Table::percent(loop.predictions[uw][0])});
  }
  table.print(std::cout,
              "Extension — drift loop vs frozen calibration (stepped ramp " +
                  cosm::Table::num(kBaseRate, 0) + " -> " +
                  cosm::Table::num(kSteppedRate, 0) + " req/s, window " +
                  cosm::Table::num(kWindow, 0) + " s)");

  frozen_pre_err = pre_scored > 0 ? frozen_pre_err / pre_scored : 0.0;
  frozen_post_err = post_scored > 0 ? frozen_post_err / post_scored : 0.0;
  closed_post_err = post_scored > 0 ? closed_post_err / post_scored : 0.0;

  // Gate 1: no-flap — exactly one drift re-fit, strictly after the step.
  std::cout << "drift re-fits: " << loop.drift_refits << " (window "
            << loop.refit_window << "; step at window " << pre_windows
            << ")\n";
  if (loop.drift_refits != 1 || loop.refit_window < pre_windows) {
    std::cout << "FAIL: expected exactly one drift re-fit after the step\n";
    ok = false;
  }

  // Gate 2: recalibration pays — the closed loop beats the frozen model
  // on the windows where both have settled post-shift calibrations.
  std::cout << "post-shift attainment error: frozen "
            << cosm::Table::percent(frozen_post_err) << ", closed loop "
            << cosm::Table::percent(closed_post_err) << " over "
            << post_scored << " windows\n";
  if (post_scored == 0 || !(closed_post_err < frozen_post_err)) {
    std::cout << "FAIL: closed loop did not beat the frozen model "
                 "post-shift\n";
    ok = false;
  }

  // Gate 3: the frozen model was healthy pre-shift (the comparison is
  // against a working baseline, not a broken one).
  std::cout << "pre-shift frozen error: "
            << cosm::Table::percent(frozen_pre_err) << " over " << pre_scored
            << " windows\n";
  if (pre_scored == 0 || frozen_pre_err > 0.17) {
    std::cout << "FAIL: frozen model unhealthy before the step\n";
    ok = false;
  }

  // Gate 4: determinism — full same-seed repeat, compared bitwise.
  const SimRun sim2 = run_sim(pre_windows, post_windows);
  cosm::core::PredictionCache cache2;
  const LoopRun loop2 = run_loop(sim2, disk_cal, &cache2);
  const bool deterministic =
      sim2.latency_sum == sim.latency_sum && sim2.completed == sim.completed &&
      loop2.refits_total == loop.refits_total &&
      loop2.published_rate == loop.published_rate &&
      loop2.cache_evictions == loop.cache_evictions;
  if (!deterministic) {
    std::cout << "FAIL: same-seed repeat not bit-identical (latency sum "
              << sim.latency_sum << " vs " << sim2.latency_sum
              << ", published rate " << loop.published_rate << " vs "
              << loop2.published_rate << ")\n";
    ok = false;
  } else {
    std::cout << "determinism: repeat run bit-identical (" << sim.completed
              << " requests, latency sum " << sim.latency_sum
              << " s, published rate " << loop.published_rate << " req/s)\n";
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"extension_drift\",\n  \"scale\": "
       << options.scale << ",\n  \"window_s\": " << kWindow
       << ",\n  \"base_rate\": " << kBaseRate << ",\n  \"stepped_rate\": "
       << kSteppedRate << ",\n  \"pre_windows\": " << pre_windows
       << ",\n  \"post_windows\": " << post_windows << ",\n  \"slas\": ["
       << kSlas[0] << ", " << kSlas[1] << ", " << kSlas[2]
       << "],\n  \"windows\": [\n";
  for (int w = 0; w < windows; ++w) {
    const auto uw = static_cast<std::size_t>(w);
    json << (w ? ",\n" : "") << "    {\"window\": " << w << ", \"rate\": "
         << (w < pre_windows ? kBaseRate : kSteppedRate) << ", \"verdict\": \""
         << loop.verdicts[uw] << "\", \"sim\": [" << sim.observed[uw][0]
         << ", " << sim.observed[uw][1] << ", " << sim.observed[uw][2]
         << "], \"closed\": [" << loop.predictions[uw][0] << ", "
         << loop.predictions[uw][1] << ", " << loop.predictions[uw][2]
         << "]}";
  }
  json << "\n  ],\n  \"frozen\": [" << frozen[0] << ", " << frozen[1] << ", "
       << frozen[2] << "],\n  \"drift_refits\": " << loop.drift_refits
       << ",\n  \"refit_window\": " << loop.refit_window
       << ",\n  \"refits_total\": " << loop.refits_total
       << ",\n  \"cache_evictions\": " << loop.cache_evictions
       << ",\n  \"initial_rate\": " << loop.initial_rate
       << ",\n  \"published_rate\": " << loop.published_rate
       << ",\n  \"frozen_pre_err\": " << frozen_pre_err
       << ",\n  \"frozen_post_err\": " << frozen_post_err
       << ",\n  \"closed_post_err\": " << closed_post_err
       << ",\n  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
  std::ofstream out(options.out);
  out << json.str();
  if (!out) {
    std::cerr << "FAIL: cannot write " << options.out << "\n";
    ok = false;
  }
  std::cout << "wrote " << options.out << "\n";

  if (!options.trace_json.empty()) {
    std::ofstream trace(options.trace_json);
    cosm::obs::export_json(trace);
    if (!trace) {
      std::cerr << "FAIL: cannot write " << options.trace_json << "\n";
      ok = false;
    }
    std::cout << "wrote " << options.trace_json << "\n";
  }
  return ok ? 0 : 1;
}
