// Perf-regression harness for the what-if prediction service.
//
// Drives an in-process service::WhatIfService the way a deployment
// would: T named tenant clusters (distinct parameter sets) registered up
// front, then a mixed query stream — SLA percentiles, percentile
// ladders, quantiles — issued round-robin across tenants for `repeat`
// full passes over one hardware thread.  All tenants share the service's
// one lock-striped PredictionCache, so later passes measure the
// cache-resident steady state the service is designed around.
//
// Modes:
//   cold    pass 1, empty cache (models built, caches populated)
//   warm    best of the remaining passes (cache-resident steady state)
//
// Gates (exit 1 on violation):
//   * determinism — every pass must produce a byte-identical response
//     transcript (cached or not, warm or cold);
//   * exactness — the whole transcript under the service's default kSimd
//     mode must equal the kExact transcript byte-for-byte (the
//     bit-identity contract of numerics/tape_mode.hpp, end to end);
//   * every response has "ok": true.
//
// Emits BENCH_service.json with predictions/sec for both modes.  Exit
// status: 0 ok, 1 gate violation, 2 --min-predictions-per-sec unmet,
// 3 JSON write/readback failure.
//
// Flags: --tenants=T   (named clusters; default 6)
//        --repeat=R    (full passes; default 4; first is "cold")
//        --min-predictions-per-sec=X  (warm-mode gate; 0 = off)
//        --out=PATH    (default BENCH_service.json)
//        --trace-json=FILE  (enable observability; export at exit)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "obs/obs.hpp"
#include "service/service.hpp"

namespace {

struct Config {
  int tenants = 6;
  int repeat = 4;
  double min_predictions_per_sec = 0.0;
  std::string out = "BENCH_service.json";
  std::string trace_json;
};

Config parse_args(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--tenants=", 0) == 0) {
      config.tenants = std::stoi(value_of("--tenants="));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      config.repeat = std::stoi(value_of("--repeat="));
    } else if (arg.rfind("--min-predictions-per-sec=", 0) == 0) {
      config.min_predictions_per_sec =
          std::stod(value_of("--min-predictions-per-sec="));
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out = value_of("--out=");
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      config.trace_json = value_of("--trace-json=");
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(3);
    }
  }
  config.tenants = std::max(config.tenants, 1);
  config.repeat = std::max(config.repeat, 2);  // need a cold AND a warm pass
  return config;
}

std::string tenant_name(int t) { return "tenant-" + std::to_string(t); }

// Distinct per-tenant parameters, so the cache genuinely multiplexes
// different models rather than one model under several names.
std::string register_line(int t) {
  std::ostringstream line;
  line << "{\"op\":\"register\",\"cluster\":\"" << tenant_name(t)
       << "\",\"rate\":" << 320.0 + 40.0 * t
       << ",\"devices\":" << 6 + (t % 4)
       << ",\"data_miss\":" << 0.6 + 0.05 * (t % 3) << "}";
  return line.str();
}

// The per-tenant query mix: one percentile ladder, one single-SLA probe,
// one quantile — 6 predictions per tenant per pass.
std::vector<std::string> query_lines(int t) {
  const std::string name = tenant_name(t);
  return {
      "{\"op\":\"sla\",\"cluster\":\"" + name +
          "\",\"slas\":[0.05,0.1,0.15,0.25]}",
      "{\"op\":\"sla\",\"cluster\":\"" + name + "\",\"sla\":0.1}",
      "{\"op\":\"quantile\",\"cluster\":\"" + name + "\",\"p\":0.95}",
  };
}

struct PassResult {
  double wall_ms = 0.0;
  std::string transcript;
};

PassResult run_pass(cosm::service::WhatIfService& service,
                    const std::vector<std::string>& queries) {
  PassResult result;
  std::string transcript;
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& query : queries) {
    transcript += service.handle_line(query);
    transcript += '\n';
  }
  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  result.transcript = std::move(transcript);
  return result;
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

// Runs register + `repeat` query passes against a fresh service in
// `mode`; returns one PassResult per pass.
std::vector<PassResult> run_service(cosm::numerics::TapeEvalMode mode,
                                    const Config& config,
                                    const std::vector<std::string>& queries) {
  cosm::service::ServiceConfig service_config;
  service_config.tape_mode = mode;
  cosm::service::WhatIfService service(service_config);
  for (int t = 0; t < config.tenants; ++t) {
    const std::string response = service.handle_line(register_line(t));
    if (response.find("\"ok\":true") == std::string::npos) {
      std::cerr << "FAIL: tenant registration rejected: " << response << "\n";
      std::exit(1);
    }
  }
  std::vector<PassResult> passes;
  passes.reserve(static_cast<std::size_t>(config.repeat));
  for (int rep = 0; rep < config.repeat; ++rep) {
    passes.push_back(run_pass(service, queries));
  }
  return passes;
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = parse_args(argc, argv);
  if (!config.trace_json.empty()) cosm::obs::set_enabled(true);

  std::vector<std::string> queries;
  for (int t = 0; t < config.tenants; ++t) {
    for (std::string& line : query_lines(t)) queries.push_back(std::move(line));
  }
  // 4 ladder points + 1 SLA + 1 quantile per tenant per pass.
  const double predictions_per_pass = 6.0 * config.tenants;

  const std::vector<PassResult> simd_passes =
      run_service(cosm::numerics::TapeEvalMode::kSimd, config, queries);
  const std::vector<PassResult> exact_passes =
      run_service(cosm::numerics::TapeEvalMode::kExact, config, queries);

  // Gate 1: determinism — identical queries, identical bytes, every pass.
  bool deterministic = true;
  for (const auto* passes : {&simd_passes, &exact_passes}) {
    for (const PassResult& pass : *passes) {
      deterministic =
          deterministic && pass.transcript == passes->front().transcript;
    }
  }
  // Gate 2: the kSimd service is byte-identical to the kExact service.
  const bool simd_exact_identical =
      simd_passes.front().transcript == exact_passes.front().transcript;
  // Gate 3: nothing errored.
  const bool all_ok =
      simd_passes.front().transcript.find("\"ok\":false") == std::string::npos;

  const double cold_ms = simd_passes.front().wall_ms;
  double warm_ms = simd_passes[1].wall_ms;
  for (std::size_t i = 2; i < simd_passes.size(); ++i) {
    warm_ms = std::min(warm_ms, simd_passes[i].wall_ms);
  }
  const double cold_pps = predictions_per_pass / (cold_ms * 1e-3);
  const double warm_pps = predictions_per_pass / (warm_ms * 1e-3);
  const double exact_warm_ms =
      std::min_element(exact_passes.begin() + 1, exact_passes.end(),
                       [](const PassResult& a, const PassResult& b) {
                         return a.wall_ms < b.wall_ms;
                       })
          ->wall_ms;

  std::cout << "perf_service: " << config.tenants << " tenants, "
            << queries.size() << " queries/pass ("
            << predictions_per_pass << " predictions), repeat="
            << config.repeat << "\n"
            << "  cold  " << fmt(cold_ms, 3) << " ms   "
            << fmt(cold_pps, 1) << " predictions/s\n"
            << "  warm  " << fmt(warm_ms, 3) << " ms   "
            << fmt(warm_pps, 1) << " predictions/s\n"
            << "  exact-mode warm " << fmt(exact_warm_ms, 3) << " ms\n"
            << "  deterministic: " << (deterministic ? "yes" : "NO")
            << ", simd == exact: " << (simd_exact_identical ? "yes" : "NO")
            << ", all ok: " << (all_ok ? "yes" : "NO") << "\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"perf_service\",\n"
       << "  \"schema_version\": 1,\n"
       << "  \"config\": {\n"
       << "    \"tenants\": " << config.tenants << ",\n"
       << "    \"repeat\": " << config.repeat << ",\n"
       << "    \"queries_per_pass\": " << queries.size() << ",\n"
       << "    \"predictions_per_pass\": " << predictions_per_pass << ",\n"
       << "    \"min_predictions_per_sec\": "
       << fmt(config.min_predictions_per_sec, 1) << "\n"
       << "  },\n"
       << "  \"modes\": [\n"
       << "    {\n"
       << "      \"name\": \"cold\",\n"
       << "      \"wall_ms\": " << fmt(cold_ms, 3) << ",\n"
       << "      \"predictions_per_sec\": " << fmt(cold_pps, 1) << "\n"
       << "    },\n"
       << "    {\n"
       << "      \"name\": \"warm\",\n"
       << "      \"wall_ms\": " << fmt(warm_ms, 3) << ",\n"
       << "      \"predictions_per_sec\": " << fmt(warm_pps, 1) << "\n"
       << "    }\n"
       << "  ],\n"
       << "  \"exact_mode_warm_ms\": " << fmt(exact_warm_ms, 3) << ",\n"
       << "  \"checks\": {\n"
       << "    \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n"
       << "    \"simd_identical_to_exact\": "
       << (simd_exact_identical ? "true" : "false") << ",\n"
       << "    \"all_responses_ok\": " << (all_ok ? "true" : "false") << "\n"
       << "  }\n"
       << "}\n";

  {
    std::ofstream out(config.out);
    if (!out) {
      std::cerr << "cannot open " << config.out << " for writing\n";
      return 3;
    }
    out << json.str();
  }
  // Readback gate: parse the artifact and enforce its schema contract.
  if (!cosm_bench::verify_bench_json(config.out, 1,
                                     {"benchmark", "schema_version", "config",
                                      "modes", "exact_mode_warm_ms",
                                      "checks"})) {
    return 3;
  }
  std::cout << "  wrote " << config.out << "\n";

  if (!config.trace_json.empty()) {
    std::ofstream trace(config.trace_json);
    if (!trace) {
      std::cerr << "cannot open " << config.trace_json << " for writing\n";
      return 3;
    }
    cosm::obs::export_json(trace);
    std::cout << "  wrote " << config.trace_json << "\n";
  }

  if (!deterministic || !simd_exact_identical || !all_ok) {
    std::cerr << "FAIL: service determinism/exactness gate violated\n";
    return 1;
  }
  if (config.min_predictions_per_sec > 0.0 &&
      warm_pps < config.min_predictions_per_sec) {
    std::cerr << "FAIL: warm predictions/sec " << fmt(warm_pps, 1)
              << " below gate " << fmt(config.min_predictions_per_sec, 1)
              << "\n";
    return 2;
  }
  return 0;
}
