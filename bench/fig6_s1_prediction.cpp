// Fig. 6 reproduction: scenario S1 (one process per storage device).
//
// For each arrival rate of the benchmarking ladder and each SLA
// (10/50/100 ms), prints the observed percentile of requests meeting the
// SLA on the simulated cluster and the predictions of the full model, the
// ODOPR baseline, and the noWTA baseline — the four curves of each Fig. 6
// panel — plus our model's signed error (the bottom strip of each panel).
//
// Expected shape (paper Sec. V-B/V-C): our model tracks the observed
// curve, ODOPR over-predicts the percentile badly, noWTA sits between,
// and our model's accuracy degrades toward high load (WTA and queue-
// length overestimation).
#include "experiment.hpp"

int main(int argc, char** argv) {
  auto config = cosm::experiments::scenario_s1();
  cosm::experiments::apply_scale_from_args(config, argc, argv);
  const auto result = cosm::experiments::run_sweep(config);
  cosm::experiments::print_sweep(result);
  return 0;
}
