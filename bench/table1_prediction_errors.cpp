// Table I reproduction: "The summary of prediction errors for our model".
//
// Runs both scenario sweeps and reports, per scenario x SLA, the best,
// worst, and mean absolute prediction error of the full model across the
// modellable rate points, plus the overall mean (the paper's 4.44%).
#include <iostream>

#include "common/table.hpp"
#include "experiment.hpp"
#include "stats/sla.hpp"

int main(int argc, char** argv) {
  using cosm::Table;
  auto s1 = cosm::experiments::scenario_s1();
  auto s16 = cosm::experiments::scenario_s16();
  cosm::experiments::apply_scale_from_args(s1, argc, argv);
  cosm::experiments::apply_scale_from_args(s16, argc, argv);

  Table table({"scenario", "SLA", "best_case", "worst_case", "mean"});
  cosm::stats::PredictionErrorSummary overall;
  for (const auto* scenario : {&s1, &s16}) {
    const auto result = cosm::experiments::run_sweep(*scenario);
    for (std::size_t s = 0; s < scenario->slas.size(); ++s) {
      cosm::stats::PredictionErrorSummary summary;
      for (const auto& point : result.points) {
        // The paper's analysis rule: skip overloaded and timeout points.
        if (!point.model_ok || point.timeouts > 0) continue;
        summary.add(point.ours[s], point.observed[s]);
        overall.add(point.ours[s], point.observed[s]);
      }
      table.add_row({scenario->name,
                     Table::num(scenario->slas[s] * 1e3, 0) + "ms",
                     Table::percent(summary.best_case()),
                     Table::percent(summary.worst_case()),
                     Table::percent(summary.mean_abs_error())});
    }
  }
  table.print(std::cout,
              "Table I — summary of prediction errors for our model");
  std::cout << "\noverall mean absolute error: "
            << Table::percent(overall.mean_abs_error())
            << "  (paper: 4.44%)\n";
  std::cout << "overall worst case: " << Table::percent(overall.worst_case())
            << "  (paper: 16.61%)\n";
  return 0;
}
