// Table II reproduction: "The mean prediction errors of different models".
//
// Same sweeps as Table I, but comparing the mean absolute error of the
// full model against the ODOPR and noWTA baselines per scenario x SLA.
// Expected shape (paper Sec. V-C): ours <= noWTA <= ODOPR almost
// everywhere; the paper itself reports one exception (S1/10ms, where
// noWTA edges out the full model because the WTA overestimation hurts
// more than ignoring WTA helps).
#include <iostream>

#include "common/table.hpp"
#include "experiment.hpp"
#include "stats/sla.hpp"

int main(int argc, char** argv) {
  using cosm::Table;
  auto s1 = cosm::experiments::scenario_s1();
  auto s16 = cosm::experiments::scenario_s16();
  cosm::experiments::apply_scale_from_args(s1, argc, argv);
  cosm::experiments::apply_scale_from_args(s16, argc, argv);

  Table table({"scenario", "SLA", "our_model", "ODOPR_model", "noWTA_model",
               "reduction_vs_ODOPR"});
  for (const auto* scenario : {&s1, &s16}) {
    const auto result = cosm::experiments::run_sweep(*scenario);
    for (std::size_t s = 0; s < scenario->slas.size(); ++s) {
      cosm::stats::PredictionErrorSummary ours;
      cosm::stats::PredictionErrorSummary odopr;
      cosm::stats::PredictionErrorSummary nowta;
      for (const auto& point : result.points) {
        // The paper's analysis rule: skip overloaded and timeout points.
        if (!point.model_ok || point.timeouts > 0) continue;
        ours.add(point.ours[s], point.observed[s]);
        odopr.add(point.odopr[s], point.observed[s]);
        nowta.add(point.nowta[s], point.observed[s]);
      }
      const double reduction =
          1.0 - ours.mean_abs_error() / odopr.mean_abs_error();
      table.add_row({scenario->name,
                     Table::num(scenario->slas[s] * 1e3, 0) + "ms",
                     Table::percent(ours.mean_abs_error()),
                     Table::percent(odopr.mean_abs_error()),
                     Table::percent(nowta.mean_abs_error()),
                     Table::percent(reduction)});
    }
  }
  table.print(std::cout,
              "Table II — mean prediction errors of different models "
              "(paper: ours reduces ODOPR error by 36–73%)");
  return 0;
}
