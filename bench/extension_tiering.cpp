// Extension experiment: how much SSD buys p99 <= d?
//
// The tiering extension adds an SSD cache tier between the page cache
// and the capacity disk (sim/tier.hpp) and mirrors it in the model as a
// TieredService mixture whose hit ratio is PREDICTED from the Zipf
// catalog with Che's approximation (calibration/lru_prediction.hpp) —
// the whole point is sizing a tier that does not exist yet, so no knob
// of the tiered runs feeds the model.
//
// The harness sweeps SSD tier size x offered load with an LRU page
// cache in front, then gates:
//  * agreement — the model's SLA attainment (Che-predicted hit ratio,
//    TieredService composition) tracks the tiered simulation within the
//    paper's Table I band on every cell;
//  * hit-ratio prediction — Che's two-level prediction lands within a
//    coarse band of the simulator's measured tier hit ratio;
//  * monotonicity — the model's attainment never degrades as the tier
//    grows (the capacity-planning curve is well-ordered);
//  * usefulness — at the highest load the largest tier improves the
//    simulated p99 over the untiered baseline;
//  * determinism — a repeated same-seed tiered run is bit-identical.
//
// Emits BENCH_tiering.json (including the min-SSD-for-SLA planning
// answer per load) and exits non-zero on any gate failure.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "calibration/lru_prediction.hpp"
#include "common/table.hpp"
#include "core/whatif.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/summary.hpp"

namespace {

constexpr double kSlas[3] = {0.050, 0.150, 0.300};
// One device, one backend process: Che's approximation applies to the
// device's stream directly (no placement thinning to fold in).
constexpr double kLoads[3] = {15.0, 30.0, 40.0};
// Tier residency must CONVERGE inside the warmup (several full churn
// cycles at ~50 installs/s), which bounds the largest tier worth
// sweeping against the 10000-chunk catalog below.
constexpr std::size_t kTierSizes[4] = {0, 500, 1500, 4000};
constexpr std::size_t kMemChunks = 400;
constexpr std::uint64_t kChunkBytes = 65536;
constexpr double kPaperBand = 0.17;     // Table I worst case, rounded up
constexpr double kHitRatioBand = 0.15;  // Che vs measured tier hit ratio
constexpr std::uint64_t kSeed = 20260811;

// Planning target for the min-SSD question.
constexpr double kTargetSla = 0.150;
constexpr double kTargetPercentile = 0.95;

cosm::workload::CatalogConfig catalog_config() {
  cosm::workload::CatalogConfig config;
  config.object_count = 5000;
  config.zipf_skew = 0.9;
  // Fixed 128 KB objects: 2 chunks each, 10000-chunk footprint, so the
  // page cache covers 4% and the tier sweep spans 5%-40%.
  config.size_distribution =
      std::make_shared<cosm::numerics::Degenerate>(131072.0);
  config.seed = kSeed + 1;
  return config;
}

struct RunResult {
  double observed[3] = {0.0, 0.0, 0.0};  // fraction meeting each SLA
  double p99 = 0.0;
  double measured_tier_hit = 0.0;  // sim.tier counters (0 when untiered)
  double latency_sum = 0.0;        // bitwise determinism probe
  std::uint64_t completed = 0;
  cosm::core::SystemParams params;  // online-observed (untiered runs only)
};

RunResult run(double rate, std::size_t tier_chunks, double measure_seconds) {
  cosm::sim::ClusterConfig config;
  config.frontend_processes = 2;
  config.device_count = 1;
  config.processes_per_device = 1;
  config.chunk_bytes = kChunkBytes;
  config.cache.mode = cosm::sim::CacheBankConfig::Mode::kLru;
  // Index/meta caches big enough to converge to ~0 misses: the bench
  // isolates the data path, where the tier lives.
  config.cache.index_entries = 20000;
  config.cache.meta_entries = 20000;
  config.cache.data_chunks = kMemChunks;
  config.tier.enabled = tier_chunks > 0;
  config.tier.capacity_chunks = std::max<std::size_t>(tier_chunks, 1);
  config.tier.read_service = cosm::sim::default_ssd_profile().data_service;
  config.tier.write_service = cosm::sim::default_ssd_profile().write_service;
  config.seed = kSeed;
  cosm::sim::Cluster cluster(config);

  const cosm::workload::ObjectCatalog catalog(catalog_config());
  const cosm::workload::Placement placement({.partition_count = 256,
                                             .replica_count = 1,
                                             .device_count = 1,
                                             .seed = kSeed + 2});
  cosm::workload::PhasePlan plan;
  // Long warmup at the offered rate (NOT scaled down for smoke runs):
  // the LRU page cache and the tier residency — up to 4000 chunks at
  // ~30 installs/s, several churn cycles — must reach steady state
  // before sampling.
  plan.warmup_rate = rate;
  plan.warmup_duration = 400.0;
  plan.transition_duration = 0.0;
  plan.benchmark_start_rate = rate;
  plan.benchmark_end_rate = rate;
  plan.benchmark_step_duration = measure_seconds;

  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(kSeed + 3));
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  // Counter snapshot at the start of the measurement window: every rate,
  // miss ratio, and tier hit ratio below is computed over the benchmark
  // phase only, not polluted by the cold LRU fill during warmup.
  cosm::sim::DeviceCounters warm;
  cluster.engine().schedule_at(source.benchmark_start_time(),
                               [&] { warm = cluster.metrics().device(0); });
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();

  RunResult result;
  cosm::stats::SampleSet latencies;
  for (const auto& sample : cluster.metrics().requests()) {
    latencies.add(sample.response_latency);
    result.latency_sum += sample.response_latency;
  }
  result.completed = cluster.metrics().completed_requests();
  for (int i = 0; i < 3; ++i) {
    result.observed[i] = latencies.fraction_below(kSlas[i]);
  }
  result.p99 = latencies.quantile(0.99);

  const cosm::sim::DeviceCounters& end = cluster.metrics().device(0);
  const double window = source.horizon() - source.benchmark_start_time();
  const auto ratio = [](std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  result.measured_tier_hit =
      ratio(end.tier_hits - warm.tier_hits, end.tier_reads - warm.tier_reads);

  // Online-observed model inputs over the measurement window, as an
  // operator would assemble them.  Only the untiered baseline feeds the
  // model: tier hit ratios come from Che's approximation, not from
  // measurement.
  const auto miss = [&](cosm::sim::AccessKind kind) {
    const int k = static_cast<int>(kind);
    return ratio(end.misses[k] - warm.misses[k],
                 end.accesses[k] - warm.accesses[k]);
  };
  result.params.frontend.processes = config.frontend_processes;
  result.params.frontend.frontend_parse = cluster.config().frontend_parse;
  cosm::core::DeviceParams device;
  device.arrival_rate =
      static_cast<double>(end.requests - warm.requests) / window;
  device.data_read_rate =
      static_cast<double>(end.data_reads - warm.data_reads) / window;
  device.index_miss_ratio = miss(cosm::sim::AccessKind::kIndex);
  device.meta_miss_ratio = miss(cosm::sim::AccessKind::kMeta);
  device.data_miss_ratio = miss(cosm::sim::AccessKind::kData);
  device.index_disk = cluster.config().disk.index_service;
  device.meta_disk = cluster.config().disk.meta_service;
  device.data_disk = cluster.config().disk.data_service;
  device.backend_parse = cluster.config().backend_parse;
  device.processes = 1;
  result.params.frontend.arrival_rate = device.arrival_rate;
  result.params.devices.push_back(std::move(device));
  return result;
}

// The model's parameter set for a tier size: the untiered observation
// plus TierOptions carrying the Che-predicted hit ratio.
cosm::core::SystemParams tiered_params(const cosm::core::SystemParams& base,
                                       double hit_ratio) {
  cosm::core::SystemParams params = base;
  if (hit_ratio > 0.0) {
    cosm::core::TierOptions& tier = params.devices[0].tier;
    tier.enabled = true;
    tier.hit_ratio = hit_ratio;
    tier.read_service = cosm::sim::default_ssd_profile().data_service;
    tier.write_service = cosm::sim::default_ssd_profile().write_service;
  }
  return params;
}

double parse_scale(int argc, char** argv) {
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = std::atof(arg.c_str() + 8);
    }
  }
  if (const char* env = std::getenv("COSM_BENCH_SCALE")) {
    scale = std::atof(env);
  }
  if (!(scale > 0.0)) {
    std::cerr << "--scale must be positive\n";
    std::exit(2);
  }
  return scale;
}

std::string parse_out(int argc, char** argv) {
  std::string out = "BENCH_tiering.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out = arg.substr(6);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  const std::string out_path = parse_out(argc, argv);
  const double measure = 240.0 * scale;

  // Che-predicted hit ratio per tier size (load-independent: the
  // prediction depends only on the catalog and the two capacities).
  const cosm::workload::ObjectCatalog catalog(catalog_config());
  const cosm::calibration::ChunkPopulation pop =
      cosm::calibration::chunk_population(catalog, kChunkBytes);
  double predicted_hit[4] = {0.0, 0.0, 0.0, 0.0};
  for (int t = 1; t < 4; ++t) {
    predicted_hit[t] = cosm::calibration::predict_tier_hit_ratio(
        pop, kMemChunks, kTierSizes[t]);
  }

  // The sweep: loads x tier sizes (tier size 0 = untiered baseline).
  std::vector<std::vector<RunResult>> cell(3);
  for (int l = 0; l < 3; ++l) {
    for (int t = 0; t < 4; ++t) {
      cell[l].push_back(run(kLoads[l], kTierSizes[t], measure));
    }
  }

  bool ok = true;
  std::ostringstream json;
  json << "{\n  \"bench\": \"extension_tiering\",\n  \"scale\": " << scale
       << ",\n  \"mem_chunks\": " << kMemChunks
       << ",\n  \"target\": {\"sla\": " << kTargetSla
       << ", \"percentile\": " << kTargetPercentile << "},\n  \"cells\": [\n";

  double healthy_band = 0.0;  // untiered model-vs-sim error (the floor)
  double worst_tiered_err = 0.0;
  double worst_hit_err = 0.0;
  bool monotone = true;
  bool first_cell = true;
  std::vector<std::string> plan_lines;
  for (int l = 0; l < 3; ++l) {
    const RunResult& base = cell[l][0];
    cosm::Table table({"tier (chunks)", "Che hit", "sim hit", "sim p99 (ms)",
                       "SLA 50ms sim", "model", "SLA 150ms sim", "model",
                       "SLA 300ms sim", "model"});
    double prev_model_tail = 0.0;
    for (int t = 0; t < 4; ++t) {
      const RunResult& sim = cell[l][t];
      const cosm::core::SystemModel model(
          tiered_params(base.params, predicted_hit[t]));
      double predicted[3];
      for (int i = 0; i < 3; ++i) {
        predicted[i] = model.predict_sla_percentile(kSlas[i]);
        const double err = std::abs(predicted[i] - sim.observed[i]);
        if (t == 0) {
          healthy_band = std::max(healthy_band, err);
        } else {
          worst_tiered_err = std::max(worst_tiered_err, err);
        }
      }
      if (t > 0) {
        worst_hit_err = std::max(
            worst_hit_err, std::abs(predicted_hit[t] - sim.measured_tier_hit));
        if (predicted[2] < prev_model_tail - 1e-12) monotone = false;
      }
      prev_model_tail = predicted[2];
      table.add_row({std::to_string(kTierSizes[t]),
                     cosm::Table::percent(predicted_hit[t]),
                     cosm::Table::percent(sim.measured_tier_hit),
                     cosm::Table::num(sim.p99 * 1000.0, 1),
                     cosm::Table::percent(sim.observed[0]),
                     cosm::Table::percent(predicted[0]),
                     cosm::Table::percent(sim.observed[1]),
                     cosm::Table::percent(predicted[1]),
                     cosm::Table::percent(sim.observed[2]),
                     cosm::Table::percent(predicted[2])});
      if (!first_cell) json << ",\n";
      first_cell = false;
      json << "    {\"load_rps\": " << kLoads[l] << ", \"tier_chunks\": "
           << kTierSizes[t] << ", \"che_hit\": " << predicted_hit[t]
           << ", \"sim_hit\": " << sim.measured_tier_hit
           << ", \"sim_p99_s\": " << sim.p99 << ", \"completed\": "
           << sim.completed << ", \"sla\": [" << kSlas[0] << ", " << kSlas[1]
           << ", " << kSlas[2] << "], \"sim\": [" << sim.observed[0] << ", "
           << sim.observed[1] << ", " << sim.observed[2] << "], \"model\": ["
           << predicted[0] << ", " << predicted[1] << ", " << predicted[2]
           << "]}";
    }
    std::ostringstream title;
    title << "Extension — SSD tier size sweep at " << kLoads[l]
          << " req/s (Zipf 0.9, LRU page cache " << kMemChunks
          << " chunks, 10000-chunk catalog)";
    table.print(std::cout, title.str());

    // Capacity planning: smallest candidate tier meeting the target at
    // this load, using ONLY the model (the operator's question).
    std::vector<cosm::core::TierCandidate> candidates;
    for (int t = 0; t < 4; ++t) {
      candidates.push_back({kTierSizes[t], predicted_hit[t]});
    }
    const cosm::core::TierFactory factory =
        [&base](const cosm::core::TierCandidate& candidate) {
          return tiered_params(base.params, candidate.hit_ratio);
        };
    const auto best = cosm::core::min_tier_capacity_for(
        factory, candidates, {kTargetSla, kTargetPercentile});
    std::ostringstream plan;
    plan << "{\"load_rps\": " << kLoads[l] << ", \"min_tier_chunks\": ";
    if (best) {
      std::cout << "plan: smallest tier meeting P[latency <= "
                << kTargetSla * 1000.0 << " ms] >= " << kTargetPercentile
                << " at " << kLoads[l] << " req/s: "
                << best->candidate.capacity_chunks << " chunks (predicted "
                << cosm::Table::percent(best->percentile) << ")\n\n";
      plan << best->candidate.capacity_chunks
           << ", \"predicted\": " << best->percentile << "}";
    } else {
      std::cout << "plan: no candidate tier meets P[latency <= "
                << kTargetSla * 1000.0 << " ms] >= " << kTargetPercentile
                << " at " << kLoads[l] << " req/s\n\n";
      plan << "null, \"predicted\": null}";
    }
    plan_lines.push_back(plan.str());
  }

  // Gate 1: model-vs-sim agreement on every tiered cell, held to the
  // same band the other extensions honour (short smoke runs are noisier,
  // so the measured untiered band is the floor).
  const double allowed = std::max(kPaperBand, healthy_band + 0.03);
  std::cout << "healthy-model error band: "
            << cosm::Table::percent(healthy_band)
            << "; worst tiered-cell error: "
            << cosm::Table::percent(worst_tiered_err) << " (allowed "
            << cosm::Table::percent(allowed) << ")\n";
  if (worst_tiered_err > allowed) {
    std::cout << "FAIL: tiered prediction left the band ("
              << cosm::Table::percent(worst_tiered_err) << " > "
              << cosm::Table::percent(allowed) << ")\n";
    ok = false;
  }

  // Gate 2: Che's two-level hit-ratio prediction is usably close to the
  // simulator's measured tier hit ratio.
  std::cout << "worst Che-vs-sim tier hit-ratio error: "
            << cosm::Table::percent(worst_hit_err) << " (allowed "
            << cosm::Table::percent(kHitRatioBand) << ")\n";
  if (worst_hit_err > kHitRatioBand) {
    std::cout << "FAIL: Che hit-ratio prediction left the band\n";
    ok = false;
  }

  // Gate 3: the model's planning curve is monotone in tier size.
  if (!monotone) {
    std::cout << "FAIL: model SLA attainment degraded as the tier grew\n";
    ok = false;
  }

  // Gate 4: the tier is worth modeling — at the highest load the largest
  // tier beats the untiered simulated p99.
  const double base_p99 = cell[2][0].p99;
  const double tiered_p99 = cell[2][3].p99;
  std::cout << "usefulness: at " << kLoads[2] << " req/s the "
            << kTierSizes[3] << "-chunk tier moves sim p99 from "
            << base_p99 * 1000.0 << " ms to " << tiered_p99 * 1000.0
            << " ms\n";
  if (tiered_p99 >= base_p99) {
    std::cout << "FAIL: the largest tier did not improve p99 at the "
                 "highest load\n";
    ok = false;
  }

  // Gate 5: tiered runs are seed-reproducible — repeat the mid-load,
  // largest-tier run and compare latency sums bitwise.
  const RunResult repeat = run(kLoads[1], kTierSizes[3], measure);
  const RunResult& reference = cell[1][3];
  if (repeat.latency_sum != reference.latency_sum ||
      repeat.completed != reference.completed) {
    std::cout << "FAIL: same-seed tiered run not bit-identical ("
              << reference.latency_sum << " vs " << repeat.latency_sum << ", "
              << reference.completed << " vs " << repeat.completed
              << " requests)\n";
    ok = false;
  } else {
    std::cout << "determinism: two same-seed tiered runs bit-identical ("
              << reference.completed << " requests, latency sum "
              << reference.latency_sum << " s)\n";
  }

  json << "\n  ],\n  \"plan\": [";
  for (std::size_t i = 0; i < plan_lines.size(); ++i) {
    json << (i ? ", " : "") << plan_lines[i];
  }
  json << "],\n  \"healthy_band\": " << healthy_band
       << ",\n  \"worst_tiered_err\": " << worst_tiered_err
       << ",\n  \"worst_hit_err\": " << worst_hit_err
       << ",\n  \"monotone\": " << (monotone ? "true" : "false")
       << ",\n  \"deterministic\": "
       << (repeat.latency_sum == reference.latency_sum ? "true" : "false")
       << ",\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
  std::ofstream out(out_path);
  out << json.str();
  if (!out) {
    std::cerr << "FAIL: cannot write " << out_path << "\n";
    ok = false;
  }
  std::cout << "wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
