// Perf-regression harness for the simulator hot path (the engine /
// request-pool / metrics overhaul) and for parallel replications.
//
// Runs the canonical throughput scenario — 4 devices x 4 backend
// processes, default HDD profile, 20k-object catalog, open-loop Poisson
// arrivals at --rate for 5 s warmup + --duration benchmark — in four
// modes:
//
//   sampled                one replication, per-request samples retained
//   streaming              one replication, constant-memory metrics
//   replications_serial    --reps replications, num_threads=1
//   replications_parallel  --reps replications, num_threads=--threads
//
// and verifies the determinism contract everywhere: a mode's fingerprint
// must be identical across timing repetitions, the parallel replication
// set must be bit-identical to the serial one, and streaming must agree
// with sampled on every counter (only the recording differs).
//
// A separate scaled scenario (the sharded-engine gate) runs 256 devices
// at --scaled-rate arrivals/s under the per-shard engines of
// sim/shard.hpp, at 1, 2, and 4 shards threaded plus 4 shards on the
// serial round-robin reference path.  Gates: the 4-shard threaded run
// must be bit-identical to its serial twin (always enforced), and with
// >= 4 hardware threads the 4-shard run must deliver >= 2x the 1-shard
// aggregate events/s; on smaller hosts the speedup gate is recorded as
// skipped ("skipped_single_hw_thread" / "skipped_hw_threads_below_4")
// instead of fabricating a parallelism number one core cannot show.
// Results land under the separate "scaled" JSON key so consumers of the
// canonical "modes" array are unaffected.
//
// Emits machine-readable BENCH_sim.json (field glossary in
// docs/PERFORMANCE.md).  The baseline_* constants are the pre-overhaul
// simulator's throughput on this scenario at default flags, measured on
// the repo's reference container; speedup_vs_baseline is only meaningful
// on comparable hardware, so CI gates on the determinism checks, not on
// it.  Exit status: 0 ok, 1 determinism/bit-identity violation,
// 2 throughput regression (streaming slower than 1.5x sampled,
// --min-speedup unmet, or the scaled 4-shard speedup gate failing where
// enforced), 3 JSON write/readback failure.
//
// Flags: --rate=R      (system arrivals/s; default 150)
//        --duration=S  (benchmark phase seconds; default 115)
//        --reps=N      (replication count; default 4)
//        --threads=T   (parallel replication fan-out; 0 = hardware)
//        --repeat=K    (timing repetitions, best-of; default 3)
//        --min-speedup=X  (gate sampled req/s vs baseline; 0 = off)
//        --scaled-rate=R     (scaled scenario arrivals/s; default 10000)
//        --scaled-duration=S (scaled benchmark seconds; default 3)
//        --out=PATH    (default BENCH_sim.json)
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "obs/obs.hpp"
#include "sim/replication.hpp"
#include "workload/catalog.hpp"

namespace {

using cosm::sim::ReplicationPlan;
using cosm::sim::ReplicationResult;
using cosm::sim::ReplicationSet;
using cosm::sim::run_replication;
using cosm::sim::run_replications;

// Pre-overhaul throughput of this exact scenario (same seeds, same
// timeout, engine-loop-only timing) on the reference container,
// measured interleaved with the overhauled build and taking the
// baseline's best round — the denominators of the speedup fields,
// deliberately favoring the old code.
constexpr double kBaselineRequestsPerSec = 466811.0;
constexpr double kBaselineEventsPerSec = 6352934.0;

constexpr std::uint64_t kSeed = 20170813;  // the figure benches' seed

struct Config {
  double rate = 150.0;
  double duration = 115.0;
  int reps = 4;
  unsigned threads = 0;  // 0 = all hardware threads
  int repeat = 3;
  double min_speedup = 0.0;  // 0 = baseline gate off
  double scaled_rate = 10000.0;
  double scaled_duration = 3.0;
  std::string out = "BENCH_sim.json";
  std::string trace_json;  // empty = observability stays disabled
};

Config parse_args(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--rate=", 0) == 0) {
      config.rate = std::stod(value_of("--rate="));
    } else if (arg.rfind("--duration=", 0) == 0) {
      config.duration = std::stod(value_of("--duration="));
    } else if (arg.rfind("--reps=", 0) == 0) {
      config.reps = std::stoi(value_of("--reps="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.threads =
          static_cast<unsigned>(std::stoul(value_of("--threads=")));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      config.repeat = std::stoi(value_of("--repeat="));
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      config.min_speedup = std::stod(value_of("--min-speedup="));
    } else if (arg.rfind("--scaled-rate=", 0) == 0) {
      config.scaled_rate = std::stod(value_of("--scaled-rate="));
    } else if (arg.rfind("--scaled-duration=", 0) == 0) {
      config.scaled_duration = std::stod(value_of("--scaled-duration="));
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out = value_of("--out=");
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      config.trace_json = value_of("--trace-json=");
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(3);
    }
  }
  config.reps = std::max(config.reps, 1);
  config.repeat = std::max(config.repeat, 1);
  return config;
}

ReplicationPlan make_plan(const Config& config, bool streaming) {
  ReplicationPlan plan;
  plan.cluster.device_count = 4;
  plan.cluster.processes_per_device = 4;
  plan.cluster.request_timeout = 0.25;
  plan.catalog.object_count = 20000;
  plan.catalog.size_distribution =
      cosm::workload::default_size_distribution();
  plan.placement = {.partition_count = 1024,
                    .replica_count = 3,
                    .device_count = 4,
                    .seed = 0};
  plan.phases.warmup_rate = config.rate;
  plan.phases.warmup_duration = 5.0;
  plan.phases.transition_duration = 0.0;
  plan.phases.benchmark_start_rate = config.rate;
  plan.phases.benchmark_end_rate = config.rate;
  plan.phases.benchmark_step_duration = config.duration;
  plan.streaming = streaming;
  return plan;
}

// The scaled sharded scenario: 256 devices, 10k rps open-loop arrivals,
// streaming metrics (a quarter-million-request run would be wasteful to
// retain sample-by-sample).  Replica sets stay shard-local, so placement
// width (3) must fit the narrowest shard — 256/4 = 64 devices, ample.
ReplicationPlan make_scaled_plan(const Config& config, std::uint32_t shards,
                                 unsigned shard_threads) {
  ReplicationPlan plan;
  plan.cluster.device_count = 256;
  plan.cluster.frontend_processes = 16;
  plan.cluster.processes_per_device = 2;
  plan.cluster.request_timeout = 0.25;
  plan.cluster.shards = shards;
  plan.catalog.object_count = 20000;
  plan.catalog.size_distribution =
      cosm::workload::default_size_distribution();
  plan.placement = {.partition_count = 1024,
                    .replica_count = 3,
                    .device_count = 256,
                    .seed = 0};
  plan.phases.warmup_rate = config.scaled_rate;
  plan.phases.warmup_duration = 1.0;
  plan.phases.transition_duration = 0.0;
  plan.phases.benchmark_start_rate = config.scaled_rate;
  plan.phases.benchmark_end_rate = config.scaled_rate;
  plan.phases.benchmark_step_duration = config.scaled_duration;
  plan.streaming = true;
  plan.shard_threads = shard_threads;
  return plan;
}

struct ModeResult {
  std::string name;
  unsigned threads = 1;
  double wall_ms = 0.0;  // best over repetitions
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  std::uint64_t fingerprint = 0;
  bool deterministic = true;  // fingerprint stable across repetitions
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void fold_rep(ModeResult& result, int rep, double ms, std::uint64_t events,
              std::uint64_t requests, std::uint64_t fingerprint) {
  if (rep == 0 || ms < result.wall_ms) result.wall_ms = ms;
  if (rep == 0) {
    result.events = events;
    result.requests = requests;
    result.fingerprint = fingerprint;
  } else if (fingerprint != result.fingerprint ||
             events != result.events || requests != result.requests) {
    result.deterministic = false;
  }
}

ModeResult run_single(const std::string& name, const ReplicationPlan& plan,
                      int repeat) {
  ModeResult result;
  result.name = name;
  for (int rep = 0; rep < repeat; ++rep) {
    // Engine-loop wall only (excludes catalog/placement construction) —
    // the same window the pre-overhaul baseline constants were measured
    // over, so speedup_vs_baseline compares like with like.
    const ReplicationResult r = run_replication(plan, kSeed);
    fold_rep(result, rep, r.engine_wall_ms, r.events, r.completed,
             r.fingerprint);
  }
  return result;
}

ModeResult run_set(const std::string& name, const ReplicationPlan& plan,
                   unsigned threads, int repeat) {
  ModeResult result;
  result.name = name;
  result.threads = threads;
  for (int rep = 0; rep < repeat; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const ReplicationSet set = run_replications(plan, threads);
    fold_rep(result, rep, ms_since(start), set.events, set.completed,
             set.fingerprint);
  }
  return result;
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string hex64(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

double events_per_sec(const ModeResult& mode) {
  return static_cast<double>(mode.events) / (mode.wall_ms / 1e3);
}

double requests_per_sec(const ModeResult& mode) {
  return static_cast<double>(mode.requests) / (mode.wall_ms / 1e3);
}

void append_mode_json(std::ostringstream& json, const ModeResult& mode,
                      bool last) {
  json << "    {\n"
       << "      \"name\": \"" << mode.name << "\",\n"
       << "      \"threads\": " << mode.threads << ",\n"
       << "      \"wall_ms\": " << fmt(mode.wall_ms, 3) << ",\n"
       << "      \"events\": " << mode.events << ",\n"
       << "      \"requests\": " << mode.requests << ",\n"
       << "      \"events_per_sec\": " << fmt(events_per_sec(mode), 0)
       << ",\n"
       << "      \"requests_per_sec\": " << fmt(requests_per_sec(mode), 0)
       << ",\n"
       << "      \"fingerprint\": \"" << hex64(mode.fingerprint) << "\",\n"
       << "      \"deterministic\": "
       << (mode.deterministic ? "true" : "false") << "\n"
       << "    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = parse_args(argc, argv);
  if (!config.trace_json.empty()) cosm::obs::set_enabled(true);
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const unsigned fanout = config.threads == 0 ? hardware : config.threads;

  const ReplicationPlan sampled_plan = make_plan(config, false);
  const ReplicationPlan streaming_plan = make_plan(config, true);
  ReplicationPlan set_plan = make_plan(config, true);
  for (int i = 0; i < config.reps; ++i) {
    set_plan.seeds.push_back(kSeed + 1000 * (static_cast<std::uint64_t>(i) + 1));
  }

  std::vector<ModeResult> modes;
  modes.push_back(run_single("sampled", sampled_plan, config.repeat));
  modes.push_back(run_single("streaming", streaming_plan, config.repeat));
  modes.push_back(
      run_set("replications_serial", set_plan, 1, config.repeat));
  modes.push_back(
      run_set("replications_parallel", set_plan, fanout, config.repeat));

  const ModeResult& sampled = modes[0];
  const ModeResult& streaming = modes[1];
  const ModeResult& serial_set = modes[2];
  const ModeResult& parallel_set = modes[3];

  // Scaled sharded scenario (separate "scaled" JSON key; see file header).
  // ModeResult.threads records each mode's resolved per-replication worker
  // thread count: S dedicated shard workers when threaded, 1 when serial
  // (and for the unsharded 1-shard reference).
  std::vector<ModeResult> scaled;
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    ModeResult mode =
        run_single("scaled_" + std::to_string(shards) + "shard",
                   make_scaled_plan(config, shards, 0), config.repeat);
    mode.threads = shards;
    scaled.push_back(mode);
  }
  {
    ModeResult mode = run_single(
        "scaled_4shard_serial", make_scaled_plan(config, 4, 1), config.repeat);
    mode.threads = 1;
    scaled.push_back(mode);
  }
  const ModeResult& scaled_1shard = scaled[0];
  const ModeResult& scaled_4shard = scaled[2];
  const ModeResult& scaled_4shard_serial = scaled[3];
  // Hard gate at every hardware size: the threaded window protocol must be
  // bit-identical to its serial round-robin reference.
  const bool scaled_bit_identical =
      scaled_4shard.fingerprint == scaled_4shard_serial.fingerprint &&
      scaled_4shard.events == scaled_4shard_serial.events &&
      scaled_4shard.requests == scaled_4shard_serial.requests;
  bool scaled_deterministic = true;
  for (const ModeResult& mode : scaled) {
    scaled_deterministic = scaled_deterministic && mode.deterministic;
  }
  const double scaled_speedup =
      events_per_sec(scaled_4shard) / events_per_sec(scaled_1shard);
  // The >= 2x speedup gate needs 4 real cores to mean anything.
  const std::string speedup_gate =
      hardware >= 4 ? "enforced"
      : hardware == 1 ? "skipped_single_hw_thread"
                      : "skipped_hw_threads_below_4";
  const bool scaled_speedup_ok =
      hardware < 4 || scaled_speedup >= 2.0;

  bool deterministic = true;
  for (const ModeResult& mode : modes) {
    deterministic = deterministic && mode.deterministic;
  }
  // Streaming and sampled run the same simulation; only recording differs.
  const bool modes_agree = sampled.events == streaming.events &&
                           sampled.requests == streaming.requests;
  const bool replications_identical =
      serial_set.fingerprint == parallel_set.fingerprint &&
      serial_set.events == parallel_set.events &&
      serial_set.requests == parallel_set.requests;
  // Constant-memory accounting must not cost wall time (generous band:
  // same process, same machine, so this check is portable).
  const bool streaming_ok = streaming.wall_ms <= 1.5 * sampled.wall_ms;
  const double speedup_requests =
      requests_per_sec(sampled) / kBaselineRequestsPerSec;
  const double speedup_events = events_per_sec(sampled) / kBaselineEventsPerSec;
  const bool speedup_ok =
      config.min_speedup <= 0.0 || speedup_requests >= config.min_speedup;

  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const double peak_rss_mb =
      static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB

  std::cout << "perf_sim_scale: rate=" << fmt(config.rate, 0) << "/s, "
            << fmt(config.duration, 0) << " s benchmark, reps="
            << config.reps << ", repeat=" << config.repeat << ", fanout="
            << fanout << " thread(s)\n\n";
  std::cout << "  mode                     wall_ms     events/s   requests/s"
               "   deterministic\n";
  for (const ModeResult& mode : modes) {
    std::cout << "  " << mode.name
              << std::string(24 - mode.name.size(), ' ')
              << fmt(mode.wall_ms, 2) << "   " << fmt(events_per_sec(mode), 0)
              << "   " << fmt(requests_per_sec(mode), 0) << "   "
              << (mode.deterministic ? "yes" : "NO") << "\n";
  }
  std::cout << "\n  scaled scenario (256 devices, "
            << fmt(config.scaled_rate, 0) << " rps, streaming):\n";
  for (const ModeResult& mode : scaled) {
    std::cout << "  " << mode.name
              << std::string(24 - mode.name.size(), ' ')
              << fmt(mode.wall_ms, 2) << "   " << fmt(events_per_sec(mode), 0)
              << "   " << fmt(requests_per_sec(mode), 0) << "   "
              << (mode.deterministic ? "yes" : "NO") << "\n";
  }
  std::cout << "\n  sampled speedup vs pre-overhaul baseline: "
            << fmt(speedup_requests, 2) << "x requests/s, "
            << fmt(speedup_events, 2) << "x events/s\n"
            << "  parallel replications bit-identical to serial: "
            << (replications_identical ? "yes" : "NO") << "\n"
            << "  scaled 4-shard bit-identical to serial reference: "
            << (scaled_bit_identical ? "yes" : "NO") << "\n"
            << "  scaled 4-shard vs 1-shard events/s: "
            << fmt(scaled_speedup, 2) << "x (gate " << speedup_gate << ")\n"
            << "  peak RSS: " << fmt(peak_rss_mb, 1) << " MiB\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"perf_sim_scale\",\n"
       << "  \"schema_version\": 1,\n"
       << "  \"config\": {\n"
       << "    \"rate\": " << fmt(config.rate, 1) << ",\n"
       << "    \"duration_s\": " << fmt(config.duration, 1) << ",\n"
       << "    \"warmup_s\": 5.0,\n"
       << "    \"devices\": 4,\n"
       << "    \"processes_per_device\": 4,\n"
       << "    \"replications\": " << config.reps << ",\n"
       << "    \"repeat\": " << config.repeat << ",\n"
       << "    \"requested_threads\": " << config.threads << ",\n"
       << "    \"resolved_threads\": " << fanout << ",\n"
       << "    \"hardware_threads\": " << hardware << ",\n"
       << "    \"seed\": " << kSeed << "\n"
       << "  },\n"
       << "  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    append_mode_json(json, modes[i], i + 1 == modes.size());
  }
  json << "  ],\n"
       << "  \"scaled\": {\n"
       << "    \"config\": {\n"
       << "      \"rate\": " << fmt(config.scaled_rate, 1) << ",\n"
       << "      \"duration_s\": " << fmt(config.scaled_duration, 1) << ",\n"
       << "      \"warmup_s\": 1.0,\n"
       << "      \"devices\": 256,\n"
       << "      \"frontend_processes\": 16,\n"
       << "      \"processes_per_device\": 2,\n"
       << "      \"streaming\": true,\n"
       << "      \"seed\": " << kSeed << "\n"
       << "    },\n"
       << "    \"modes\": [\n";
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    append_mode_json(json, scaled[i], i + 1 == scaled.size());
  }
  json << "    ],\n"
       << "    \"speedup_4shard_vs_1shard\": " << fmt(scaled_speedup, 3)
       << ",\n"
       << "    \"speedup_gate\": \"" << speedup_gate << "\",\n"
       << "    \"checks\": {\n"
       << "      \"deterministic\": "
       << (scaled_deterministic ? "true" : "false") << ",\n"
       << "      \"bit_identical_serial_vs_threaded\": "
       << (scaled_bit_identical ? "true" : "false") << "\n"
       << "    }\n"
       << "  },\n"
       << "  \"baseline\": {\n"
       << "    \"requests_per_sec\": " << fmt(kBaselineRequestsPerSec, 0)
       << ",\n"
       << "    \"events_per_sec\": " << fmt(kBaselineEventsPerSec, 0) << "\n"
       << "  },\n"
       << "  \"speedup_vs_baseline\": {\n"
       << "    \"requests_per_sec\": " << fmt(speedup_requests, 3) << ",\n"
       << "    \"events_per_sec\": " << fmt(speedup_events, 3) << "\n"
       << "  },\n"
       << "  \"parallel_speedup_vs_serial\": "
       << fmt(serial_set.wall_ms / parallel_set.wall_ms, 3) << ",\n"
       << "  \"peak_rss_mb\": " << fmt(peak_rss_mb, 1) << ",\n"
       << "  \"checks\": {\n"
       << "    \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n"
       << "    \"streaming_matches_sampled\": "
       << (modes_agree ? "true" : "false") << ",\n"
       << "    \"replications_bit_identical\": "
       << (replications_identical ? "true" : "false") << ",\n"
       << "    \"streaming_within_1p5x_of_sampled\": "
       << (streaming_ok ? "true" : "false") << "\n"
       << "  }\n"
       << "}\n";

  {
    std::ofstream out(config.out);
    if (!out) {
      std::cerr << "cannot open " << config.out << " for writing\n";
      return 3;
    }
    out << json.str();
  }
  // Readback gate: parse the artifact and enforce its schema contract
  // (schema_version match, no unknown top-level fields).
  if (!cosm_bench::verify_bench_json(
          config.out, 1,
          {"benchmark", "schema_version", "config", "modes", "scaled",
           "baseline", "speedup_vs_baseline", "parallel_speedup_vs_serial",
           "peak_rss_mb", "checks"})) {
    return 3;
  }
  std::cout << "  wrote " << config.out << "\n";

  if (!config.trace_json.empty()) {
    std::ofstream trace(config.trace_json);
    if (!trace) {
      std::cerr << "cannot open " << config.trace_json << " for writing\n";
      return 3;
    }
    cosm::obs::export_json(trace);
    std::cout << "  wrote " << config.trace_json << "\n";
  }

  if (!deterministic || !modes_agree || !replications_identical ||
      !scaled_deterministic || !scaled_bit_identical) {
    std::cerr << "FAIL: determinism contract violated (repeat fingerprints, "
                 "streaming/sampled agreement, serial/parallel replication "
                 "identity, or sharded serial/threaded identity)\n";
    return 1;
  }
  if (!scaled_speedup_ok) {
    std::cerr << "FAIL: scaled 4-shard speedup " << fmt(scaled_speedup, 2)
              << "x below the 2x gate (" << hardware
              << " hardware threads)\n";
    return 2;
  }
  if (!streaming_ok) {
    std::cerr << "FAIL: streaming metrics cost more than 1.5x sampled wall "
                 "time\n";
    return 2;
  }
  if (!speedup_ok) {
    std::cerr << "FAIL: sampled requests/s speedup " << fmt(speedup_requests, 2)
              << "x below required " << fmt(config.min_speedup, 2) << "x\n";
    return 2;
  }
  return 0;
}
