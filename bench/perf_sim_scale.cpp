// Perf-regression harness for the simulator hot path (the engine /
// request-pool / metrics overhaul) and for parallel replications.
//
// Runs the canonical throughput scenario — 4 devices x 4 backend
// processes, default HDD profile, 20k-object catalog, open-loop Poisson
// arrivals at --rate for 5 s warmup + --duration benchmark — in four
// modes:
//
//   sampled                one replication, per-request samples retained
//   streaming              one replication, constant-memory metrics
//   replications_serial    --reps replications, num_threads=1
//   replications_parallel  --reps replications, num_threads=--threads
//
// and verifies the determinism contract everywhere: a mode's fingerprint
// must be identical across timing repetitions, the parallel replication
// set must be bit-identical to the serial one, and streaming must agree
// with sampled on every counter (only the recording differs).
//
// Emits machine-readable BENCH_sim.json (field glossary in
// docs/PERFORMANCE.md).  The baseline_* constants are the pre-overhaul
// simulator's throughput on this scenario at default flags, measured on
// the repo's reference container; speedup_vs_baseline is only meaningful
// on comparable hardware, so CI gates on the determinism checks, not on
// it.  Exit status: 0 ok, 1 determinism/bit-identity violation,
// 2 throughput regression (streaming slower than 1.5x sampled, or
// --min-speedup unmet), 3 JSON write/readback failure.
//
// Flags: --rate=R      (system arrivals/s; default 150)
//        --duration=S  (benchmark phase seconds; default 115)
//        --reps=N      (replication count; default 4)
//        --threads=T   (parallel replication fan-out; 0 = hardware)
//        --repeat=K    (timing repetitions, best-of; default 3)
//        --min-speedup=X  (gate sampled req/s vs baseline; 0 = off)
//        --out=PATH    (default BENCH_sim.json)
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "obs/obs.hpp"
#include "sim/replication.hpp"
#include "workload/catalog.hpp"

namespace {

using cosm::sim::ReplicationPlan;
using cosm::sim::ReplicationResult;
using cosm::sim::ReplicationSet;
using cosm::sim::run_replication;
using cosm::sim::run_replications;

// Pre-overhaul throughput of this exact scenario (same seeds, same
// timeout, engine-loop-only timing) on the reference container,
// measured interleaved with the overhauled build and taking the
// baseline's best round — the denominators of the speedup fields,
// deliberately favoring the old code.
constexpr double kBaselineRequestsPerSec = 466811.0;
constexpr double kBaselineEventsPerSec = 6352934.0;

constexpr std::uint64_t kSeed = 20170813;  // the figure benches' seed

struct Config {
  double rate = 150.0;
  double duration = 115.0;
  int reps = 4;
  unsigned threads = 0;  // 0 = all hardware threads
  int repeat = 3;
  double min_speedup = 0.0;  // 0 = baseline gate off
  std::string out = "BENCH_sim.json";
  std::string trace_json;  // empty = observability stays disabled
};

Config parse_args(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--rate=", 0) == 0) {
      config.rate = std::stod(value_of("--rate="));
    } else if (arg.rfind("--duration=", 0) == 0) {
      config.duration = std::stod(value_of("--duration="));
    } else if (arg.rfind("--reps=", 0) == 0) {
      config.reps = std::stoi(value_of("--reps="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.threads =
          static_cast<unsigned>(std::stoul(value_of("--threads=")));
    } else if (arg.rfind("--repeat=", 0) == 0) {
      config.repeat = std::stoi(value_of("--repeat="));
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      config.min_speedup = std::stod(value_of("--min-speedup="));
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out = value_of("--out=");
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      config.trace_json = value_of("--trace-json=");
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(3);
    }
  }
  config.reps = std::max(config.reps, 1);
  config.repeat = std::max(config.repeat, 1);
  return config;
}

ReplicationPlan make_plan(const Config& config, bool streaming) {
  ReplicationPlan plan;
  plan.cluster.device_count = 4;
  plan.cluster.processes_per_device = 4;
  plan.cluster.request_timeout = 0.25;
  plan.catalog.object_count = 20000;
  plan.catalog.size_distribution =
      cosm::workload::default_size_distribution();
  plan.placement = {.partition_count = 1024,
                    .replica_count = 3,
                    .device_count = 4,
                    .seed = 0};
  plan.phases.warmup_rate = config.rate;
  plan.phases.warmup_duration = 5.0;
  plan.phases.transition_duration = 0.0;
  plan.phases.benchmark_start_rate = config.rate;
  plan.phases.benchmark_end_rate = config.rate;
  plan.phases.benchmark_step_duration = config.duration;
  plan.streaming = streaming;
  return plan;
}

struct ModeResult {
  std::string name;
  unsigned threads = 1;
  double wall_ms = 0.0;  // best over repetitions
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  std::uint64_t fingerprint = 0;
  bool deterministic = true;  // fingerprint stable across repetitions
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void fold_rep(ModeResult& result, int rep, double ms, std::uint64_t events,
              std::uint64_t requests, std::uint64_t fingerprint) {
  if (rep == 0 || ms < result.wall_ms) result.wall_ms = ms;
  if (rep == 0) {
    result.events = events;
    result.requests = requests;
    result.fingerprint = fingerprint;
  } else if (fingerprint != result.fingerprint ||
             events != result.events || requests != result.requests) {
    result.deterministic = false;
  }
}

ModeResult run_single(const std::string& name, const ReplicationPlan& plan,
                      int repeat) {
  ModeResult result;
  result.name = name;
  for (int rep = 0; rep < repeat; ++rep) {
    // Engine-loop wall only (excludes catalog/placement construction) —
    // the same window the pre-overhaul baseline constants were measured
    // over, so speedup_vs_baseline compares like with like.
    const ReplicationResult r = run_replication(plan, kSeed);
    fold_rep(result, rep, r.engine_wall_ms, r.events, r.completed,
             r.fingerprint);
  }
  return result;
}

ModeResult run_set(const std::string& name, const ReplicationPlan& plan,
                   unsigned threads, int repeat) {
  ModeResult result;
  result.name = name;
  result.threads = threads;
  for (int rep = 0; rep < repeat; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const ReplicationSet set = run_replications(plan, threads);
    fold_rep(result, rep, ms_since(start), set.events, set.completed,
             set.fingerprint);
  }
  return result;
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string hex64(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

double events_per_sec(const ModeResult& mode) {
  return static_cast<double>(mode.events) / (mode.wall_ms / 1e3);
}

double requests_per_sec(const ModeResult& mode) {
  return static_cast<double>(mode.requests) / (mode.wall_ms / 1e3);
}

void append_mode_json(std::ostringstream& json, const ModeResult& mode,
                      bool last) {
  json << "    {\n"
       << "      \"name\": \"" << mode.name << "\",\n"
       << "      \"threads\": " << mode.threads << ",\n"
       << "      \"wall_ms\": " << fmt(mode.wall_ms, 3) << ",\n"
       << "      \"events\": " << mode.events << ",\n"
       << "      \"requests\": " << mode.requests << ",\n"
       << "      \"events_per_sec\": " << fmt(events_per_sec(mode), 0)
       << ",\n"
       << "      \"requests_per_sec\": " << fmt(requests_per_sec(mode), 0)
       << ",\n"
       << "      \"fingerprint\": \"" << hex64(mode.fingerprint) << "\",\n"
       << "      \"deterministic\": "
       << (mode.deterministic ? "true" : "false") << "\n"
       << "    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = parse_args(argc, argv);
  if (!config.trace_json.empty()) cosm::obs::set_enabled(true);
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const unsigned fanout = config.threads == 0 ? hardware : config.threads;

  const ReplicationPlan sampled_plan = make_plan(config, false);
  const ReplicationPlan streaming_plan = make_plan(config, true);
  ReplicationPlan set_plan = make_plan(config, true);
  for (int i = 0; i < config.reps; ++i) {
    set_plan.seeds.push_back(kSeed + 1000 * (static_cast<std::uint64_t>(i) + 1));
  }

  std::vector<ModeResult> modes;
  modes.push_back(run_single("sampled", sampled_plan, config.repeat));
  modes.push_back(run_single("streaming", streaming_plan, config.repeat));
  modes.push_back(
      run_set("replications_serial", set_plan, 1, config.repeat));
  modes.push_back(
      run_set("replications_parallel", set_plan, fanout, config.repeat));

  const ModeResult& sampled = modes[0];
  const ModeResult& streaming = modes[1];
  const ModeResult& serial_set = modes[2];
  const ModeResult& parallel_set = modes[3];

  bool deterministic = true;
  for (const ModeResult& mode : modes) {
    deterministic = deterministic && mode.deterministic;
  }
  // Streaming and sampled run the same simulation; only recording differs.
  const bool modes_agree = sampled.events == streaming.events &&
                           sampled.requests == streaming.requests;
  const bool replications_identical =
      serial_set.fingerprint == parallel_set.fingerprint &&
      serial_set.events == parallel_set.events &&
      serial_set.requests == parallel_set.requests;
  // Constant-memory accounting must not cost wall time (generous band:
  // same process, same machine, so this check is portable).
  const bool streaming_ok = streaming.wall_ms <= 1.5 * sampled.wall_ms;
  const double speedup_requests =
      requests_per_sec(sampled) / kBaselineRequestsPerSec;
  const double speedup_events = events_per_sec(sampled) / kBaselineEventsPerSec;
  const bool speedup_ok =
      config.min_speedup <= 0.0 || speedup_requests >= config.min_speedup;

  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const double peak_rss_mb =
      static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB

  std::cout << "perf_sim_scale: rate=" << fmt(config.rate, 0) << "/s, "
            << fmt(config.duration, 0) << " s benchmark, reps="
            << config.reps << ", repeat=" << config.repeat << ", fanout="
            << fanout << " thread(s)\n\n";
  std::cout << "  mode                     wall_ms     events/s   requests/s"
               "   deterministic\n";
  for (const ModeResult& mode : modes) {
    std::cout << "  " << mode.name
              << std::string(24 - mode.name.size(), ' ')
              << fmt(mode.wall_ms, 2) << "   " << fmt(events_per_sec(mode), 0)
              << "   " << fmt(requests_per_sec(mode), 0) << "   "
              << (mode.deterministic ? "yes" : "NO") << "\n";
  }
  std::cout << "\n  sampled speedup vs pre-overhaul baseline: "
            << fmt(speedup_requests, 2) << "x requests/s, "
            << fmt(speedup_events, 2) << "x events/s\n"
            << "  parallel replications bit-identical to serial: "
            << (replications_identical ? "yes" : "NO") << "\n"
            << "  peak RSS: " << fmt(peak_rss_mb, 1) << " MiB\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"perf_sim_scale\",\n"
       << "  \"schema_version\": 1,\n"
       << "  \"config\": {\n"
       << "    \"rate\": " << fmt(config.rate, 1) << ",\n"
       << "    \"duration_s\": " << fmt(config.duration, 1) << ",\n"
       << "    \"warmup_s\": 5.0,\n"
       << "    \"devices\": 4,\n"
       << "    \"processes_per_device\": 4,\n"
       << "    \"replications\": " << config.reps << ",\n"
       << "    \"repeat\": " << config.repeat << ",\n"
       << "    \"requested_threads\": " << config.threads << ",\n"
       << "    \"resolved_threads\": " << fanout << ",\n"
       << "    \"hardware_threads\": " << hardware << ",\n"
       << "    \"seed\": " << kSeed << "\n"
       << "  },\n"
       << "  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    append_mode_json(json, modes[i], i + 1 == modes.size());
  }
  json << "  ],\n"
       << "  \"baseline\": {\n"
       << "    \"requests_per_sec\": " << fmt(kBaselineRequestsPerSec, 0)
       << ",\n"
       << "    \"events_per_sec\": " << fmt(kBaselineEventsPerSec, 0) << "\n"
       << "  },\n"
       << "  \"speedup_vs_baseline\": {\n"
       << "    \"requests_per_sec\": " << fmt(speedup_requests, 3) << ",\n"
       << "    \"events_per_sec\": " << fmt(speedup_events, 3) << "\n"
       << "  },\n"
       << "  \"parallel_speedup_vs_serial\": "
       << fmt(serial_set.wall_ms / parallel_set.wall_ms, 3) << ",\n"
       << "  \"peak_rss_mb\": " << fmt(peak_rss_mb, 1) << ",\n"
       << "  \"checks\": {\n"
       << "    \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n"
       << "    \"streaming_matches_sampled\": "
       << (modes_agree ? "true" : "false") << ",\n"
       << "    \"replications_bit_identical\": "
       << (replications_identical ? "true" : "false") << ",\n"
       << "    \"streaming_within_1p5x_of_sampled\": "
       << (streaming_ok ? "true" : "false") << "\n"
       << "  }\n"
       << "}\n";

  {
    std::ofstream out(config.out);
    if (!out) {
      std::cerr << "cannot open " << config.out << " for writing\n";
      return 3;
    }
    out << json.str();
  }
  // Readback gate: parse the artifact and enforce its schema contract
  // (schema_version match, no unknown top-level fields).
  if (!cosm_bench::verify_bench_json(
          config.out, 1,
          {"benchmark", "schema_version", "config", "modes", "baseline",
           "speedup_vs_baseline", "parallel_speedup_vs_serial", "peak_rss_mb",
           "checks"})) {
    return 3;
  }
  std::cout << "  wrote " << config.out << "\n";

  if (!config.trace_json.empty()) {
    std::ofstream trace(config.trace_json);
    if (!trace) {
      std::cerr << "cannot open " << config.trace_json << " for writing\n";
      return 3;
    }
    cosm::obs::export_json(trace);
    std::cout << "  wrote " << config.trace_json << "\n";
  }

  if (!deterministic || !modes_agree || !replications_identical) {
    std::cerr << "FAIL: determinism contract violated (repeat fingerprints, "
                 "streaming/sampled agreement, or serial/parallel "
                 "replication identity)\n";
    return 1;
  }
  if (!streaming_ok) {
    std::cerr << "FAIL: streaming metrics cost more than 1.5x sampled wall "
                 "time\n";
    return 2;
  }
  if (!speedup_ok) {
    std::cerr << "FAIL: sampled requests/s speedup " << fmt(speedup_requests, 2)
              << "x below required " << fmt(config.min_speedup, 2) << "x\n";
    return 2;
  }
  return 0;
}
