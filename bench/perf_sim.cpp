// Microbenchmarks (google-benchmark) for the discrete-event simulator:
// raw engine scheduling throughput, disk queue throughput, and end-to-end
// simulated-requests-per-second of the full cluster — the quantities that
// bound how long the figure sweeps take.
#include <benchmark/benchmark.h>

#include <memory>

#include "sim/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/source.hpp"

namespace {

void BM_EngineScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    cosm::sim::Engine engine;
    for (int i = 0; i < 10000; ++i) {
      engine.schedule_at(static_cast<double>(i % 97), [] {});
    }
    engine.run_all();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineScheduleAndRun);

void BM_DiskQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    cosm::sim::Engine engine;
    cosm::sim::Disk disk(engine, cosm::sim::default_hdd_profile(),
                         cosm::Rng(1));
    int remaining = 5000;
    std::function<void()> feed = [&] {
      if (remaining-- <= 0) return;
      disk.submit(cosm::sim::AccessKind::kData,
                  [&](double, bool) { feed(); });
    };
    engine.schedule_at(0.0, feed);
    engine.run_all();
    benchmark::DoNotOptimize(disk.ops_completed());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_DiskQueueThroughput);

void BM_ClusterRequestsPerSecond(benchmark::State& state) {
  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 5000;
  cat_config.size_distribution =
      cosm::workload::default_size_distribution();
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement(
      {.partition_count = 256, .replica_count = 3, .device_count = 4});
  for (auto _ : state) {
    cosm::sim::ClusterConfig config;
    config.device_count = 4;
    config.processes_per_device =
        static_cast<std::uint32_t>(state.range(0));
    cosm::sim::Cluster cluster(config);
    cosm::workload::PhasePlan plan;
    plan.warmup_duration = 0.0;
    plan.transition_duration = 0.0;
    plan.benchmark_start_rate = 150.0;
    plan.benchmark_end_rate = 150.0;
    plan.benchmark_step_duration = 30.0;
    cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                     cosm::Rng(3));
    source.start();
    cluster.engine().run_until(source.horizon());
    cluster.engine().run_all();
    benchmark::DoNotOptimize(cluster.metrics().completed_requests());
    state.SetItemsProcessed(
        state.items_processed() +
        static_cast<benchmark::IterationCount>(
            cluster.metrics().completed_requests()));
  }
}
BENCHMARK(BM_ClusterRequestsPerSecond)->Arg(1)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
