// Fig. 6, protocol-faithful variant: ONE continuous run through the
// paper's exact phase structure (warmup at a fixed rate, a transition
// trickle, then the benchmarking ladder where every arrival-rate step
// lasts one dwell), with SLA compliance counted per interval by the
// same per-minute bucketing the paper describes (Sec. V-A: "the system
// counts the number of requests that meet or violate the SLA ... for
// each minute" and points are 5-minute averages).
//
// The independent-points harness (fig6_s1_prediction) is statistically
// cleaner; this run shows the method is insensitive to the protocol:
// the series it prints should track the independent-point series.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>

#include "calibration/online_metrics.hpp"
#include "common/table.hpp"
#include "core/system_model.hpp"
#include "sim/cluster.hpp"
#include "sim/source.hpp"
#include "stats/sla.hpp"

int main(int argc, char** argv) {
  using cosm::Table;
  double scale = 0.4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = std::atof(argv[i] + 8);
  }

  cosm::sim::ClusterConfig config;
  config.frontend_processes = 3;
  config.device_count = 4;
  config.processes_per_device = 1;
  config.cache.index_miss_ratio = 0.3;
  config.cache.meta_miss_ratio = 0.3;
  config.cache.data_miss_ratio = 0.7;
  config.seed = 1234;
  cosm::sim::Cluster cluster(config);

  cosm::workload::CatalogConfig cat_config;
  cat_config.object_count = 20000;
  cat_config.size_distribution = cosm::workload::default_size_distribution();
  const cosm::workload::ObjectCatalog catalog(cat_config);
  const cosm::workload::Placement placement(
      {.partition_count = 1024, .replica_count = 3, .device_count = 4});

  cosm::workload::PhasePlan plan;
  plan.warmup_rate = 150.0;
  plan.warmup_duration = 300.0 * scale;
  plan.transition_rate = 10.0;
  plan.transition_duration = 60.0 * scale;
  plan.benchmark_start_rate = 20.0;
  plan.benchmark_end_rate = 220.0;
  plan.benchmark_rate_step = 20.0;
  plan.benchmark_step_duration = 300.0 * scale;
  cosm::sim::OpenLoopSource source(cluster, catalog, placement, plan,
                                   cosm::Rng(88));

  // The paper's measurement: count per minute, average per 5-minute step.
  // Samples are retained only from the benchmark phase and fed into the
  // per-interval counter after the run.
  const double interval = 60.0 * scale;
  cosm::stats::SlaCounter counter({0.010, 0.050, 0.100}, interval);
  cluster.metrics().keep_request_samples = true;
  cluster.metrics().sample_start_time = source.benchmark_start_time();

  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();
  for (const auto& sample : cluster.metrics().requests()) {
    counter.record(sample.frontend_arrival, sample.response_latency);
  }

  const double bench_start = source.benchmark_start_time();
  const auto first_interval =
      static_cast<std::size_t>(bench_start / interval);
  const auto intervals_per_step = static_cast<std::size_t>(
      plan.benchmark_step_duration / interval + 0.5);

  for (std::size_t s = 0; s < counter.sla_count(); ++s) {
    Table table({"step", "rate(req/s)", "observed(5-interval avg)"});
    double rate = plan.benchmark_start_rate;
    std::size_t start = first_interval;
    int step = 0;
    while (rate <= plan.benchmark_end_rate + 1e-9 &&
           start < counter.interval_count()) {
      const std::size_t stop =
          std::min(start + intervals_per_step, counter.interval_count());
      table.add_row({std::to_string(step), Table::num(rate, 0),
                     Table::percent(
                         counter.fraction_met_over(s, start, stop))});
      start = stop;
      rate += plan.benchmark_rate_step;
      ++step;
    }
    table.print(std::cout,
                "Fig. 6 continuous-run protocol — SLA " +
                    Table::num(counter.sla(s) * 1e3, 0) + " ms");
    std::cout << '\n';
  }
  std::cout << "(compare against the independent-point series of "
               "fig6_s1_prediction; agreement validates the protocol)\n";
  return 0;
}
