#include "stats/sla.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace cosm::stats {

SlaCounter::SlaCounter(std::vector<double> slas, double interval_length)
    : slas_(std::move(slas)), interval_length_(interval_length) {
  COSM_REQUIRE(!slas_.empty(), "at least one SLA threshold required");
  for (const double s : slas_) {
    COSM_REQUIRE(s > 0, "SLA thresholds must be positive");
  }
  COSM_REQUIRE(interval_length > 0, "interval length must be positive");
}

void SlaCounter::record(double completion_time, double latency) {
  COSM_REQUIRE(completion_time >= 0, "completion time must be non-negative");
  const auto interval =
      static_cast<std::size_t>(completion_time / interval_length_);
  if (interval >= met_.size()) {
    met_.resize(interval + 1,
                std::vector<std::uint64_t>(slas_.size(), 0));
    totals_.resize(interval + 1, 0);
  }
  ++totals_[interval];
  ++total_requests_;
  for (std::size_t i = 0; i < slas_.size(); ++i) {
    if (latency <= slas_[i]) ++met_[interval][i];
  }
}

double SlaCounter::fraction_met(std::size_t sla_index,
                                std::size_t interval) const {
  COSM_REQUIRE(sla_index < slas_.size(), "SLA index out of range");
  COSM_REQUIRE(interval < met_.size(), "interval out of range");
  if (totals_[interval] == 0) return 0.0;
  return static_cast<double>(met_[interval][sla_index]) /
         static_cast<double>(totals_[interval]);
}

double SlaCounter::fraction_met_over(std::size_t sla_index,
                                     std::size_t first,
                                     std::size_t last) const {
  COSM_REQUIRE(sla_index < slas_.size(), "SLA index out of range");
  COSM_REQUIRE(first <= last && last <= met_.size(),
               "interval range out of bounds");
  std::uint64_t met = 0;
  std::uint64_t total = 0;
  for (std::size_t j = first; j < last; ++j) {
    met += met_[j][sla_index];
    total += totals_[j];
  }
  return total == 0 ? 0.0
                    : static_cast<double>(met) / static_cast<double>(total);
}

double SlaCounter::fraction_met_total(std::size_t sla_index) const {
  return fraction_met_over(sla_index, 0, met_.size());
}

void PredictionErrorSummary::add(double predicted, double observed) {
  COSM_REQUIRE(predicted >= -1e-9 && predicted <= 1.0 + 1e-9,
               "predicted percentile must be in [0, 1]");
  COSM_REQUIRE(observed >= -1e-9 && observed <= 1.0 + 1e-9,
               "observed percentile must be in [0, 1]");
  errors_.push_back(predicted - observed);
}

double PredictionErrorSummary::mean_abs_error() const {
  COSM_REQUIRE(!errors_.empty(), "no prediction errors recorded");
  double sum = 0.0;
  for (const double e : errors_) sum += std::abs(e);
  return sum / static_cast<double>(errors_.size());
}

double PredictionErrorSummary::best_case() const {
  COSM_REQUIRE(!errors_.empty(), "no prediction errors recorded");
  double best = std::abs(errors_.front());
  for (const double e : errors_) best = std::min(best, std::abs(e));
  return best;
}

double PredictionErrorSummary::worst_case() const {
  COSM_REQUIRE(!errors_.empty(), "no prediction errors recorded");
  double worst = 0.0;
  for (const double e : errors_) worst = std::max(worst, std::abs(e));
  return worst;
}

double PredictionErrorSummary::mean_signed_error() const {
  COSM_REQUIRE(!errors_.empty(), "no prediction errors recorded");
  double sum = 0.0;
  for (const double e : errors_) sum += e;
  return sum / static_cast<double>(errors_.size());
}

}  // namespace cosm::stats
