#include "stats/p2_quantile.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace cosm::stats {

P2Quantile::P2Quantile(double p) : p_(p) {
  COSM_REQUIRE(p > 0 && p < 1, "quantile level must be in (0, 1)");
  desired_ = {1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0};
  increment_ = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
}

double P2Quantile::parabolic(int i, double d) const {
  // Jain & Chlamtac's piecewise-parabolic prediction formula.
  return q_[i] +
         d / (n_[i + 1] - n_[i - 1]) *
             ((n_[i] - n_[i - 1] + d) * (q_[i + 1] - q_[i]) /
                  (n_[i + 1] - n_[i]) +
              (n_[i + 1] - n_[i] - d) * (q_[i] - q_[i - 1]) /
                  (n_[i] - n_[i - 1]));
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return q_[i] + d * (q_[j] - q_[i]) / (n_[j] - n_[i]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    q_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(q_.begin(), q_.end());
      for (int i = 0; i < 5; ++i) n_[i] = i + 1;
    }
    return;
  }
  ++count_;
  // Locate the cell and update extreme markers.
  int cell;
  if (x < q_[0]) {
    q_[0] = x;
    cell = 0;
  } else if (x < q_[1]) {
    cell = 0;
  } else if (x < q_[2]) {
    cell = 1;
  } else if (x < q_[3]) {
    cell = 2;
  } else if (x <= q_[4]) {
    cell = 3;
  } else {
    q_[4] = x;
    cell = 3;
  }
  for (int i = cell + 1; i < 5; ++i) n_[i] += 1.0;
  for (int i = 0; i < 5; ++i) {
    desired_[i] += increment_[i];
  }
  // Adjust interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double gap = desired_[i] - n_[i];
    if ((gap >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (gap <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const double direction = gap >= 1.0 ? 1.0 : -1.0;
      double candidate = parabolic(i, direction);
      if (!(q_[i - 1] < candidate && candidate < q_[i + 1])) {
        candidate = linear(i, direction);
      }
      q_[i] = candidate;
      n_[i] += direction;
    }
  }
}

double P2Quantile::value() const {
  COSM_REQUIRE(count_ > 0, "no observations");
  if (count_ < 5) {
    // Exact order statistic over the few samples seen so far.
    std::array<double, 5> copy = q_;
    std::sort(copy.begin(), copy.begin() + count_);
    const auto index = static_cast<std::uint64_t>(
        p_ * static_cast<double>(count_ - 1) + 0.5);
    return copy[index];
  }
  return q_[2];
}

}  // namespace cosm::stats
