// SLA accounting, mirroring the paper's measurement procedure (Sec. V-A):
// "the system counts the number of requests that meet or violate the SLA
// ... for each minute" and percentiles are averaged over the 5 minutes of
// each arrival-rate step.  SlaCounter implements the per-interval counting;
// PredictionErrorSummary implements the Table I / Table II aggregation of
// |predicted - observed| across a run.
#pragma once

#include <cstdint>
#include <vector>

namespace cosm::stats {

class SlaCounter {
 public:
  // `slas` are latency thresholds (seconds); interval_length (seconds)
  // partitions time into measurement intervals.
  SlaCounter(std::vector<double> slas, double interval_length);

  // Record a completed request: completion wall-clock (simulated) time and
  // its response latency.
  void record(double completion_time, double latency);

  std::size_t sla_count() const { return slas_.size(); }
  double sla(std::size_t i) const { return slas_[i]; }
  std::size_t interval_count() const { return met_.size(); }

  // Fraction of requests meeting SLA i within interval j.
  double fraction_met(std::size_t sla_index, std::size_t interval) const;
  // Fraction over all intervals in [first, last) pooled together (the
  // paper's 5-minute averages).
  double fraction_met_over(std::size_t sla_index, std::size_t first,
                           std::size_t last) const;
  // Fraction over the whole run.
  double fraction_met_total(std::size_t sla_index) const;
  std::uint64_t total_requests() const { return total_requests_; }

 private:
  std::vector<double> slas_;
  double interval_length_;
  // met_[interval][sla], totals_[interval].
  std::vector<std::vector<std::uint64_t>> met_;
  std::vector<std::uint64_t> totals_;
  std::uint64_t total_requests_ = 0;
};

// Aggregates |predicted - observed| percentile errors (both in [0, 1])
// the way Tables I and II report them.
class PredictionErrorSummary {
 public:
  void add(double predicted, double observed);

  std::size_t count() const { return errors_.size(); }
  double mean_abs_error() const;
  double best_case() const;   // smallest |error|
  double worst_case() const;  // largest |error|
  // Mean signed error (positive = model over-predicts the percentile).
  double mean_signed_error() const;

 private:
  std::vector<double> errors_;  // signed
};

}  // namespace cosm::stats
