#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "obs/obs.hpp"

namespace cosm::stats {

LogHistogram::LogHistogram(double min_value, double max_value,
                           int buckets_per_decade)
    : min_value_(min_value) {
  COSM_REQUIRE(min_value > 0, "log histogram minimum must be positive");
  COSM_REQUIRE(max_value > min_value, "histogram range must be non-empty");
  COSM_REQUIRE(buckets_per_decade >= 1, "need at least 1 bucket per decade");
  log_min_ = std::log10(min_value);
  log_step_ = 1.0 / static_cast<double>(buckets_per_decade);
  inv_log_step_ = static_cast<double>(buckets_per_decade);
  const double decades = std::log10(max_value) - log_min_;
  const auto core = static_cast<std::size_t>(
      std::ceil(decades * buckets_per_decade));
  // +2 clamp buckets: index 0 for underflow, last for overflow.
  counts_.assign(core + 2, 0);
}

std::size_t LogHistogram::bucket_index(double value) const {
  if (!(value >= min_value_)) return 0;  // underflow (also NaN-safe)
  const double offset = (std::log10(value) - log_min_) * inv_log_step_;
  const auto index = static_cast<std::size_t>(offset) + 1;
  return std::min(index, counts_.size() - 1);
}

double LogHistogram::bucket_lower_edge(std::size_t index) const {
  if (index == 0) return 0.0;
  return std::pow(10.0,
                  log_min_ + static_cast<double>(index - 1) * log_step_);
}

void LogHistogram::add(double value) {
  const std::size_t index = bucket_index(value);
  if (obs::enabled()) {
    if (index == 0) obs::add(obs::Counter::kHistUnderflowAdd);
    if (index == counts_.size() - 1) obs::add(obs::Counter::kHistOverflowAdd);
  }
  ++counts_[index];
  ++total_;
}

void LogHistogram::merge(const LogHistogram& other) {
  COSM_REQUIRE(counts_.size() == other.counts_.size() &&
                   min_value_ == other.min_value_,
               "histograms must share the bucket layout");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double LogHistogram::quantile(double p) const {
  return quantile_checked(p).value;
}

QuantileEstimate LogHistogram::quantile_checked(double p) const {
  COSM_REQUIRE(p >= 0 && p <= 1, "quantile level must be in [0, 1]");
  COSM_REQUIRE(total_ > 0, "quantile of an empty histogram");
  const double target = p * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      // Clamp buckets retain no position information — interpolating
      // inside them fabricates a value (the old bug: a midpoint between
      // 0 and min_value for underflow).  When the quantile actually
      // lands on recorded clamp-bucket mass, report the provable bound.
      if (i == 0 && counts_[0] > 0) {
        obs::add(obs::Counter::kHistQuantileClamped);
        return {min_value_, QuantileBound::kUpperBound};
      }
      if (i == counts_.size() - 1 && counts_[i] > 0) {
        obs::add(obs::Counter::kHistQuantileClamped);
        return {bucket_lower_edge(i), QuantileBound::kLowerBound};
      }
      const double lower = bucket_lower_edge(i);
      const double upper = (i + 1 < counts_.size())
                               ? bucket_lower_edge(i + 1)
                               : lower;
      const double inside =
          counts_[i] > 0
              ? (target - cumulative) / static_cast<double>(counts_[i])
              : 0.0;
      return {lower + (upper - lower) * inside, QuantileBound::kExact};
    }
    cumulative = next;
  }
  return {bucket_lower_edge(counts_.size() - 1), QuantileBound::kExact};
}

double LogHistogram::fraction_below(double threshold) const {
  COSM_REQUIRE(total_ > 0, "empirical CDF of an empty histogram");
  const std::size_t limit = bucket_index(threshold);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < limit; ++i) below += counts_[i];
  // Interpolate inside the threshold's own bucket.
  const double lower = bucket_lower_edge(limit);
  const double upper = (limit + 1 < counts_.size())
                           ? bucket_lower_edge(limit + 1)
                           : lower;
  double partial = 0.0;
  if (upper > lower && threshold > lower) {
    partial = std::min(1.0, (threshold - lower) / (upper - lower)) *
              static_cast<double>(counts_[limit]);
  }
  return (static_cast<double>(below) + partial) /
         static_cast<double>(total_);
}

}  // namespace cosm::stats
