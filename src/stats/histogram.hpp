// Log-bucketed latency histogram: constant-memory percentile estimation
// for long simulator runs where retaining raw samples is wasteful.
// Buckets grow geometrically, so relative quantile error is bounded by the
// per-decade resolution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cosm::stats {

// How to read a QuantileEstimate: kExact means the quantile fell in a
// core bucket and the interpolated value is good to one bucket width.
// The clamp verdicts mean the quantile fell in a clamp bucket, where the
// histogram retains no position information — the estimate is then the
// tightest provable bound, not an interpolation:
//  * kUpperBound — underflow bucket; the true quantile is <= value
//    (value = the histogram's min_value);
//  * kLowerBound — overflow bucket; the true quantile is >= value
//    (value = the last tracked bucket edge).
// Historical bug: quantile() used to interpolate *inside* clamp buckets,
// fabricating a midpoint between 0 and min_value (or pinning to the
// overflow edge) with no indication anything was wrong.  Both paths now
// return the bound and bump the hist.quantile_clamped obs counter.
enum class QuantileBound : std::uint8_t {
  kExact,
  kLowerBound,
  kUpperBound,
};

struct QuantileEstimate {
  double value = 0.0;
  QuantileBound bound = QuantileBound::kExact;
};

class LogHistogram {
 public:
  // Values in [min_value, max_value] are bucketed geometrically with
  // `buckets_per_decade` resolution; values below/above go to clamp
  // buckets.
  LogHistogram(double min_value, double max_value,
               int buckets_per_decade = 100);

  void add(double value);
  void merge(const LogHistogram& other);

  std::uint64_t count() const { return total_; }
  // Quantile estimate (bucket lower edge + linear interpolation); exact to
  // within one bucket width for core buckets.  When the quantile falls in
  // a clamp bucket this returns the provable bound — see QuantileBound;
  // use quantile_checked to learn which case occurred.
  double quantile(double p) const;
  // Same value, plus whether it is exact or a clamp-bucket bound.
  QuantileEstimate quantile_checked(double p) const;
  // Fraction of recorded values <= threshold.
  double fraction_below(double threshold) const;

  std::size_t bucket_count() const { return counts_.size(); }

 private:
  std::size_t bucket_index(double value) const;
  double bucket_lower_edge(std::size_t index) const;

  double min_value_;
  double log_min_;
  double inv_log_step_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace cosm::stats
