// Log-bucketed latency histogram: constant-memory percentile estimation
// for long simulator runs where retaining raw samples is wasteful.
// Buckets grow geometrically, so relative quantile error is bounded by the
// per-decade resolution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cosm::stats {

class LogHistogram {
 public:
  // Values in [min_value, max_value] are bucketed geometrically with
  // `buckets_per_decade` resolution; values below/above go to clamp
  // buckets.
  LogHistogram(double min_value, double max_value,
               int buckets_per_decade = 100);

  void add(double value);
  void merge(const LogHistogram& other);

  std::uint64_t count() const { return total_; }
  // Quantile estimate (bucket lower edge + linear interpolation); exact to
  // within one bucket width.
  double quantile(double p) const;
  // Fraction of recorded values <= threshold.
  double fraction_below(double threshold) const;

  std::size_t bucket_count() const { return counts_.size(); }

 private:
  std::size_t bucket_index(double value) const;
  double bucket_lower_edge(std::size_t index) const;

  double min_value_;
  double log_min_;
  double inv_log_step_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace cosm::stats
