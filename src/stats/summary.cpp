#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace cosm::stats {

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::mean() const { return count_ ? mean_ : 0.0; }

double StreamingStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::min() const {
  COSM_REQUIRE(count_ > 0, "min of an empty stream");
  return min_;
}

double StreamingStats::max() const {
  COSM_REQUIRE(count_ > 0, "max of an empty stream");
  return max_;
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
  queries_since_add_ = 0;
}

const std::vector<double>& SampleSet::sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double SampleSet::quantile(double p) const {
  COSM_REQUIRE(p >= 0 && p <= 1, "quantile level must be in [0, 1]");
  COSM_REQUIRE(!samples_.empty(), "quantile of an empty sample set");
  if (samples_.size() == 1) return samples_.front();
  const double position = p * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(position);
  const double frac = position - static_cast<double>(lo);
  if (!sorted_valid_ && ++queries_since_add_ <= kSortAfterQueries) {
    // One-off query: O(n) selection instead of the O(n log n) cached sort.
    scratch_ = samples_;
    const auto nth =
        scratch_.begin() + static_cast<std::ptrdiff_t>(lo);
    std::nth_element(scratch_.begin(), nth, scratch_.end());
    if (lo + 1 >= scratch_.size() || frac == 0.0) return *nth;
    // The interpolation partner is the smallest element of the right
    // partition, which nth_element already confined there.
    const double next = *std::min_element(nth + 1, scratch_.end());
    return *nth * (1.0 - frac) + next * frac;
  }
  const auto& s = sorted();
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

double SampleSet::fraction_below(double threshold) const {
  COSM_REQUIRE(!samples_.empty(), "empirical CDF of an empty sample set");
  if (!sorted_valid_ && ++queries_since_add_ <= kSortAfterQueries) {
    // One-off query: linear count, no copy, no sort.
    std::size_t below = 0;
    for (const double x : samples_) below += (x <= threshold) ? 1 : 0;
    return static_cast<double>(below) /
           static_cast<double>(samples_.size());
  }
  const auto& s = sorted();
  const auto it = std::upper_bound(s.begin(), s.end(), threshold);
  return static_cast<double>(it - s.begin()) /
         static_cast<double>(s.size());
}

double SampleSet::mean() const {
  COSM_REQUIRE(!samples_.empty(), "mean of an empty sample set");
  double sum = 0.0;
  for (const double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

}  // namespace cosm::stats
