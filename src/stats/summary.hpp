// Streaming summary statistics (Welford) and latency sample collections
// with exact quantiles — the measurement side of every experiment.
#pragma once

#include <cstddef>
#include <vector>

namespace cosm::stats {

// Numerically stable streaming mean/variance/min/max.
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  // Unbiased sample variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Collects raw samples and answers exact order-statistics queries.
// A handful of one-off queries after a batch of adds use O(n) selection
// (nth_element / a linear count) in a reusable scratch buffer; only
// sustained querying pays for — and then caches — a full sort.
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Exact p-quantile (nearest-rank with linear interpolation).
  double quantile(double p) const;
  // Fraction of samples <= threshold (empirical CDF).
  double fraction_below(double threshold) const;
  double mean() const;

  const std::vector<double>& raw() const { return samples_; }
  // Sorted view (sorts on first use).
  const std::vector<double>& sorted() const;

 private:
  // After this many order-statistics queries since the last add, the next
  // one builds the sorted cache: selection wins for a few queries, the
  // cached sort amortizes better beyond that.
  static constexpr unsigned kSortAfterQueries = 3;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable std::vector<double> scratch_;  // nth_element workspace, reused
  mutable bool sorted_valid_ = false;
  mutable unsigned queries_since_add_ = 0;
};

}  // namespace cosm::stats
