// P² (piecewise-parabolic) streaming quantile estimator, Jain & Chlamtac
// 1985: tracks a single quantile in O(1) memory without storing samples.
//
// The SLA counters answer "fraction under a FIXED latency bound"; P² is
// the dual — "what latency bound does the p-th percentile sit at right
// now" — which is what a production monitoring agent exports when it
// cannot afford per-request samples.  LogHistogram covers the same need
// with bounded relative error; P² needs no prior range.
#pragma once

#include <array>
#include <cstdint>

namespace cosm::stats {

class P2Quantile {
 public:
  // p in (0, 1): the tracked quantile level.
  explicit P2Quantile(double p);

  void add(double x);

  std::uint64_t count() const { return count_; }
  // Current estimate; requires at least 5 observations (exact order
  // statistics are used below that).
  double value() const;

 private:
  double parabolic(int i, double direction) const;
  double linear(int i, double direction) const;

  double p_;
  std::uint64_t count_ = 0;
  // Marker heights, positions, and desired positions (classic notation).
  std::array<double, 5> q_{};
  std::array<double, 5> n_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increment_{};
};

}  // namespace cosm::stats
