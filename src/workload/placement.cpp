#include "workload/placement.hpp"

#include "common/require.hpp"

namespace cosm::workload {

Placement::Placement(const PlacementConfig& config)
    : replica_count_(config.replica_count),
      device_count_(config.device_count),
      hash_seed_(config.seed) {
  COSM_REQUIRE(config.partition_count > 0, "need at least one partition");
  COSM_REQUIRE(config.replica_count >= 1, "need at least one replica");
  COSM_REQUIRE(config.device_count >= config.replica_count,
               "replicas of one partition must land on distinct devices");
  ring_.resize(config.partition_count);
  // Swift-style ring build: for each partition pick a pseudo-random
  // starting device and stride across distinct devices.  This is simpler
  // than Swift's balance-aware assignment but preserves the properties the
  // model relies on: distinct replica devices and an even device load.
  cosm::Rng rng(config.seed);
  for (std::uint32_t p = 0; p < config.partition_count; ++p) {
    const auto start =
        static_cast<DeviceId>(rng.uniform_index(device_count_));
    ring_[p].reserve(replica_count_);
    for (std::uint32_t r = 0; r < replica_count_; ++r) {
      ring_[p].push_back((start + r) % device_count_);
    }
  }
}

std::uint32_t Placement::partition_of(ObjectId id) const {
  // SplitMix64 as the ring hash: uniform and deterministic.
  cosm::SplitMix64 mixer(id ^ hash_seed_);
  return static_cast<std::uint32_t>(mixer.next() % ring_.size());
}

const std::vector<DeviceId>& Placement::replicas_of_partition(
    std::uint32_t partition) const {
  COSM_REQUIRE(partition < ring_.size(), "partition out of range");
  return ring_[partition];
}

std::vector<DeviceId> Placement::replicas_of(ObjectId id) const {
  return ring_[partition_of(id)];
}

DeviceId Placement::choose_replica(ObjectId id, cosm::Rng& rng) const {
  const auto& replicas = ring_[partition_of(id)];
  return replicas[rng.uniform_index(replicas.size())];
}

std::vector<double> Placement::traffic_share(
    const ObjectCatalog& catalog) const {
  std::vector<double> share(device_count_, 0.0);
  for (ObjectId id = 0; id < catalog.object_count(); ++id) {
    const auto& replicas = ring_[partition_of(id)];
    const double per_replica =
        catalog.popularity(id) / static_cast<double>(replicas.size());
    for (const DeviceId device : replicas) share[device] += per_replica;
  }
  return share;
}

}  // namespace cosm::workload
