// Trace analysis: the measurements an operator runs on a *real* trace
// (e.g. the paper's wikibench-derived Wikipedia trace) before synthesizing
// comparable workloads — request rate, size mixture, working-set size, and
// the Zipf popularity skew that drives cache miss ratios.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "workload/trace.hpp"

namespace cosm::workload {

struct TraceSummary {
  std::uint64_t requests = 0;
  double duration = 0.0;        // last - first timestamp
  double mean_rate = 0.0;       // requests / duration
  double mean_size = 0.0;       // bytes
  double median_size = 0.0;
  double p95_size = 0.0;
  std::uint64_t distinct_objects = 0;
  // Fraction of requests going to the most popular 1% of objects — the
  // quick long-tail diagnostic.
  double top_percent_share = 0.0;
};

TraceSummary summarize_trace(std::span<const TraceRecord> trace);

// Estimates the Zipf skew of object popularity by least-squares on the
// log(frequency) vs log(rank) line over objects with at least
// `min_count` hits (rank-1 regression is the standard quick estimator;
// a skew of 0 means uniform popularity).
double estimate_zipf_skew(std::span<const TraceRecord> trace,
                          std::uint64_t min_count = 5);

// Per-object request counts (popularity histogram input).
std::unordered_map<ObjectId, std::uint64_t> object_counts(
    std::span<const TraceRecord> trace);

// Builds an empirical ObjectCatalog from a trace: one catalog entry per
// distinct object, with its observed size and its observed request count
// as the popularity weight.  Returns the catalog and the mapping from
// trace object ids to catalog ranks (most popular = rank 0).
struct EmpiricalCatalog {
  ObjectCatalog catalog;
  std::unordered_map<ObjectId, ObjectId> rank_of;
};
EmpiricalCatalog catalog_from_trace(std::span<const TraceRecord> trace);

}  // namespace cosm::workload
