#include "workload/trace_stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/require.hpp"

namespace cosm::workload {

std::unordered_map<ObjectId, std::uint64_t> object_counts(
    std::span<const TraceRecord> trace) {
  std::unordered_map<ObjectId, std::uint64_t> counts;
  counts.reserve(trace.size() / 4 + 1);
  for (const auto& record : trace) ++counts[record.object_id];
  return counts;
}

TraceSummary summarize_trace(std::span<const TraceRecord> trace) {
  COSM_REQUIRE(!trace.empty(), "cannot summarize an empty trace");
  TraceSummary summary;
  summary.requests = trace.size();
  summary.duration = trace.back().timestamp - trace.front().timestamp;
  summary.mean_rate = summary.duration > 0
                          ? static_cast<double>(trace.size()) /
                                summary.duration
                          : 0.0;
  std::vector<double> sizes;
  sizes.reserve(trace.size());
  double size_sum = 0.0;
  for (const auto& record : trace) {
    sizes.push_back(static_cast<double>(record.size_bytes));
    size_sum += static_cast<double>(record.size_bytes);
  }
  summary.mean_size = size_sum / static_cast<double>(trace.size());
  std::sort(sizes.begin(), sizes.end());
  summary.median_size = sizes[sizes.size() / 2];
  summary.p95_size = sizes[static_cast<std::size_t>(
      0.95 * static_cast<double>(sizes.size() - 1))];

  auto counts = object_counts(trace);
  summary.distinct_objects = counts.size();
  std::vector<std::uint64_t> frequencies;
  frequencies.reserve(counts.size());
  for (const auto& [id, count] : counts) frequencies.push_back(count);
  std::sort(frequencies.begin(), frequencies.end(),
            std::greater<std::uint64_t>());
  const std::size_t head =
      std::max<std::size_t>(1, frequencies.size() / 100);
  std::uint64_t head_requests = 0;
  for (std::size_t i = 0; i < head; ++i) head_requests += frequencies[i];
  summary.top_percent_share = static_cast<double>(head_requests) /
                              static_cast<double>(trace.size());
  return summary;
}

EmpiricalCatalog catalog_from_trace(std::span<const TraceRecord> trace) {
  COSM_REQUIRE(!trace.empty(), "cannot build a catalog from an empty trace");
  auto counts = object_counts(trace);
  // Record each object's (last observed) size.
  std::unordered_map<ObjectId, std::uint64_t> sizes;
  sizes.reserve(counts.size());
  for (const auto& record : trace) sizes[record.object_id] = record.size_bytes;
  // Order by popularity, most popular first.
  std::vector<std::pair<ObjectId, std::uint64_t>> ordered(counts.begin(),
                                                          counts.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::uint64_t> catalog_sizes;
  std::vector<double> weights;
  catalog_sizes.reserve(ordered.size());
  weights.reserve(ordered.size());
  std::unordered_map<ObjectId, ObjectId> rank_of;
  rank_of.reserve(ordered.size());
  for (std::size_t rank = 0; rank < ordered.size(); ++rank) {
    const auto& [id, count] = ordered[rank];
    rank_of[id] = static_cast<ObjectId>(rank);
    catalog_sizes.push_back(std::max<std::uint64_t>(1, sizes[id]));
    weights.push_back(static_cast<double>(count));
  }
  return {ObjectCatalog(std::move(catalog_sizes), weights),
          std::move(rank_of)};
}

double estimate_zipf_skew(std::span<const TraceRecord> trace,
                          std::uint64_t min_count) {
  COSM_REQUIRE(!trace.empty(), "cannot estimate skew of an empty trace");
  auto counts = object_counts(trace);
  std::vector<std::uint64_t> frequencies;
  frequencies.reserve(counts.size());
  for (const auto& [id, count] : counts) {
    if (count >= min_count) frequencies.push_back(count);
  }
  COSM_REQUIRE(frequencies.size() >= 3,
               "too few frequently-accessed objects for a skew estimate; "
               "lower min_count or use a longer trace");
  std::sort(frequencies.begin(), frequencies.end(),
            std::greater<std::uint64_t>());
  // Least squares of log(freq) on log(rank): slope = -skew.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const double n = static_cast<double>(frequencies.size());
  for (std::size_t rank = 0; rank < frequencies.size(); ++rank) {
    const double x = std::log(static_cast<double>(rank + 1));
    const double y = std::log(static_cast<double>(frequencies[rank]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  return std::max(0.0, -slope);
}

}  // namespace cosm::workload
