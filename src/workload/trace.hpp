// Request traces: the record format, CSV persistence, and the synthetic
// phase-structured generator that stands in for the paper's rewritten
// Wikipedia trace.
//
// The paper controls load by rewriting trace timestamps into three phases
// (Sec. V-B): a warmup at a fixed rate, a transition at a trickle rate,
// and a benchmarking phase whose rate steps up every five minutes.  The
// generator reproduces exactly that structure with Poisson arrivals.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/catalog.hpp"

namespace cosm::workload {

struct TraceRecord {
  double timestamp = 0.0;  // seconds from trace start
  ObjectId object_id = 0;
  std::uint64_t size_bytes = 0;
};

// CSV persistence ("timestamp,object_id,size_bytes" with a header line).
void write_trace_csv(std::ostream& os, const std::vector<TraceRecord>& trace);
std::vector<TraceRecord> read_trace_csv(std::istream& is);

struct PhasePlan {
  double warmup_rate = 300.0;       // requests/s
  double warmup_duration = 10800.0; // paper: 3 hours
  double transition_rate = 10.0;
  double transition_duration = 3600.0;  // paper: 1 hour
  double benchmark_start_rate = 10.0;
  double benchmark_end_rate = 350.0;    // inclusive
  double benchmark_rate_step = 5.0;
  double benchmark_step_duration = 300.0;  // paper: 5 minutes per rate
};

struct PhaseSegment {
  double start_time;
  double duration;
  double rate;
  bool is_benchmark;  // only benchmark segments enter accuracy scoring
};

// Expands a PhasePlan into its constant-rate segments.
std::vector<PhaseSegment> expand_phases(const PhasePlan& plan);

// Drift scenarios (calibration loop): benchmark-rate shapes a PhasePlan's
// monotone ladder cannot express, built directly as segment sequences for
// sim::OpenLoopSource's segments constructor.

// Warmup, then a benchmark that holds `base_rate` for `base_duration` and
// steps abruptly to `stepped_rate` for `stepped_duration` — one sharp
// regime shift, the canonical drift-detection scenario.
std::vector<PhaseSegment> stepped_ramp_segments(
    double warmup_rate, double warmup_duration, double base_rate,
    double base_duration, double stepped_rate, double stepped_duration);

// Warmup, then a benchmark at `base_rate` with a transient flash crowd:
// after `burst_start` seconds of benchmark the rate jumps to `burst_rate`
// for `burst_duration`, then falls back to `base_rate` for
// `tail_duration` — a shift that reverts, exercising re-detection of the
// return to baseline.
std::vector<PhaseSegment> flash_crowd_segments(
    double warmup_rate, double warmup_duration, double base_rate,
    double burst_start, double burst_rate, double burst_duration,
    double tail_duration);

// Streams Poisson arrivals through the phase plan, drawing objects from
// the catalog, and hands each record to `sink`.  Returns the number of
// requests generated.
std::uint64_t generate_trace(const PhasePlan& plan,
                             const ObjectCatalog& catalog, cosm::Rng& rng,
                             const std::function<void(const TraceRecord&)>& sink);

// Convenience: materialize the whole trace in memory.
std::vector<TraceRecord> generate_trace_vector(const PhasePlan& plan,
                                               const ObjectCatalog& catalog,
                                               cosm::Rng& rng);

}  // namespace cosm::workload
