// Request traces: the record format, CSV persistence, and the synthetic
// phase-structured generator that stands in for the paper's rewritten
// Wikipedia trace.
//
// The paper controls load by rewriting trace timestamps into three phases
// (Sec. V-B): a warmup at a fixed rate, a transition at a trickle rate,
// and a benchmarking phase whose rate steps up every five minutes.  The
// generator reproduces exactly that structure with Poisson arrivals.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/catalog.hpp"

namespace cosm::workload {

struct TraceRecord {
  double timestamp = 0.0;  // seconds from trace start
  ObjectId object_id = 0;
  std::uint64_t size_bytes = 0;
};

// CSV persistence ("timestamp,object_id,size_bytes" with a header line).
void write_trace_csv(std::ostream& os, const std::vector<TraceRecord>& trace);
std::vector<TraceRecord> read_trace_csv(std::istream& is);

struct PhasePlan {
  double warmup_rate = 300.0;       // requests/s
  double warmup_duration = 10800.0; // paper: 3 hours
  double transition_rate = 10.0;
  double transition_duration = 3600.0;  // paper: 1 hour
  double benchmark_start_rate = 10.0;
  double benchmark_end_rate = 350.0;    // inclusive
  double benchmark_rate_step = 5.0;
  double benchmark_step_duration = 300.0;  // paper: 5 minutes per rate
};

struct PhaseSegment {
  double start_time;
  double duration;
  double rate;
  bool is_benchmark;  // only benchmark segments enter accuracy scoring
};

// Expands a PhasePlan into its constant-rate segments.
std::vector<PhaseSegment> expand_phases(const PhasePlan& plan);

// Streams Poisson arrivals through the phase plan, drawing objects from
// the catalog, and hands each record to `sink`.  Returns the number of
// requests generated.
std::uint64_t generate_trace(const PhasePlan& plan,
                             const ObjectCatalog& catalog, cosm::Rng& rng,
                             const std::function<void(const TraceRecord&)>& sink);

// Convenience: materialize the whole trace in memory.
std::vector<TraceRecord> generate_trace_vector(const PhasePlan& plan,
                                               const ObjectCatalog& catalog,
                                               cosm::Rng& rng);

}  // namespace cosm::workload
