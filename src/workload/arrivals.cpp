#include "workload/arrivals.hpp"

#include "common/require.hpp"

namespace cosm::workload {

double PoissonArrivals::next_gap(double mean_rate, cosm::Rng& rng) {
  COSM_REQUIRE(mean_rate > 0, "arrival rate must be positive");
  return rng.exponential(mean_rate);
}

double DeterministicArrivals::next_gap(double mean_rate, cosm::Rng&) {
  COSM_REQUIRE(mean_rate > 0, "arrival rate must be positive");
  return 1.0 / mean_rate;
}

MmppArrivals::MmppArrivals(double amplitude, double dwell)
    : amplitude_(amplitude), dwell_(dwell) {
  COSM_REQUIRE(amplitude >= 0 && amplitude < 1,
               "MMPP amplitude must be in [0, 1)");
  COSM_REQUIRE(dwell > 0, "MMPP dwell must be positive");
}

double MmppArrivals::next_gap(double mean_rate, cosm::Rng& rng) {
  COSM_REQUIRE(mean_rate > 0, "arrival rate must be positive");
  // Walk across state boundaries until a gap completes.  Within a state
  // the process is Poisson at the modulated rate; a gap spanning a state
  // change accumulates the time spent in each state (thinning by
  // memorylessness within states).
  double gap = 0.0;
  for (;;) {
    if (state_left_ <= 0.0) {
      storm_ = !storm_;
      state_left_ = rng.exponential(1.0 / dwell_);
    }
    const double rate =
        mean_rate * (storm_ ? 1.0 + amplitude_ : 1.0 - amplitude_);
    const double candidate = rng.exponential(rate);
    if (candidate <= state_left_) {
      state_left_ -= candidate;
      return gap + candidate;
    }
    gap += state_left_;
    state_left_ = 0.0;
  }
}

}  // namespace cosm::workload
