// Arrival processes.
//
// The model assumes Poisson arrivals (paper Sec. III-A, citing Meisner et
// al. that Poisson approximates scale-out workloads well).  To test how
// much of the model's accuracy hangs on that assumption, the simulator
// can also be driven by:
//  * Deterministic  — evenly spaced arrivals (CV = 0, smoother than
//                     Poisson);
//  * MMPP(2)        — a two-state Markov-modulated Poisson process
//                     (bursty: a "calm" and a "storm" rate with
//                     exponential dwell times), parameterized by a
//                     burstiness factor while preserving the long-run
//                     mean rate.
// All processes hand out successive inter-arrival gaps for a given mean
// rate, so OpenLoopSource can swap them freely.
#pragma once

#include <memory>

#include "common/rng.hpp"

namespace cosm::workload {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  // Next inter-arrival gap (seconds) for the given long-run mean rate.
  virtual double next_gap(double mean_rate, cosm::Rng& rng) = 0;
  virtual const char* name() const = 0;
};

class PoissonArrivals final : public ArrivalProcess {
 public:
  double next_gap(double mean_rate, cosm::Rng& rng) override;
  const char* name() const override { return "poisson"; }
};

class DeterministicArrivals final : public ArrivalProcess {
 public:
  double next_gap(double mean_rate, cosm::Rng& rng) override;
  const char* name() const override { return "deterministic"; }
};

// Two-state MMPP: rates (1 ± amplitude) * mean_rate with mean state dwell
// `dwell` seconds.  amplitude in [0, 1); amplitude 0 degenerates to
// Poisson.  The long-run rate equals mean_rate because the two states are
// symmetric.
class MmppArrivals final : public ArrivalProcess {
 public:
  MmppArrivals(double amplitude, double dwell);
  double next_gap(double mean_rate, cosm::Rng& rng) override;
  const char* name() const override { return "mmpp2"; }

 private:
  double amplitude_;
  double dwell_;
  bool storm_ = false;
  double state_left_ = 0.0;  // remaining dwell in the current state
};

using ArrivalProcessPtr = std::shared_ptr<ArrivalProcess>;

}  // namespace cosm::workload
