// Object catalog: the population of data objects ("blobs") the workload
// reads.
//
// Mirrors the paper's trace characteristics (Sec. V-A): object sizes are
// long-tailed with a small mean (~32KB objects, ~10KB mean request), and
// popularity follows a heavy-tailed (Zipf) law — which is what makes the
// index/metadata caches miss in the first place (Sec. II's long-tail
// argument).  Object identity is a dense rank; rank 0 is the most popular.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "numerics/distribution.hpp"

namespace cosm::workload {

using ObjectId = std::uint64_t;

struct CatalogConfig {
  std::uint64_t object_count = 100000;
  double zipf_skew = 0.9;
  // Object sizes are drawn i.i.d. from this distribution (bytes) at
  // catalog construction, then fixed — an object always has one size.
  numerics::DistPtr size_distribution;
  std::uint64_t min_object_bytes = 256;
  std::uint64_t max_object_bytes = 64ull << 20;  // 64 MiB cap
  std::uint64_t seed = 1;
};

// A lognormal with the given mean and sigma(log) — the shape observed for
// web media objects; mean defaults to the paper's ~32KB.
numerics::DistPtr default_size_distribution(double mean_bytes = 32.0 * 1024,
                                            double sigma_log = 1.2);

class ObjectCatalog {
 public:
  explicit ObjectCatalog(const CatalogConfig& config);

  // Empirical catalog: explicit per-object sizes (bytes) and popularity
  // weights (any non-negative values; normalized internally).  This is
  // how a *real* trace feeds the simulator — see
  // workload::catalog_from_trace in trace_stats.hpp.
  ObjectCatalog(std::vector<std::uint64_t> sizes,
                const std::vector<double>& popularity_weights);

  std::uint64_t object_count() const { return sizes_.size(); }
  std::uint64_t size_of(ObjectId id) const;

  // Popularity-weighted object draw.
  ObjectId sample_object(cosm::Rng& rng) const;
  double popularity(ObjectId id) const;

  double mean_object_size() const { return mean_size_; }

  // Expected number of data chunks per request given a chunk size, i.e.
  // the popularity-weighted E[ceil(size / chunk)] — this is what turns the
  // request arrival rate r into the data-read rate r_data of the model.
  double expected_chunks_per_request(std::uint64_t chunk_bytes) const;

 private:
  std::vector<std::uint64_t> sizes_;
  cosm::WeightedSampler popularity_;
  double mean_size_;
};

}  // namespace cosm::workload
