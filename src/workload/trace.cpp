#include "workload/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/require.hpp"

namespace cosm::workload {

void write_trace_csv(std::ostream& os,
                     const std::vector<TraceRecord>& trace) {
  os << "timestamp,object_id,size_bytes\n";
  for (const auto& rec : trace) {
    os << rec.timestamp << ',' << rec.object_id << ',' << rec.size_bytes
       << '\n';
  }
}

std::vector<TraceRecord> read_trace_csv(std::istream& is) {
  std::vector<TraceRecord> trace;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      COSM_REQUIRE(line == "timestamp,object_id,size_bytes",
                   "unrecognized trace CSV header: " + line);
      continue;
    }
    std::istringstream fields(line);
    TraceRecord rec;
    char comma1 = 0;
    char comma2 = 0;
    fields >> rec.timestamp >> comma1 >> rec.object_id >> comma2 >>
        rec.size_bytes;
    COSM_REQUIRE(!fields.fail() && comma1 == ',' && comma2 == ',',
                 "malformed trace CSV line: " + line);
    trace.push_back(rec);
  }
  return trace;
}

std::vector<PhaseSegment> expand_phases(const PhasePlan& plan) {
  COSM_REQUIRE(plan.warmup_duration >= 0 && plan.transition_duration >= 0,
               "phase durations must be non-negative");
  COSM_REQUIRE(plan.benchmark_step_duration > 0,
               "benchmark step duration must be positive");
  COSM_REQUIRE(plan.benchmark_rate_step > 0,
               "benchmark rate step must be positive");
  COSM_REQUIRE(plan.benchmark_start_rate > 0 &&
                   plan.benchmark_end_rate >= plan.benchmark_start_rate,
               "benchmark rate range must be increasing");
  std::vector<PhaseSegment> segments;
  double now = 0.0;
  if (plan.warmup_duration > 0) {
    COSM_REQUIRE(plan.warmup_rate > 0, "warmup rate must be positive");
    segments.push_back({now, plan.warmup_duration, plan.warmup_rate, false});
    now += plan.warmup_duration;
  }
  if (plan.transition_duration > 0) {
    COSM_REQUIRE(plan.transition_rate > 0,
                 "transition rate must be positive");
    segments.push_back(
        {now, plan.transition_duration, plan.transition_rate, false});
    now += plan.transition_duration;
  }
  for (double rate = plan.benchmark_start_rate;
       rate <= plan.benchmark_end_rate + 1e-9;
       rate += plan.benchmark_rate_step) {
    segments.push_back({now, plan.benchmark_step_duration, rate, true});
    now += plan.benchmark_step_duration;
  }
  return segments;
}

std::vector<PhaseSegment> stepped_ramp_segments(
    double warmup_rate, double warmup_duration, double base_rate,
    double base_duration, double stepped_rate, double stepped_duration) {
  COSM_REQUIRE(warmup_duration >= 0, "warmup duration must be non-negative");
  COSM_REQUIRE(base_rate > 0 && base_duration > 0,
               "base phase must have positive rate and duration");
  COSM_REQUIRE(stepped_rate > 0 && stepped_duration > 0,
               "stepped phase must have positive rate and duration");
  std::vector<PhaseSegment> segments;
  double now = 0.0;
  if (warmup_duration > 0) {
    COSM_REQUIRE(warmup_rate > 0, "warmup rate must be positive");
    segments.push_back({now, warmup_duration, warmup_rate, false});
    now += warmup_duration;
  }
  segments.push_back({now, base_duration, base_rate, true});
  now += base_duration;
  segments.push_back({now, stepped_duration, stepped_rate, true});
  return segments;
}

std::vector<PhaseSegment> flash_crowd_segments(
    double warmup_rate, double warmup_duration, double base_rate,
    double burst_start, double burst_rate, double burst_duration,
    double tail_duration) {
  COSM_REQUIRE(warmup_duration >= 0, "warmup duration must be non-negative");
  COSM_REQUIRE(base_rate > 0 && burst_start > 0,
               "base phase must have positive rate and duration");
  COSM_REQUIRE(burst_rate > 0 && burst_duration > 0,
               "burst must have positive rate and duration");
  COSM_REQUIRE(tail_duration > 0, "tail duration must be positive");
  std::vector<PhaseSegment> segments;
  double now = 0.0;
  if (warmup_duration > 0) {
    COSM_REQUIRE(warmup_rate > 0, "warmup rate must be positive");
    segments.push_back({now, warmup_duration, warmup_rate, false});
    now += warmup_duration;
  }
  segments.push_back({now, burst_start, base_rate, true});
  now += burst_start;
  segments.push_back({now, burst_duration, burst_rate, true});
  now += burst_duration;
  segments.push_back({now, tail_duration, base_rate, true});
  return segments;
}

std::uint64_t generate_trace(
    const PhasePlan& plan, const ObjectCatalog& catalog, cosm::Rng& rng,
    const std::function<void(const TraceRecord&)>& sink) {
  COSM_REQUIRE(sink != nullptr, "trace sink must be callable");
  std::uint64_t count = 0;
  for (const PhaseSegment& segment : expand_phases(plan)) {
    double t = segment.start_time + rng.exponential(segment.rate);
    const double end = segment.start_time + segment.duration;
    while (t < end) {
      const ObjectId id = catalog.sample_object(rng);
      sink({t, id, catalog.size_of(id)});
      ++count;
      t += rng.exponential(segment.rate);
    }
  }
  return count;
}

std::vector<TraceRecord> generate_trace_vector(const PhasePlan& plan,
                                               const ObjectCatalog& catalog,
                                               cosm::Rng& rng) {
  std::vector<TraceRecord> trace;
  generate_trace(plan, catalog, rng,
                 [&trace](const TraceRecord& rec) { trace.push_back(rec); });
  return trace;
}

}  // namespace cosm::workload
