// Object placement: hash-based partitioning with replication, modeled on
// OpenStack Swift's ring (Sec. V-A: "Data objects are mapped to 1,024
// partitions based on hashing, and each partition has 3 replicas ...
// evenly distributed among the 4 disks, replicas of the same partition on
// different disks").
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workload/catalog.hpp"

namespace cosm::workload {

using DeviceId = std::uint32_t;

struct PlacementConfig {
  std::uint32_t partition_count = 1024;
  std::uint32_t replica_count = 3;
  std::uint32_t device_count = 4;
  std::uint64_t seed = 99;
};

class Placement {
 public:
  explicit Placement(const PlacementConfig& config);

  std::uint32_t partition_of(ObjectId id) const;
  // The replica device list of a partition; devices are distinct as long
  // as replica_count <= device_count.
  const std::vector<DeviceId>& replicas_of_partition(
      std::uint32_t partition) const;
  std::vector<DeviceId> replicas_of(ObjectId id) const;

  // Swift frontends pick a replica (randomly in our router, matching the
  // paper's note that "randomness exists in the replica choosing scheme").
  DeviceId choose_replica(ObjectId id, cosm::Rng& rng) const;

  std::uint32_t device_count() const { return device_count_; }
  std::uint32_t partition_count() const {
    return static_cast<std::uint32_t>(ring_.size());
  }
  std::uint32_t replica_count() const { return replica_count_; }

  // Fraction of (popularity-weighted) traffic that lands on each device
  // under uniform random replica choice — feeds the model's per-device
  // arrival rates r_j (Eq. 3).
  std::vector<double> traffic_share(const ObjectCatalog& catalog) const;

 private:
  std::uint32_t replica_count_;
  std::uint32_t device_count_;
  std::uint64_t hash_seed_;
  // ring_[partition] = replica device list.
  std::vector<std::vector<DeviceId>> ring_;
};

}  // namespace cosm::workload
