#include "workload/catalog.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace cosm::workload {

numerics::DistPtr default_size_distribution(double mean_bytes,
                                            double sigma_log) {
  COSM_REQUIRE(mean_bytes > 0, "mean object size must be positive");
  // E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
  const double mu = std::log(mean_bytes) - 0.5 * sigma_log * sigma_log;
  return std::make_shared<numerics::Lognormal>(mu, sigma_log);
}

namespace {

std::vector<double> zipf_weights(std::uint64_t n, double skew) {
  COSM_REQUIRE(n > 0, "catalog needs at least one object");
  COSM_REQUIRE(skew >= 0, "zipf skew must be non-negative");
  std::vector<double> weights(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), skew);
  }
  return weights;
}

}  // namespace

ObjectCatalog::ObjectCatalog(const CatalogConfig& config)
    : popularity_(zipf_weights(config.object_count, config.zipf_skew)) {
  COSM_REQUIRE(config.object_count > 0, "catalog needs at least one object");
  COSM_REQUIRE(config.size_distribution != nullptr,
               "catalog needs a size distribution");
  COSM_REQUIRE(config.min_object_bytes > 0 &&
                   config.min_object_bytes <= config.max_object_bytes,
               "invalid object size bounds");
  cosm::Rng rng(config.seed);
  sizes_.resize(config.object_count);
  double total = 0.0;
  for (auto& size : sizes_) {
    const double drawn = config.size_distribution->sample(rng);
    const auto clamped = std::clamp(
        static_cast<std::uint64_t>(std::llround(std::max(drawn, 1.0))),
        config.min_object_bytes, config.max_object_bytes);
    size = clamped;
    total += static_cast<double>(clamped);
  }
  mean_size_ = total / static_cast<double>(sizes_.size());
}

ObjectCatalog::ObjectCatalog(std::vector<std::uint64_t> sizes,
                             const std::vector<double>& popularity_weights)
    : sizes_(std::move(sizes)), popularity_(popularity_weights) {
  COSM_REQUIRE(!sizes_.empty(), "catalog needs at least one object");
  COSM_REQUIRE(sizes_.size() == popularity_weights.size(),
               "sizes and popularity weights must align");
  double total = 0.0;
  for (const auto size : sizes_) {
    COSM_REQUIRE(size > 0, "object sizes must be positive");
    total += static_cast<double>(size);
  }
  mean_size_ = total / static_cast<double>(sizes_.size());
}

std::uint64_t ObjectCatalog::size_of(ObjectId id) const {
  COSM_REQUIRE(id < sizes_.size(), "object id out of range");
  return sizes_[id];
}

ObjectId ObjectCatalog::sample_object(cosm::Rng& rng) const {
  return popularity_.sample(rng);
}

double ObjectCatalog::popularity(ObjectId id) const {
  return popularity_.probability(id);
}

double ObjectCatalog::expected_chunks_per_request(
    std::uint64_t chunk_bytes) const {
  COSM_REQUIRE(chunk_bytes > 0, "chunk size must be positive");
  double expectation = 0.0;
  for (ObjectId id = 0; id < sizes_.size(); ++id) {
    const double chunks = std::ceil(static_cast<double>(sizes_[id]) /
                                    static_cast<double>(chunk_bytes));
    expectation += popularity_.probability(id) * chunks;
  }
  return expectation;
}

}  // namespace cosm::workload
