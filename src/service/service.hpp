// Long-lived what-if prediction service.
//
// The library answers one what-if per process invocation; an operator's
// workflow is a *stream* of them — "would cluster A meet 100 ms p95 at
// 1.3x load?", "how many devices does cluster B need tonight?", "how much
// SSD buys cluster C p99 <= 50 ms?" — asked against many named clusters
// at once.  WhatIfService keeps the models' expensive state (one shared
// core::PredictionCache, lock-striped so tenants do not serialize on its
// mutex) resident across requests and answers each from a line-delimited
// JSON protocol:
//
//   request:  one JSON object per line, {"op": "...", ...}
//   response: one JSON object per line, {"ok": true/false, ...}
//
// Ops (fields beyond `op`; every request may carry an `id` that is echoed
// back verbatim for correlation):
//   register  cluster, rate, devices [, processes, frontend_processes,
//             frontend_parse_ms, backend_parse_ms, data_read_factor,
//             index_miss, meta_miss, data_miss,
//             {index,meta,data}_disk_{shape,rate}] — define or replace a
//             named cluster family (the device profile defaults to the
//             repo's benchmarked HDD profile).
//   sla       cluster, sla | slas[] (seconds) [, rate, devices] —
//             P[latency <= sla] for each bound.
//   quantile  cluster, p | ps[] [, rate, devices] — latency bound
//             (seconds) met by fraction p of requests.
//   devices   cluster, sla, percentile [, rate, min, max] — smallest
//             device count meeting the target (core::min_devices_for).
//   capacity  cluster, sla, percentile [, devices, rate_limit,
//             tolerance] — largest admitted rate meeting the target
//             (core::max_admission_rate).
//   tier_size cluster, sla, percentile, capacities[] (chunks) [, objects,
//             zipf_skew, chunk_kb, mem_chunks, ssd_read_ms,
//             ssd_write_ms] — smallest SSD tier meeting the target, hit
//             ratios predicted by Che's approximation over the Zipf
//             catalog (calibration::predict_tier_hit_ratio).
//   calibrate cluster, rate, mean_service_ms [, samples, min_samples,
//             data_read_rate, index_miss, meta_miss, data_miss,
//             ph_delta, ph_lambda, warmup_windows, confirm_windows,
//             cooldown_windows] — offer one closed measurement window of
//             online metrics to the cluster's drift detector
//             (calibration/drift.hpp).  On confirmed drift the spec is
//             re-fitted in place (rates, miss ratios, disk service means
//             re-split via calibration::split_disk_service with the
//             registered shapes kept) and the stale backend cache entry
//             is erased by fingerprint; stale cdf entries are unreachable
//             under the new fingerprint and age out by LRU.  Detector
//             knobs are read at the first calibrate call per cluster.
//   drift_status cluster — the cluster's loop state: windows offered,
//             last verdict, alarmed signals, re-fit count, current rate.
//   list      — registered cluster names.
//   stats     — shared-cache counters (hits/misses/evictions/shards) and
//             request counters.
//
// Execution.  Requests are handled on the caller's thread; the service
// object is safe to drive from many threads at once (the registry is
// guarded by a shared_mutex, specs are copied out before model building,
// and the PredictionCache is internally lock-striped).  ServiceConfig
// picks the tape evaluation mode — kSimd by default, which is
// bit-identical to kExact (numerics/tape_mode.hpp) — and the fan-out
// width each request's model building may use.
//
// Determinism: identical requests against identical registry state
// produce byte-identical response lines, cached or not, whatever the
// thread count — the property bench/perf_service.cpp gates on.
//
// Observability: every request bumps obs::Counter::kServiceRequests,
// error responses bump kServiceErrors, each produced number bumps
// kServicePredictions, and each op runs under an obs::Span named
// "service.<op>".
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "calibration/drift.hpp"
#include "common/json.hpp"
#include "core/params.hpp"

namespace cosm::service {

struct ServiceConfig {
  // PredictOptions::num_threads for each request's model building /
  // sweeps (1 = serial; results are identical for every setting).
  unsigned num_threads = 1;
  // Tape evaluation mode for every prediction.  The default kSimd is
  // bit-identical to kExact; kSimdFast trades ULP-bounded deviations for
  // speed (see numerics/tape_mode.hpp and docs/PERFORMANCE.md §7).
  numerics::TapeEvalMode tape_mode = numerics::TapeEvalMode::kSimd;
};

// A registered cluster family: everything needed to build SystemParams
// for any (total rate, device count) the what-if ops probe.  Defaults
// mirror the HDD profile benchmarked throughout the repo.
struct ClusterSpec {
  double rate = 400.0;          // total arrival rate, req/s
  unsigned devices = 8;         // device count
  unsigned processes = 1;       // backend processes per device
  unsigned frontend_processes = 3;
  double frontend_parse_ms = 0.8;
  double backend_parse_ms = 0.5;
  double data_read_factor = 1.2;  // data-read rate / arrival rate
  double index_miss = 0.3;
  double meta_miss = 0.3;
  double data_miss = 0.7;
  double index_disk_shape = 3.0, index_disk_rate = 300.0;
  double meta_disk_shape = 2.5, meta_disk_rate = 312.5;
  double data_disk_shape = 2.8, data_disk_rate = 233.33;

  // SystemParams for this family at (total_rate, device_count), traffic
  // split evenly; `tier` (capacity 0 = no tier) attaches an SSD tier with
  // the given hit ratio and Degenerate read/write service times.
  core::SystemParams build(double total_rate, unsigned device_count,
                           double tier_hit_ratio = 0.0,
                           double ssd_read_ms = 0.0,
                           double ssd_write_ms = 0.0) const;
};

class WhatIfService {
 public:
  explicit WhatIfService(ServiceConfig config = {});

  // One protocol round: parses `line`, dispatches, serializes.  Never
  // throws — every failure becomes an {"ok": false, "error": ...} line.
  std::string handle_line(std::string_view line);

  // Structured form of the same round-trip (for tests and embedding).
  common::JsonValue handle(const common::JsonValue& request);

  // The shared cross-tenant cache (exposed for stats and benches).
  core::PredictionCache& cache() { return cache_; }
  const ServiceConfig& config() const { return config_; }

 private:
  common::JsonValue dispatch(const common::JsonValue& request);
  ClusterSpec spec_for(const common::JsonValue& request) const;
  core::PredictOptions predict_options() const;

  // Per-cluster online calibration state (the service-facing face of the
  // loop in calibration/recalibrate.hpp — signals arrive over the wire
  // instead of from simulator counters, and the re-fit rewrites the
  // registered ClusterSpec in place).
  struct DriftState {
    calibration::DriftDetector detector;
    std::uint64_t windows = 0;
    std::uint64_t insufficient = 0;
    std::uint64_t refits = 0;
    calibration::DriftVerdict last_verdict =
        calibration::DriftVerdict::kWarmup;
    std::uint32_t last_alarm_mask = 0;
  };

  common::JsonValue op_register(const common::JsonValue& request);
  common::JsonValue op_calibrate(const common::JsonValue& request);
  common::JsonValue op_drift_status(const common::JsonValue& request) const;
  common::JsonValue op_sla(const common::JsonValue& request) const;
  common::JsonValue op_quantile(const common::JsonValue& request) const;
  common::JsonValue op_devices(const common::JsonValue& request) const;
  common::JsonValue op_capacity(const common::JsonValue& request) const;
  common::JsonValue op_tier_size(const common::JsonValue& request) const;
  common::JsonValue op_list() const;
  common::JsonValue op_stats() const;

  ServiceConfig config_;
  // Shared across every tenant and every calling thread; lock-striped
  // internally (core/params.hpp), so concurrent requests contend only on
  // individual stripes, not one global mutex.  `mutable` because caching
  // is invisible state: const query ops still warm it.
  mutable core::PredictionCache cache_;
  mutable std::shared_mutex registry_mutex_;
  std::unordered_map<std::string, ClusterSpec> clusters_;
  // Guarded by registry_mutex_ alongside the specs it re-fits.
  std::unordered_map<std::string, DriftState> drift_states_;
};

}  // namespace cosm::service
