#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "calibration/lru_prediction.hpp"
#include "calibration/online_metrics.hpp"
#include "core/errors.hpp"
#include "core/system_model.hpp"
#include "core/whatif.hpp"
#include "numerics/distribution.hpp"
#include "obs/obs.hpp"
#include "workload/catalog.hpp"

namespace cosm::service {
namespace {

using common::JsonValue;

// Protocol-level failure: caught at the dispatch boundary and turned into
// an {"ok": false, "error": ...} response.
struct RequestError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

double require_number(const JsonValue& request, std::string_view key) {
  const JsonValue* v = request.find(key);
  if (v == nullptr || !v->is_number()) {
    throw RequestError("missing numeric field '" + std::string(key) + "'");
  }
  return v->as_number();
}

std::string require_string(const JsonValue& request, std::string_view key) {
  const JsonValue* v = request.find(key);
  if (v == nullptr || !v->is_string()) {
    throw RequestError("missing string field '" + std::string(key) + "'");
  }
  return v->as_string();
}

// Accepts either a scalar `single` or an array `plural` of numbers.
std::vector<double> number_list(const JsonValue& request,
                                std::string_view single,
                                std::string_view plural) {
  if (const JsonValue* arr = request.find(plural)) {
    if (!arr->is_array() || arr->items().empty()) {
      throw RequestError("field '" + std::string(plural) +
                         "' must be a non-empty array");
    }
    std::vector<double> values;
    values.reserve(arr->items().size());
    for (const JsonValue& item : arr->items()) {
      if (!item.is_number()) {
        throw RequestError("field '" + std::string(plural) +
                           "' must contain only numbers");
      }
      values.push_back(item.as_number());
    }
    return values;
  }
  return {require_number(request, single)};
}

// Response skeleton; the request's `id` (any JSON value) is echoed back.
JsonValue make_response(const JsonValue& request, bool ok) {
  JsonValue response = JsonValue::object();
  response.set("ok", ok);
  if (const JsonValue* id = request.find("id")) response.set("id", *id);
  return response;
}

JsonValue error_response(const JsonValue& request, const std::string& what) {
  obs::add(obs::Counter::kServiceErrors);
  JsonValue response = make_response(request, false);
  response.set("error", what);
  return response;
}

// Span names must be string literals (the obs ring stores the pointer).
const char* span_name(std::string_view op) {
  if (op == "register") return "service.register";
  if (op == "calibrate") return "service.calibrate";
  if (op == "drift_status") return "service.drift_status";
  if (op == "sla") return "service.sla";
  if (op == "quantile") return "service.quantile";
  if (op == "devices") return "service.devices";
  if (op == "capacity") return "service.capacity";
  if (op == "tier_size") return "service.tier_size";
  if (op == "list") return "service.list";
  if (op == "stats") return "service.stats";
  return "service.unknown";
}

void spec_overrides(ClusterSpec& spec, const JsonValue& request) {
  spec.rate = request.number_or("rate", spec.rate);
  const double devices = request.number_or("devices", spec.devices);
  if (!(spec.rate > 0.0)) throw RequestError("'rate' must be > 0");
  if (!(devices >= 1.0)) throw RequestError("'devices' must be >= 1");
  spec.devices = static_cast<unsigned>(devices);
}

}  // namespace

core::SystemParams ClusterSpec::build(double total_rate,
                                      unsigned device_count,
                                      double tier_hit_ratio,
                                      double ssd_read_ms,
                                      double ssd_write_ms) const {
  using numerics::Degenerate;
  using numerics::Gamma;
  core::SystemParams params;
  params.frontend.arrival_rate = total_rate;
  params.frontend.processes = frontend_processes;
  params.frontend.frontend_parse =
      std::make_shared<Degenerate>(frontend_parse_ms * 1e-3);

  core::DeviceParams device;
  device.arrival_rate = total_rate / static_cast<double>(device_count);
  device.data_read_rate = device.arrival_rate * data_read_factor;
  device.index_miss_ratio = index_miss;
  device.meta_miss_ratio = meta_miss;
  device.data_miss_ratio = data_miss;
  device.index_disk = std::make_shared<Gamma>(index_disk_shape,
                                              index_disk_rate);
  device.meta_disk = std::make_shared<Gamma>(meta_disk_shape, meta_disk_rate);
  device.data_disk = std::make_shared<Gamma>(data_disk_shape, data_disk_rate);
  device.backend_parse = std::make_shared<Degenerate>(backend_parse_ms * 1e-3);
  device.processes = processes;
  if (tier_hit_ratio > 0.0) {
    device.tier.enabled = true;
    device.tier.hit_ratio = tier_hit_ratio;
    device.tier.read_service = std::make_shared<Degenerate>(ssd_read_ms * 1e-3);
    device.tier.write_service =
        std::make_shared<Degenerate>(ssd_write_ms * 1e-3);
  }
  params.devices.assign(device_count, device);
  return params;
}

WhatIfService::WhatIfService(ServiceConfig config) : config_(config) {}

core::PredictOptions WhatIfService::predict_options() const {
  core::PredictOptions predict;
  predict.num_threads = config_.num_threads;
  predict.cache = &cache_;
  predict.tape_mode = config_.tape_mode;
  return predict;
}

std::string WhatIfService::handle_line(std::string_view line) {
  const common::JsonParseResult parsed = common::json_parse(line);
  if (!parsed.ok) {
    obs::add(obs::Counter::kServiceRequests);
    return error_response(JsonValue::object(), "parse error: " + parsed.error)
        .dump();
  }
  return handle(parsed.value).dump();
}

JsonValue WhatIfService::handle(const JsonValue& request) {
  obs::add(obs::Counter::kServiceRequests);
  if (!request.is_object()) {
    return error_response(JsonValue::object(),
                          "request must be a JSON object");
  }
  try {
    return dispatch(request);
  } catch (const RequestError& e) {
    return error_response(request, e.what());
  } catch (const std::exception& e) {
    return error_response(request, std::string("internal error: ") + e.what());
  }
}

JsonValue WhatIfService::dispatch(const JsonValue& request) {
  const std::string op = require_string(request, "op");
  obs::Span span(span_name(op));
  if (op == "register") return op_register(request);
  if (op == "calibrate") return op_calibrate(request);
  if (op == "drift_status") return op_drift_status(request);
  if (op == "sla") return op_sla(request);
  if (op == "quantile") return op_quantile(request);
  if (op == "devices") return op_devices(request);
  if (op == "capacity") return op_capacity(request);
  if (op == "tier_size") return op_tier_size(request);
  if (op == "list") {
    JsonValue response = make_response(request, true);
    response.set("clusters", op_list());
    return response;
  }
  if (op == "stats") {
    JsonValue response = make_response(request, true);
    response.set("stats", op_stats());
    return response;
  }
  throw RequestError("unknown op '" + op + "'");
}

ClusterSpec WhatIfService::spec_for(const JsonValue& request) const {
  const std::string name = require_string(request, "cluster");
  std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  const auto it = clusters_.find(name);
  if (it == clusters_.end()) {
    throw RequestError("unknown cluster '" + name + "'");
  }
  return it->second;
}

JsonValue WhatIfService::op_register(const JsonValue& request) {
  const std::string name = require_string(request, "cluster");
  if (name.empty()) throw RequestError("'cluster' must be non-empty");
  ClusterSpec spec;
  spec_overrides(spec, request);
  spec.processes = static_cast<unsigned>(
      request.number_or("processes", spec.processes));
  spec.frontend_processes = static_cast<unsigned>(
      request.number_or("frontend_processes", spec.frontend_processes));
  spec.frontend_parse_ms =
      request.number_or("frontend_parse_ms", spec.frontend_parse_ms);
  spec.backend_parse_ms =
      request.number_or("backend_parse_ms", spec.backend_parse_ms);
  spec.data_read_factor =
      request.number_or("data_read_factor", spec.data_read_factor);
  spec.index_miss = request.number_or("index_miss", spec.index_miss);
  spec.meta_miss = request.number_or("meta_miss", spec.meta_miss);
  spec.data_miss = request.number_or("data_miss", spec.data_miss);
  spec.index_disk_shape =
      request.number_or("index_disk_shape", spec.index_disk_shape);
  spec.index_disk_rate =
      request.number_or("index_disk_rate", spec.index_disk_rate);
  spec.meta_disk_shape =
      request.number_or("meta_disk_shape", spec.meta_disk_shape);
  spec.meta_disk_rate =
      request.number_or("meta_disk_rate", spec.meta_disk_rate);
  spec.data_disk_shape =
      request.number_or("data_disk_shape", spec.data_disk_shape);
  spec.data_disk_rate =
      request.number_or("data_disk_rate", spec.data_disk_rate);
  // Validate the spec eagerly, so a bad registration fails at register
  // time rather than poisoning every later query.
  spec.build(spec.rate, spec.devices).validate();
  {
    std::unique_lock<std::shared_mutex> lock(registry_mutex_);
    clusters_[name] = spec;
  }
  JsonValue response = make_response(request, true);
  response.set("cluster", name);
  return response;
}

JsonValue WhatIfService::op_calibrate(const JsonValue& request) {
  const std::string name = require_string(request, "cluster");
  const double rate = require_number(request, "rate");
  const double mean_service =
      require_number(request, "mean_service_ms") * 1e-3;
  if (!(rate > 0.0)) throw RequestError("'rate' must be > 0");
  if (!(mean_service > 0.0)) {
    throw RequestError("'mean_service_ms' must be > 0");
  }

  std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  const auto spec_it = clusters_.find(name);
  if (spec_it == clusters_.end()) {
    throw RequestError("unknown cluster '" + name + "'");
  }
  ClusterSpec& spec = spec_it->second;
  auto state_it = drift_states_.find(name);
  if (state_it == drift_states_.end()) {
    // Detector knobs are latched at the cluster's first calibrate call.
    calibration::DriftConfig drift;
    drift.ph_delta = request.number_or("ph_delta", drift.ph_delta);
    drift.ph_lambda = request.number_or("ph_lambda", drift.ph_lambda);
    drift.warmup_windows = static_cast<int>(
        request.number_or("warmup_windows", drift.warmup_windows));
    drift.confirm_windows = static_cast<int>(
        request.number_or("confirm_windows", drift.confirm_windows));
    drift.cooldown_windows = static_cast<int>(
        request.number_or("cooldown_windows", drift.cooldown_windows));
    drift.validate();
    state_it = drift_states_
                   .emplace(name, DriftState{calibration::DriftDetector(drift),
                                             0, 0, 0,
                                             calibration::DriftVerdict::kWarmup,
                                             0})
                   .first;
  }
  DriftState& state = state_it->second;
  ++state.windows;

  JsonValue response = make_response(request, true);
  response.set("cluster", name);

  // Insufficiency is an outcome: a window too thin to trust is counted
  // and skipped without touching the detector (satellite contract of
  // calibration::observe_window).
  const double samples = request.number_or("samples", -1.0);
  const double min_samples = request.number_or("min_samples", 1.0);
  if (samples >= 0.0 && samples < min_samples) {
    obs::add(obs::Counter::kCalibInsufficientWindows);
    ++state.insufficient;
    response.set("verdict", "insufficient");
    response.set("refit", false);
    return response;
  }

  calibration::DriftSignals signals;
  signals.arrival_rate = rate;
  signals.data_read_rate =
      request.number_or("data_read_rate", rate * spec.data_read_factor);
  signals.index_miss_ratio = request.number_or("index_miss", spec.index_miss);
  signals.meta_miss_ratio = request.number_or("meta_miss", spec.meta_miss);
  signals.data_miss_ratio = request.number_or("data_miss", spec.data_miss);
  signals.mean_disk_service = mean_service;
  if (!(signals.data_read_rate >= rate)) {
    throw RequestError("'data_read_rate' must be >= 'rate'");
  }

  const calibration::DriftDecision decision = state.detector.offer(signals);
  state.last_verdict = decision.verdict;
  state.last_alarm_mask = decision.alarm_mask;
  response.set("verdict", std::string(to_string(decision.verdict)));
  JsonValue alarms = JsonValue::array();
  for (std::size_t i = 0; i < calibration::kDriftSignalCount; ++i) {
    if (decision.alarm_mask & (std::uint32_t{1} << i)) {
      alarms.push_back(std::string(calibration::drift_signal_name(i)));
    }
  }
  response.set("alarms", alarms);

  bool refit = false;
  if (decision.verdict == calibration::DriftVerdict::kDrift) {
    // Re-fit the registered spec to the drifted regime: keep the
    // benchmarked shapes, re-split the observed aggregate service mean
    // over them (Sec. IV-B), and adopt the observed rates and ratios.
    try {
      const double mean_i = spec.index_disk_shape / spec.index_disk_rate;
      const double mean_m = spec.meta_disk_shape / spec.meta_disk_rate;
      const double mean_d = spec.data_disk_shape / spec.data_disk_rate;
      const double total = mean_i + mean_m + mean_d;
      const calibration::ServiceSplit split = calibration::split_disk_service(
          mean_service, mean_i / total, mean_m / total, mean_d / total,
          signals.index_miss_ratio, signals.meta_miss_ratio,
          signals.data_miss_ratio, rate, signals.data_read_rate);

      ClusterSpec refitted = spec;
      refitted.rate = rate;
      refitted.data_read_factor = signals.data_read_rate / rate;
      refitted.index_miss = signals.index_miss_ratio;
      refitted.meta_miss = signals.meta_miss_ratio;
      refitted.data_miss = signals.data_miss_ratio;
      refitted.index_disk_rate = refitted.index_disk_shape / split.index_mean;
      refitted.meta_disk_rate = refitted.meta_disk_shape / split.meta_mean;
      refitted.data_disk_rate = refitted.data_disk_shape / split.data_mean;
      refitted.build(refitted.rate, refitted.devices).validate();

      // Erase the stale backend entry by fingerprint (all devices of a
      // family share one entry — they are identical by value).  The old
      // cdf entries are keyed under the old response-tape fingerprint and
      // can never be hit again; LRU ages them out.
      std::size_t evictions = 0;
      const core::SystemParams old_params =
          spec.build(spec.rate, spec.devices);
      if (cache_.backends.erase(core::backend_fingerprint(
              old_params.devices.front(), core::ModelOptions{}))) {
        ++evictions;
      }
      obs::add(obs::Counter::kCalibRefitCacheEvictions, evictions);
      obs::add(obs::Counter::kCalibRefitModels);

      spec = refitted;
      ++state.refits;
      refit = true;
      state.detector.rebaseline();
      response.set("rate", spec.rate);
      response.set("evictions", static_cast<double>(evictions));
    } catch (const RequestError&) {
      throw;
    } catch (const std::exception& e) {
      // Unfittable window (e.g. every kind hitting): hold the published
      // spec, rebaseline so the failing fit is not retried every window.
      state.detector.rebaseline();
      response.set("refit_error", std::string(e.what()));
    }
  }
  response.set("refit", refit);
  response.set("refits", static_cast<double>(state.refits));
  return response;
}

JsonValue WhatIfService::op_drift_status(const JsonValue& request) const {
  const std::string name = require_string(request, "cluster");
  std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  if (clusters_.find(name) == clusters_.end()) {
    throw RequestError("unknown cluster '" + name + "'");
  }
  JsonValue response = make_response(request, true);
  response.set("cluster", name);
  const auto it = drift_states_.find(name);
  if (it == drift_states_.end()) {
    response.set("windows", 0.0);
    response.set("verdict", "idle");
    response.set("refits", 0.0);
    return response;
  }
  const DriftState& state = it->second;
  response.set("windows", static_cast<double>(state.windows));
  response.set("insufficient", static_cast<double>(state.insufficient));
  response.set("verdict", std::string(to_string(state.last_verdict)));
  response.set("refits", static_cast<double>(state.refits));
  JsonValue alarms = JsonValue::array();
  for (std::size_t i = 0; i < calibration::kDriftSignalCount; ++i) {
    if (state.last_alarm_mask & (std::uint32_t{1} << i)) {
      alarms.push_back(std::string(calibration::drift_signal_name(i)));
    }
  }
  response.set("alarms", alarms);
  response.set("rate", clusters_.at(name).rate);
  return response;
}

JsonValue WhatIfService::op_sla(const JsonValue& request) const {
  ClusterSpec spec = spec_for(request);
  spec_overrides(spec, request);
  const std::vector<double> slas = number_list(request, "sla", "slas");
  for (const double sla : slas) {
    if (!(sla > 0.0)) throw RequestError("SLA bounds must be > 0 (seconds)");
  }
  JsonValue response = make_response(request, true);
  JsonValue percentiles = JsonValue::array();
  try {
    const core::SystemModel model(spec.build(spec.rate, spec.devices), {},
                                  predict_options());
    for (const double p : model.predict_sla_percentiles(slas)) {
      percentiles.push_back(p);
      obs::add(obs::Counter::kServicePredictions);
    }
    response.set("overloaded", false);
  } catch (const core::OverloadError&) {
    // Saturation is a result, not an error: the system certainly misses
    // every SLA (the whatif convention, core/whatif.hpp).
    for (std::size_t i = 0; i < slas.size(); ++i) {
      percentiles.push_back(0.0);
      obs::add(obs::Counter::kServicePredictions);
    }
    response.set("overloaded", true);
  }
  if (request.find("slas") != nullptr) {
    response.set("percentiles", percentiles);
  } else {
    response.set("percentile", percentiles.items().front());
  }
  return response;
}

JsonValue WhatIfService::op_quantile(const JsonValue& request) const {
  ClusterSpec spec = spec_for(request);
  spec_overrides(spec, request);
  const std::vector<double> ps = number_list(request, "p", "ps");
  for (const double p : ps) {
    if (!(p > 0.0 && p < 1.0)) {
      throw RequestError("percentiles must lie in (0, 1)");
    }
  }
  JsonValue response = make_response(request, true);
  JsonValue latencies = JsonValue::array();
  try {
    const core::SystemModel model(spec.build(spec.rate, spec.devices), {},
                                  predict_options());
    for (const double latency : model.latency_quantiles(ps)) {
      latencies.push_back(latency);
      obs::add(obs::Counter::kServicePredictions);
    }
    response.set("overloaded", false);
  } catch (const core::OverloadError&) {
    for (std::size_t i = 0; i < ps.size(); ++i) {
      latencies.push_back(JsonValue());  // no finite bound exists
      obs::add(obs::Counter::kServicePredictions);
    }
    response.set("overloaded", true);
  }
  if (request.find("ps") != nullptr) {
    response.set("latencies", latencies);
  } else {
    response.set("latency", latencies.items().front());
  }
  return response;
}

JsonValue WhatIfService::op_devices(const JsonValue& request) const {
  ClusterSpec spec = spec_for(request);
  spec_overrides(spec, request);
  core::SlaTarget target;
  target.sla = require_number(request, "sla");
  target.percentile = require_number(request, "percentile");
  target.validate();
  const auto min_devices =
      static_cast<unsigned>(request.number_or("min", 1.0));
  const auto max_devices =
      static_cast<unsigned>(request.number_or("max", 64.0));
  if (min_devices < 1 || min_devices > max_devices) {
    throw RequestError("need 1 <= min <= max");
  }
  const core::ClusterFactory factory =
      [&spec](double total_rate, unsigned device_count) {
        return spec.build(total_rate, device_count);
      };
  const auto devices =
      core::min_devices_for(factory, spec.rate, target, min_devices,
                            max_devices, {}, predict_options());
  obs::add(obs::Counter::kServicePredictions);
  JsonValue response = make_response(request, true);
  response.set("found", devices.has_value());
  if (devices.has_value()) {
    response.set("devices", static_cast<double>(*devices));
  }
  return response;
}

JsonValue WhatIfService::op_capacity(const JsonValue& request) const {
  ClusterSpec spec = spec_for(request);
  spec_overrides(spec, request);
  core::SlaTarget target;
  target.sla = require_number(request, "sla");
  target.percentile = require_number(request, "percentile");
  target.validate();
  const double rate_limit =
      request.number_or("rate_limit", 4.0 * spec.rate);
  const double tolerance = request.number_or("tolerance", 0.5);
  if (!(rate_limit > 0.0) || !(tolerance > 0.0)) {
    throw RequestError("need rate_limit > 0 and tolerance > 0");
  }
  const core::ClusterFactory factory =
      [&spec](double total_rate, unsigned device_count) {
        return spec.build(total_rate, device_count);
      };
  const double admitted =
      core::max_admission_rate(factory, spec.devices, target, rate_limit,
                               tolerance, {}, predict_options());
  obs::add(obs::Counter::kServicePredictions);
  JsonValue response = make_response(request, true);
  response.set("max_rate", admitted);
  return response;
}

JsonValue WhatIfService::op_tier_size(const JsonValue& request) const {
  ClusterSpec spec = spec_for(request);
  spec_overrides(spec, request);
  core::SlaTarget target;
  target.sla = require_number(request, "sla");
  target.percentile = require_number(request, "percentile");
  target.validate();
  const std::vector<double> capacities =
      number_list(request, "capacity", "capacities");
  const double objects = request.number_or("objects", 100000.0);
  const double zipf_skew = request.number_or("zipf_skew", 0.9);
  const double chunk_kb = request.number_or("chunk_kb", 64.0);
  const double mem_chunks = request.number_or("mem_chunks", 4096.0);
  const double ssd_read_ms = request.number_or("ssd_read_ms", 0.4);
  const double ssd_write_ms = request.number_or("ssd_write_ms", 0.6);
  if (!(objects >= 1.0) || !(zipf_skew >= 0.0) || !(chunk_kb > 0.0) ||
      !(mem_chunks >= 0.0)) {
    throw RequestError("invalid catalog parameters");
  }

  // Hit ratios from Che's approximation over the Zipf catalog — the same
  // prediction path bench/extension_tiering validates against simulation.
  workload::CatalogConfig catalog_config;
  catalog_config.object_count = static_cast<std::uint64_t>(objects);
  catalog_config.zipf_skew = zipf_skew;
  catalog_config.size_distribution = workload::default_size_distribution();
  const workload::ObjectCatalog catalog(catalog_config);
  const calibration::ChunkPopulation pop = calibration::chunk_population(
      catalog, static_cast<std::uint64_t>(chunk_kb * 1024.0));

  std::vector<core::TierCandidate> candidates;
  candidates.reserve(capacities.size());
  for (const double capacity : capacities) {
    if (!(capacity >= 0.0)) throw RequestError("capacities must be >= 0");
    core::TierCandidate candidate;
    candidate.capacity_chunks = static_cast<std::size_t>(capacity);
    candidate.hit_ratio =
        candidate.capacity_chunks == 0
            ? 0.0
            : calibration::predict_tier_hit_ratio(
                  pop, static_cast<std::size_t>(mem_chunks),
                  candidate.capacity_chunks);
    candidates.push_back(candidate);
  }
  const core::TierFactory factory =
      [&spec, ssd_read_ms, ssd_write_ms](const core::TierCandidate& c) {
        return spec.build(spec.rate, spec.devices, c.hit_ratio, ssd_read_ms,
                          ssd_write_ms);
      };
  const auto chosen = core::min_tier_capacity_for(factory, candidates, target,
                                                  {}, predict_options());
  obs::add(obs::Counter::kServicePredictions);
  JsonValue response = make_response(request, true);
  response.set("found", chosen.has_value());
  if (chosen.has_value()) {
    response.set("capacity_chunks",
                 static_cast<double>(chosen->candidate.capacity_chunks));
    response.set("hit_ratio", chosen->candidate.hit_ratio);
    response.set("percentile", chosen->percentile);
  }
  return response;
}

JsonValue WhatIfService::op_list() const {
  std::vector<std::string> names;
  {
    std::shared_lock<std::shared_mutex> lock(registry_mutex_);
    names.reserve(clusters_.size());
    for (const auto& [name, spec] : clusters_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());  // deterministic listing order
  JsonValue list = JsonValue::array();
  for (std::string& name : names) list.push_back(std::move(name));
  return list;
}

JsonValue WhatIfService::op_stats() const {
  const numerics::CacheStats backends = cache_.backends.stats();
  const numerics::CacheStats cdf = cache_.cdf.stats();
  JsonValue stats = JsonValue::object();
  auto cache_object = [](const numerics::CacheStats& s,
                         std::size_t shards) {
    JsonValue obj = JsonValue::object();
    obj.set("hits", static_cast<double>(s.hits));
    obj.set("misses", static_cast<double>(s.misses));
    obj.set("evictions", static_cast<double>(s.evictions));
    obj.set("size", static_cast<double>(s.size));
    obj.set("capacity", static_cast<double>(s.capacity));
    obj.set("shards", static_cast<double>(shards));
    return obj;
  };
  stats.set("backend_cache",
            cache_object(backends, cache_.backends.shard_count()));
  stats.set("cdf_cache", cache_object(cdf, cache_.cdf.shard_count()));
  {
    std::shared_lock<std::shared_mutex> lock(registry_mutex_);
    stats.set("clusters", static_cast<double>(clusters_.size()));
  }
  stats.set("requests",
            static_cast<double>(
                obs::counter_value(obs::Counter::kServiceRequests)));
  stats.set("errors",
            static_cast<double>(
                obs::counter_value(obs::Counter::kServiceErrors)));
  stats.set("predictions",
            static_cast<double>(
                obs::counter_value(obs::Counter::kServicePredictions)));
  return stats;
}

}  // namespace cosm::service
