// cosm_service: the long-lived what-if prediction service over stdio.
//
// Reads one JSON request per line from stdin, writes one JSON response
// per line to stdout (flushed per line, so a driving process can pipe
// requests interactively), exits 0 at EOF.  Protocol: see
// src/service/service.hpp.
//
//   $ echo '{"op":"register","cluster":"a","rate":400,"devices":8}
//   {"op":"sla","cluster":"a","sla":0.1}' | ./cosm_service
//
// Flags:
//   --threads=N        per-request model-build fan-out (default 1)
//   --mode=exact|simd|simd_fast
//                      tape evaluation mode (default simd — bit-identical
//                      to exact; simd_fast is ULP-bounded, see
//                      docs/PERFORMANCE.md §7)
//   --trace-json=FILE  enable observability; export the obs trace
//                      (counters incl. service.requests, spans) at EOF
#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.hpp"
#include "service/service.hpp"

int main(int argc, char** argv) {
  cosm::service::ServiceConfig config;
  std::string trace_json;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--threads=", 0) == 0) {
      config.num_threads =
          static_cast<unsigned>(std::stoul(value_of("--threads=")));
    } else if (arg.rfind("--mode=", 0) == 0) {
      const std::string mode = value_of("--mode=");
      if (mode == "exact") {
        config.tape_mode = cosm::numerics::TapeEvalMode::kExact;
      } else if (mode == "simd") {
        config.tape_mode = cosm::numerics::TapeEvalMode::kSimd;
      } else if (mode == "simd_fast") {
        config.tape_mode = cosm::numerics::TapeEvalMode::kSimdFast;
      } else {
        std::cerr << "unknown --mode: " << mode << "\n";
        return 3;
      }
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      trace_json = value_of("--trace-json=");
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 3;
    }
  }
  if (!trace_json.empty()) cosm::obs::set_enabled(true);

  cosm::service::WhatIfService service(config);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::cout << service.handle_line(line) << std::endl;
  }

  if (!trace_json.empty()) {
    std::ofstream trace(trace_json);
    if (!trace) {
      std::cerr << "cannot open " << trace_json << " for writing\n";
      return 3;
    }
    cosm::obs::export_json(trace);
  }
  return 0;
}
