#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace cosm {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::thread::hardware_concurrency();
    if (n_threads == 0) n_threads = 1;
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for_index(
    std::size_t count, const std::function<void(std::size_t)>& fn,
    std::size_t max_workers) {
  if (count == 0) return;
  // Completion is tracked with an index latch rather than helper futures:
  // a queued helper that never gets a pool slot (every worker busy with an
  // *outer* parallel_for_index) must not be waited on, or nested calls
  // would deadlock.  The caller drains indices itself, then waits only for
  // indices that some running thread has actually claimed.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<State>();
  // Safe to capture fn by reference: an index below `count` can only be
  // claimed while the caller is still blocked in this function (the claim
  // keeps `completed` below `count`); helpers that run after it returns
  // see next >= count and exit without touching fn.
  const auto drain = [state, &fn, count] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->first_error) state->first_error = std::current_exception();
      }
      if (state->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          count) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->done.notify_all();
      }
    }
  };
  std::size_t helpers = workers_.size();
  if (max_workers != 0) helpers = std::min(helpers, max_workers - 1);
  helpers = std::min(helpers, count - 1);
  for (std::size_t t = 0; t < helpers; ++t) {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.emplace_back(drain);
    if (obs::enabled()) {
      obs::add(obs::Counter::kPoolSubmits);
      obs::record_max(obs::Counter::kPoolMaxQueueDepth, queue_.size());
    }
  }
  if (helpers > 0) cv_.notify_all();
  drain();  // the calling thread participates
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] {
      return state->completed.load(std::memory_order_acquire) == count;
    });
    if (state->first_error) std::rethrow_exception(state->first_error);
  }
}

void parallel_for(std::size_t count, unsigned num_threads,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Resolve "all hardware" before deciding on the fan-out: on a
  // single-core host num_threads == 0 used to reach the pool anyway and
  // pay queueing + latch overhead for zero extra parallelism (a measured
  // ~3% pipeline regression).  hardware_concurrency() is a free function,
  // so the resolution never instantiates the global pool.
  std::size_t resolved = num_threads;
  if (resolved == 0) {
    resolved = std::thread::hardware_concurrency();
    if (resolved == 0) resolved = 1;
  }
  if (resolved == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool::global().parallel_for_index(count, fn, num_threads);
}

}  // namespace cosm
