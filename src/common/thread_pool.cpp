#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace cosm {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::thread::hardware_concurrency();
    if (n_threads == 0) n_threads = 1;
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for_index(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::future<void>> pending;
  pending.reserve(workers_.size());
  for (std::size_t t = 0; t + 1 < workers_.size(); ++t) {
    pending.push_back(submit(drain));
  }
  drain();  // the calling thread participates
  for (auto& f : pending) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cosm
