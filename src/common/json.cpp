#include "common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cosm::common {

void JsonValue::set(std::string_view key, JsonValue v) {
  type_ = Type::kObject;
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(v));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string JsonValue::string_or(std::string_view key, std::string fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double n, std::string& out) {
  if (!std::isfinite(n)) {
    // JSON has no inf/nan; emit null so readers fail loudly rather than
    // silently accepting a malformed token.
    out += "null";
    return;
  }
  if (n == static_cast<double>(static_cast<long long>(n)) && std::fabs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    out += buf;
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), n);
  if (ec == std::errc()) {
    out.append(buf, ptr);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", n);
    out += buf;
  }
}

}  // namespace

void JsonValue::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      dump_number(number_, out);
      break;
    case Type::kString:
      dump_string(string_, out);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : items_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        item.dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& member : members_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        dump_string(member.first, out);
        out.push_back(':');
        member.second.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    if (!parse_value(result.value)) {
      result.error = error_.empty() ? "invalid JSON" : error_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing characters after JSON value";
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool fail(const char* message) {
    if (error_.empty()) {
      error_ = message;
    }
    return false;
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (depth_ > kMaxDepth) {
      return fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) {
          return false;
        }
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out = JsonValue(true);
          return true;
        }
        return fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out = JsonValue(false);
          return true;
        }
        return fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out = JsonValue(nullptr);
          return true;
        }
        return fail("invalid literal");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    ++depth_;
    out = JsonValue::object();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (!consume(':')) {
        return fail("expected ':' in object");
      }
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) {
        return false;
      }
      out.set(key, std::move(value));
      skip_ws();
      if (consume(',')) {
        continue;
      }
      if (consume('}')) {
        --depth_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    ++depth_;
    out = JsonValue::array();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) {
        return false;
      }
      out.push_back(std::move(value));
      skip_ws();
      if (consume(',')) {
        continue;
      }
      if (consume(']')) {
        --depth_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      return fail("expected string");
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return fail("unterminated escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("invalid \\u escape");
              }
            }
            // Encode as UTF-8 (surrogate pairs not combined; each half is
            // encoded independently which is enough for our ASCII protocol).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return fail("invalid escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return fail("expected value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return fail("invalid number");
    }
    out = JsonValue(value);
    return true;
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult json_parse(std::string_view text) { return Parser(text).run(); }

}  // namespace cosm::common
