// Deterministic pseudo-random number generation for simulation and
// workload synthesis.
//
// Every stochastic component in cosmodel takes an explicit Rng (or a seed),
// so experiments are reproducible bit-for-bit.  The generator is
// xoshiro256** seeded through SplitMix64, which is fast, has a 256-bit
// state, and passes BigCrush; variate transforms (exponential, gamma,
// Poisson, Zipf, ...) are implemented here rather than via <random>
// distributions because libstdc++ distribution implementations are not
// stable across versions, which would break golden-value tests.
#pragma once

#include <cstdint>
#include <vector>

namespace cosm {

// SplitMix64: used to expand a single 64-bit seed into generator state.
// Public because tests and hashing code reuse it as a cheap mixer.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** by Blackman & Vigna, with variate transforms layered on top.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDu);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  // Uniform in [0, 1).  53 bits of mantissa.
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  // Standard variates.
  double exponential(double rate);
  double normal(double mean, double stddev);
  double lognormal(double mu, double sigma);
  // Gamma(shape k, rate l) — Marsaglia–Tsang squeeze for k >= 1, boosting
  // for k < 1.  Mean is k / l.
  double gamma(double shape, double rate);
  double weibull(double shape, double scale);
  double pareto(double shape, double scale);
  bool bernoulli(double p);
  // Poisson counting variate; uses inversion for small means and the PTRS
  // transformed-rejection method for large means.
  std::uint64_t poisson(double mean);

  // Derive an independent child stream (for per-entity generators).
  Rng fork();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  // Cached second Box–Muller variate.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// O(1) categorical sampling over arbitrary non-negative weights via
// Vose's alias method; the table is built once at construction.
class WeightedSampler {
 public:
  explicit WeightedSampler(const std::vector<double>& weights);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }
  // Normalized probability of one index.
  double probability(std::size_t index) const;

 private:
  double norm_;  // sum of input weights
  std::vector<double> weight_;  // original weights (for probability())
  std::vector<double> prob_;    // alias-table acceptance probabilities
  std::vector<std::uint32_t> alias_;
};

// Sampler for a Zipf(s) distribution over ranks {0, ..., n-1} where rank 0
// is the most popular; a thin wrapper over WeightedSampler.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew);

  std::size_t sample(Rng& rng) const { return sampler_.sample(rng); }
  std::size_t size() const { return sampler_.size(); }
  double skew() const { return skew_; }
  // Probability of a given rank (for tests and analytic cross-checks).
  double probability(std::size_t rank) const {
    return sampler_.probability(rank);
  }

 private:
  static std::vector<double> zipf_weights(std::size_t n, double skew);

  double skew_;
  WeightedSampler sampler_;
};

}  // namespace cosm
