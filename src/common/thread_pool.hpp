// A small fixed-size thread pool used to parallelize embarrassingly
// parallel work: arrival-rate sweep points in the experiment harnesses and
// independent simulator replications in tests.
//
// The pool is deliberately minimal — submit() returns a std::future, and
// parallel_for_index() blocks until every index has been processed.
// Exceptions thrown by tasks propagate through the futures (and, for
// parallel_for_index, are rethrown on the calling thread).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cosm {

class ThreadPool {
 public:
  // n_threads == 0 means "hardware concurrency, at least 1".
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  // Runs fn(i) for every i in [0, count), distributing indices across the
  // pool.  Blocks until completion; rethrows the first task exception.
  void parallel_for_index(std::size_t count,
                          const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace cosm
