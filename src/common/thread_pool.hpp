// A small fixed-size thread pool used to parallelize embarrassingly
// parallel work: arrival-rate sweep points in the experiment harnesses,
// independent simulator replications in tests, and — through the
// cosm::parallel_for helper — the prediction pipeline's per-device /
// per-SLA-point fan-out (core::PredictOptions::num_threads).
//
// The pool is deliberately minimal — submit() returns a std::future, and
// parallel_for_index() blocks until every index has been processed.
// Exceptions thrown by tasks propagate through the futures (and, for
// parallel_for_index, are rethrown on the calling thread).
//
// Thread-safety: every public member may be called concurrently from any
// thread.  parallel_for_index is safe to *nest* (a task may itself call
// parallel_for_index on the same pool): the calling thread always drains
// the whole index range itself if no worker becomes free, and only waits
// for indices that a running thread has actually claimed — so a saturated
// pool degrades to serial execution instead of deadlocking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/obs.hpp"

namespace cosm {

class ThreadPool {
 public:
  // n_threads == 0 means "hardware concurrency, at least 1".
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // The process-wide shared pool (hardware concurrency), created lazily on
  // first use.  Prefer this over per-call pools in library code: model
  // predictions may run thousands of parallel_for_index calls, and thread
  // creation would dominate.
  static ThreadPool& global();

  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
      if (obs::enabled()) {
        obs::add(obs::Counter::kPoolSubmits);
        obs::record_max(obs::Counter::kPoolMaxQueueDepth, queue_.size());
      }
    }
    cv_.notify_one();
    return result;
  }

  // Runs fn(i) for every i in [0, count), distributing indices across the
  // pool.  Blocks until completion; rethrows the first task exception
  // recorded (when several tasks throw, which one wins is unspecified —
  // callers that need determinism must not rely on *which* exception
  // escapes, only that one does).
  //
  // `max_workers` caps how many threads may process indices, *including*
  // the calling thread; 0 means "no cap beyond the pool size".  The
  // calling thread always participates, so the call completes even when
  // every pool worker is busy (this is what makes nesting safe).
  void parallel_for_index(std::size_t count,
                          const std::function<void(std::size_t)>& fn,
                          std::size_t max_workers = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

// Convenience fan-out used by the prediction pipeline.  Runs fn(i) for
// every i in [0, count):
//   num_threads == 1  — plain serial loop on the calling thread (no pool
//                       is touched, and none is ever created);
//   num_threads == 0  — "all hardware": resolved via
//                       std::thread::hardware_concurrency() first; when
//                       that resolves to 1 (single-core hosts) the loop
//                       runs inline like num_threads == 1 — the pool
//                       cannot add parallelism there, only queueing and
//                       completion-latch overhead;
//   num_threads == k  — ThreadPool::global() capped at k concurrent
//                       threads (including the caller).
// Each index must write only to its own output slot; reductions belong in
// the caller *after* the call, in index order, so that results are
// bit-identical to the serial path regardless of thread count.
void parallel_for(std::size_t count, unsigned num_threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace cosm
