#include "common/table.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/require.hpp"

namespace cosm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  COSM_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  COSM_REQUIRE(cells.size() <= header_.size(),
               "row has more cells than the header");
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  if (!title.empty()) os << title << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream os(path);
  COSM_REQUIRE(os.good(), "cannot open CSV output file: " + path);
  write_csv(os);
}

std::string Table::num(double value, int precision) {
  if (std::isnan(value)) return "nan";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::percent(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

}  // namespace cosm
