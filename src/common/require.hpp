// Precondition / invariant checking for the cosmodel libraries.
//
// COSM_REQUIRE validates user-facing preconditions (constructor arguments,
// API call arguments) and throws std::invalid_argument with a message that
// names the violated condition.  COSM_CHECK validates internal invariants
// and throws std::logic_error.  Both stay enabled in release builds: the
// model code is numerics-heavy and a silent NaN is far more expensive to
// debug than a branch per call.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cosm {

namespace detail {

[[noreturn]] inline void throw_requirement(const char* cond, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement violated: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: (" << cond << ") at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace detail

}  // namespace cosm

#define COSM_REQUIRE(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::cosm::detail::throw_requirement(#cond, __FILE__, __LINE__,      \
                                        ::std::string(msg));            \
    }                                                                   \
  } while (false)

#define COSM_CHECK(cond, msg)                                           \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::cosm::detail::throw_check(#cond, __FILE__, __LINE__,            \
                                  ::std::string(msg));                  \
    }                                                                   \
  } while (false)
