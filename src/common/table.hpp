// Tabular output for experiment harnesses: aligned console rendering plus
// CSV export, so every figure/table bench prints human-readable rows and
// can also dump machine-readable series for plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace cosm {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row.  Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }

  // Renders the table with aligned columns, a title line, and a rule.
  void print(std::ostream& os, const std::string& title = "") const;

  // Writes RFC-4180-style CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

  // Formatting helpers used by every bench target.
  static std::string num(double value, int precision = 4);
  static std::string percent(double fraction, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cosm
