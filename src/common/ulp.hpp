#pragma once

// ULP (units-in-the-last-place) distance between doubles, for comparing
// nearly-equal floating-point results with a resolution-independent metric.
// Used by the SIMD kernel gates (tests and perf_numerics_tape) and by
// numerics tests that previously rolled ad-hoc epsilon checks.
//
// The mapping: every finite double is sent to a signed integer such that
// consecutive representable doubles map to consecutive integers, with the
// ordering preserved across zero (-0.0 and +0.0 both map to 0).  The ULP
// distance is the absolute difference of those integers; it equals the
// number of representable doubles strictly between the two values, plus one
// when they differ.

#include <bit>
#include <complex>
#include <cstdint>
#include <limits>

namespace cosm::common {

// Monotone signed-integer image of a double.  NaNs have no meaningful image;
// callers should test for them first (ulp_distance below handles NaNs).
inline std::int64_t ulp_index(double x) {
  const std::int64_t bits = std::bit_cast<std::int64_t>(x);
  // Negative doubles have the sign bit set and grow *downward* in bit space;
  // flip them below zero so the mapping is monotone.  Both zeros map to 0.
  return bits >= 0 ? bits : std::numeric_limits<std::int64_t>::min() - bits;
}

// ULP distance between two doubles.
//  - equal values (including -0.0 vs +0.0) -> 0
//  - adjacent representable doubles -> 1
//  - any NaN involved -> INT64_MAX (never "close")
//  - infinities are one ULP beyond the largest finite double, so a finite
//    value compared against an infinity yields a large-but-defined distance
inline std::int64_t ulp_distance(double a, double b) {
  if (a != a || b != b) {
    return std::numeric_limits<std::int64_t>::max();
  }
  const std::int64_t ia = ulp_index(a);
  const std::int64_t ib = ulp_index(b);
  // The images span roughly +/-2^63 - 2^52; the difference of a positive and
  // a negative image can overflow int64 for wildly different magnitudes.
  // Saturate instead of wrapping.
  if ((ia >= 0) != (ib >= 0)) {
    const std::uint64_t mag =
        static_cast<std::uint64_t>(ia >= 0 ? ia : -ia) + static_cast<std::uint64_t>(ib >= 0 ? ib : -ib);
    if (mag > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
      return std::numeric_limits<std::int64_t>::max();
    }
    return static_cast<std::int64_t>(mag);
  }
  return ia >= ib ? ia - ib : ib - ia;
}

// Componentwise ULP distance for complex values: the max over parts.
inline std::int64_t ulp_distance(const std::complex<double>& a, const std::complex<double>& b) {
  const std::int64_t dr = ulp_distance(a.real(), b.real());
  const std::int64_t di = ulp_distance(a.imag(), b.imag());
  return dr > di ? dr : di;
}

// True when a and b are within `max_ulps` ULPs of each other.
inline bool ulp_close(double a, double b, std::int64_t max_ulps) { return ulp_distance(a, b) <= max_ulps; }

inline bool ulp_close(const std::complex<double>& a, const std::complex<double>& b, std::int64_t max_ulps) {
  return ulp_distance(a, b) <= max_ulps;
}

}  // namespace cosm::common
