#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/require.hpp"

namespace cosm {

Rng::Rng(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : s_) word = mixer.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  COSM_REQUIRE(lo <= hi, "uniform bounds must be ordered");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  COSM_REQUIRE(n > 0, "uniform_index needs n > 0");
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double rate) {
  COSM_REQUIRE(rate > 0, "exponential rate must be positive");
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::normal(double mean, double stddev) {
  COSM_REQUIRE(stddev >= 0, "normal stddev must be non-negative");
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box–Muller.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::gamma(double shape, double rate) {
  COSM_REQUIRE(shape > 0, "gamma shape must be positive");
  COSM_REQUIRE(rate > 0, "gamma rate must be positive");
  if (shape < 1.0) {
    // Boost a Gamma(shape + 1) variate down: X = Y * U^(1/shape).
    const double y = gamma(shape + 1.0, rate);
    const double u = 1.0 - uniform();
    return y * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal(0.0, 1.0);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v / rate;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v / rate;
    }
  }
}

double Rng::weibull(double shape, double scale) {
  COSM_REQUIRE(shape > 0 && scale > 0, "weibull parameters must be positive");
  return scale * std::pow(-std::log(1.0 - uniform()), 1.0 / shape);
}

double Rng::pareto(double shape, double scale) {
  COSM_REQUIRE(shape > 0 && scale > 0, "pareto parameters must be positive");
  return scale / std::pow(1.0 - uniform(), 1.0 / shape);
}

bool Rng::bernoulli(double p) {
  COSM_REQUIRE(p >= 0 && p <= 1, "bernoulli probability must be in [0, 1]");
  return uniform() < p;
}

std::uint64_t Rng::poisson(double mean) {
  COSM_REQUIRE(mean >= 0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Multiplicative inversion.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // PTRS (transformed rejection with squeeze), Hörmann 1993.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = uniform() - 0.5;
    const double v = uniform();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    const double log_accept = std::log(v * inv_alpha / (a / (us * us) + b));
    if (log_accept <= k * std::log(mean) - mean - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

Rng Rng::fork() { return Rng(next_u64()); }

WeightedSampler::WeightedSampler(const std::vector<double>& weights)
    : weight_(weights) {
  const std::size_t n = weights.size();
  COSM_REQUIRE(n > 0, "weighted sampler needs a non-empty weight set");
  COSM_REQUIRE(n <= 0xFFFFFFFFull,
               "weight set exceeds 32-bit alias table");
  norm_ = 0.0;
  for (const double w : weights) {
    COSM_REQUIRE(w >= 0, "weights must be non-negative");
    norm_ += w;
  }
  COSM_REQUIRE(norm_ > 0, "at least one weight must be positive");
  // Vose's alias-table construction.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] / norm_ * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<std::uint32_t>(i));
    } else {
      large.push_back(static_cast<std::uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t WeightedSampler::sample(Rng& rng) const {
  const std::size_t column = rng.uniform_index(prob_.size());
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

double WeightedSampler::probability(std::size_t index) const {
  COSM_REQUIRE(index < weight_.size(), "sampler index out of range");
  return weight_[index] / norm_;
}

std::vector<double> ZipfSampler::zipf_weights(std::size_t n, double skew) {
  COSM_REQUIRE(n > 0, "zipf needs a non-empty rank set");
  COSM_REQUIRE(skew >= 0, "zipf skew must be non-negative");
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), skew);
  }
  return weights;
}

ZipfSampler::ZipfSampler(std::size_t n, double skew)
    : skew_(skew), sampler_(zipf_weights(n, skew)) {}

}  // namespace cosm
