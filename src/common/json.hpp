#pragma once

// Minimal JSON value / parser / serializer.  Deliberately small: the what-if
// service speaks line-delimited JSON and the bench readback gates need to
// *parse* their emitted files instead of substring-matching them.  Objects
// preserve insertion order so serialization is deterministic.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cosm::common {

class JsonValue;
using JsonMember = std::pair<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(std::nullptr_t) : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  JsonValue(int n) : type_(Type::kNumber), number_(n) {}
  JsonValue(long n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(unsigned long n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<JsonMember>& members() const { return members_; }

  // Array append.
  void push_back(JsonValue v) {
    type_ = Type::kArray;
    items_.push_back(std::move(v));
  }

  // Object field set (replaces an existing key in place, else appends).
  void set(std::string_view key, JsonValue v);

  // Object field lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Typed accessors with defaults, for tolerant request parsing.
  double number_or(std::string_view key, double fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;

  // Compact single-line serialization (doubles via shortest round-trip).
  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<JsonMember> members_;
};

struct JsonParseResult {
  bool ok = false;
  std::string error;  // empty on success
  JsonValue value;
};

// Parses a complete JSON document; trailing non-whitespace is an error.
JsonParseResult json_parse(std::string_view text);

}  // namespace cosm::common
