// What-if analyses (paper Sec. I): the three applications that motivate
// having an analytic model at all — capacity planning, overload control,
// and elastic storage — exposed as library functions over SystemModel so
// operators (and the example programs) don't re-derive the searches.
//
// All functions treat "overloaded" (model precondition violation) as
// "target not met" rather than propagating the exception: an overloaded
// configuration certainly misses any SLA target (the paper's "it is
// enough to know that the system does not perform well in such
// situations").
//
// Execution: every search takes a trailing PredictOptions.  The sweeps
// (elastic_schedule over periods, degraded_sla_percentiles over
// scenarios) fan their independent iterations across
// PredictOptions::num_threads; the inner model builds then run serially
// per iteration but still share PredictOptions::cache, so repeated
// configurations (the same candidate device count at several periods,
// the same healthy devices across scenarios) are built once.  Sequential
// searches (min_devices_for, max_admission_rate) can't fan out — each
// probe depends on the last — but benefit from the cache the same way.
// Results are bit-identical for every num_threads and cache setting.
//
// Thread-safety: when num_threads != 1 the ClusterFactory is invoked
// concurrently from pool threads and MUST be thread-safe (a factory that
// only reads captured parameters and allocates qualifies; one mutating
// shared state does not).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "core/errors.hpp"
#include "core/system_model.hpp"

namespace cosm::core {

struct SlaTarget {
  double sla = 0.1;           // latency bound, seconds
  double percentile = 0.95;   // required fraction meeting it

  void validate() const;
};

// Builds SystemParams for a candidate configuration: given a total
// arrival rate (req/s) and a device count, returns the parameter set to
// evaluate.  Callers encode their hardware assumptions (disk profiles,
// miss ratios, process counts) inside the factory.  Must be thread-safe
// when used with PredictOptions::num_threads != 1 (see file comment).
using ClusterFactory =
    std::function<SystemParams(double total_rate, unsigned device_count)>;

// Whether `params` meets the target; false when overloaded.
bool meets_target(const SystemParams& params, const SlaTarget& target,
                  ModelOptions options = {}, const PredictOptions& predict = {});

// Capacity planning: smallest device count in [min_devices, max_devices]
// meeting the target at `total_rate`; nullopt if none does.
// Preconditions: factory non-null, 1 <= min_devices <= max_devices.
std::optional<unsigned> min_devices_for(const ClusterFactory& factory,
                                        double total_rate,
                                        const SlaTarget& target,
                                        unsigned min_devices,
                                        unsigned max_devices,
                                        ModelOptions options = {},
                                        const PredictOptions& predict = {});

// Overload control: largest admitted rate in (0, rate_limit] meeting the
// target with `device_count` devices, found by bisection to `tolerance`
// (requests/s).  Returns 0 when even vanishing load misses the target.
// Preconditions: factory non-null, rate_limit > 0, tolerance > 0.
double max_admission_rate(const ClusterFactory& factory,
                          unsigned device_count, const SlaTarget& target,
                          double rate_limit, double tolerance = 0.5,
                          ModelOptions options = {},
                          const PredictOptions& predict = {});

// Elastic storage: per-period minimum active device counts for a workload
// curve (e.g. hourly rates); entries are nullopt where even max_devices
// misses the target.  Periods are independent and fan out across
// PredictOptions::num_threads (the per-period binary search stays
// serial).
std::vector<std::optional<unsigned>> elastic_schedule(
    const ClusterFactory& factory, const std::vector<double>& period_rates,
    const SlaTarget& target, unsigned max_devices,
    ModelOptions options = {}, const PredictOptions& predict = {});

// Latency-quantile trend: the `percentile` latency bound (seconds) for
// each period of a workload curve with a fixed device count — "how does
// our p99 move over the day".  Periods run SERIALLY on purpose: each
// quantile search warm-starts its bracket from the previous period's
// root (numerics::QuantileWarmStart), which on the typical smooth daily
// curve collapses the bracketing phase to a couple of probes.  Entries
// are NaN where the configuration is overloaded.  Results agree with an
// independent per-period SystemModel::latency_quantile call to the Brent
// tolerance (warm starting changes the bracket, not the root).
// Preconditions: factory non-null, percentile in (0, 1),
// device_count >= 1.
std::vector<double> latency_quantile_trend(
    const ClusterFactory& factory, const std::vector<double>& period_rates,
    double percentile, unsigned device_count, ModelOptions options = {},
    const PredictOptions& predict = {});

// Bottleneck identification: per-device share of SLA misses,
// share_j = r_j (1 - F_j(sla)) / sum_k r_k (1 - F_k(sla)), descending by
// contribution.  Pairs of (device index, contribution in [0, 1]).
// Precondition: sla > 0 (seconds).
std::vector<std::pair<std::size_t, double>> sla_miss_contributions(
    const SystemModel& model, double sla);

// ----- Degraded what-if (robustness extension) -----
//
// The model's Eq. 3 mixture already supports heterogeneous per-device
// parameters, so a degraded cluster is just a *transformed* parameter
// set: a slow device gets its disk service distributions inflated
// (numerics::Scaled), a failed device drops out with its traffic
// redistributed, and client retries inflate every arrival rate.  The same
// M/G/1 machinery then predicts the degraded percentiles.

struct DegradedScenario {
  // One device serving `service_inflation`-times-slower disk operations
  // (e.g. the window of a FaultSchedule disk_slowdown).
  std::optional<std::size_t> slow_device;
  double service_inflation = 1.0;

  // One device entirely failed; its arrival rates are spread evenly over
  // the surviving devices (random replica failover).
  std::optional<std::size_t> failed_device;

  // Multiplier >= 1 on every arrival rate: the retry-inflated effective
  // lambda (see retry_arrival_inflation).
  double retry_rate_factor = 1.0;

  void validate(std::size_t device_count) const;
};

// Expected attempts per request when each attempt independently fails
// with probability `failure_prob` and up to `max_retries` retries are
// allowed: (1 - p^{R+1}) / (1 - p).  Precondition: failure_prob in
// [0, 1).
double retry_arrival_inflation(double failure_prob, unsigned max_retries);

// Applies the scenario to healthy parameters, returning the degraded set.
SystemParams degrade(const SystemParams& healthy,
                     const DegradedScenario& scenario);

// P[latency <= sla] under the scenario; 0 when the degraded system is
// overloaded (the degraded system certainly misses the SLA then).
// Precondition: sla > 0 (seconds).
double degraded_sla_percentile(const SystemParams& healthy,
                               const DegradedScenario& scenario, double sla,
                               ModelOptions options = {},
                               const PredictOptions& predict = {});

// Scenario sweep: one percentile per entry of `scenarios`, fanned across
// PredictOptions::num_threads.  Bit-identical to — and the parallel
// equivalent of — calling degraded_sla_percentile per element.  Sharing
// a PredictionCache pays off here: scenarios touching one device leave
// the other devices' backends (and often their CDF points) identical.
std::vector<double> degraded_sla_percentiles(
    const SystemParams& healthy,
    const std::vector<DegradedScenario>& scenarios, double sla,
    ModelOptions options = {}, const PredictOptions& predict = {});

// ----- Redundancy what-if (tail-tolerance extension) -----
//
// Redundant reads cut the per-request tail but multiply the offered
// load: every hedge and every fan-out sibling is a real attempt the
// devices must serve (the simulator counts them in per-device attempted
// load, SimMetrics::on_attempt).  The model mirrors both sides:
// ModelOptions::redundancy wraps the response in the order statistic
// (the help), and apply_redundancy_load inflates the arrival rates (the
// hurt).  Their crossing is the help->hurt crossover the
// extension_redundancy bench locates.

// Arrival-rate multiplier for the request stream under `redundancy`.
//  * kHedge:  1 + P[T > d] = 2 - F(d) — a hedge fires only when the
//    primary is still outstanding at the deadline; `cdf_at_delay` is
//    F(d) of the per-request response (pass 0 for the worst case).
//  * kMinOfN / kKthOfN: n — every attempt is dispatched up front.
//    Cancellation trims the tail of that work in the simulator, so n is
//    a (documented) conservative ceiling.
double redundancy_arrival_inflation(const RedundancyOptions& redundancy,
                                    double cdf_at_delay = 0.0);

// Data-read-rate multiplier.  Differs from the request multiplier only
// for kKthOfN, where each of the n coded attempts reads 1/k of the
// object: n/k.  Applying both multipliers also shrinks the per-attempt
// extra-read ratio (data_read_rate / arrival_rate) by k — exactly the
// smaller coded chunks the backend model should see.
double redundancy_data_inflation(const RedundancyOptions& redundancy,
                                 double cdf_at_delay = 0.0);

// Applies the two multipliers to every device (and the frontend rate),
// returning the redundancy-inflated parameter set.
SystemParams apply_redundancy_load(const SystemParams& healthy,
                                   const RedundancyOptions& redundancy,
                                   double cdf_at_delay = 0.0);

// P[latency <= sla] under `options.redundancy`, with the arrival
// inflation applied self-consistently: for hedging, F(d) depends on the
// inflated load which depends on F(d), so the helper iterates the fixed
// point (a few rounds; the map is a contraction for stable systems).
// Returns 0 when the inflated system is overloaded — redundancy that
// saturates the cluster certainly misses the SLA, which is the "hurt"
// side of the crossover.  Precondition: sla > 0.
double redundant_sla_percentile(const SystemParams& healthy, double sla,
                                ModelOptions options = {},
                                const PredictOptions& predict = {});

// One evaluated redundancy policy: the options, the achieved percentile
// at the target SLA (0 when overloaded), and whether it beats the
// single-attempt baseline.
struct RedundancyChoice {
  RedundancyOptions options;
  double percentile = 0.0;
  bool beats_baseline = false;
};

// Policy search: evaluates every candidate (fanning across
// PredictOptions::num_threads) plus the single-attempt baseline, and
// returns the candidates in input order with `beats_baseline` filled.
// The best policy is the max-percentile entry; ties resolve to the
// earliest candidate.  Use candidates spanning hedge deadlines and
// redundancy degrees to search both axes against one SLA target.
std::vector<RedundancyChoice> evaluate_redundancy_policies(
    const SystemParams& healthy,
    const std::vector<RedundancyOptions>& candidates, double sla,
    ModelOptions options = {}, const PredictOptions& predict = {});

// The argmax over evaluate_redundancy_policies — nullopt when no
// candidate beats the single-attempt baseline at the target.
std::optional<RedundancyChoice> best_redundancy_policy(
    const SystemParams& healthy,
    const std::vector<RedundancyOptions>& candidates, double sla,
    ModelOptions options = {}, const PredictOptions& predict = {});

// ----- Tiering what-if (two-tier storage extension) -----
//
// Capacity planning over SSD tier sizes: each candidate pairs a tier
// capacity with the hit ratio predicted for it — typically
// calibration::predict_tier_hit_ratio over the Zipf catalog, kept out of
// this layer so core stays independent of calibration.  The factory
// builds SystemParams with core::TierOptions filled from the candidate
// (capacity 0 conventionally means "no tier").  Derivation and validity
// limits: docs/TIERING.md.

struct TierCandidate {
  std::size_t capacity_chunks = 0;  // SSD size, in data chunks
  double hit_ratio = 0.0;           // predicted tier hit ratio in [0, 1]
};

using TierFactory = std::function<SystemParams(const TierCandidate&)>;

struct TierPlanPoint {
  TierCandidate candidate;
  double percentile = 0.0;  // P[latency <= sla]; 0 when overloaded
  bool meets_target = false;
};

// Evaluates every candidate (fanned across PredictOptions::num_threads),
// returned in input order.  Must be thread-safe factory, as elsewhere.
std::vector<TierPlanPoint> tier_capacity_sweep(
    const TierFactory& factory, const std::vector<TierCandidate>& candidates,
    const SlaTarget& target, ModelOptions options = {},
    const PredictOptions& predict = {});

// "How much SSD buys p99 <= d?": the smallest-capacity candidate meeting
// the target, or nullopt when none does.  Ties on capacity resolve to
// the earliest candidate.
std::optional<TierPlanPoint> min_tier_capacity_for(
    const TierFactory& factory, const std::vector<TierCandidate>& candidates,
    const SlaTarget& target, ModelOptions options = {},
    const PredictOptions& predict = {});

}  // namespace cosm::core
