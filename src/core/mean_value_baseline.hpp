// A mean-value baseline in the style of the multi-tier Web-application
// models the paper positions itself against (its refs [3]–[6]): every
// station is treated as M/M/1 with the measured mean service time, the
// path mean latency is the sum of station sojourns, and — because such
// models produce no distribution — percentile questions can only be
// answered by bolting an exponential tail onto the mean,
//   P[T <= t] ~ 1 - exp(-t / T̄).
//
// The extension_mean_baseline bench runs this against the full model and
// the simulator: it gets means roughly right and percentiles badly wrong,
// which is the paper's core motivation made quantitative.
#pragma once

#include "core/params.hpp"

namespace cosm::core {

class MeanValueBaseline {
 public:
  explicit MeanValueBaseline(SystemParams params);

  // Rate-weighted mean response latency across devices: frontend M/M/1
  // sojourn + backend M/M/1 sojourn over the union-operation mean.
  double mean_response_latency() const { return mean_latency_; }
  double mean_response_latency_device(std::size_t device) const;

  // Exponential-tail percentile: 1 - exp(-sla / mean), mixed by rate.
  double predict_sla_percentile(double sla) const;

 private:
  SystemParams params_;
  std::vector<double> device_means_;
  double mean_latency_ = 0.0;
  double total_rate_ = 0.0;
};

}  // namespace cosm::core
