#include "core/mean_value_baseline.hpp"

#include <cmath>

#include "common/require.hpp"

namespace cosm::core {

namespace {

// M/M/1 mean sojourn 1/(mu - lambda) with the same overload policy as the
// rest of the models.
double mm1_sojourn(double arrival_rate, double mean_service) {
  const double mu = 1.0 / mean_service;
  COSM_REQUIRE(arrival_rate < mu,
               "mean-value baseline: station overloaded (rho >= 1)");
  return 1.0 / (mu - arrival_rate);
}

}  // namespace

MeanValueBaseline::MeanValueBaseline(SystemParams params)
    : params_(std::move(params)) {
  params_.validate();
  const double frontend_rate =
      params_.frontend.arrival_rate /
      static_cast<double>(params_.frontend.processes);
  const double frontend_sojourn =
      mm1_sojourn(frontend_rate, params_.frontend.frontend_parse->mean());
  device_means_.reserve(params_.devices.size());
  for (const auto& device : params_.devices) {
    // The per-request mean work at the backend: parse + cache-weighted
    // disk means, with (1 + p) data reads — the same quantity the full
    // model calls the union-operation mean, but consumed as an
    // exponential M/M/1 service.
    const double extra =
        (device.data_read_rate - device.arrival_rate) / device.arrival_rate;
    const double union_mean =
        device.backend_parse->mean() +
        device.index_miss_ratio * device.index_disk->mean() +
        device.meta_miss_ratio * device.meta_disk->mean() +
        (1.0 + extra) * device.data_miss_ratio * device.data_disk->mean();
    const double per_process_rate =
        device.arrival_rate / static_cast<double>(device.processes);
    const double backend_sojourn =
        mm1_sojourn(per_process_rate, union_mean);
    device_means_.push_back(frontend_sojourn + backend_sojourn);
    mean_latency_ += device.arrival_rate * device_means_.back();
    total_rate_ += device.arrival_rate;
  }
  mean_latency_ /= total_rate_;
}

double MeanValueBaseline::mean_response_latency_device(
    std::size_t device) const {
  COSM_REQUIRE(device < device_means_.size(), "device index out of range");
  return device_means_[device];
}

double MeanValueBaseline::predict_sla_percentile(double sla) const {
  COSM_REQUIRE(sla > 0, "SLA must be positive");
  double weighted = 0.0;
  for (std::size_t d = 0; d < device_means_.size(); ++d) {
    weighted += params_.devices[d].arrival_rate *
                (1.0 - std::exp(-sla / device_means_[d]));
  }
  return weighted / total_rate_;
}

}  // namespace cosm::core
