// Frontend-tier model (Sec. III-C): per-process M/G/1 over request
// parsing, plus the waiting-time-for-being-accept()-ed model.
//
//   S_q(s)  = (1 - parse_mean * r_i) s L[parse](s) /
//             (r_i L[parse](s) + s - r_i)      (M/G/1 sojourn of parsing)
//   W_a     = W_be                             (the paper's approximation)
//
// The exact accept-wait refinement the paper sketches and then
// approximates away — a connection arriving uniformly at random during an
// accept-operation lifetime x waits x - u, u ~ U(0, x) — is also provided
// (exact_wta_cdf) for the ablation bench; integrating the paper's survival
// expression by parts gives CDF_Wa(t) = t * ∫_t^∞ F_A(x) / x^2 dx.
#pragma once

#include "core/params.hpp"
#include "numerics/compose.hpp"

namespace cosm::core {

class FrontendModel {
 public:
  explicit FrontendModel(FrontendParams params);

  const FrontendParams& params() const { return params_; }

  // Per-process arrival rate r_i = r / N_fe.
  double per_process_rate() const;
  double utilization() const;
  bool stable() const { return utilization() < 1.0; }

  // S_q: queueing + parsing latency at one frontend process.
  numerics::DistPtr queueing_latency() const { return sojourn_; }

 private:
  FrontendParams params_;
  numerics::DistPtr sojourn_;
};

// CDF at t of the *exact* accept-wait distribution given the accept
// lifetime distribution A (= W_be by PASTA).  `lifetime_cdf` must be the
// CDF of A.  Numerical: CDF(t) = t ∫_t^∞ F_A(x)/x² dx + 0 for t <= 0;
// the integral's [X, ∞) tail is closed-form once F_A(x) ~ 1.
double exact_wta_cdf(const numerics::Distribution& lifetime, double t);

}  // namespace cosm::core
