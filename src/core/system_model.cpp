#include "core/system_model.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "numerics/order_statistics.hpp"
#include "numerics/roots.hpp"
#include "obs/obs.hpp"

namespace cosm::core {

using numerics::Convolution;
using numerics::DistPtr;
using numerics::hash_mix;

// Value fingerprint of everything that shapes a backend build.  Computed
// only on already-validated parameters (the distribution pointers are
// dereferenced).
std::uint64_t backend_fingerprint(const DeviceParams& params,
                                  ModelOptions options) {
  std::uint64_t h = 0x636f736d00000001ULL;
  h = hash_mix(h, params.arrival_rate);
  h = hash_mix(h, params.data_read_rate);
  h = hash_mix(h, params.index_miss_ratio);
  h = hash_mix(h, params.meta_miss_ratio);
  h = hash_mix(h, params.data_miss_ratio);
  h = hash_mix(h, static_cast<std::uint64_t>(params.processes));
  h = hash_mix(h, numerics::fingerprint(*params.index_disk));
  h = hash_mix(h, numerics::fingerprint(*params.meta_disk));
  h = hash_mix(h, numerics::fingerprint(*params.data_disk));
  h = hash_mix(h, numerics::fingerprint(*params.backend_parse));
  h = hash_mix(h, static_cast<std::uint64_t>(options.odopr));
  h = hash_mix(h, static_cast<std::uint64_t>(options.disk_queue));
  if (params.tier.enabled) {
    h = hash_mix(h, std::uint64_t{0x7469657257000001ULL});  // tier marker
    h = hash_mix(h, params.tier.hit_ratio);
    h = hash_mix(h, numerics::fingerprint(*params.tier.read_service));
    if (params.tier.write_service) {
      h = hash_mix(h, numerics::fingerprint(*params.tier.write_service));
    }
    h = hash_mix(h, static_cast<std::uint64_t>(params.tier.promote_on_read));
  }
  return h;
}

std::uint64_t cdf_cache_key(std::uint64_t device_fingerprint, double sla,
                            numerics::TapeEvalMode mode) {
  std::uint64_t key = hash_mix(device_fingerprint, sla);
  if (mode == numerics::TapeEvalMode::kSimdFast) {
    key = hash_mix(key, std::uint64_t{0x73696d6466617374ULL});  // "simdfast"
  }
  return key;
}

DeviceModel::DeviceModel(const FrontendModel& frontend, DeviceParams params,
                         ModelOptions options, const PredictOptions& predict) {
  obs::Span span("core.device_build");
  if (predict.cache != nullptr) {
    // Open-coded get_or_compute (lookup; on miss compute outside the
    // lock and insert) so hits and misses land in the obs counters.
    const std::uint64_t backend_fp = backend_fingerprint(params, options);
    if (auto cached = predict.cache->backends.lookup(backend_fp)) {
      obs::add(obs::Counter::kBackendCacheHit);
      backend_ = std::move(*cached);
    } else {
      obs::add(obs::Counter::kBackendCacheMiss);
      backend_ =
          std::make_shared<const BackendModel>(std::move(params), options);
      predict.cache->backends.insert(backend_fp, backend_);
    }
  } else {
    backend_ =
        std::make_shared<const BackendModel>(std::move(params), options);
  }
  std::vector<DistPtr> components;
  components.push_back(frontend.queueing_latency());  // S_q
  if (options.include_wta) {
    components.push_back(backend_->waiting_time());  // W_a = W_be
  }
  components.push_back(backend_->response_time());  // S_be
  response_ = std::make_shared<Convolution>(std::move(components));
  const RedundancyOptions& red = options.redundancy;
  if (red.mode != RedundancyOptions::Mode::kNone) {
    // Redundant reads complete from several concurrent attempts; wrap the
    // single-attempt response in the matching order statistic (see
    // numerics/order_statistics.hpp).  The fork-join correction feeds the
    // backend utilization in as the attempt correlation.
    const double corr =
        red.fork_join_correction
            ? std::clamp(backend_->utilization(), 0.0, 1.0)
            : 0.0;
    switch (red.mode) {
      case RedundancyOptions::Mode::kHedge:
        response_ = std::make_shared<numerics::HedgedResponse>(
            response_, red.hedge_delay, corr);
        break;
      case RedundancyOptions::Mode::kMinOfN:
        response_ = std::make_shared<numerics::OrderStatistic>(
            response_, red.n, 1, corr);
        break;
      case RedundancyOptions::Mode::kKthOfN:
        response_ = std::make_shared<numerics::OrderStatistic>(
            response_, red.n, red.k, corr);
        break;
      case RedundancyOptions::Mode::kNone:
        break;
    }
  }
  // The tape fingerprint doubles as the CDF cache key: everything that
  // shapes the response — device parameters, the frontend's S_q, WTA
  // inclusion, the disk-queue variant, the redundancy wrap (its combined
  // grid lands in the op params; the hedged wrap in the generic-leaf
  // fingerprint) — lands in the compiled op/param stream, and identically
  // constructed devices compile identical tapes.
  tape_ = numerics::TransformTape::compile(response_);
  fingerprint_ = tape_.fingerprint();
}

SystemModel::SystemModel(SystemParams params, ModelOptions options,
                         PredictOptions predict)
    : frontend_(params.frontend), predict_(predict) {
  params.validate();
  // Device builds are independent (the expensive part is the per-device
  // queueing solve), so they fan out; slots keep the reduction below in
  // device order, which keeps total_rate_ bit-identical to serial.
  const std::size_t count = params.devices.size();
  std::vector<std::optional<DeviceModel>> built(count);
  parallel_for(count, predict_.num_threads, [&](std::size_t i) {
    built[i].emplace(frontend_, std::move(params.devices[i]), options,
                     predict_);
  });
  devices_.reserve(count);
  for (auto& device : built) {
    total_rate_ += device->arrival_rate();
    devices_.push_back(std::move(*device));
  }
}

double SystemModel::device_cdf(std::size_t device, double sla) const {
  // The tape CDF is bit-identical to response_time()->cdf(sla) (the
  // scalar tree walk) — the tape's hard contract — so cache hits, cold
  // evaluations, and every thread count return the same doubles.  kExact
  // and kSimd produce the same bits and share cache entries; kSimdFast is
  // only ULP-bounded, so its entries are keyed apart — a cache shared
  // across tenants with different modes never crosses the two streams.
  const DeviceModel& model = devices_[device];
  const numerics::TapeEvalMode mode = predict_.tape_mode;
  if (predict_.cache == nullptr) return model.response_tape().cdf(sla, 20, mode);
  const std::uint64_t key = cdf_cache_key(model.fingerprint(), sla, mode);
  if (auto cached = predict_.cache->cdf.lookup(key)) {
    obs::add(obs::Counter::kCdfCacheHit);
    return *cached;
  }
  obs::add(obs::Counter::kCdfCacheMiss);
  const double value = model.response_tape().cdf(sla, 20, mode);
  predict_.cache->cdf.insert(key, value);
  return value;
}

double SystemModel::predict_sla_percentile(double sla) const {
  COSM_REQUIRE(sla > 0, "SLA must be positive");
  obs::Span span("core.predict_sla");
  const std::size_t count = devices_.size();
  std::vector<double> cdfs(count);
  parallel_for(count, predict_.num_threads,
               [&](std::size_t i) { cdfs[i] = device_cdf(i, sla); });
  double weighted = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    weighted += devices_[i].arrival_rate() * cdfs[i];
  }
  return weighted / total_rate_;
}

std::vector<double> SystemModel::predict_sla_percentiles(
    const std::vector<double>& slas) const {
  for (const double sla : slas) COSM_REQUIRE(sla > 0, "SLA must be positive");
  obs::Span span("core.predict_sla_sweep");
  const std::size_t n_slas = slas.size();
  const std::size_t count = devices_.size();
  std::vector<double> cdfs(count * n_slas);
  if (predict_.cache == nullptr) {
    // Uncached sweep: one batched tape evaluation per device covers ALL
    // SLA points at once (cdf_many concatenates the contours), amortizing
    // tape dispatch across the sweep.  Element-for-element bit-identical
    // to the per-cell path below.
    parallel_for(count, predict_.num_threads, [&](std::size_t d) {
      const std::vector<double> device_cdfs =
          devices_[d].response_tape().cdf_many(slas, 20, predict_.tape_mode);
      std::copy(device_cdfs.begin(), device_cdfs.end(),
                cdfs.begin() + static_cast<std::ptrdiff_t>(d * n_slas));
    });
  } else {
    // Cached sweep: flatten the (device × SLA point) grid — each cell is
    // one cacheable Euler inversion, the natural unit of shared work.
    parallel_for(count * n_slas, predict_.num_threads, [&](std::size_t k) {
      cdfs[k] = device_cdf(k / n_slas, slas[k % n_slas]);
    });
  }
  std::vector<double> out(n_slas, 0.0);
  for (std::size_t s = 0; s < n_slas; ++s) {
    double weighted = 0.0;
    for (std::size_t d = 0; d < count; ++d) {
      weighted += devices_[d].arrival_rate() * cdfs[d * n_slas + s];
    }
    out[s] = weighted / total_rate_;
  }
  return out;
}

double SystemModel::predict_sla_percentile_device(std::size_t device,
                                                  double sla) const {
  COSM_REQUIRE(device < devices_.size(), "device index out of range");
  COSM_REQUIRE(sla > 0, "SLA must be positive");
  return device_cdf(device, sla);
}

std::uint64_t SystemModel::regime_fingerprint() const {
  // Shape-only identity of the device set: device count plus each tape's
  // structure fingerprint (opcodes, not rates).  Rate sweeps keep this
  // constant; a device failing out, healing back, or gaining a slowdown
  // wrapper changes it — exactly the "curve family" boundary where a
  // carried warm-start root stops being a trustworthy seed.
  std::uint64_t h =
      hash_mix(0x636f736d00000002ULL,
               static_cast<std::uint64_t>(devices_.size()));
  for (const auto& device : devices_) {
    h = hash_mix(h, device.response_tape().structure_fingerprint());
  }
  return h | 1;  // never 0, which QuantileWarmStart reads as "untracked"
}

double SystemModel::latency_quantile(
    double percentile, numerics::QuantileWarmStart* warm) const {
  COSM_REQUIRE(percentile > 0 && percentile < 1,
               "percentile must be in (0, 1)");
  obs::Span span("core.latency_quantile");
  if (warm != nullptr) warm->enter_regime(regime_fingerprint());
  const auto residual = [this, percentile](double t) {
    return predict_sla_percentile(t) - percentile;
  };
  bool use_warm = warm != nullptr && std::isfinite(warm->previous) &&
                  warm->previous > 0;
  double lo;
  double hi;
  if (use_warm) {
    // Seed around the previous root; on a monotone sweep this brackets
    // in O(1) probes instead of re-growing from the mean.  The shrink
    // loop below restores lo when the seed overshoots the new root, so
    // correctness never depends on the sweep direction.
    lo = 0.5 * warm->previous;
    hi = 2.0 * warm->previous;
    int shrink = 0;
    while (residual(lo) > 0 && ++shrink < 80) lo *= 0.5;
    if (residual(lo) > 0) {
      // The carried root is so far above the new one that 80 halvings
      // never found the left edge — a stale seed the regime guard could
      // not catch (same structure, wildly different rates).  Fall back
      // to a cold seed instead of handing Brent an invalid bracket.
      obs::add(obs::Counter::kQuantileWarmFallback);
      use_warm = false;
    }
  }
  if (!use_warm) {
    obs::add(obs::Counter::kQuantileColdStart);
    hi = mean_response_latency() * 2.0;
    lo = hi * 1e-6;
  } else {
    obs::add(obs::Counter::kQuantileWarmAccept);
  }
  const bool ok = numerics::expand_bracket_upward(residual, lo, hi);
  COSM_REQUIRE(ok, "quantile could not be bracketed");
  const auto root = numerics::brent(residual, lo, hi, 1e-9);
  // Silent-failure fix: brent reports non-convergence through
  // RootResult::converged, and this was the one call site that never
  // looked — a diverged search handed its last iterate to callers as if
  // it were the quantile.
  COSM_REQUIRE(root.converged, "quantile root search failed to converge");
  if (warm != nullptr) warm->previous = root.x;
  return root.x;
}

std::vector<double> SystemModel::latency_quantiles(
    const std::vector<double>& percentiles) const {
  numerics::QuantileWarmStart warm;
  std::vector<double> out;
  out.reserve(percentiles.size());
  for (const double p : percentiles) {
    out.push_back(latency_quantile(p, &warm));
  }
  return out;
}

double SystemModel::mean_response_latency() const {
  double weighted = 0.0;
  for (const auto& device : devices_) {
    weighted += device.arrival_rate() * device.response_time()->mean();
  }
  return weighted / total_rate_;
}

}  // namespace cosm::core
