#include "core/system_model.hpp"

#include <cmath>

#include "common/require.hpp"
#include "numerics/roots.hpp"

namespace cosm::core {

using numerics::Convolution;
using numerics::DistPtr;

DeviceModel::DeviceModel(const FrontendModel& frontend, DeviceParams params,
                         ModelOptions options)
    : backend_(std::move(params), options) {
  std::vector<DistPtr> components;
  components.push_back(frontend.queueing_latency());  // S_q
  if (options.include_wta) {
    components.push_back(backend_.waiting_time());  // W_a = W_be
  }
  components.push_back(backend_.response_time());  // S_be
  response_ = std::make_shared<Convolution>(std::move(components));
}

SystemModel::SystemModel(SystemParams params, ModelOptions options)
    : frontend_(params.frontend) {
  params.validate();
  devices_.reserve(params.devices.size());
  for (auto& device_params : params.devices) {
    devices_.emplace_back(frontend_, std::move(device_params), options);
    total_rate_ += devices_.back().arrival_rate();
  }
}

double SystemModel::predict_sla_percentile(double sla) const {
  COSM_REQUIRE(sla > 0, "SLA must be positive");
  double weighted = 0.0;
  for (const auto& device : devices_) {
    weighted +=
        device.arrival_rate() * device.response_time()->cdf(sla);
  }
  return weighted / total_rate_;
}

double SystemModel::predict_sla_percentile_device(std::size_t device,
                                                  double sla) const {
  COSM_REQUIRE(device < devices_.size(), "device index out of range");
  COSM_REQUIRE(sla > 0, "SLA must be positive");
  return devices_[device].response_time()->cdf(sla);
}

double SystemModel::latency_quantile(double percentile) const {
  COSM_REQUIRE(percentile > 0 && percentile < 1,
               "percentile must be in (0, 1)");
  const auto residual = [this, percentile](double t) {
    return predict_sla_percentile(t) - percentile;
  };
  double hi = mean_response_latency() * 2.0;
  const double lo = hi * 1e-6;
  const bool ok = numerics::expand_bracket_upward(residual, lo, hi);
  COSM_REQUIRE(ok, "quantile could not be bracketed");
  const auto root = numerics::brent(residual, lo, hi, 1e-9);
  return root.x;
}

double SystemModel::mean_response_latency() const {
  double weighted = 0.0;
  for (const auto& device : devices_) {
    weighted += device.arrival_rate() * device.response_time()->mean();
  }
  return weighted / total_rate_;
}

}  // namespace cosm::core
