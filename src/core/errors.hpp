// Model error types.
//
// OverloadError distinguishes "this configuration violates the model's
// stability precondition (utilization >= 1)" from plain bad arguments
// (NaN rates, missing distributions), so callers can treat saturation as
// a *result* — the what-if searches map it to "target not met", and the
// examples report "(overloaded)" only when the system genuinely is.
//
// It derives from std::invalid_argument so existing catch sites that
// treat any precondition violation as "not feasible" keep working.
#pragma once

#include <stdexcept>
#include <string>

namespace cosm::core {

class OverloadError : public std::invalid_argument {
 public:
  explicit OverloadError(const std::string& what)
      : std::invalid_argument(what) {}
};

}  // namespace cosm::core
