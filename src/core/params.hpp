// Model parameters — the inputs of Section III/IV.
//
// Two categories, as the paper classifies them (Sec. IV):
//  * device performance properties (benchmarked offline): the disk
//    service-time distributions per operation kind and the request-parsing
//    distributions;
//  * system online metrics (monitored): arrival rates, data-read rates,
//    and cache miss ratios.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "numerics/distribution.hpp"
#include "numerics/memo_cache.hpp"
#include "numerics/tape_mode.hpp"

namespace cosm::core {

class BackendModel;

// Two-tier storage (tiering extension): the model-side mirror of the
// simulator's SSD cache tier (sim::TierConfig).  A data read that missed
// the page cache is served by the SSD with probability `hit_ratio` and
// by the capacity disk otherwise; the backend model composes the two as
// a numerics::TieredService mixture feeding the existing M/G/1/K device
// model.  Hit ratios are predicted from the Zipf catalog
// (calibration::predict_tier_hit_ratio) rather than measured.
// Derivation and validity limits: docs/TIERING.md.
struct TierOptions {
  bool enabled = false;
  // P(SSD serves a data read that missed the page cache), in [0, 1].
  double hit_ratio = 0.0;
  // SSD read service — the hit branch of the mixture.
  numerics::DistPtr read_service;
  // SSD install write service: with promote_on_read, every tier miss
  // pays an asynchronous SSD write that shares the SSD queue with the
  // blocking reads (it matters only in the N_be > 1 queue substitution).
  numerics::DistPtr write_service;
  bool promote_on_read = true;

  void validate() const;
};

// Everything the backend model needs for ONE storage device.
struct DeviceParams {
  // Request arrival rate r at this device (req/s).
  double arrival_rate = 0.0;
  // Data-read (chunk) arrival rate r_data >= r.
  double data_read_rate = 0.0;

  // Cache miss ratios m_index, m_meta, m_data.
  double index_miss_ratio = 0.0;
  double meta_miss_ratio = 0.0;
  double data_miss_ratio = 0.0;

  // Disk service-time distributions index_d, meta_d, data_d (Sec. IV-A;
  // Gamma on the paper's testbed).
  numerics::DistPtr index_disk;
  numerics::DistPtr meta_disk;
  numerics::DistPtr data_disk;

  // Request parsing at the backend (Degenerate on the paper's testbed).
  numerics::DistPtr backend_parse;

  // N_be: number of processes dedicated to this device.
  std::uint32_t processes = 1;

  // SSD cache tier in front of the disk (disabled reproduces the paper's
  // single-tier model exactly).
  TierOptions tier;

  void validate() const;
};

// One homogeneous group of frontend processes.  Sec. III-C: "the frontend
// tier of heterogeneous servers can be divided into several sets of
// homogeneous servers, and the distribution of queueing latencies can be
// calculated separately."
struct FrontendGroup {
  // Number of identical processes in this group.
  std::uint32_t processes = 1;
  // Fraction of system traffic routed to this group (weights over all
  // groups must sum to 1).
  double traffic_share = 1.0;
  numerics::DistPtr frontend_parse;
};

// Frontend-tier parameters (shared by all devices).  The common
// homogeneous case uses `processes` + `frontend_parse`; heterogeneous
// tiers list `groups` instead (leaving frontend_parse null).
struct FrontendParams {
  // Total request arrival rate at the frontend tier (req/s).
  double arrival_rate = 0.0;
  // N_fe: number of frontend processes (homogeneous case).
  std::uint32_t processes = 1;
  numerics::DistPtr frontend_parse;
  // Heterogeneous case: non-empty overrides the two fields above.
  std::vector<FrontendGroup> groups;

  void validate() const;
};

struct SystemParams {
  FrontendParams frontend;
  std::vector<DeviceParams> devices;

  void validate() const;
};

// Redundancy-aware response shaping (tail-tolerance extension): the
// model-side mirror of the simulator's hedged GETs and (n,k) fan-out
// reads.  The device response S_fe is wrapped in the matching
// order-statistic distribution (numerics::OrderStatistic /
// numerics::HedgedResponse) under the independent-replica approximation;
// see docs/MODEL.md for the math and its limits.
struct RedundancyOptions {
  enum class Mode {
    kNone,    // single attempt (the paper's model, the default)
    kHedge,   // second attempt after hedge_delay, first response wins
    kMinOfN,  // n concurrent attempts, first response wins
    kKthOfN,  // n coded attempts, k-th response completes
  };
  Mode mode = Mode::kNone;
  // Concurrent attempts for kMinOfN / kKthOfN (hedging always races 2).
  unsigned n = 2;
  // Responses required for kKthOfN (1 <= k <= n).
  unsigned k = 1;
  // Hedge deadline in seconds (kHedge only; must be > 0).
  double hedge_delay = 0.01;
  // Fork-join correction: blend the independent order statistic toward
  // the single-attempt tail by the backend utilization (busy queues are
  // exactly when concurrent attempts correlate).  Off = pure
  // independence, the optimistic bound.
  bool fork_join_correction = true;
};

// Model variants for the paper's baseline comparison (Sec. V-C) and the
// disk-queue extension.
struct ModelOptions {
  // false: the noWTA baseline (no waiting time for being accept()-ed).
  bool include_wta = true;
  // true: the ODOPR baseline ("One Disk Operation Per Request"): index
  // lookups, metadata reads and *extra* data reads all considered cache
  // hits; only the first data read may touch the disk.
  bool odopr = false;
  // How the N_be > 1 shared disk queue is solved.  The paper uses the
  // M/M/1/K substitution "for simplicity" and notes that any alternative
  // with a closed-form sojourn transform would do; kMG1K plugs in the
  // embedded-chain solution with exact state weights (see
  // queueing::MG1K::sojourn_time), removing the exponential-service
  // assumption the paper blames for S16's systematic error.
  enum class DiskQueue { kMM1K, kMG1K };
  DiskQueue disk_queue = DiskQueue::kMM1K;
  // Redundant-read response shaping (kNone reproduces the paper exactly).
  RedundancyOptions redundancy = {};
};

// Shared memoization across models (Sec. "parallel pipeline" extension):
// what-if sweeps and percentile ladders rebuild mostly identical models,
// and homogeneous clusters repeat the identical device N times.  The two
// caches cover the two expensive kernels:
//  * backends — fully built backend models (P–K / compound-Poisson /
//    M/G/1/K chain solves), keyed by a value fingerprint of DeviceParams
//    plus the options that shape the build;
//  * cdf — per-device SLA-percentile values (one Euler inversion each),
//    keyed by (response-tape fingerprint, SLA bits); the tape fingerprint
//    covers the device, frontend, and option state that shapes the
//    response (see numerics::TransformTape::fingerprint).
// Keys are 64-bit value fingerprints (numerics::hash_mix /
// numerics::fingerprint): bit-identical parameters hit, anything else
// misses (up to ~2^-64 fingerprint-collision odds).  Cached values are
// deterministic functions of their keys, so cached and uncached runs are
// bit-identical.  Thread-safe; share one instance across threads and
// models, and keep it alive for as long as any SystemModel holds a
// pointer to it (PredictOptions::cache).
struct PredictionCache {
  // 16 lock stripes: the what-if service shares one instance across every
  // tenant thread, and fingerprint keys stripe evenly (see the sharding
  // note in numerics/memo_cache.hpp).
  numerics::MemoCache<std::uint64_t, std::shared_ptr<const BackendModel>>
      backends{1 << 10, 16};
  numerics::MemoCache<std::uint64_t, double> cdf{1 << 16, 16};

  // Combined counters over both caches (for logs and BENCH_pipeline.json).
  numerics::CacheStats combined_stats() const {
    const numerics::CacheStats a = backends.stats();
    const numerics::CacheStats b = cdf.stats();
    return numerics::CacheStats{a.hits + b.hits, a.misses + b.misses,
                                a.evictions + b.evictions, a.size + b.size,
                                a.capacity + b.capacity};
  }
};

// Execution knobs for building and querying models — orthogonal to
// ModelOptions (which selects *what* is computed, not *how fast*).
struct PredictOptions {
  // Fan-out width for independent work (per-device builds, per-SLA-point
  // inversions, what-if scenario sweeps): 1 = serial on the calling
  // thread (the default — no pool is created), 0 = all hardware threads,
  // k = at most k threads including the caller.  Results are bit-identical
  // to serial for every setting (slot-indexed outputs, fixed reduction
  // order).
  unsigned num_threads = 1;
  // Optional shared memoization; nullptr disables caching.  The cache
  // must outlive every model constructed with it.
  PredictionCache* cache = nullptr;
  // How compiled transform tapes are evaluated (see numerics/tape_mode.hpp).
  // kExact and kSimd are bit-identical (kSimd vectorizes); kSimdFast is
  // ULP-bounded.  The mode is mixed into CDF cache keys, so models with
  // different modes can safely share one PredictionCache.
  numerics::TapeEvalMode tape_mode = numerics::TapeEvalMode::kExact;
};

}  // namespace cosm::core
