// The assembled system model — the paper's headline deliverable.
//
// Per device j (Eq. 2):   S_fe_j = S_q * W_a * S_be_j
// Whole system  (Eq. 3):  S(t)   = sum_j r_j S_j(t) / sum_j r_j
//
// predict_sla_percentile(sla) returns P[latency <= sla]: "the percentile
// of requests meeting SLA".  ModelOptions selects the full model or the
// noWTA / ODOPR baselines of Sec. V-C; PredictOptions selects how the
// work is executed — fan-out width across devices/SLA points and an
// optional shared PredictionCache (see core/params.hpp).
//
// Thread-safety: a fully constructed SystemModel is immutable, so all
// const member functions may be called concurrently.  Construction itself
// may fan out across ThreadPool::global() when
// PredictOptions::num_threads != 1.
//
// Determinism: for fixed parameters, every query returns bit-identical
// results regardless of num_threads and of whether a cache is attached —
// parallel workers write disjoint slots that are reduced in device order,
// and cached values are deterministic functions of their keys.  This is
// enforced by tests/core/test_parallel_prediction.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/backend_model.hpp"
#include "core/frontend_model.hpp"
#include "core/params.hpp"

namespace cosm::core {

// Value fingerprint of everything that shapes a backend build — the key
// under which PredictionCache::backends stores the built BackendModel.
// Public so the online calibration loop can erase exactly the entries a
// re-fit made stale (fingerprint-keyed invalidation) instead of clearing
// shared caches.  Dereferences the distribution pointers: call only on
// validated parameters.
std::uint64_t backend_fingerprint(const DeviceParams& params,
                                  ModelOptions options);

// Key under which PredictionCache::cdf stores one device's CDF value at
// one SLA point: (response-tape fingerprint, SLA bits), with kSimdFast
// keyed apart (it is only ULP-bounded, so its entries must never serve a
// bit-exact mode).  device_cdf derives its keys through this function, so
// external invalidation can never drift from the lookup path.
std::uint64_t cdf_cache_key(std::uint64_t device_fingerprint, double sla,
                            numerics::TapeEvalMode mode);

class DeviceModel {
 public:
  // Builds the device model for `params` (rates in req/s, latencies in
  // seconds).  `frontend` must outlive the DeviceModel (SystemModel owns
  // both).  When `predict.cache` is set, the backend build is served from
  // the cache: identical device parameter sets (by value fingerprint)
  // share one BackendModel.
  // Throws OverloadError when the device violates the model's stability
  // precondition, std::invalid_argument for genuinely bad parameters.
  DeviceModel(const FrontendModel& frontend, DeviceParams params,
              ModelOptions options, const PredictOptions& predict = {});

  const BackendModel& backend() const { return *backend_; }
  // S_fe: the device's response-latency distribution at the frontend.
  numerics::DistPtr response_time() const { return response_; }
  // S_fe compiled to a flat transform tape — what every CDF/quantile
  // query evaluates; bit-identical to response_time()->laplace (see
  // numerics/transform_tape.hpp).
  const numerics::TransformTape& response_tape() const { return tape_; }
  // r_j, requests/s.
  double arrival_rate() const { return backend_->params().arrival_rate; }
  // Cache key identity of this device's response distribution: the
  // response tape's fingerprint.  It covers device parameters, frontend
  // parameters, and every ModelOptions field that shapes the response —
  // all of them shape the compiled op/param stream — so identically
  // configured devices key the same PredictionCache entries.
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  std::shared_ptr<const BackendModel> backend_;
  numerics::DistPtr response_;
  numerics::TransformTape tape_;
  std::uint64_t fingerprint_ = 0;
};

class SystemModel {
 public:
  // Validates and assembles the whole-system model.  `predict` controls
  // execution only (see PredictOptions): results are identical for every
  // setting.  If `predict.cache` is non-null it must outlive this model.
  // Throws OverloadError when any device or frontend group is saturated,
  // std::invalid_argument for invalid parameters (negative rates, rate
  // mismatches, missing distributions).
  explicit SystemModel(SystemParams params, ModelOptions options = {},
                       PredictOptions predict = {});

  const FrontendModel& frontend() const { return frontend_; }
  const std::vector<DeviceModel>& devices() const { return devices_; }

  // P[response latency <= sla] over the whole system (Eq. 3).
  // Precondition: sla > 0 (seconds).
  double predict_sla_percentile(double sla) const;
  // Batch form: one value per entry of `slas`, fanning the (device × SLA
  // point) grid across PredictOptions::num_threads.  Equivalent to — and
  // bit-identical with — calling predict_sla_percentile per element.
  std::vector<double> predict_sla_percentiles(
      const std::vector<double>& slas) const;
  // Same, restricted to one device.  Preconditions: device index in
  // range, sla > 0 (seconds).
  double predict_sla_percentile_device(std::size_t device,
                                       double sla) const;
  // Inverse: latency bound (seconds) such that `percentile` of requests
  // meet it.  Precondition: percentile in (0, 1).  When `warm` is
  // non-null the bracket seeds from the previous root and the new root is
  // written back (see numerics::QuantileWarmStart) — intended for
  // monotone sweeps; warm results agree with cold calls to the Brent
  // tolerance, not bit-exactly.
  double latency_quantile(double percentile,
                          numerics::QuantileWarmStart* warm = nullptr) const;
  // Quantile ladder: one bound per entry, warm-chaining the bracket from
  // element to element (sort ascending for the best amortization).
  // Equivalent to per-element latency_quantile within Brent tolerance.
  std::vector<double> latency_quantiles(
      const std::vector<double>& percentiles) const;
  // Rate-weighted mean response latency in seconds (for what-if analyses).
  double mean_response_latency() const;
  // Shape-only identity of the device set (count + per-device structural
  // tape fingerprints; rates excluded).  latency_quantile feeds this to
  // QuantileWarmStart::enter_regime so a carried root survives rate
  // sweeps but is discarded across structural changes (failed device,
  // healed device, slowdown wrapper).  Never returns 0.
  std::uint64_t regime_fingerprint() const;

 private:
  double device_cdf(std::size_t device, double sla) const;

  FrontendModel frontend_;
  std::vector<DeviceModel> devices_;
  double total_rate_ = 0.0;
  PredictOptions predict_;
};

}  // namespace cosm::core
