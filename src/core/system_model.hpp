// The assembled system model — the paper's headline deliverable.
//
// Per device j (Eq. 2):   S_fe_j = S_q * W_a * S_be_j
// Whole system  (Eq. 3):  S(t)   = sum_j r_j S_j(t) / sum_j r_j
//
// predict_sla_percentile(sla) returns P[latency <= sla]: "the percentile
// of requests meeting SLA".  ModelOptions selects the full model or the
// noWTA / ODOPR baselines of Sec. V-C.
#pragma once

#include <vector>

#include "core/backend_model.hpp"
#include "core/frontend_model.hpp"
#include "core/params.hpp"

namespace cosm::core {

class DeviceModel {
 public:
  DeviceModel(const FrontendModel& frontend, DeviceParams params,
              ModelOptions options);

  const BackendModel& backend() const { return backend_; }
  // S_fe: the device's response-latency distribution at the frontend.
  numerics::DistPtr response_time() const { return response_; }
  double arrival_rate() const { return backend_.params().arrival_rate; }

 private:
  BackendModel backend_;
  numerics::DistPtr response_;
};

class SystemModel {
 public:
  explicit SystemModel(SystemParams params, ModelOptions options = {});

  const FrontendModel& frontend() const { return frontend_; }
  const std::vector<DeviceModel>& devices() const { return devices_; }

  // P[response latency <= sla] over the whole system (Eq. 3).
  double predict_sla_percentile(double sla) const;
  // Same, restricted to one device.
  double predict_sla_percentile_device(std::size_t device,
                                       double sla) const;
  // Inverse: latency bound such that `percentile` of requests meet it.
  double latency_quantile(double percentile) const;
  // Rate-weighted mean response latency (for what-if analyses).
  double mean_response_latency() const;

 private:
  FrontendModel frontend_;
  std::vector<DeviceModel> devices_;
  double total_rate_ = 0.0;
};

}  // namespace cosm::core
