// The backend-tier model of Section III-B: the union operation, the
// M/G/1 queue of union operations, and the N_be > 1 extension through the
// M/M/1/K disk-queue substitution.
//
// Outputs:
//   waiting_time()  — W_be, the union-operation queue waiting time (also
//                     the paper's W_a approximation for the accept wait);
//   response_time() — S_be = W * parse * index * meta * data   (Eq. 1);
//   union_service() — B_be, the union-operation service distribution.
#pragma once

#include "core/params.hpp"
#include "numerics/compose.hpp"
#include "numerics/transform_tape.hpp"

namespace cosm::core {

class BackendModel {
 public:
  // `options.odopr` rewrites the parameters per the ODOPR baseline before
  // building.  Throws std::invalid_argument when the device is overloaded
  // (the model only covers the paper's "normal status").
  explicit BackendModel(DeviceParams params, ModelOptions options = {});

  const DeviceParams& params() const { return params_; }

  // Mean number of extra data reads per union operation,
  // p = (r_data - r) / r.
  double extra_data_reads() const { return extra_reads_; }

  // Utilization of the union-operation M/G/1 queue (per process).
  double utilization() const;
  bool stable() const { return utilization() < 1.0; }

  numerics::DistPtr union_service() const { return union_service_; }
  numerics::DistPtr waiting_time() const { return waiting_; }
  numerics::DistPtr response_time() const { return response_; }

  // The backend response transform compiled to a flat evaluation tape
  // (bit-identical to response_time()->laplace, see
  // numerics/transform_tape.hpp); compiled once at build time.
  const numerics::TransformTape& response_tape() const {
    return response_tape_;
  }

  // The effective (possibly M/M/1/K-substituted) per-operation
  // distributions, exposed for tests and the ablation benches.
  numerics::DistPtr effective_index() const { return index_; }
  numerics::DistPtr effective_meta() const { return meta_; }
  numerics::DistPtr effective_data() const { return data_; }

  // N_be > 1 only: the disk queue model quantities (offered utilization
  // and the M/M/1/K mean sojourn used as "disk service time").
  double disk_arrival_rate() const { return disk_rate_; }
  double disk_mean_service() const { return disk_mean_service_; }

 private:
  void build();

  DeviceParams params_;
  ModelOptions options_;
  double extra_reads_ = 0.0;
  double disk_rate_ = 0.0;
  double disk_mean_service_ = 0.0;
  numerics::DistPtr index_;
  numerics::DistPtr meta_;
  numerics::DistPtr data_;
  numerics::DistPtr union_service_;
  numerics::DistPtr waiting_;
  numerics::DistPtr response_;
  numerics::TransformTape response_tape_;
};

}  // namespace cosm::core
