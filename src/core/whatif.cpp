#include "core/whatif.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/require.hpp"

namespace cosm::core {

void SlaTarget::validate() const {
  COSM_REQUIRE(sla > 0, "SLA bound must be positive");
  COSM_REQUIRE(percentile > 0 && percentile < 1,
               "target percentile must be in (0, 1)");
}

bool meets_target(const SystemParams& params, const SlaTarget& target,
                  ModelOptions options) {
  target.validate();
  try {
    const SystemModel model(params, options);
    return model.predict_sla_percentile(target.sla) >= target.percentile;
  } catch (const std::invalid_argument&) {
    return false;  // overloaded => certainly not meeting the target
  }
}

std::optional<unsigned> min_devices_for(const ClusterFactory& factory,
                                        double total_rate,
                                        const SlaTarget& target,
                                        unsigned min_devices,
                                        unsigned max_devices,
                                        ModelOptions options) {
  COSM_REQUIRE(factory != nullptr, "cluster factory required");
  COSM_REQUIRE(min_devices >= 1 && min_devices <= max_devices,
               "device range must be non-empty");
  // Compliance is monotone in the device count (less load per device), so
  // binary search applies; guard with the endpoints first.
  if (!meets_target(factory(total_rate, max_devices), target, options)) {
    return std::nullopt;
  }
  unsigned lo = min_devices;  // possibly non-compliant
  unsigned hi = max_devices;  // compliant
  if (meets_target(factory(total_rate, lo), target, options)) return lo;
  while (hi - lo > 1) {
    const unsigned mid = lo + (hi - lo) / 2;
    if (meets_target(factory(total_rate, mid), target, options)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double max_admission_rate(const ClusterFactory& factory,
                          unsigned device_count, const SlaTarget& target,
                          double rate_limit, double tolerance,
                          ModelOptions options) {
  COSM_REQUIRE(factory != nullptr, "cluster factory required");
  COSM_REQUIRE(rate_limit > 0, "rate limit must be positive");
  COSM_REQUIRE(tolerance > 0, "tolerance must be positive");
  const auto ok = [&](double rate) {
    return meets_target(factory(rate, device_count), target, options);
  };
  if (ok(rate_limit)) return rate_limit;
  double lo = 0.0;
  double hi = rate_limit;
  // Find any compliant rate to anchor the bisection.
  double probe = rate_limit / 2.0;
  while (probe > tolerance && !ok(probe)) probe /= 2.0;
  if (probe <= tolerance) return 0.0;
  lo = probe;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    (ok(mid) ? lo : hi) = mid;
  }
  return lo;
}

std::vector<std::optional<unsigned>> elastic_schedule(
    const ClusterFactory& factory, const std::vector<double>& period_rates,
    const SlaTarget& target, unsigned max_devices, ModelOptions options) {
  std::vector<std::optional<unsigned>> schedule;
  schedule.reserve(period_rates.size());
  for (const double rate : period_rates) {
    schedule.push_back(
        min_devices_for(factory, rate, target, 1, max_devices, options));
  }
  return schedule;
}

std::vector<std::pair<std::size_t, double>> sla_miss_contributions(
    const SystemModel& model, double sla) {
  COSM_REQUIRE(sla > 0, "SLA bound must be positive");
  std::vector<std::pair<std::size_t, double>> contributions;
  double total = 0.0;
  for (std::size_t d = 0; d < model.devices().size(); ++d) {
    const auto& device = model.devices()[d];
    const double missed =
        device.arrival_rate() * (1.0 - device.response_time()->cdf(sla));
    contributions.emplace_back(d, missed);
    total += missed;
  }
  for (auto& [device, value] : contributions) {
    value = total > 0 ? value / total : 0.0;
  }
  std::sort(contributions.begin(), contributions.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return contributions;
}

}  // namespace cosm::core
