#include "core/whatif.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "numerics/compose.hpp"
#include "obs/obs.hpp"

namespace cosm::core {

namespace {

// Sweeps fan out at the iteration level, so the model build inside each
// iteration runs serially — fanning twice would just oversubscribe the
// pool.  The cache still flows through: that is where the sharing between
// iterations happens.
PredictOptions inner_options(const PredictOptions& predict) {
  return PredictOptions{1, predict.cache};
}

}  // namespace

void SlaTarget::validate() const {
  COSM_REQUIRE(sla > 0, "SLA bound must be positive");
  COSM_REQUIRE(percentile > 0 && percentile < 1,
               "target percentile must be in (0, 1)");
}

bool meets_target(const SystemParams& params, const SlaTarget& target,
                  ModelOptions options, const PredictOptions& predict) {
  target.validate();
  try {
    const SystemModel model(params, options, predict);
    return model.predict_sla_percentile(target.sla) >= target.percentile;
  } catch (const OverloadError&) {
    // Saturation is a *result* here, not a caller bug: an overloaded
    // configuration certainly misses the target.  Genuinely invalid
    // parameters still propagate as std::invalid_argument.
    return false;
  }
}

std::optional<unsigned> min_devices_for(const ClusterFactory& factory,
                                        double total_rate,
                                        const SlaTarget& target,
                                        unsigned min_devices,
                                        unsigned max_devices,
                                        ModelOptions options,
                                        const PredictOptions& predict) {
  COSM_REQUIRE(factory != nullptr, "cluster factory required");
  COSM_REQUIRE(min_devices >= 1 && min_devices <= max_devices,
               "device range must be non-empty");
  // Compliance is monotone in the device count (less load per device), so
  // binary search applies; guard with the endpoints first.
  if (!meets_target(factory(total_rate, max_devices), target, options,
                    predict)) {
    return std::nullopt;
  }
  unsigned lo = min_devices;  // possibly non-compliant
  unsigned hi = max_devices;  // compliant
  if (meets_target(factory(total_rate, lo), target, options, predict)) {
    return lo;
  }
  while (hi - lo > 1) {
    const unsigned mid = lo + (hi - lo) / 2;
    if (meets_target(factory(total_rate, mid), target, options, predict)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double max_admission_rate(const ClusterFactory& factory,
                          unsigned device_count, const SlaTarget& target,
                          double rate_limit, double tolerance,
                          ModelOptions options,
                          const PredictOptions& predict) {
  COSM_REQUIRE(factory != nullptr, "cluster factory required");
  COSM_REQUIRE(rate_limit > 0, "rate limit must be positive");
  COSM_REQUIRE(tolerance > 0, "tolerance must be positive");
  const auto ok = [&](double rate) {
    return meets_target(factory(rate, device_count), target, options,
                        predict);
  };
  if (ok(rate_limit)) return rate_limit;
  double lo = 0.0;
  double hi = rate_limit;
  // Find any compliant rate to anchor the bisection.
  double probe = rate_limit / 2.0;
  while (probe > tolerance && !ok(probe)) probe /= 2.0;
  if (probe <= tolerance) return 0.0;
  lo = probe;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    (ok(mid) ? lo : hi) = mid;
  }
  return lo;
}

std::vector<std::optional<unsigned>> elastic_schedule(
    const ClusterFactory& factory, const std::vector<double>& period_rates,
    const SlaTarget& target, unsigned max_devices, ModelOptions options,
    const PredictOptions& predict) {
  COSM_REQUIRE(factory != nullptr, "cluster factory required");
  obs::Span span("whatif.elastic");
  const PredictOptions inner = inner_options(predict);
  std::vector<std::optional<unsigned>> schedule(period_rates.size());
  parallel_for(period_rates.size(), predict.num_threads, [&](std::size_t p) {
    schedule[p] = min_devices_for(factory, period_rates[p], target, 1,
                                  max_devices, options, inner);
  });
  return schedule;
}

std::vector<double> latency_quantile_trend(const ClusterFactory& factory,
                                           const std::vector<double>& period_rates,
                                           double percentile,
                                           unsigned device_count,
                                           ModelOptions options,
                                           const PredictOptions& predict) {
  COSM_REQUIRE(factory != nullptr, "cluster factory required");
  COSM_REQUIRE(percentile > 0 && percentile < 1,
               "percentile must be in (0, 1)");
  COSM_REQUIRE(device_count >= 1, "need at least one device");
  obs::Span span("whatif.trend");
  const PredictOptions inner = inner_options(predict);
  numerics::QuantileWarmStart warm;
  std::vector<double> bounds;
  bounds.reserve(period_rates.size());
  for (const double rate : period_rates) {
    try {
      const SystemModel model(factory(rate, device_count), options, inner);
      bounds.push_back(model.latency_quantile(percentile, &warm));
    } catch (const OverloadError&) {
      bounds.push_back(std::numeric_limits<double>::quiet_NaN());
      // An overloaded period has no finite quantile — and the root
      // carried from the last healthy period was measured right at the
      // saturation wall, the worst possible seed for whatever rate the
      // trend recovers to.  Restart cold after the gap (stale-bracket
      // fix; tests/core/test_warm_start_regime.cpp covers the recovery).
      warm.reset();
    }
  }
  return bounds;
}

void DegradedScenario::validate(std::size_t device_count) const {
  COSM_REQUIRE(std::isfinite(service_inflation) && service_inflation >= 1.0,
               "service_inflation must be finite and >= 1");
  COSM_REQUIRE(std::isfinite(retry_rate_factor) && retry_rate_factor >= 1.0,
               "retry_rate_factor must be finite and >= 1");
  if (slow_device) {
    COSM_REQUIRE(*slow_device < device_count,
                 "slow_device must name an existing device");
  }
  if (failed_device) {
    COSM_REQUIRE(*failed_device < device_count,
                 "failed_device must name an existing device");
    COSM_REQUIRE(device_count > 1,
                 "failed_device needs a surviving device to fail over to");
    COSM_REQUIRE(!slow_device || *slow_device != *failed_device,
                 "a device cannot be both slow and failed");
  }
}

double retry_arrival_inflation(double failure_prob, unsigned max_retries) {
  COSM_REQUIRE(std::isfinite(failure_prob) && failure_prob >= 0 &&
                   failure_prob < 1,
               "failure probability must be in [0, 1)");
  if (failure_prob == 0.0 || max_retries == 0) return 1.0;
  // Expected attempts: 1 + p + p^2 + ... + p^R = (1 - p^{R+1}) / (1 - p).
  return (1.0 - std::pow(failure_prob, max_retries + 1)) /
         (1.0 - failure_prob);
}

SystemParams degrade(const SystemParams& healthy,
                     const DegradedScenario& scenario) {
  scenario.validate(healthy.devices.size());
  SystemParams params = healthy;

  if (scenario.slow_device && scenario.service_inflation != 1.0) {
    DeviceParams& slow = params.devices[*scenario.slow_device];
    slow.index_disk =
        numerics::scale_dist(slow.index_disk, scenario.service_inflation);
    slow.meta_disk =
        numerics::scale_dist(slow.meta_disk, scenario.service_inflation);
    slow.data_disk =
        numerics::scale_dist(slow.data_disk, scenario.service_inflation);
  }

  if (scenario.failed_device) {
    // Evenly redistribute the dead device's traffic: random failover over
    // the survivors (the simulator's replica rotation averages to this).
    const DeviceParams dead = params.devices[*scenario.failed_device];
    const double survivors =
        static_cast<double>(params.devices.size() - 1);
    params.devices.erase(params.devices.begin() +
                         static_cast<std::ptrdiff_t>(*scenario.failed_device));
    for (DeviceParams& device : params.devices) {
      device.arrival_rate += dead.arrival_rate / survivors;
      device.data_read_rate += dead.data_read_rate / survivors;
    }
  }

  if (scenario.retry_rate_factor != 1.0) {
    params.frontend.arrival_rate *= scenario.retry_rate_factor;
    for (DeviceParams& device : params.devices) {
      device.arrival_rate *= scenario.retry_rate_factor;
      device.data_read_rate *= scenario.retry_rate_factor;
    }
  }

  return params;
}

double degraded_sla_percentile(const SystemParams& healthy,
                               const DegradedScenario& scenario, double sla,
                               ModelOptions options,
                               const PredictOptions& predict) {
  COSM_REQUIRE(sla > 0, "SLA bound must be positive");
  try {
    const SystemModel model(degrade(healthy, scenario), options, predict);
    return model.predict_sla_percentile(sla);
  } catch (const OverloadError&) {
    return 0.0;  // the degraded system misses any SLA
  }
}

std::vector<double> degraded_sla_percentiles(
    const SystemParams& healthy,
    const std::vector<DegradedScenario>& scenarios, double sla,
    ModelOptions options, const PredictOptions& predict) {
  COSM_REQUIRE(sla > 0, "SLA bound must be positive");
  // Validate every scenario up front so precondition violations surface
  // deterministically (before any parallel work starts).
  for (const DegradedScenario& scenario : scenarios) {
    scenario.validate(healthy.devices.size());
  }
  obs::Span span("whatif.degraded_sweep");
  const PredictOptions inner = inner_options(predict);
  std::vector<double> percentiles(scenarios.size());
  parallel_for(scenarios.size(), predict.num_threads, [&](std::size_t i) {
    percentiles[i] =
        degraded_sla_percentile(healthy, scenarios[i], sla, options, inner);
  });
  return percentiles;
}

namespace {

void validate_redundancy(const RedundancyOptions& redundancy) {
  using Mode = RedundancyOptions::Mode;
  if (redundancy.mode == Mode::kHedge) {
    COSM_REQUIRE(std::isfinite(redundancy.hedge_delay) &&
                     redundancy.hedge_delay > 0,
                 "hedge delay must be finite and positive");
  }
  if (redundancy.mode == Mode::kMinOfN ||
      redundancy.mode == Mode::kKthOfN) {
    COSM_REQUIRE(redundancy.n >= 1, "redundancy needs n >= 1");
    COSM_REQUIRE(redundancy.k >= 1 && redundancy.k <= redundancy.n,
                 "redundancy needs 1 <= k <= n");
  }
}

}  // namespace

double redundancy_arrival_inflation(const RedundancyOptions& redundancy,
                                    double cdf_at_delay) {
  validate_redundancy(redundancy);
  COSM_REQUIRE(std::isfinite(cdf_at_delay) && cdf_at_delay >= 0 &&
                   cdf_at_delay <= 1,
               "cdf_at_delay must be a probability");
  using Mode = RedundancyOptions::Mode;
  switch (redundancy.mode) {
    case Mode::kNone:
      return 1.0;
    case Mode::kHedge:
      // A hedge fires iff the primary is still outstanding at d.
      return 2.0 - cdf_at_delay;
    case Mode::kMinOfN:
    case Mode::kKthOfN:
      return static_cast<double>(redundancy.n);
  }
  return 1.0;  // unreachable; placates -Wreturn-type
}

double redundancy_data_inflation(const RedundancyOptions& redundancy,
                                 double cdf_at_delay) {
  if (redundancy.mode == RedundancyOptions::Mode::kKthOfN) {
    validate_redundancy(redundancy);
    // n coded attempts each reading 1/k of the object.
    return static_cast<double>(redundancy.n) /
           static_cast<double>(redundancy.k);
  }
  return redundancy_arrival_inflation(redundancy, cdf_at_delay);
}

SystemParams apply_redundancy_load(const SystemParams& healthy,
                                   const RedundancyOptions& redundancy,
                                   double cdf_at_delay) {
  const double arrival_factor =
      redundancy_arrival_inflation(redundancy, cdf_at_delay);
  const double data_factor =
      redundancy_data_inflation(redundancy, cdf_at_delay);
  SystemParams params = healthy;
  params.frontend.arrival_rate *= arrival_factor;
  for (DeviceParams& device : params.devices) {
    device.arrival_rate *= arrival_factor;
    device.data_read_rate *= data_factor;
    // Coded attempts read less data per attempt than a full request, so
    // the inflated data rate can fall below the inflated request rate;
    // the backend model requires r_data >= r (at least one data read per
    // union operation), which still holds per attempt.
    device.data_read_rate =
        std::max(device.data_read_rate, device.arrival_rate);
  }
  return params;
}

double redundant_sla_percentile(const SystemParams& healthy, double sla,
                                ModelOptions options,
                                const PredictOptions& predict) {
  COSM_REQUIRE(sla > 0, "SLA bound must be positive");
  const RedundancyOptions& red = options.redundancy;
  validate_redundancy(red);
  obs::Span span("whatif.redundant_sla");
  try {
    if (red.mode != RedundancyOptions::Mode::kHedge) {
      const SystemModel model(apply_redundancy_load(healthy, red), options,
                              predict);
      return model.predict_sla_percentile(sla);
    }
    // Hedging: the inflation factor 2 - F(d) needs F(d) of the hedged
    // system itself.  Seed from the HEALTHY model's F(d) — the
    // optimistic end, so a stable fixed point is approached from below
    // rather than pre-declared overloaded by the factor-2 worst case —
    // then iterate: each round rebuilds the model at the implied load
    // and re-reads F(d).  The map is monotone and bounded in [1, 2], so
    // a few rounds settle it far below the model's own accuracy; bail
    // out early once the factor moves < 1e-4.  Overload at any round
    // means the true hedged load has no stable fixed point: return 0.
    const SystemModel seed_model(healthy, options, predict);
    double cdf_at_delay =
        seed_model.predict_sla_percentile(red.hedge_delay);
    double percentile = seed_model.predict_sla_percentile(sla);
    double last_factor = 1.0;
    for (int round = 0; round < 4; ++round) {
      const double factor =
          redundancy_arrival_inflation(red, cdf_at_delay);
      if (std::abs(factor - last_factor) < 1e-4) break;
      last_factor = factor;
      const SystemModel model(
          apply_redundancy_load(healthy, red, cdf_at_delay), options,
          predict);
      cdf_at_delay = model.predict_sla_percentile(red.hedge_delay);
      percentile = model.predict_sla_percentile(sla);
    }
    return percentile;
  } catch (const OverloadError&) {
    return 0.0;  // redundancy saturated the cluster: the "hurt" side
  }
}

std::vector<RedundancyChoice> evaluate_redundancy_policies(
    const SystemParams& healthy,
    const std::vector<RedundancyOptions>& candidates, double sla,
    ModelOptions options, const PredictOptions& predict) {
  COSM_REQUIRE(sla > 0, "SLA bound must be positive");
  for (const RedundancyOptions& candidate : candidates) {
    validate_redundancy(candidate);
  }
  obs::Span span("whatif.redundancy_search");
  ModelOptions baseline_options = options;
  baseline_options.redundancy = RedundancyOptions{};
  const PredictOptions inner = inner_options(predict);
  // Baseline first (serial) so every worker compares against one number.
  double baseline = 0.0;
  try {
    const SystemModel model(healthy, baseline_options, inner);
    baseline = model.predict_sla_percentile(sla);
  } catch (const OverloadError&) {
    baseline = 0.0;
  }
  std::vector<RedundancyChoice> choices(candidates.size());
  parallel_for(candidates.size(), predict.num_threads, [&](std::size_t i) {
    ModelOptions candidate_options = options;
    candidate_options.redundancy = candidates[i];
    choices[i].options = candidates[i];
    choices[i].percentile =
        redundant_sla_percentile(healthy, sla, candidate_options, inner);
    choices[i].beats_baseline = choices[i].percentile > baseline;
  });
  return choices;
}

std::optional<RedundancyChoice> best_redundancy_policy(
    const SystemParams& healthy,
    const std::vector<RedundancyOptions>& candidates, double sla,
    ModelOptions options, const PredictOptions& predict) {
  const std::vector<RedundancyChoice> choices =
      evaluate_redundancy_policies(healthy, candidates, sla, options,
                                   predict);
  std::optional<RedundancyChoice> best;
  for (const RedundancyChoice& choice : choices) {
    if (!choice.beats_baseline) continue;
    if (!best || choice.percentile > best->percentile) best = choice;
  }
  return best;
}

std::vector<std::pair<std::size_t, double>> sla_miss_contributions(
    const SystemModel& model, double sla) {
  COSM_REQUIRE(sla > 0, "SLA bound must be positive");
  std::vector<std::pair<std::size_t, double>> contributions;
  double total = 0.0;
  for (std::size_t d = 0; d < model.devices().size(); ++d) {
    const auto& device = model.devices()[d];
    const double missed =
        device.arrival_rate() *
        (1.0 - device.response_tape().cdf(sla));
    contributions.emplace_back(d, missed);
    total += missed;
  }
  for (auto& [device, value] : contributions) {
    value = total > 0 ? value / total : 0.0;
  }
  std::sort(contributions.begin(), contributions.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return contributions;
}

std::vector<TierPlanPoint> tier_capacity_sweep(
    const TierFactory& factory, const std::vector<TierCandidate>& candidates,
    const SlaTarget& target, ModelOptions options,
    const PredictOptions& predict) {
  COSM_REQUIRE(factory != nullptr, "tier factory required");
  target.validate();
  for (const TierCandidate& candidate : candidates) {
    COSM_REQUIRE(candidate.hit_ratio >= 0 && candidate.hit_ratio <= 1,
                 "tier candidate hit ratio must be in [0, 1]");
  }
  obs::Span span("whatif.tier_sweep");
  const PredictOptions inner = inner_options(predict);
  std::vector<TierPlanPoint> points(candidates.size());
  parallel_for(candidates.size(), predict.num_threads, [&](std::size_t i) {
    points[i].candidate = candidates[i];
    try {
      const SystemModel model(factory(candidates[i]), options, inner);
      points[i].percentile = model.predict_sla_percentile(target.sla);
    } catch (const OverloadError&) {
      points[i].percentile = 0.0;  // this tier size leaves the disk saturated
    }
    points[i].meets_target = points[i].percentile >= target.percentile;
  });
  return points;
}

std::optional<TierPlanPoint> min_tier_capacity_for(
    const TierFactory& factory, const std::vector<TierCandidate>& candidates,
    const SlaTarget& target, ModelOptions options,
    const PredictOptions& predict) {
  const std::vector<TierPlanPoint> points =
      tier_capacity_sweep(factory, candidates, target, options, predict);
  std::optional<TierPlanPoint> best;
  for (const TierPlanPoint& point : points) {
    if (!point.meets_target) continue;
    if (!best || point.candidate.capacity_chunks <
                     best->candidate.capacity_chunks) {
      best = point;
    }
  }
  return best;
}

}  // namespace cosm::core
