#include "core/frontend_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "core/errors.hpp"
#include "numerics/quadrature.hpp"
#include "queueing/mg1.hpp"

namespace cosm::core {

FrontendModel::FrontendModel(FrontendParams params)
    : params_(std::move(params)) {
  params_.validate();
  if (params_.groups.empty()) {
    const queueing::MG1 queue(per_process_rate(), params_.frontend_parse);
    if (!queue.stable()) {
      throw OverloadError(
          "frontend tier is overloaded (parse utilization >= 1)");
    }
    sojourn_ = queue.sojourn_time();
    return;
  }
  // Heterogeneous tier (Sec. III-C): solve each homogeneous group's M/G/1
  // separately and mix the sojourn distributions by traffic share.
  std::vector<numerics::Mixture::Component> components;
  components.reserve(params_.groups.size());
  for (const auto& group : params_.groups) {
    if (group.traffic_share == 0.0) continue;
    const double group_rate = params_.arrival_rate * group.traffic_share /
                              static_cast<double>(group.processes);
    const queueing::MG1 queue(group_rate, group.frontend_parse);
    if (!queue.stable()) {
      throw OverloadError(
          "a frontend group is overloaded (parse utilization >= 1)");
    }
    components.push_back({group.traffic_share, queue.sojourn_time()});
  }
  sojourn_ = std::make_shared<numerics::Mixture>(std::move(components));
}

double FrontendModel::per_process_rate() const {
  COSM_REQUIRE(params_.groups.empty(),
               "per_process_rate is only defined for homogeneous tiers");
  return params_.arrival_rate / static_cast<double>(params_.processes);
}

double FrontendModel::utilization() const {
  if (params_.groups.empty()) {
    return per_process_rate() * params_.frontend_parse->mean();
  }
  // The busiest group bounds the tier.
  double worst = 0.0;
  for (const auto& group : params_.groups) {
    const double group_rate = params_.arrival_rate * group.traffic_share /
                              static_cast<double>(group.processes);
    worst = std::max(worst, group_rate * group.frontend_parse->mean());
  }
  return worst;
}

double exact_wta_cdf(const numerics::Distribution& lifetime, double t) {
  if (t <= 0.0) return 0.0;
  // CDF(t) = t ∫_t^∞ F_A(x)/x² dx.  Find an upper cut X where F_A ~ 1,
  // then the remaining tail contributes exactly t/X.
  double cut = std::max(t * 2.0, lifetime.mean() * 4.0 + t);
  for (int i = 0; i < 60 && lifetime.cdf(cut) < 1.0 - 1e-7; ++i) {
    cut *= 2.0;
  }
  // Adaptive: lifetime CDFs may have jumps (degenerate/mixture atoms) that
  // fixed panels resolve poorly.
  const double body = numerics::integrate_adaptive(
      [&lifetime](double x) { return lifetime.cdf(x) / (x * x); }, t, cut,
      1e-8, 30);
  const double tail = 1.0 / cut;
  return std::clamp(t * (body + tail), 0.0, 1.0);
}

}  // namespace cosm::core
