#include "core/backend_model.hpp"

#include <cmath>

#include "common/require.hpp"
#include "core/errors.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mg1k.hpp"
#include "queueing/mm1k.hpp"

namespace cosm::core {

using numerics::atom_at_zero_mixture;
using numerics::CompoundPoissonConvolution;
using numerics::Convolution;
using numerics::DistPtr;

void TierOptions::validate() const {
  if (!enabled) return;
  COSM_REQUIRE(hit_ratio >= 0 && hit_ratio <= 1,
               "tier hit ratio must be in [0, 1]");
  COSM_REQUIRE(read_service != nullptr,
               "tier read service distribution is required");
  COSM_REQUIRE(!promote_on_read || write_service != nullptr,
               "tier write service is required with promote_on_read");
}

void DeviceParams::validate() const {
  COSM_REQUIRE(arrival_rate > 0, "device arrival rate must be positive");
  COSM_REQUIRE(data_read_rate >= arrival_rate,
               "every request reads at least one chunk: r_data >= r");
  COSM_REQUIRE(index_miss_ratio >= 0 && index_miss_ratio <= 1,
               "index miss ratio must be in [0, 1]");
  COSM_REQUIRE(meta_miss_ratio >= 0 && meta_miss_ratio <= 1,
               "meta miss ratio must be in [0, 1]");
  COSM_REQUIRE(data_miss_ratio >= 0 && data_miss_ratio <= 1,
               "data miss ratio must be in [0, 1]");
  COSM_REQUIRE(index_disk && meta_disk && data_disk,
               "disk service distributions are required");
  COSM_REQUIRE(backend_parse != nullptr,
               "backend parse distribution is required");
  COSM_REQUIRE(processes >= 1, "device needs at least one process");
  tier.validate();
}

void FrontendParams::validate() const {
  COSM_REQUIRE(arrival_rate > 0, "frontend arrival rate must be positive");
  if (groups.empty()) {
    COSM_REQUIRE(processes >= 1, "frontend needs at least one process");
    COSM_REQUIRE(frontend_parse != nullptr,
                 "frontend parse distribution is required");
    return;
  }
  double total_share = 0.0;
  for (const auto& group : groups) {
    COSM_REQUIRE(group.processes >= 1,
                 "frontend group needs at least one process");
    COSM_REQUIRE(group.traffic_share >= 0,
                 "frontend group share must be non-negative");
    COSM_REQUIRE(group.frontend_parse != nullptr,
                 "frontend group parse distribution is required");
    total_share += group.traffic_share;
  }
  COSM_REQUIRE(std::abs(total_share - 1.0) < 1e-9,
               "frontend group traffic shares must sum to 1");
}

void SystemParams::validate() const {
  frontend.validate();
  COSM_REQUIRE(!devices.empty(), "system needs at least one device");
  double device_rate_sum = 0.0;
  for (const auto& device : devices) {
    device.validate();
    device_rate_sum += device.arrival_rate;
  }
  COSM_REQUIRE(std::abs(device_rate_sum - frontend.arrival_rate) <
                   1e-6 * frontend.arrival_rate + 1e-9,
               "device arrival rates must sum to the system arrival rate");
}

BackendModel::BackendModel(DeviceParams params, ModelOptions options)
    : params_(std::move(params)), options_(options) {
  params_.validate();
  if (options_.odopr) {
    // ODOPR baseline: index lookups, metadata reads, and extra data reads
    // are all served from memory; only one (possible) disk op per request.
    params_.index_miss_ratio = 0.0;
    params_.meta_miss_ratio = 0.0;
    params_.data_read_rate = params_.arrival_rate;
  }
  build();
}

void BackendModel::build() {
  const double r = params_.arrival_rate;
  const double r_data = params_.data_read_rate;
  extra_reads_ = (r_data - r) / r;

  // Per-process rates (requests spread uniformly over N_be processes).
  const double n_be = static_cast<double>(params_.processes);
  const double r_proc = r / n_be;

  DistPtr index_disk = params_.index_disk;
  DistPtr meta_disk = params_.meta_disk;
  DistPtr data_disk = params_.data_disk;

  // Two-tier storage: a fraction `tier_h` of page-cache data misses is
  // absorbed by the SSD tier and never reaches the capacity disk — the
  // disk's arrival stream and the mixed service both shrink accordingly,
  // and the data branch becomes a TieredService mixture below.
  const bool tiered = params_.tier.enabled;
  const double tier_h = tiered ? params_.tier.hit_ratio : 0.0;
  const double data_to_disk = 1.0 - tier_h;
  DistPtr ssd_service = tiered ? params_.tier.read_service : nullptr;

  if (params_.processes > 1) {
    // Sec. III-B, N_be > 1: the shared disk queue is M/G/1/K (K = N_be),
    // approximated by M/M/1/K.  Operations of all kinds mix in the disk
    // queue, so a single averaged service rate is used, and the M/M/1/K
    // sojourn time becomes the per-process "disk service time" for every
    // operation kind.
    disk_rate_ = params_.index_miss_ratio * r +
                 params_.meta_miss_ratio * r +
                 data_to_disk * params_.data_miss_ratio * r_data;
    if (disk_rate_ > 0) {
      disk_mean_service_ =
          (params_.index_miss_ratio * r * index_disk->mean() +
           params_.meta_miss_ratio * r * meta_disk->mean() +
           data_to_disk * params_.data_miss_ratio * r_data *
               data_disk->mean()) /
          disk_rate_;
      DistPtr sojourn;
      if (options_.disk_queue == ModelOptions::DiskQueue::kMM1K) {
        // The paper's substitution: one exponential server at the pooled
        // mean rate.
        const queueing::MM1K disk_queue(
            disk_rate_, 1.0 / disk_mean_service_,
            static_cast<int>(params_.processes));
        sojourn = disk_queue.sojourn_time();
      } else {
        // Extension: exact M/G/1/K state weights over the true mixed
        // service distribution (operations of all kinds mix in the disk
        // queue, so the service law is the rate-weighted mixture).
        const DistPtr mixed_service = std::make_shared<numerics::Mixture>(
            std::vector<numerics::Mixture::Component>{
                {params_.index_miss_ratio * r / disk_rate_, index_disk},
                {params_.meta_miss_ratio * r / disk_rate_, meta_disk},
                {data_to_disk * params_.data_miss_ratio * r_data /
                     disk_rate_,
                 data_disk}});
        const queueing::MG1K disk_queue(
            disk_rate_, mixed_service,
            static_cast<int>(params_.processes));
        sojourn = disk_queue.sojourn_time();
      }
      index_disk = sojourn;
      meta_disk = sojourn;
      data_disk = sojourn;
    }
    if (tiered) {
      // The SSD queue gets the same substitution: blocking hit reads
      // plus (with promote_on_read) the asynchronous install writes the
      // simulator pays after every tier miss.
      const double ssd_read_rate =
          tier_h * params_.data_miss_ratio * r_data;
      const double ssd_write_rate =
          params_.tier.promote_on_read
              ? data_to_disk * params_.data_miss_ratio * r_data
              : 0.0;
      const double ssd_rate = ssd_read_rate + ssd_write_rate;
      if (ssd_rate > 0) {
        DistPtr ssd_mixed = params_.tier.read_service;
        if (ssd_write_rate > 0) {
          ssd_mixed = std::make_shared<numerics::Mixture>(
              std::vector<numerics::Mixture::Component>{
                  {ssd_read_rate / ssd_rate, params_.tier.read_service},
                  {ssd_write_rate / ssd_rate, params_.tier.write_service}});
        }
        if (options_.disk_queue == ModelOptions::DiskQueue::kMM1K) {
          const queueing::MM1K ssd_queue(
              ssd_rate, 1.0 / ssd_mixed->mean(),
              static_cast<int>(params_.processes));
          ssd_service = ssd_queue.sojourn_time();
        } else {
          const queueing::MG1K ssd_queue(
              ssd_rate, ssd_mixed, static_cast<int>(params_.processes));
          ssd_service = ssd_queue.sojourn_time();
        }
      }
    }
  }

  // Two-tier mixture: a page-cache data miss is served by the SSD w.p.
  // tier_h and by the capacity disk behind it otherwise.
  DistPtr data_device = data_disk;
  if (tiered) {
    data_device = std::make_shared<numerics::TieredService>(
        tier_h, ssd_service, data_disk);
  }

  // Cache mixtures: op(t) = m * op_d(t) + (1 - m) * delta(t).
  index_ = atom_at_zero_mixture(params_.index_miss_ratio, index_disk);
  meta_ = atom_at_zero_mixture(params_.meta_miss_ratio, meta_disk);
  data_ = atom_at_zero_mixture(params_.data_miss_ratio, data_device);

  // Union operation: parse * index * meta * data^(j+1), j ~ Poisson(p).
  const DistPtr base = std::make_shared<Convolution>(std::vector<DistPtr>{
      params_.backend_parse, index_, meta_, data_});
  union_service_ =
      std::make_shared<CompoundPoissonConvolution>(base, extra_reads_, data_);

  const queueing::MG1 queue(r_proc, union_service_);
  if (!queue.stable()) {
    throw OverloadError(
        "backend device is overloaded (union-operation utilization >= 1); "
        "the model only covers the paper's 'normal status'");
  }
  waiting_ = queue.waiting_time();

  // Eq. (1): S_be = W * parse * index * meta * data.
  response_ = std::make_shared<Convolution>(std::vector<DistPtr>{
      waiting_, params_.backend_parse, index_, meta_, data_});

  // Flatten once: the tree above is immutable from here on, and the tape
  // shares the heavily repeated subtrees (the disk sojourn appears under
  // all three cache mixtures, the mixtures appear under both the union
  // service and the response convolution) via CSE slots.
  response_tape_ = numerics::TransformTape::compile(response_);
}

double BackendModel::utilization() const {
  const double r_proc =
      params_.arrival_rate / static_cast<double>(params_.processes);
  return r_proc * union_service_->mean();
}

}  // namespace cosm::core
