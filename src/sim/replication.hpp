// Parallel replications: N independent simulation runs of one scenario,
// each under its own derived seed, fanned out over cosm::parallel_for.
//
// Every replication owns a full Cluster (engine, pools, RNGs — nothing
// shared), writes into its own pre-allocated result slot, and the
// reduction happens on the calling thread in seed order AFTER the fan-out
// returns.  Consequently the merged result is bit-identical for any
// thread count, including the pool-free serial path (num_threads == 1) —
// the property tests/sim/test_replication.cpp pins and the perf harness
// gates on.
//
// Seed derivation per replication follows the figure benches' run_point:
// cluster s, catalog s+1, placement s+2, arrival source s+3, so a
// single-seed plan reproduces exactly what a hand-rolled run produces.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "stats/summary.hpp"
#include "workload/catalog.hpp"
#include "workload/placement.hpp"
#include "workload/trace.hpp"

namespace cosm::sim {

struct ReplicationPlan {
  // Per-replication seeds (one replication per entry).  The seed fields
  // inside `cluster`, `catalog`, and `placement` are overridden by each
  // replication's derived seeds.
  std::vector<std::uint64_t> seeds;

  ClusterConfig cluster;
  workload::CatalogConfig catalog;
  workload::PlacementConfig placement;
  workload::PhasePlan phases;
  double write_fraction = 0.0;

  // Constant-memory latency accounting (long runs): per-request samples
  // are dropped, quantiles come from the log histogram.
  bool streaming = false;
  StreamingConfig streaming_config{};

  // Execution mode for sharded replications (cluster.shards > 1; ignored
  // otherwise): 0 = one dedicated thread per shard (the default; shard
  // workers block at window barriers, so they must be real threads, never
  // pool tasks), 1 = serial round-robin on the calling thread.  Both are
  // bit-identical — the serial path is the reference the threaded path is
  // tested against.
  unsigned shard_threads = 0;
};

struct ReplicationResult {
  std::uint64_t seed = 0;
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  std::uint64_t events = 0;  // engine events processed

  // Wall-clock milliseconds spent inside the event loop (source start
  // through drain) — excludes cluster/catalog/placement construction, so
  // throughput harnesses can report simulation speed rather than setup
  // speed.  Real time, not part of the deterministic output.
  double engine_wall_ms = 0.0;

  // Successful post-warmup latencies: moments always, raw samples only in
  // sampled mode.
  std::uint64_t latency_count = 0;
  stats::StreamingStats moments;
  std::vector<double> latencies;

  // Headline latency quantiles (seconds; 0 when no latencies landed).
  // Exact in sampled mode, within a histogram bucket in streaming mode.
  // Convenience outputs only — NOT folded into the fingerprint, so the
  // bit-identity gates stay pinned to the raw observable stream.
  double q50 = 0.0;
  double q99 = 0.0;
  double q999 = 0.0;

  // Order-sensitive 64-bit fold of the replication's observable output
  // (per-request samples in sampled mode; counters + moments in streaming
  // mode).  Equal fingerprints mean bit-identical runs.
  std::uint64_t fingerprint = 0;
};

struct ReplicationSet {
  // One entry per plan seed, in plan order regardless of thread count.
  std::vector<ReplicationResult> replications;

  // Reductions, merged in plan order on the calling thread.
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  std::uint64_t events = 0;
  std::uint64_t latency_count = 0;
  stats::StreamingStats moments;
  // Fold of the per-replication fingerprints in plan order.
  std::uint64_t fingerprint = 0;
};

// Runs one replication to completion.  With plan.cluster.shards > 1 the
// run is dispatched to sim::run_sharded_replication (per-shard engines,
// conservative window synchronization — see sim/shard.hpp); otherwise it
// runs on the calling thread.
ReplicationResult run_replication(const ReplicationPlan& plan,
                                  std::uint64_t seed);

namespace detail {
// Shared result summary + fingerprint over a finished run's metrics (the
// unsharded path hands its cluster's metrics, the sharded path its merged
// metrics).  The fingerprint folds the observable output stream — per-
// request samples in sampled mode, counters + moments in streaming mode —
// so equal fingerprints mean bit-identical runs under either path.
ReplicationResult summarize_replication(const SimMetrics& metrics,
                                        std::uint64_t events,
                                        double wall_ms, bool streaming,
                                        std::uint64_t seed);
}  // namespace detail

// Fans the plan's replications out over up to `num_threads` threads
// (1 = serial on the calling thread, 0 = uncapped global pool) and merges
// in plan order.  Bit-identical for every `num_threads` value.
ReplicationSet run_replications(const ReplicationPlan& plan,
                                unsigned num_threads);

}  // namespace cosm::sim
