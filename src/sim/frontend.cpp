#include "sim/frontend.hpp"

#include "common/require.hpp"
#include "obs/obs.hpp"

namespace cosm::sim {

FrontendProcess::FrontendProcess(Engine& engine, const ClusterConfig& config,
                                 ConnectFn connect, cosm::Rng rng)
    : engine_(engine),
      config_(config),
      connect_(std::move(connect)),
      rng_(rng) {
  COSM_REQUIRE(connect_ != nullptr, "frontend connect callback required");
}

void FrontendProcess::accept_request(RequestPtr req) {
  req->frontend_arrival = engine_.now();
  queue_.push_back(std::move(req));
  if (!busy_) start_next();
}

void FrontendProcess::start_next() {
  // Cancel-on-first-complete unwind: drop cancelled requests (their group
  // already won) without spending parse time on them.
  while (!queue_.empty() && queue_.front()->cancelled) {
    obs::add(obs::Counter::kSimCancelSkippedWork);
    queue_.pop_front();
  }
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  RequestPtr req = std::move(queue_.front());
  queue_.pop_front();
  const double parse = config_.frontend_parse->sample(rng_);
  engine_.schedule_after_inline(parse, [this, req = std::move(req)]() mutable {
    ++parsed_;
    // TCP connect to the backend: one network latency to reach the pool.
    engine_.schedule_after_inline(config_.network_latency,
                                  [this, req = std::move(req)]() mutable {
                                    connect_(std::move(req));
                                  });
    start_next();
  });
}

}  // namespace cosm::sim
