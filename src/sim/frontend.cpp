#include "sim/frontend.hpp"

#include "common/require.hpp"

namespace cosm::sim {

FrontendProcess::FrontendProcess(Engine& engine, const ClusterConfig& config,
                                 ConnectFn connect, cosm::Rng rng)
    : engine_(engine),
      config_(config),
      connect_(std::move(connect)),
      rng_(rng) {
  COSM_REQUIRE(connect_ != nullptr, "frontend connect callback required");
}

void FrontendProcess::accept_request(RequestPtr req) {
  req->frontend_arrival = engine_.now();
  queue_.push_back(std::move(req));
  if (!busy_) start_next();
}

void FrontendProcess::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  RequestPtr req = std::move(queue_.front());
  queue_.pop_front();
  const double parse = config_.frontend_parse->sample(rng_);
  engine_.schedule_after(parse, [this, req = std::move(req)]() mutable {
    ++parsed_;
    // TCP connect to the backend: one network latency to reach the pool.
    RequestPtr captured = std::move(req);
    engine_.schedule_after(config_.network_latency,
                           [this, captured = std::move(captured)]() mutable {
                             connect_(std::move(captured));
                           });
    start_next();
  });
}

}  // namespace cosm::sim
