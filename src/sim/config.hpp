// Cluster configuration for the simulator.  Defaults mirror the paper's
// testbed (Sec. V-A): 3 frontend servers (here: frontend processes), 4
// storage devices, 64 KiB chunks, 1 GbE between tiers, HDD-like disks.
#pragma once

#include <cstdint>

#include "numerics/distribution.hpp"
#include "sim/cache.hpp"
#include "sim/disk.hpp"
#include "sim/faults.hpp"
#include "sim/tier.hpp"

namespace cosm::sim {

// How a backend process's accept() operation consumes the connection pool
// (cf. Brecht et al., "Acceptable strategies for improving web server
// performance", cited as [14] by the paper):
//  * kAcceptOne  — one connection per accept operation; if connections
//    remain, a fresh accept op joins the tail of the op queue.  Each
//    pooled connection therefore waits its own pass through the queue,
//    which is the semantics the paper's W_a = W_be model describes and
//    validates (Fig. 4: the HTTP request is sent only after the accept
//    and then queues "according to their queueing statuses").  Default.
//  * kBatchDrain — one accept operation drains the whole pool (epoll-loop
//    style); late-pooled connections ride along and wait less, which is
//    exactly the overestimation the paper concedes for its approximation.
enum class AcceptStrategy { kAcceptOne, kBatchDrain };

struct ClusterConfig {
  std::uint32_t frontend_processes = 3;
  std::uint32_t device_count = 4;
  // N_be: processes dedicated to each storage device (paper: S1 vs S16).
  std::uint32_t processes_per_device = 1;

  std::uint64_t chunk_bytes = 65536;

  // Request parsing costs.  Degenerate on the authors' testbed (Sec. IV-A).
  numerics::DistPtr frontend_parse;  // default: Degenerate(0.8 ms)
  numerics::DistPtr backend_parse;   // default: Degenerate(0.5 ms)

  AcceptStrategy accept_strategy = AcceptStrategy::kAcceptOne;

  // Whether the event loop deprioritizes accept() behind ready request
  // work (defer = true), as eventlet-style hubs do — the listening socket
  // only gets attention when the loop runs out of ready request events.
  // This is what makes the accept wait a *separate, additive* delay on
  // top of the op-queue wait (the W_a of Eq. 2).  With defer = false,
  // accepts are ordinary FCFS queue entries and the system behaves as a
  // single work-conserving FIFO, in which pool wait and queue wait share
  // one M/G/1 waiting time — the noWTA model then describes it better.
  // The paper's testbed validation (Sec. V-C) matches defer = true.
  bool defer_accepts = true;

  // Order in which ready tasks are served by the event loop:
  //  * kFifo — strict arrival order.  An idealized event loop; under it
  //    the backend is one work-conserving FIFO and the noWTA model is
  //    exact, because pool wait and op-queue wait share a single M/G/1
  //    waiting time.
  //  * kSiro — service in random order among ready tasks.  Real epoll
  //    loops approximate this: epoll_wait reports ready fds in arbitrary
  //    order, so greenlet-style handlers resume in an order uncorrelated
  //    with arrival.  SIRO keeps the mean wait but fattens its tail,
  //    which is the regime where the paper's additive W_a term matters
  //    most (Sec. V-C).  Provided for sensitivity studies; the effect is
  //    small because event-loop task queues are short (each task is a
  //    whole blocking operation chain).
  enum class ServiceOrder { kFifo, kSiro };
  ServiceOrder service_order = ServiceOrder::kFifo;

  // Cost of executing one accept() operation in the event loop.  Small but
  // nonzero on real servers.
  double accept_cost = 50e-6;

  // One-way network latency between tiers, and the tier link bandwidth
  // used to pace chunk transmissions (1 Gbps ~ 119 MiB/s).
  double network_latency = 100e-6;
  double network_bandwidth_bytes_per_sec = 119.0 * 1024 * 1024;

  // Client-side request timeout (seconds); 0 disables.  When a response
  // has not *started* within the timeout, the request is counted as timed
  // out (its latency sample is flagged, not dropped) — the criterion the
  // paper uses to truncate its analysis ("we only analyze the prediction
  // results when there is no timeout and retry", Sec. V-B).  The backend
  // keeps processing the abandoned request, wasting work, as real servers
  // do.
  double request_timeout = 0.0;

  // ----- Resilience (robustness extension) -----
  // Retries are client-side: when an attempt times out (request_timeout)
  // or fails (device outage / process crash), up to `max_retries` fresh
  // attempts are dispatched.  Each retry waits a capped exponential
  // backoff min(retry_backoff_cap, retry_backoff_base * 2^attempt) — a
  // deterministic delay, so faulted runs stay seed-reproducible.  With
  // `failover` set and a request carrying several replica devices
  // (Cluster::submit_request's replica-list overload, fed by
  // workload::Placement), each retry rotates to the next replica.
  std::uint32_t max_retries = 0;  // 0 = the paper's no-retry behaviour
  double retry_backoff_base = 0.05;
  double retry_backoff_cap = 1.0;
  bool failover = true;
  // Fraction of each backoff randomized (0 = the exact deterministic
  // delay above; no RNG draw happens, keeping legacy runs bit-identical).
  // With jitter j in (0, 1], the delay is scaled by a per-seed uniform
  // factor in [1-j, 1], de-synchronizing the retry storm that a scripted
  // outage would otherwise produce.  Still bit-deterministic per seed.
  double retry_jitter = 0.0;

  // ----- Redundancy (robustness extension) -----
  // How a multi-replica read picks the device for its FIRST attempt:
  //  * kPrimary          — the request's given primary (legacy behaviour;
  //    draws no RNG, keeps seeded runs bit-identical).
  //  * kLeastOutstanding — the replica whose device has the fewest
  //    attempts currently in flight from this cluster (ties to the
  //    earliest replica in the list; no RNG draw).
  //  * kPowerOfTwo       — sample two replicas uniformly, keep the less
  //    loaded (two uniform_index draws per multi-replica read).
  enum class ReplicaChoice { kPrimary, kLeastOutstanding, kPowerOfTwo };
  ReplicaChoice replica_choice = ReplicaChoice::kPrimary;

  // Hedged GETs: when > 0 and a read carries >= 2 replicas, a second
  // attempt is issued against another replica once the deadline passes
  // without a first response byte; the first response wins and the loser
  // is cancelled (cancel-on-first-complete).  hedge_max bounds extra
  // attempts per request (each a further hedge_delay apart).  0 disables.
  double hedge_delay = 0.0;
  std::uint32_t hedge_max = 1;

  // (n,k) erasure-coded fan-out reads: each read fans out to
  // min(fanout_n, replica count) devices, every attempt fetching a coded
  // chunk of ceil(size / fanout_k) bytes, and the request completes on
  // the k-th response; the n-k stragglers are cancelled.  fanout_n <= 1
  // disables.  Mutually exclusive with hedging (validate() enforces it).
  std::uint32_t fanout_n = 0;
  std::uint32_t fanout_k = 1;

  // Scripted faults, armed on the engine calendar at construction.
  FaultSchedule faults;

  DiskProfile disk;               // default_hdd_profile() if unset
  CacheBankConfig cache;

  // ----- Two-tier storage (tiering extension) -----
  // SSD cache tier in front of each device's capacity disk; disabled by
  // default (legacy runs stay bit-identical).  Sizing, write policy, and
  // SSD service distributions: sim/tier.hpp; model mirror:
  // core::TierOptions; semantics and limits: docs/TIERING.md.
  TierConfig tier;

  // ----- Sharded simulation (scale extension) -----
  // shards > 1 partitions the cluster into that many per-shard engines
  // (cluster-of-clusters): devices and frontend processes are split into
  // balanced contiguous ranges, each shard owns its own Engine / RNG /
  // metrics and runs on its own thread, and shards synchronize
  // conservatively in time windows at the frontend boundary (sim/shard.hpp;
  // docs/ARCHITECTURE.md "Sharded simulation").  Replica sets are kept
  // shard-local, so failover / hedging / fan-out never cross shards.
  // Determinism: bit-identical per (shard count, seed set); NOT invariant
  // across shard counts (docs/PERFORMANCE.md).  The Cluster class itself
  // only accepts shards == 1 — sharded runs go through
  // sim::run_sharded_replication (used by run_replication automatically).
  std::uint32_t shards = 1;
  // Synchronization window length in simulated seconds; 0 = auto (derived
  // from the frontend→backend lookahead floor, see shard.hpp).  Any value
  // > 0 is conservative-correct because cross-shard arrivals are dispatched
  // one full window ahead; larger windows amortize barrier cost.
  double shard_window = 0.0;

  std::uint64_t seed = 42;

  // Rejects NaN / negative / zero-where-invalid parameters (including the
  // fault and retry knobs) via COSM_REQUIRE with field-named messages.
  // Called by finalize(), hence by the Cluster constructor.
  void validate() const;

  // Fills unset distribution slots with the documented defaults, then
  // validates.
  void finalize();
};

}  // namespace cosm::sim
