// Scripted fault injection for the simulator (robustness extension).
//
// A FaultSchedule is a list of timed, deterministic fault events that the
// Cluster arms on the Engine calendar at construction, so a faulted run
// replays bit-identically for a fixed seed set.  Four fault kinds, chosen
// to cover the degraded modes the related work identifies as the actual
// sources of tail latency (FAST CLOUD's failover traffic, Poloczek &
// Ciucu's retry-driven overload):
//
//  * kDiskSlowdown  — the device's disk service times are inflated by
//                     `factor` for the window (media degradation, remapped
//                     sectors, a neighbour hogging the spindle).  Composes
//                     multiplicatively with overlapping slowdowns.
//  * kDeviceOutage  — the device stops serving: pooled connections and
//                     queued/in-flight operations fail, new connections
//                     are refused.  Failed requests are reported to the
//                     cluster, which retries/fails over when configured.
//  * kProcessCrash  — `processes` backend processes of the device crash
//                     (their queued work fails) and restart at the end of
//                     the window: a temporary capacity drop.
//  * kNetworkJitter — the tier network latency is inflated by `factor`
//                     for the window (congestion, a flaky ToR switch).
#pragma once

#include <cstdint>
#include <vector>

namespace cosm::sim {

enum class FaultKind {
  kDiskSlowdown,
  kDeviceOutage,
  kProcessCrash,
  kNetworkJitter,
};

struct FaultEvent {
  FaultKind kind = FaultKind::kDiskSlowdown;
  double start = 0.0;     // simulated seconds, >= 0
  double duration = 0.0;  // window length, > 0 and finite
  std::uint32_t device = 0;      // target device (ignored by kNetworkJitter)
  double factor = 1.0;           // slowdown / jitter multiplier, > 0
  std::uint32_t processes = 1;   // kProcessCrash: processes taken down

  // Throws std::invalid_argument naming the offending field.
  void validate(std::uint32_t device_count,
                std::uint32_t processes_per_device) const;
};

class FaultSchedule {
 public:
  // Builder-style helpers; all return *this so schedules read as scripts.
  FaultSchedule& disk_slowdown(std::uint32_t device, double start,
                               double duration, double factor);
  FaultSchedule& device_outage(std::uint32_t device, double start,
                               double duration);
  FaultSchedule& process_crash(std::uint32_t device, double start,
                               double duration, std::uint32_t processes = 1);
  FaultSchedule& network_jitter(double start, double duration,
                                double factor);
  FaultSchedule& add(const FaultEvent& event);

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  void validate(std::uint32_t device_count,
                std::uint32_t processes_per_device) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace cosm::sim
