// The assembled two-tier cluster: engine + frontends + devices + metrics.
//
// Client arrivals enter through submit_request(): the cluster picks a
// random frontend process (the paper's ssbench load balancing) and the
// request flows frontend parse -> backend connection pool -> accept ->
// backend op queue -> disks -> response.  Response latency is recorded
// when the first response bytes reach the frontend, matching the paper's
// measurement point (Sec. V-A).
//
// Robustness extension: the constructor arms config.faults on the engine
// calendar, and when config.max_retries > 0 a timed-out or fault-killed
// attempt is retried after a deterministic capped-exponential backoff —
// failing over to the next replica in the request's replica list when
// config.failover is set.  A retried request still produces exactly ONE
// RequestSample, whose latency spans from the original arrival to the
// first response byte of the successful attempt.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/backend.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/frontend.hpp"
#include "sim/metrics.hpp"
#include "sim/request.hpp"

namespace cosm::sim {

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  Engine& engine() { return engine_; }
  SimMetrics& metrics() { return metrics_; }
  const ClusterConfig& config() const { return config_; }

  // Injects a request at the current simulated time; `device` is the
  // chosen replica's storage device.  `is_write` selects the PUT path
  // (write-workload extension); reads are the default.
  void submit_request(std::uint64_t object_id, std::uint64_t size_bytes,
                      std::uint32_t device, bool is_write = false);
  // Replica-list overload (robustness extension): the first entry is the
  // primary; with config.failover, retries rotate through the rest.
  void submit_request(std::uint64_t object_id, std::uint64_t size_bytes,
                      std::vector<std::uint32_t> replicas,
                      bool is_write = false);

  BackendDevice& device(std::uint32_t id);
  FrontendProcess& frontend(std::uint32_t id);
  std::uint32_t frontend_count() const {
    return static_cast<std::uint32_t>(frontends_.size());
  }

 private:
  // Fills the shared fields of a freshly acquired request (replicas must
  // already be set) and dispatches the first attempt.
  void submit_acquired(RequestPtr req, std::uint64_t object_id,
                       std::uint64_t size_bytes, bool is_write);
  void on_response_started(const RequestPtr& req);
  void on_timeout(const RequestPtr& req);
  void on_attempt_failed(const RequestPtr& req);
  // Sends one attempt into the frontend tier, arming its timeout.
  void dispatch_attempt(RequestPtr req);
  // Retry budget left -> schedule the next attempt; else final sample.
  void retry_or_record(const RequestPtr& req);
  RequestPtr make_retry_attempt(const RequestPtr& prev);
  double backoff_delay(std::uint32_t attempt) const;
  void arm_faults();
  void apply_fault(const FaultEvent& event, bool begin);

  ClusterConfig config_;
  // The pool is declared before the engine on purpose: the calendar can
  // hold callbacks owning RequestPtrs at destruction time, and members
  // destroy in reverse declaration order — the engine (and its pending
  // callbacks) must go first, the slabs they point into last.
  RequestPool pool_;
  Engine engine_;
  SimMetrics metrics_;
  cosm::Rng rng_;
  std::vector<std::unique_ptr<BackendDevice>> devices_;
  std::vector<std::unique_ptr<FrontendProcess>> frontends_;
  std::uint64_t next_request_id_ = 0;
};

}  // namespace cosm::sim
