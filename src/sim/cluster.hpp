// The assembled two-tier cluster: engine + frontends + devices + metrics.
//
// Client arrivals enter through submit_request(): the cluster picks a
// random frontend process (the paper's ssbench load balancing) and the
// request flows frontend parse -> backend connection pool -> accept ->
// backend op queue -> disks -> response.  Response latency is recorded
// when the first response bytes reach the frontend, matching the paper's
// measurement point (Sec. V-A).
//
// Robustness extension: the constructor arms config.faults on the engine
// calendar, and when config.max_retries > 0 a timed-out or fault-killed
// attempt is retried after a capped-exponential backoff (optionally
// jittered, see ClusterConfig::retry_jitter) — failing over to the next
// replica in the request's replica list when config.failover is set.  A
// retried request still produces exactly ONE RequestSample, whose latency
// spans from the original arrival to the first response byte of the
// successful attempt.
//
// Redundancy extension: multi-replica reads can hedge (a second attempt
// past config.hedge_delay) or fan out to (n,k) coded attempts completing
// on the k-th response.  Either way the attempts form a FanoutGroup; the
// group records exactly ONE RequestSample when it completes, and every
// losing live attempt is cancelled — marked, unwound at the next frontend
// or backend task boundary, and counted under sim.cancel.*.  Cancelled
// and hedged attempts still count toward the per-device attempted load
// (SimMetrics::on_attempt), which is the arrival inflation the degraded
// what-if model consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/backend.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/frontend.hpp"
#include "sim/metrics.hpp"
#include "sim/request.hpp"

namespace cosm::sim {

// Coordinator for one logical request served by several concurrent
// attempts (a hedged pair, or an (n,k) coded fan-out).  Owned by the
// Cluster in a recycled slab; `generation` is bumped on recycle so timer
// callbacks holding a (slot, generation) pair can detect reuse — the same
// epoch discipline RequestPool uses for requests.
struct FanoutGroup {
  std::uint32_t needed = 1;       // k: responses required to complete
  std::uint32_t responded = 0;    // responses counted so far
  std::uint32_t outstanding = 0;  // live attempt chains (retries included)
  std::uint32_t hedges_issued = 0;
  std::uint32_t base_attempts = 1;    // attempts dispatched up front (n)
  std::uint32_t attempts_total = 0;   // dispatches across all chains
  std::uint32_t failovers_total = 0;  // failovers across all chains
  bool done = false;          // k-th response arrived (or all chains died)
  bool is_hedge = false;      // hedge pair, not a coded fan-out
  double original_arrival = 0.0;
  std::uint32_t chunks_total = 0;  // full-object chunks, for the sample
  std::uint64_t generation = 0;
  // Strong refs to dispatched attempts so completion can cancel the
  // losers; cleared when the group finishes.
  std::vector<RequestPtr> attempts;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  Engine& engine() { return engine_; }
  SimMetrics& metrics() { return metrics_; }
  const ClusterConfig& config() const { return config_; }

  // Injects a request at the current simulated time; `device` is the
  // chosen replica's storage device.  `is_write` selects the PUT path
  // (write-workload extension); reads are the default.
  void submit_request(std::uint64_t object_id, std::uint64_t size_bytes,
                      std::uint32_t device, bool is_write = false);
  // Replica-list overload (robustness extension): the first entry is the
  // primary; with config.failover, retries rotate through the rest.
  void submit_request(std::uint64_t object_id, std::uint64_t size_bytes,
                      std::vector<std::uint32_t> replicas,
                      bool is_write = false);

  BackendDevice& device(std::uint32_t id);
  FrontendProcess& frontend(std::uint32_t id);
  std::uint32_t frontend_count() const {
    return static_cast<std::uint32_t>(frontends_.size());
  }

  // Attempts currently in flight against `device` (replica-choice
  // scheduling input; also useful telemetry).
  std::uint64_t outstanding(std::uint32_t device) const {
    return outstanding_[device];
  }

 private:
  // Fills the shared fields of a freshly acquired request (replicas must
  // already be set) and dispatches the first attempt.
  void submit_acquired(RequestPtr req, std::uint64_t object_id,
                       std::uint64_t size_bytes, bool is_write);
  void on_response_started(const RequestPtr& req);
  void on_timeout(const RequestPtr& req);
  void on_attempt_failed(const RequestPtr& req);
  // Sends one attempt into the frontend tier, arming its timeout.
  void dispatch_attempt(RequestPtr req);
  // Retry budget left -> schedule the next attempt; else final sample.
  void retry_or_record(const RequestPtr& req);
  RequestPtr make_retry_attempt(const RequestPtr& prev);
  double backoff_delay(std::uint32_t attempt);
  void arm_faults();
  void apply_fault(const FaultEvent& event, bool begin);

  // ----- Redundancy (hedge / fan-out groups) -----
  // First terminal event of an attempt: per-device outstanding-load
  // decrement, exactly once.
  void settle_attempt(const RequestPtr& req);
  // Replica-choice scheduling over req->replicas (ClusterConfig knob).
  void choose_first_replica(const RequestPtr& req);
  std::uint32_t acquire_group();
  void release_group(std::uint32_t group_id);
  FanoutGroup& group(std::uint32_t group_id) { return group_slabs_[group_id]; }
  // Fans a read out to n coded attempts (k needed); used by submit paths.
  void submit_fanout(RequestPtr req);
  // Arms (or re-arms) the hedge deadline for a hedged group.
  void arm_hedge_timer(std::uint32_t group_id, std::uint64_t generation);
  void issue_hedge(std::uint32_t group_id);
  // A grouped attempt's response reached the cluster (group not yet done).
  void group_response(const RequestPtr& req);
  // A grouped attempt chain died (timeout/fault, retries included).
  void group_chain_failed(const RequestPtr& req);
  // One chain finished (won, cancelled, or exhausted); frees the group
  // when no chain remains.
  void group_chain_done(std::uint32_t group_id);
  void complete_group(std::uint32_t group_id, const RequestPtr& winner);
  void record_group_failure(std::uint32_t group_id);

  ClusterConfig config_;
  // The pool is declared before the engine on purpose: the calendar can
  // hold callbacks owning RequestPtrs at destruction time, and members
  // destroy in reverse declaration order — the engine (and its pending
  // callbacks) must go first, the slabs they point into last.
  RequestPool pool_;
  Engine engine_;
  SimMetrics metrics_;
  cosm::Rng rng_;
  std::vector<std::unique_ptr<BackendDevice>> devices_;
  std::vector<std::unique_ptr<FrontendProcess>> frontends_;
  std::uint64_t next_request_id_ = 0;
  // Per-device attempts in flight (replica-choice scheduling and the
  // redundancy-inflated load accounting both read it).
  std::vector<std::uint64_t> outstanding_;
  // Fan-out / hedge group slabs with a free list; declared after pool_
  // (groups hold RequestPtrs) but the deque's stable addresses make the
  // order safe either way — groups are only touched via live callbacks.
  std::deque<FanoutGroup> group_slabs_;
  std::vector<std::uint32_t> group_free_;
};

}  // namespace cosm::sim
