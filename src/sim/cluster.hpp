// The assembled two-tier cluster: engine + frontends + devices + metrics.
//
// Client arrivals enter through submit_request(): the cluster picks a
// random frontend process (the paper's ssbench load balancing) and the
// request flows frontend parse -> backend connection pool -> accept ->
// backend op queue -> disks -> response.  Response latency is recorded
// when the first response bytes reach the frontend, matching the paper's
// measurement point (Sec. V-A).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/backend.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/frontend.hpp"
#include "sim/metrics.hpp"

namespace cosm::sim {

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  Engine& engine() { return engine_; }
  SimMetrics& metrics() { return metrics_; }
  const ClusterConfig& config() const { return config_; }

  // Injects a request at the current simulated time; `device` is the
  // chosen replica's storage device.  `is_write` selects the PUT path
  // (write-workload extension); reads are the default.
  void submit_request(std::uint64_t object_id, std::uint64_t size_bytes,
                      std::uint32_t device, bool is_write = false);

  BackendDevice& device(std::uint32_t id);
  FrontendProcess& frontend(std::uint32_t id);
  std::uint32_t frontend_count() const {
    return static_cast<std::uint32_t>(frontends_.size());
  }

 private:
  void on_response_started(const RequestPtr& req);
  void on_timeout(const RequestPtr& req);

  ClusterConfig config_;
  Engine engine_;
  SimMetrics metrics_;
  cosm::Rng rng_;
  std::vector<std::unique_ptr<BackendDevice>> devices_;
  std::vector<std::unique_ptr<FrontendProcess>> frontends_;
  std::uint64_t next_request_id_ = 0;
};

}  // namespace cosm::sim
