// Frontend tier: event-driven proxy processes.
//
// A frontend process parses each incoming request (an FCFS M/G/1-like
// queue — the S_q component of Eq. 2) and then opens a connection to the
// backend device, which puts the request into that device's connection
// pool.  Relaying response bytes is not simulated as load, matching the
// paper's "sufficient resources of computation and network" assumption —
// but parsing is, because it is the queue the model captures.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/fifo_ring.hpp"
#include "sim/request.hpp"

namespace cosm::sim {

class FrontendProcess {
 public:
  using ConnectFn = std::function<void(RequestPtr)>;

  // `connect` delivers the request to its backend device's pool.
  FrontendProcess(Engine& engine, const ClusterConfig& config,
                  ConnectFn connect, cosm::Rng rng);

  // Client request arrives at this process (records frontend_arrival).
  void accept_request(RequestPtr req);

  std::size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }
  std::uint64_t requests_parsed() const { return parsed_; }

 private:
  void start_next();

  Engine& engine_;
  const ClusterConfig& config_;
  ConnectFn connect_;
  cosm::Rng rng_;
  FifoRing<RequestPtr> queue_;
  bool busy_ = false;
  std::uint64_t parsed_ = 0;
};

}  // namespace cosm::sim
