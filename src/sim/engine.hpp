// Discrete-event simulation engine.
//
// A binary-heap scheduler over (time, sequence) keys: events at equal
// timestamps run in scheduling order, which makes every simulation
// deterministic for a fixed seed set.  Entities capture what they need in
// the callback; the engine owns nothing but the calendar.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace cosm::sim {

using EventCallback = std::function<void()>;

class Engine {
 public:
  double now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }
  std::size_t events_pending() const { return calendar_.size(); }

  // Schedules `fn` at absolute simulated time `time` (>= now).
  void schedule_at(double time, EventCallback fn);
  // Schedules `fn` after `delay` (>= 0) simulated seconds.
  void schedule_after(double delay, EventCallback fn);

  // Runs events in timestamp order until the calendar is empty or the next
  // event is after `end_time`; the clock ends at min(end_time, last event).
  void run_until(double end_time);
  // Drains the calendar completely.
  void run_all();
  // Processes a single event; returns false if the calendar is empty.
  bool step();

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    EventCallback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> calendar_;
};

}  // namespace cosm::sim
