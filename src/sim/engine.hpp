// Discrete-event simulation engine.
//
// The calendar is an indexed d-ary (4-ary) min-heap over POD nodes
// (time, sequence, arena slot) keyed by (time, seq): events at equal
// timestamps run in scheduling order, which makes every simulation
// deterministic for a fixed seed set.  Callbacks live in a slab arena
// recycled through a free list, and the callback type itself
// (EventCallback, a SmallFn) stores captures inline — so the steady-state
// hot path (schedule -> sift -> pop -> invoke) performs no heap
// allocation and moves only 24-byte nodes while re-heapifying.
//
// Events scheduled at exactly the current time (the event-loop "yield"
// idiom: EAGAIN accepts, zero accept cost, same-instant error delivery)
// bypass the heap through a FIFO of (seq, slot) pairs.  The pop logic
// merges the FIFO against the heap by sequence number, so the (time, seq)
// total order — and therefore determinism — is untouched; the invariant
// is that everything in the FIFO carries time == now(), which holds
// because the clock cannot advance while the FIFO is non-empty.
//
// The hot members are defined inline here: the engine is called a dozen
// times per simulated request, and keeping schedule/step visible to the
// entities' translation units is worth more than any micro-tweak inside
// them.  Entities capture what they need in the callback; the engine owns
// nothing but the calendar.
#pragma once

#include <bit>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/require.hpp"
#include "sim/event_fn.hpp"

namespace cosm::sim {

// Inline capacity 48 covers every hot-path capture block in the simulator
// (the largest is [this, RequestPtr, epoch] at 24 bytes and the trace
// replayer's 40); entities assert theirs via schedule_*_inline.  Larger
// cold-path captures (fault arming, offline-disk error delivery) spill to
// the heap inside SmallFn and stay correct.
using EventCallback = SmallFn<48>;

class Engine {
 public:
  double now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }
  std::size_t events_pending() const {
    return heap_.size() + (immediate_.size() - immediate_head_) +
           (monotone_.size() - monotone_head_);
  }

  // Schedules `fn` at absolute simulated time `time` (>= now).
  void schedule_at(double time, EventCallback fn) {
    COSM_REQUIRE(time >= now_, "cannot schedule events in the past");
    COSM_REQUIRE(fn != nullptr, "event callback must be callable");
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t slot = acquire_empty_slot();
    slot_ref(slot) = std::move(fn);
    enqueue_node(time, seq, slot);
  }

  // Schedules `fn` after `delay` (>= 0) simulated seconds.
  void schedule_after(double delay, EventCallback fn) {
    COSM_REQUIRE(delay >= 0, "event delay must be non-negative");
    schedule_at(now_ + delay, std::move(fn));
  }

  // Hot-path variants: statically guarantee the capture block fits
  // EventCallback's inline storage, i.e. scheduling never allocates —
  // and construct it directly in its arena slot, skipping the two
  // vtable relocations the type-erased schedule_at path pays.
  template <typename F>
  void schedule_at_inline(double time, F&& fn) {
    static_assert(EventCallback::fits_inline_v<std::decay_t<F>>,
                  "hot-path event capture exceeds EventCallback's inline "
                  "storage; shrink the capture or use schedule_at");
    COSM_REQUIRE(time >= now_, "cannot schedule events in the past");
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t slot = acquire_empty_slot();
    slot_ref(slot).emplace(std::forward<F>(fn));
    enqueue_node(time, seq, slot);
  }
  template <typename F>
  void schedule_after_inline(double delay, F&& fn) {
    COSM_REQUIRE(delay >= 0, "event delay must be non-negative");
    schedule_at_inline(now_ + delay, std::forward<F>(fn));
  }

  // Timer-lane variant for event streams whose fire times never decrease
  // across calls — e.g. a fixed per-request timeout armed at dispatch:
  // now() is non-decreasing, so now() + constant is too.  Such events
  // bypass the heap into a plain FIFO that pop merges by (time, seq), so
  // a standing population of armed timers (at 150 req/s and a 250 ms
  // timeout, ~40 of them at all times) stops deepening every other
  // event's sift path.  The monotone contract is checked, not assumed.
  template <typename F>
  void schedule_after_monotone_inline(double delay, F&& fn) {
    static_assert(EventCallback::fits_inline_v<std::decay_t<F>>,
                  "hot-path event capture exceeds EventCallback's inline "
                  "storage; shrink the capture or use schedule_after");
    COSM_REQUIRE(delay >= 0, "event delay must be non-negative");
    const double time = now_ + delay;
    COSM_REQUIRE(monotone_head_ == monotone_.size() ||
                     std::bit_cast<std::uint64_t>(time) >=
                         monotone_.back().time_bits,
                 "monotone timer lane requires non-decreasing fire times");
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t slot = acquire_empty_slot();
    slot_ref(slot).emplace(std::forward<F>(fn));
    if (time == now_) {  // yield: same instant, same FIFO as everyone else
      immediate_.push_back(Immediate{seq, slot});
      return;
    }
    monotone_.push_back(
        Node{std::bit_cast<std::uint64_t>(time), seq, slot});
  }

  // External-event injection lane for the sharded coordinator
  // (sim/shard.hpp): files `fn` at absolute time `time` from OUTSIDE the
  // engine's own event flow — the cross-shard mailbox drain calls this
  // between run_until() windows.  Mechanically identical to
  // schedule_at_inline (same calendar, same (time, seq) total order); the
  // separate name documents the contract that makes cross-thread use safe:
  // the caller must be the thread driving this engine, the engine must be
  // quiescent (between run_until calls), and `time` must be >= now() —
  // which the window protocol guarantees because injected arrivals always
  // land strictly beyond the fence of the window just drained.  Injection
  // order assigns seq, so the per-shard total order is a pure function of
  // (local schedule order, mailbox drain order), both deterministic.
  template <typename F>
  void inject_at_inline(double time, F&& fn) {
    schedule_at_inline(time, std::forward<F>(fn));
  }

  // Pre-sizes the calendar and the callback arena (a perf knob only;
  // growth is otherwise amortized-geometric as usual).
  void reserve(std::size_t events);

  // Runs events in timestamp order until the calendar is empty or the next
  // event is after `end_time`; the clock ends at min(end_time, last event).
  void run_until(double end_time);
  // Drains the calendar completely.
  void run_all();

  // Processes a single event; returns false if the calendar is empty.
  bool step() {
    // Three sources, one total order.  Candidate = the earlier of the
    // heap top and the monotone-lane front (its front is minimal within
    // the lane by the monotone push contract); then the immediate FIFO —
    // whose events all carry time == now_ and FIFO-minimal seq — runs
    // first unless the candidate ties the instant with a smaller seq.
    const Node* cand = heap_.empty() ? nullptr : &heap_.front();
    bool from_monotone = false;
    if (monotone_head_ < monotone_.size()) {
      const Node& mono = monotone_[monotone_head_];
      if (cand == nullptr || earlier(mono, *cand)) {
        cand = &mono;
        from_monotone = true;
      }
    }
    if (immediate_head_ < immediate_.size()) {
      const Immediate front = immediate_[immediate_head_];
      if (cand == nullptr || cand->time() != now_ ||
          cand->seq > front.seq) {
        if (++immediate_head_ == immediate_.size()) {
          // Drained: recycle the buffer (capacity persists).
          immediate_.clear();
          immediate_head_ = 0;
        }
        invoke_slot(front.slot);
        return true;
      }
    }
    if (cand == nullptr) return false;
    const Node top = *cand;
    if (from_monotone) {
      if (++monotone_head_ == monotone_.size()) {
        // Drained: recycle the buffer (capacity persists).
        monotone_.clear();
        monotone_head_ = 0;
      }
    } else {
      const Node last = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) sift_down(0, last);
    }
    now_ = top.time();
    invoke_slot(top.slot);
    return true;
  }

 private:
  // Heap node: plain data, so sift operations move 24 bytes and never
  // touch the callbacks.  (time, seq) is a total order (seq is unique),
  // hence the pop order is independent of the heap's internal shape —
  // the exact property the determinism guarantee rests on.
  //
  // The time is stored as its IEEE-754 bit pattern: every heap entry's
  // time is strictly greater than now_ >= 0 (same-instant events go to
  // the immediate FIFO), and non-negative doubles order identically to
  // their bit patterns as unsigned integers — so the sift loops compare
  // integers instead of branching through floating-point compares.
  struct Node {
    std::uint64_t time_bits;
    std::uint64_t seq;
    std::uint32_t slot;
    double time() const { return std::bit_cast<double>(time_bits); }
  };
  // A yield event: time is implicitly now_, only the order tag and the
  // callback slot matter.
  struct Immediate {
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static constexpr std::size_t kArity = 4;

  static bool earlier(const Node& a, const Node& b) {
    if (a.time_bits != b.time_bits) return a.time_bits < b.time_bits;
    return a.seq < b.seq;
  }

  EventCallback& slot_ref(std::uint32_t slot) {
    return slabs_[slot >> kSlabBits][slot & (kSlabSize - 1)];
  }

  // Hands out a slot whose callback is empty (invoke_slot nulls a slot
  // before recycling it); the caller fills it by move-assign or emplace.
  std::uint32_t acquire_empty_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    COSM_CHECK(slot_count_ < UINT32_MAX, "event arena exhausted");
    if ((slot_count_ & (kSlabSize - 1)) == 0) {
      slabs_.push_back(std::make_unique<EventCallback[]>(kSlabSize));
    }
    return slot_count_++;
  }

  // Files a filled slot into the calendar under (time, seq).
  void enqueue_node(double time, std::uint64_t seq, std::uint32_t slot) {
    if (time == now_) {  // yield: runs this instant, no heap traffic
      immediate_.push_back(Immediate{seq, slot});
      return;
    }
    heap_.push_back(Node{std::bit_cast<std::uint64_t>(time), seq, slot});
    sift_up(heap_.size() - 1, heap_.back());
  }

  // Invokes the callback in place — arena slots have stable addresses (the
  // arena is a deque), so the running callback's captures cannot move even
  // if it schedules and the arena grows.  The slot is recycled only after
  // the call returns, so reentrant scheduling can never hand it out again
  // mid-invoke.
  void invoke_slot(std::uint32_t slot) {
    ++processed_;
    EventCallback& fn = slot_ref(slot);
    fn();
    fn = nullptr;  // release captures now, not at slot reuse
    free_slots_.push_back(slot);
  }

  void sift_up(std::size_t index, Node node);
  void sift_down(std::size_t index, Node node);

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::vector<Node> heap_;
  // Events scheduled at exactly now_: a vector-backed FIFO (append at the
  // tail, consume via immediate_head_, reset when drained — the clock
  // cannot advance while it is non-empty, so it drains constantly and the
  // buffer never grows past one instant's burst).
  std::vector<Immediate> immediate_;
  std::size_t immediate_head_ = 0;
  // Monotone timer lane (schedule_after_monotone_inline): fire times are
  // non-decreasing by contract, so the front is always the lane's minimum
  // and a plain vector-backed FIFO replaces heap traffic for the standing
  // population of armed timers.  Consumed via monotone_head_, reset when
  // drained, merged against the heap/immediate sources in step().
  std::vector<Node> monotone_;
  std::size_t monotone_head_ = 0;
  // Callback arena indexed by Node::slot, recycled via free_slots_.
  // Fixed-size slabs give slots stable addresses (callbacks execute in
  // place, even while scheduling grows the arena) at shift-and-mask
  // indexing cost.
  static constexpr std::uint32_t kSlabBits = 8;
  static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;
  std::vector<std::unique_ptr<EventCallback[]>> slabs_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace cosm::sim
