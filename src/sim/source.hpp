// Open-loop workload source.
//
// Drives a Cluster with Poisson arrivals through a workload::PhasePlan
// without materializing the trace: each arrival event samples an object,
// picks a replica (random, like Swift's proxy) and schedules the next
// arrival.  Open loop means arrivals never wait for completions — exactly
// the paper's modified-ssbench behaviour (Sec. V-A).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "workload/arrivals.hpp"
#include "workload/catalog.hpp"
#include "workload/placement.hpp"
#include "workload/trace.hpp"

namespace cosm::sim {

class OpenLoopSource {
 public:
  // `arrivals` defaults to Poisson (the model's assumption); pass a
  // Deterministic or Mmpp process for sensitivity studies.
  OpenLoopSource(Cluster& cluster, const workload::ObjectCatalog& catalog,
                 const workload::Placement& placement,
                 const workload::PhasePlan& plan, cosm::Rng rng,
                 double write_fraction = 0.0,
                 workload::ArrivalProcessPtr arrivals = nullptr);

  // Segments-direct form, for rate shapes a PhasePlan cannot express
  // (workload::stepped_ramp_segments, flash_crowd_segments).  Segments
  // must be contiguous and in time order, as expand_phases produces them.
  OpenLoopSource(Cluster& cluster, const workload::ObjectCatalog& catalog,
                 const workload::Placement& placement,
                 std::vector<workload::PhaseSegment> segments, cosm::Rng rng,
                 double write_fraction = 0.0,
                 workload::ArrivalProcessPtr arrivals = nullptr);

  // Schedules the first arrival; the chain then sustains itself.  Call
  // before Engine::run_until.
  void start();

  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t write_arrivals() const { return write_arrivals_; }
  // End of the last phase segment (the natural run horizon).
  double horizon() const;

  // The simulated time at which the benchmark phase begins (samples before
  // it are warmup; feed to SimMetrics::sample_start_time).
  double benchmark_start_time() const;

 private:
  void schedule_next(std::size_t segment_index, double time);
  void fire(std::size_t segment_index, double time);

  Cluster& cluster_;
  const workload::ObjectCatalog& catalog_;
  const workload::Placement& placement_;
  std::vector<workload::PhaseSegment> segments_;
  cosm::Rng rng_;
  double write_fraction_;
  workload::ArrivalProcessPtr arrival_process_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t write_arrivals_ = 0;
};

// Replays a pre-materialized trace (e.g. read from CSV) against a cluster;
// returns the number of scheduled arrivals.  Each record's replica is
// chosen randomly among the placement's replicas.
std::uint64_t replay_trace(Cluster& cluster,
                           const std::vector<workload::TraceRecord>& trace,
                           const workload::Placement& placement,
                           cosm::Rng& rng);

}  // namespace cosm::sim
