#include "sim/cluster.hpp"

#include <cmath>

#include "common/require.hpp"

namespace cosm::sim {

void ClusterConfig::finalize() {
  COSM_REQUIRE(frontend_processes >= 1, "need at least one frontend process");
  COSM_REQUIRE(device_count >= 1, "need at least one device");
  COSM_REQUIRE(processes_per_device >= 1,
               "need at least one process per device");
  COSM_REQUIRE(chunk_bytes > 0, "chunk size must be positive");
  COSM_REQUIRE(accept_cost >= 0, "accept cost must be non-negative");
  COSM_REQUIRE(network_latency >= 0, "network latency must be non-negative");
  COSM_REQUIRE(network_bandwidth_bytes_per_sec > 0,
               "network bandwidth must be positive");
  if (!frontend_parse) {
    frontend_parse = std::make_shared<numerics::Degenerate>(0.8e-3);
  }
  if (!backend_parse) {
    backend_parse = std::make_shared<numerics::Degenerate>(0.5e-3);
  }
  if (!disk.index_service || !disk.meta_service || !disk.data_service) {
    disk = default_hdd_profile();
  }
}

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      metrics_((config_.finalize(), config_.device_count)),
      rng_(config_.seed) {
  devices_.reserve(config_.device_count);
  for (std::uint32_t d = 0; d < config_.device_count; ++d) {
    devices_.push_back(std::make_unique<BackendDevice>(
        engine_, config_, metrics_, d, rng_));
    devices_.back()->set_response_started_callback(
        [this](const RequestPtr& req) { on_response_started(req); });
  }
  frontends_.reserve(config_.frontend_processes);
  for (std::uint32_t f = 0; f < config_.frontend_processes; ++f) {
    frontends_.push_back(std::make_unique<FrontendProcess>(
        engine_, config_,
        [this](RequestPtr req) {
          devices_[req->device]->connection_arrived(std::move(req));
        },
        rng_.fork()));
  }
}

void Cluster::submit_request(std::uint64_t object_id,
                             std::uint64_t size_bytes,
                             std::uint32_t device, bool is_write) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  auto req = std::make_shared<Request>();
  req->id = next_request_id_++;
  req->is_write = is_write;
  req->object_id = object_id;
  req->size_bytes = size_bytes;
  req->device = device;
  req->chunks_total = static_cast<std::uint32_t>(std::max<std::uint64_t>(
      1, (size_bytes + config_.chunk_bytes - 1) / config_.chunk_bytes));
  const auto frontend = rng_.uniform_index(frontends_.size());
  // Arm the client-side timeout before handing the request over: if the
  // response has not started by then, the request completes as a timeout
  // sample (the backend's work continues and is wasted).
  if (config_.request_timeout > 0.0) {
    RequestPtr watched = req;
    engine_.schedule_after(config_.request_timeout, [this, watched] {
      if (!watched->responded && !watched->timed_out) {
        watched->timed_out = true;
        on_timeout(watched);
      }
    });
  }
  frontends_[frontend]->accept_request(std::move(req));
}

void Cluster::on_timeout(const RequestPtr& req) {
  RequestSample sample;
  sample.is_write = req->is_write;
  sample.timed_out = true;
  sample.frontend_arrival = req->frontend_arrival;
  sample.response_latency = config_.request_timeout;
  sample.backend_latency = 0.0;
  sample.accept_wait =
      req->accept_time > 0 ? req->accept_time - req->pool_enter_time : 0.0;
  sample.device = req->device;
  sample.chunks = req->chunks_total;
  metrics_.on_request_complete(sample);
}

BackendDevice& Cluster::device(std::uint32_t id) {
  COSM_REQUIRE(id < devices_.size(), "device id out of range");
  return *devices_[id];
}

FrontendProcess& Cluster::frontend(std::uint32_t id) {
  COSM_REQUIRE(id < frontends_.size(), "frontend id out of range");
  return *frontends_[id];
}

void Cluster::on_response_started(const RequestPtr& req) {
  if (req->timed_out) return;  // the client is gone; work was wasted
  RequestSample sample;
  sample.is_write = req->is_write;
  sample.frontend_arrival = req->frontend_arrival;
  sample.response_latency = engine_.now() - req->frontend_arrival;
  sample.backend_latency = req->respond_time - req->backend_enqueue_time;
  sample.accept_wait = req->accept_time - req->pool_enter_time;
  sample.device = req->device;
  sample.chunks = req->chunks_total;
  metrics_.on_request_complete(sample);
}

}  // namespace cosm::sim
