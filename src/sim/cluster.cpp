#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace cosm::sim {

void ClusterConfig::validate() const {
  COSM_REQUIRE(frontend_processes >= 1, "frontend_processes must be >= 1");
  COSM_REQUIRE(device_count >= 1, "device_count must be >= 1");
  COSM_REQUIRE(processes_per_device >= 1,
               "processes_per_device must be >= 1");
  COSM_REQUIRE(chunk_bytes > 0, "chunk_bytes must be positive");
  COSM_REQUIRE(std::isfinite(accept_cost) && accept_cost >= 0,
               "accept_cost must be finite and non-negative");
  COSM_REQUIRE(std::isfinite(network_latency) && network_latency >= 0,
               "network_latency must be finite and non-negative");
  COSM_REQUIRE(std::isfinite(network_bandwidth_bytes_per_sec) &&
                   network_bandwidth_bytes_per_sec > 0,
               "network_bandwidth_bytes_per_sec must be finite and positive");
  COSM_REQUIRE(std::isfinite(request_timeout) && request_timeout >= 0,
               "request_timeout must be finite and non-negative");
  COSM_REQUIRE(max_retries == 0 || request_timeout > 0 || !faults.empty(),
               "max_retries without a request_timeout or faults never fires");
  COSM_REQUIRE(std::isfinite(retry_backoff_base) && retry_backoff_base >= 0,
               "retry_backoff_base must be finite and non-negative");
  COSM_REQUIRE(std::isfinite(retry_backoff_cap) && retry_backoff_cap >= 0,
               "retry_backoff_cap must be finite and non-negative");
  const auto ratio_ok = [](double r) {
    return std::isfinite(r) && r >= 0.0 && r <= 1.0;
  };
  COSM_REQUIRE(ratio_ok(cache.index_miss_ratio),
               "cache.index_miss_ratio must be in [0, 1]");
  COSM_REQUIRE(ratio_ok(cache.meta_miss_ratio),
               "cache.meta_miss_ratio must be in [0, 1]");
  COSM_REQUIRE(ratio_ok(cache.data_miss_ratio),
               "cache.data_miss_ratio must be in [0, 1]");
  faults.validate(device_count, processes_per_device);
}

void ClusterConfig::finalize() {
  if (!frontend_parse) {
    frontend_parse = std::make_shared<numerics::Degenerate>(0.8e-3);
  }
  if (!backend_parse) {
    backend_parse = std::make_shared<numerics::Degenerate>(0.5e-3);
  }
  if (!disk.index_service || !disk.meta_service || !disk.data_service) {
    disk = default_hdd_profile();
  }
  validate();
}

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      metrics_((config_.finalize(), config_.device_count)),
      rng_(config_.seed) {
  devices_.reserve(config_.device_count);
  for (std::uint32_t d = 0; d < config_.device_count; ++d) {
    devices_.push_back(std::make_unique<BackendDevice>(
        engine_, config_, metrics_, d, rng_));
    devices_.back()->set_response_started_callback(
        [this](const RequestPtr& req) { on_response_started(req); });
    devices_.back()->set_request_failed_callback(
        [this](const RequestPtr& req) { on_attempt_failed(req); });
  }
  frontends_.reserve(config_.frontend_processes);
  for (std::uint32_t f = 0; f < config_.frontend_processes; ++f) {
    frontends_.push_back(std::make_unique<FrontendProcess>(
        engine_, config_,
        [this](RequestPtr req) {
          devices_[req->device]->connection_arrived(std::move(req));
        },
        rng_.fork()));
  }
  arm_faults();
}

void Cluster::arm_faults() {
  for (const FaultEvent& event : config_.faults.events()) {
    engine_.schedule_at(event.start,
                        [this, event] { apply_fault(event, true); });
    engine_.schedule_at(event.start + event.duration,
                        [this, event] { apply_fault(event, false); });
  }
}

void Cluster::apply_fault(const FaultEvent& event, bool begin) {
  BackendDevice& dev = *devices_[event.device];
  switch (event.kind) {
    case FaultKind::kDiskSlowdown:
      // Multiplicative so overlapping slowdown windows compose and each
      // window's end restores exactly what its start applied.
      dev.disk().set_degradation(begin
                                     ? dev.disk().degradation() * event.factor
                                     : dev.disk().degradation() / event.factor);
      break;
    case FaultKind::kDeviceOutage:
      dev.set_online(!begin);
      break;
    case FaultKind::kProcessCrash:
      if (begin) {
        dev.crash_processes(event.processes);
      } else {
        dev.restart_processes(event.processes);
      }
      break;
    case FaultKind::kNetworkJitter:
      config_.network_latency = begin ? config_.network_latency * event.factor
                                      : config_.network_latency / event.factor;
      break;
  }
}

void Cluster::submit_request(std::uint64_t object_id,
                             std::uint64_t size_bytes,
                             std::uint32_t device, bool is_write) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  RequestPtr req = pool_.acquire();
  // Single-replica fast path: push into the pooled request's (cleared but
  // capacity-retaining) replica vector instead of materializing a fresh
  // one-element vector per arrival.
  req->replicas.push_back(device);
  submit_acquired(std::move(req), object_id, size_bytes, is_write);
}

void Cluster::submit_request(std::uint64_t object_id,
                             std::uint64_t size_bytes,
                             std::vector<std::uint32_t> replicas,
                             bool is_write) {
  COSM_REQUIRE(!replicas.empty(), "need at least one replica device");
  for (std::uint32_t device : replicas) {
    COSM_REQUIRE(device < devices_.size(), "device id out of range");
  }
  RequestPtr req = pool_.acquire();
  // Assign (not move): copying into the pooled vector reuses its capacity,
  // where a move would free it and adopt the caller's buffer.
  req->replicas.assign(replicas.begin(), replicas.end());
  submit_acquired(std::move(req), object_id, size_bytes, is_write);
}

void Cluster::submit_acquired(RequestPtr req, std::uint64_t object_id,
                              std::uint64_t size_bytes, bool is_write) {
  req->id = next_request_id_++;
  req->is_write = is_write;
  req->object_id = object_id;
  req->size_bytes = size_bytes;
  req->device = req->replicas.front();
  req->original_arrival = engine_.now();
  req->chunks_total = static_cast<std::uint32_t>(std::max<std::uint64_t>(
      1, (size_bytes + config_.chunk_bytes - 1) / config_.chunk_bytes));
  dispatch_attempt(std::move(req));
}

void Cluster::dispatch_attempt(RequestPtr req) {
  metrics_.on_attempt(req->device, req->attempt > 0,
                      req->failed_over_attempt);
  const auto frontend = rng_.uniform_index(frontends_.size());
  // Arm the client-side timeout before handing the attempt over: if the
  // response has not started by then, the attempt is abandoned (the
  // backend's work continues and is wasted) and the cluster retries or
  // records the timeout.
  // now() + a fixed timeout is non-decreasing across dispatches, so the
  // standing population of armed timers qualifies for the engine's
  // monotone lane and stays out of every other event's heap sift path.
  if (config_.request_timeout > 0.0) {
    engine_.schedule_after_monotone_inline(
        config_.request_timeout, [this, watched = req] {
          if (!watched->responded && !watched->timed_out && !watched->failed) {
            watched->timed_out = true;
            on_timeout(watched);
          }
        });
  }
  frontends_[frontend]->accept_request(std::move(req));
}

double Cluster::backoff_delay(std::uint32_t attempt) const {
  // Deterministic (no jitter draw) so faulted runs stay seed-reproducible.
  return std::min(config_.retry_backoff_cap,
                  config_.retry_backoff_base * std::ldexp(1.0, attempt));
}

RequestPtr Cluster::make_retry_attempt(const RequestPtr& prev) {
  RequestPtr next = pool_.acquire();
  next->id = next_request_id_++;
  next->is_write = prev->is_write;
  next->object_id = prev->object_id;
  next->size_bytes = prev->size_bytes;
  next->chunks_total = prev->chunks_total;
  next->attempt = prev->attempt + 1;
  next->replicas = prev->replicas;
  next->replica_index = prev->replica_index;
  next->failover_count = prev->failover_count;
  next->original_arrival = prev->original_arrival;
  if (config_.failover && next->replicas.size() > 1) {
    next->replica_index =
        (prev->replica_index + 1) % next->replicas.size();
    next->failed_over_attempt = true;
    ++next->failover_count;
  }
  next->device = next->replicas[next->replica_index];
  return next;
}

void Cluster::retry_or_record(const RequestPtr& req) {
  if (req->attempt < config_.max_retries) {
    engine_.schedule_after_inline(
        backoff_delay(req->attempt),
        [this, next = make_retry_attempt(req)]() mutable {
          dispatch_attempt(std::move(next));
        });
    return;
  }
  // Retry budget spent (or retries disabled): the client gives up, and the
  // request completes as one timed-out / failed sample spanning all
  // attempts.
  RequestSample sample;
  sample.is_write = req->is_write;
  sample.timed_out = req->timed_out;
  sample.failed = req->failed;
  sample.frontend_arrival = req->original_arrival;
  sample.response_latency = engine_.now() - req->original_arrival;
  sample.backend_latency = 0.0;
  sample.accept_wait =
      req->accept_time > 0 ? req->accept_time - req->pool_enter_time : 0.0;
  sample.device = req->device;
  sample.chunks = req->chunks_total;
  sample.attempts = req->attempt + 1;
  sample.failovers = req->failover_count;
  metrics_.on_request_complete(sample);
}

void Cluster::on_timeout(const RequestPtr& req) { retry_or_record(req); }

void Cluster::on_attempt_failed(const RequestPtr& req) {
  retry_or_record(req);
}

BackendDevice& Cluster::device(std::uint32_t id) {
  COSM_REQUIRE(id < devices_.size(), "device id out of range");
  return *devices_[id];
}

FrontendProcess& Cluster::frontend(std::uint32_t id) {
  COSM_REQUIRE(id < frontends_.size(), "frontend id out of range");
  return *frontends_[id];
}

void Cluster::on_response_started(const RequestPtr& req) {
  if (req->timed_out || req->failed) return;  // abandoned; work was wasted
  RequestSample sample;
  sample.is_write = req->is_write;
  sample.frontend_arrival = req->original_arrival;
  sample.response_latency = engine_.now() - req->original_arrival;
  sample.backend_latency = req->respond_time - req->backend_enqueue_time;
  sample.accept_wait = req->accept_time - req->pool_enter_time;
  sample.device = req->device;
  sample.chunks = req->chunks_total;
  sample.attempts = req->attempt + 1;
  sample.failovers = req->failover_count;
  metrics_.on_request_complete(sample);
}

}  // namespace cosm::sim
