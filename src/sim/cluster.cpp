#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "obs/obs.hpp"

namespace cosm::sim {

void ClusterConfig::validate() const {
  COSM_REQUIRE(frontend_processes >= 1, "frontend_processes must be >= 1");
  COSM_REQUIRE(device_count >= 1, "device_count must be >= 1");
  COSM_REQUIRE(processes_per_device >= 1,
               "processes_per_device must be >= 1");
  COSM_REQUIRE(chunk_bytes > 0, "chunk_bytes must be positive");
  COSM_REQUIRE(std::isfinite(accept_cost) && accept_cost >= 0,
               "accept_cost must be finite and non-negative");
  COSM_REQUIRE(std::isfinite(network_latency) && network_latency >= 0,
               "network_latency must be finite and non-negative");
  COSM_REQUIRE(std::isfinite(network_bandwidth_bytes_per_sec) &&
                   network_bandwidth_bytes_per_sec > 0,
               "network_bandwidth_bytes_per_sec must be finite and positive");
  COSM_REQUIRE(std::isfinite(request_timeout) && request_timeout >= 0,
               "request_timeout must be finite and non-negative");
  COSM_REQUIRE(max_retries == 0 || request_timeout > 0 || !faults.empty(),
               "max_retries without a request_timeout or faults never fires");
  COSM_REQUIRE(std::isfinite(retry_backoff_base) && retry_backoff_base >= 0,
               "retry_backoff_base must be finite and non-negative");
  COSM_REQUIRE(std::isfinite(retry_backoff_cap) && retry_backoff_cap >= 0,
               "retry_backoff_cap must be finite and non-negative");
  COSM_REQUIRE(std::isfinite(retry_jitter) && retry_jitter >= 0.0 &&
                   retry_jitter <= 1.0,
               "retry_jitter must be in [0, 1]");
  COSM_REQUIRE(std::isfinite(hedge_delay) && hedge_delay >= 0,
               "hedge_delay must be finite and non-negative");
  COSM_REQUIRE(hedge_delay == 0.0 || hedge_max >= 1,
               "hedge_max must be >= 1 when hedging is enabled");
  COSM_REQUIRE(fanout_n <= 1 || (fanout_k >= 1 && fanout_k <= fanout_n),
               "fanout_k must be in [1, fanout_n]");
  COSM_REQUIRE(fanout_n <= 1 || hedge_delay == 0.0,
               "fanout reads and hedged requests are mutually exclusive");
  const auto ratio_ok = [](double r) {
    return std::isfinite(r) && r >= 0.0 && r <= 1.0;
  };
  COSM_REQUIRE(ratio_ok(cache.index_miss_ratio),
               "cache.index_miss_ratio must be in [0, 1]");
  COSM_REQUIRE(ratio_ok(cache.meta_miss_ratio),
               "cache.meta_miss_ratio must be in [0, 1]");
  COSM_REQUIRE(ratio_ok(cache.data_miss_ratio),
               "cache.data_miss_ratio must be in [0, 1]");
  if (tier.enabled) {
    COSM_REQUIRE(tier.capacity_chunks >= 1,
                 "tier.capacity_chunks must be >= 1 when the tier is on");
  }
  COSM_REQUIRE(shards >= 1, "shards must be >= 1");
  // 64 keeps the per-shard seed stride (16 per shard, sim/shard.hpp) clear
  // of the per-replication stride (1000, sim/replication.cpp).
  COSM_REQUIRE(shards <= 64, "shards must be <= 64");
  COSM_REQUIRE(std::isfinite(shard_window) && shard_window >= 0,
               "shard_window must be finite and non-negative");
  if (shards > 1) {
    COSM_REQUIRE(device_count >= shards,
                 "shards must not exceed device_count: every shard needs at "
                 "least one backend device (lower shards or add devices)");
    COSM_REQUIRE(frontend_processes >= shards,
                 "shards must not exceed frontend_processes: every shard "
                 "needs at least one frontend (lower shards or add "
                 "frontends)");
    // Conservative synchronization needs a positive lookahead: the
    // frontend->backend network hop is the natural floor, and shard_window
    // can widen it.  With both zero, no window length is safe.
    COSM_REQUIRE(network_latency > 0 || shard_window > 0,
                 "sharded runs need a positive lookahead: set "
                 "network_latency > 0 or an explicit shard_window > 0");
  }
  faults.validate(device_count, processes_per_device);
}

void ClusterConfig::finalize() {
  if (!frontend_parse) {
    frontend_parse = std::make_shared<numerics::Degenerate>(0.8e-3);
  }
  if (!backend_parse) {
    backend_parse = std::make_shared<numerics::Degenerate>(0.5e-3);
  }
  if (!disk.index_service || !disk.meta_service || !disk.data_service) {
    disk = default_hdd_profile();
  }
  if (tier.enabled && (!tier.read_service || !tier.write_service)) {
    const DiskProfile ssd = default_ssd_profile();
    if (!tier.read_service) tier.read_service = ssd.data_service;
    if (!tier.write_service) tier.write_service = ssd.write_service;
  }
  validate();
}

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      metrics_((config_.finalize(), config_.device_count)),
      rng_(config_.seed) {
  // A Cluster is one shard's worth of simulation — the sharded coordinator
  // (sim/shard.hpp) builds one Cluster per shard from a derived config.
  COSM_REQUIRE(config_.shards == 1,
               "Cluster simulates a single shard; shards > 1 runs go "
               "through sim::run_sharded_replication (see sim/shard.hpp)");
  outstanding_.assign(config_.device_count, 0);
  devices_.reserve(config_.device_count);
  for (std::uint32_t d = 0; d < config_.device_count; ++d) {
    devices_.push_back(std::make_unique<BackendDevice>(
        engine_, config_, metrics_, d, rng_));
    devices_.back()->set_response_started_callback(
        [this](const RequestPtr& req) { on_response_started(req); });
    devices_.back()->set_request_failed_callback(
        [this](const RequestPtr& req) { on_attempt_failed(req); });
  }
  frontends_.reserve(config_.frontend_processes);
  for (std::uint32_t f = 0; f < config_.frontend_processes; ++f) {
    frontends_.push_back(std::make_unique<FrontendProcess>(
        engine_, config_,
        [this](RequestPtr req) {
          devices_[req->device]->connection_arrived(std::move(req));
        },
        rng_.fork()));
  }
  arm_faults();
}

void Cluster::arm_faults() {
  for (const FaultEvent& event : config_.faults.events()) {
    engine_.schedule_at(event.start,
                        [this, event] { apply_fault(event, true); });
    engine_.schedule_at(event.start + event.duration,
                        [this, event] { apply_fault(event, false); });
  }
}

void Cluster::apply_fault(const FaultEvent& event, bool begin) {
  BackendDevice& dev = *devices_[event.device];
  switch (event.kind) {
    case FaultKind::kDiskSlowdown:
      // Multiplicative so overlapping slowdown windows compose and each
      // window's end restores exactly what its start applied.
      dev.disk().set_degradation(begin
                                     ? dev.disk().degradation() * event.factor
                                     : dev.disk().degradation() / event.factor);
      break;
    case FaultKind::kDeviceOutage:
      dev.set_online(!begin);
      break;
    case FaultKind::kProcessCrash:
      if (begin) {
        dev.crash_processes(event.processes);
      } else {
        dev.restart_processes(event.processes);
      }
      break;
    case FaultKind::kNetworkJitter:
      config_.network_latency = begin ? config_.network_latency * event.factor
                                      : config_.network_latency / event.factor;
      break;
  }
}

void Cluster::submit_request(std::uint64_t object_id,
                             std::uint64_t size_bytes,
                             std::uint32_t device, bool is_write) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  RequestPtr req = pool_.acquire();
  // Single-replica fast path: push into the pooled request's (cleared but
  // capacity-retaining) replica vector instead of materializing a fresh
  // one-element vector per arrival.
  req->replicas.push_back(device);
  submit_acquired(std::move(req), object_id, size_bytes, is_write);
}

void Cluster::submit_request(std::uint64_t object_id,
                             std::uint64_t size_bytes,
                             std::vector<std::uint32_t> replicas,
                             bool is_write) {
  COSM_REQUIRE(!replicas.empty(), "need at least one replica device");
  for (std::uint32_t device : replicas) {
    COSM_REQUIRE(device < devices_.size(), "device id out of range");
  }
  RequestPtr req = pool_.acquire();
  // Assign (not move): copying into the pooled vector reuses its capacity,
  // where a move would free it and adopt the caller's buffer.
  req->replicas.assign(replicas.begin(), replicas.end());
  submit_acquired(std::move(req), object_id, size_bytes, is_write);
}

void Cluster::submit_acquired(RequestPtr req, std::uint64_t object_id,
                              std::uint64_t size_bytes, bool is_write) {
  req->id = next_request_id_++;
  req->is_write = is_write;
  req->object_id = object_id;
  req->size_bytes = size_bytes;
  req->device = req->replicas.front();
  req->original_arrival = engine_.now();
  req->chunks_total = static_cast<std::uint32_t>(std::max<std::uint64_t>(
      1, (size_bytes + config_.chunk_bytes - 1) / config_.chunk_bytes));
  // Redundancy applies to multi-replica reads only; writes and
  // single-replica requests keep the legacy path bit-for-bit.
  if (!req->is_write && req->replicas.size() > 1) {
    if (config_.fanout_n > 1) {
      submit_fanout(std::move(req));
      return;
    }
    choose_first_replica(req);
    if (config_.hedge_delay > 0.0) {
      const std::uint32_t gid = acquire_group();
      FanoutGroup& g = group(gid);
      g.needed = 1;
      g.outstanding = 1;
      g.is_hedge = true;
      g.original_arrival = req->original_arrival;
      g.chunks_total = req->chunks_total;
      req->group_id = gid;
      arm_hedge_timer(gid, g.generation);
    }
  }
  dispatch_attempt(std::move(req));
}

void Cluster::choose_first_replica(const RequestPtr& req) {
  if (config_.replica_choice == ClusterConfig::ReplicaChoice::kPrimary) {
    return;
  }
  const auto& reps = req->replicas;
  std::size_t pick;
  if (config_.replica_choice ==
      ClusterConfig::ReplicaChoice::kLeastOutstanding) {
    pick = 0;
    for (std::size_t i = 1; i < reps.size(); ++i) {
      if (outstanding_[reps[i]] < outstanding_[reps[pick]]) pick = i;
    }
  } else {  // kPowerOfTwo
    const std::size_t a = rng_.uniform_index(reps.size());
    const std::size_t b = rng_.uniform_index(reps.size());
    pick = outstanding_[reps[b]] < outstanding_[reps[a]] ? b : a;
  }
  req->replica_index = static_cast<std::uint32_t>(pick);
  req->device = reps[pick];
}

void Cluster::submit_fanout(RequestPtr req) {
  const auto n = static_cast<std::uint32_t>(
      std::min<std::size_t>(config_.fanout_n, req->replicas.size()));
  const std::uint32_t k = std::min(config_.fanout_k, n);
  const std::uint32_t gid = acquire_group();
  FanoutGroup& g = group(gid);
  g.needed = k;
  g.outstanding = n;
  g.base_attempts = n;
  g.original_arrival = req->original_arrival;
  g.chunks_total = req->chunks_total;
  metrics_.on_fanout_group();
  // Every attempt fetches one coded chunk of ceil(size / k) bytes; any k
  // of the n responses reconstruct the object (FAST-CLOUD-style reads).
  const std::uint64_t coded_bytes =
      std::max<std::uint64_t>(1, (req->size_bytes + k - 1) / k);
  const auto coded_chunks = static_cast<std::uint32_t>(std::max<std::uint64_t>(
      1, (coded_bytes + config_.chunk_bytes - 1) / config_.chunk_bytes));
  req->group_id = gid;
  req->size_bytes = coded_bytes;
  req->chunks_total = coded_chunks;
  // Dispatch in replica order (primary first) — deterministic, and each
  // sibling is cloned from the primary before it goes out.
  dispatch_attempt(req);
  for (std::uint32_t i = 1; i < n; ++i) {
    RequestPtr sibling = pool_.acquire();
    sibling->id = next_request_id_++;
    sibling->object_id = req->object_id;
    sibling->size_bytes = coded_bytes;
    sibling->chunks_total = coded_chunks;
    sibling->replicas = req->replicas;  // copy reuses pooled capacity
    sibling->replica_index = i;
    sibling->device = sibling->replicas[i];
    sibling->original_arrival = g.original_arrival;
    sibling->group_id = gid;
    dispatch_attempt(std::move(sibling));
  }
}

void Cluster::arm_hedge_timer(std::uint32_t group_id,
                              std::uint64_t generation) {
  // Deliberately NOT the engine's monotone lane: that lane's ordering
  // contract belongs to the fixed request_timeout; hedge deadlines are a
  // second, different delay and would interleave non-monotonically.
  engine_.schedule_after_inline(
      config_.hedge_delay, [this, group_id, generation] {
        FanoutGroup& g = group_slabs_[group_id];
        // Generation mismatch = the group finished and its slot may
        // already coordinate a different request (pool-epoch discipline).
        if (g.generation != generation || g.done) return;
        issue_hedge(group_id);
        if (g.hedges_issued < config_.hedge_max) {
          arm_hedge_timer(group_id, generation);
        }
      });
}

void Cluster::issue_hedge(std::uint32_t group_id) {
  FanoutGroup& g = group_slabs_[group_id];
  COSM_CHECK(!g.attempts.empty(), "hedge group lost its primary attempt");
  const RequestPtr& origin = g.attempts.front();
  RequestPtr hedge = pool_.acquire();
  hedge->id = next_request_id_++;
  hedge->object_id = origin->object_id;
  hedge->size_bytes = origin->size_bytes;
  hedge->chunks_total = origin->chunks_total;
  hedge->replicas = origin->replicas;  // copy reuses pooled capacity
  hedge->original_arrival = g.original_arrival;
  hedge->group_id = group_id;
  hedge->is_hedge = true;
  const auto& reps = hedge->replicas;
  // Aim away from the primary: rotate one replica per hedge, or — with a
  // load-aware replica_choice — the least-loaded replica on another
  // device.
  std::size_t pick =
      (origin->replica_index + g.hedges_issued + 1) % reps.size();
  if (config_.replica_choice != ClusterConfig::ReplicaChoice::kPrimary) {
    for (std::size_t i = 0; i < reps.size(); ++i) {
      if (reps[i] == origin->device) continue;
      if (reps[pick] == origin->device ||
          outstanding_[reps[i]] < outstanding_[reps[pick]]) {
        pick = i;
      }
    }
  }
  hedge->replica_index = static_cast<std::uint32_t>(pick);
  hedge->device = reps[pick];
  ++g.hedges_issued;
  ++g.outstanding;
  metrics_.on_hedge_issued();
  dispatch_attempt(std::move(hedge));
}

void Cluster::dispatch_attempt(RequestPtr req) {
  if (req->group_id != kNoGroup) {
    FanoutGroup& g = group(req->group_id);
    if (g.done) {
      // A retry fired after its group already completed: the attempt is
      // cancelled before it ever reaches a frontend.  It was never
      // dispatched, so mark it settled without touching the per-device
      // outstanding count.
      req->cancelled = true;
      req->settled = true;
      metrics_.on_attempt_cancelled();
      group_chain_done(req->group_id);
      return;
    }
    ++g.attempts_total;
    if (req->failed_over_attempt) ++g.failovers_total;
    g.attempts.push_back(req);
  }
  metrics_.on_attempt(req->device, req->attempt > 0,
                      req->failed_over_attempt);
  ++outstanding_[req->device];
  const auto frontend = rng_.uniform_index(frontends_.size());
  // Arm the client-side timeout before handing the attempt over: if the
  // response has not started by then, the attempt is abandoned (the
  // backend's work continues and is wasted) and the cluster retries or
  // records the timeout.
  // now() + a fixed timeout is non-decreasing across dispatches, so the
  // standing population of armed timers qualifies for the engine's
  // monotone lane and stays out of every other event's heap sift path.
  // The timer holds a WeakRequestRef, not a strong one: a finished
  // attempt's slot recycles immediately, and the generation check makes
  // resurrecting a recycled slot impossible.
  if (config_.request_timeout > 0.0) {
    engine_.schedule_after_monotone_inline(
        config_.request_timeout, [this, watched = WeakRequestRef(req)] {
          const RequestPtr req = watched.lock();
          if (!req) return;  // attempt finished; slot already recycled
          if (!req->responded && !req->timed_out && !req->failed &&
              !req->cancelled) {
            req->timed_out = true;
            on_timeout(req);
          }
        });
  }
  frontends_[frontend]->accept_request(std::move(req));
}

double Cluster::backoff_delay(std::uint32_t attempt) {
  double delay = std::min(config_.retry_backoff_cap,
                          config_.retry_backoff_base * std::ldexp(1.0, attempt));
  // With jitter off (the default) no RNG draw happens and the delay is the
  // exact capped exponential — legacy runs stay bit-identical.  With
  // jitter j, the delay scales by a uniform factor in (1-j, 1], breaking
  // up the synchronized retry storm after a scripted outage while staying
  // bit-deterministic per seed.
  if (config_.retry_jitter > 0.0) {
    delay *= 1.0 - config_.retry_jitter * rng_.uniform();
  }
  return delay;
}

RequestPtr Cluster::make_retry_attempt(const RequestPtr& prev) {
  RequestPtr next = pool_.acquire();
  next->id = next_request_id_++;
  next->is_write = prev->is_write;
  next->object_id = prev->object_id;
  next->size_bytes = prev->size_bytes;
  next->chunks_total = prev->chunks_total;
  next->attempt = prev->attempt + 1;
  next->replicas = prev->replicas;
  next->replica_index = prev->replica_index;
  next->failover_count = prev->failover_count;
  next->original_arrival = prev->original_arrival;
  next->group_id = prev->group_id;
  next->is_hedge = prev->is_hedge;
  if (config_.failover && next->replicas.size() > 1) {
    next->replica_index =
        (prev->replica_index + 1) % next->replicas.size();
    next->failed_over_attempt = true;
    ++next->failover_count;
  }
  next->device = next->replicas[next->replica_index];
  return next;
}

void Cluster::settle_attempt(const RequestPtr& req) {
  if (req->settled) return;
  req->settled = true;
  --outstanding_[req->device];
}

void Cluster::retry_or_record(const RequestPtr& req) {
  settle_attempt(req);
  if (req->group_id != kNoGroup) {
    group_chain_failed(req);
    return;
  }
  if (req->attempt < config_.max_retries) {
    engine_.schedule_after_inline(
        backoff_delay(req->attempt),
        [this, next = make_retry_attempt(req)]() mutable {
          dispatch_attempt(std::move(next));
        });
    return;
  }
  // Retry budget spent (or retries disabled): the client gives up, and the
  // request completes as one timed-out / failed sample spanning all
  // attempts.
  RequestSample sample;
  sample.is_write = req->is_write;
  sample.timed_out = req->timed_out;
  sample.failed = req->failed;
  sample.retried = req->attempt > 0;
  sample.frontend_arrival = req->original_arrival;
  sample.response_latency = engine_.now() - req->original_arrival;
  sample.backend_latency = 0.0;
  sample.accept_wait =
      req->accept_time > 0 ? req->accept_time - req->pool_enter_time : 0.0;
  sample.device = req->device;
  sample.chunks = req->chunks_total;
  sample.attempts = req->attempt + 1;
  sample.failovers = req->failover_count;
  metrics_.on_request_complete(sample);
}

void Cluster::on_timeout(const RequestPtr& req) { retry_or_record(req); }

void Cluster::on_attempt_failed(const RequestPtr& req) {
  retry_or_record(req);
}

// ----- Fan-out / hedge group lifecycle -----

std::uint32_t Cluster::acquire_group() {
  if (!group_free_.empty()) {
    const std::uint32_t gid = group_free_.back();
    group_free_.pop_back();
    FanoutGroup& g = group_slabs_[gid];
    // Reset in place, preserving the recycle generation and the attempts
    // vector's capacity.
    g.needed = 1;
    g.responded = 0;
    g.outstanding = 0;
    g.hedges_issued = 0;
    g.base_attempts = 1;
    g.attempts_total = 0;
    g.failovers_total = 0;
    g.done = false;
    g.is_hedge = false;
    g.original_arrival = 0.0;
    g.chunks_total = 0;
    return gid;
  }
  group_slabs_.emplace_back();
  return static_cast<std::uint32_t>(group_slabs_.size() - 1);
}

void Cluster::release_group(std::uint32_t group_id) {
  FanoutGroup& g = group_slabs_[group_id];
  g.attempts.clear();
  ++g.generation;  // expire every timer still pointing at this slot
  group_free_.push_back(group_id);
}

void Cluster::group_chain_done(std::uint32_t group_id) {
  FanoutGroup& g = group_slabs_[group_id];
  COSM_CHECK(g.outstanding > 0, "fan-out group chain accounting underflow");
  --g.outstanding;
  if (g.outstanding == 0) release_group(group_id);
}

void Cluster::group_response(const RequestPtr& req) {
  const std::uint32_t gid = req->group_id;
  FanoutGroup& g = group(gid);
  if (g.done) {
    // The k-th response arrived elsewhere while this one was already on
    // the wire (responded before the cancel sweep could mark it).  Its
    // bytes are discarded by the client — pure wasted work.
    obs::add(obs::Counter::kSimCancelLateResponses);
    group_chain_done(gid);
    return;
  }
  ++g.responded;
  if (g.responded >= g.needed) {
    complete_group(gid, req);
  }
  group_chain_done(gid);
}

void Cluster::complete_group(std::uint32_t group_id,
                             const RequestPtr& winner) {
  FanoutGroup& g = group_slabs_[group_id];
  g.done = true;
  if (winner->is_hedge) metrics_.on_hedge_win();
  RequestSample sample;
  sample.is_write = winner->is_write;
  sample.retried = g.attempts_total > g.base_attempts + g.hedges_issued;
  sample.frontend_arrival = g.original_arrival;
  sample.response_latency = engine_.now() - g.original_arrival;
  sample.backend_latency = winner->respond_time - winner->backend_enqueue_time;
  sample.accept_wait = winner->accept_time - winner->pool_enter_time;
  sample.device = winner->device;
  sample.chunks = g.chunks_total;
  sample.attempts = g.attempts_total;
  sample.failovers = g.failovers_total;
  sample.hedges = g.hedges_issued;
  metrics_.on_request_complete(sample);
  // Cancel-on-first-complete: mark every losing live attempt; its queued
  // work unwinds at the next frontend/backend task boundary, and its
  // in-flight disk operation finishes as wasted work (as on real servers).
  for (const RequestPtr& attempt : g.attempts) {
    if (attempt == winner) continue;
    if (attempt->settled || attempt->responded || attempt->timed_out ||
        attempt->failed || attempt->cancelled) {
      continue;  // already terminal (or about to report its own response)
    }
    attempt->cancelled = true;
    settle_attempt(attempt);
    metrics_.on_attempt_cancelled();
    COSM_CHECK(g.outstanding > 1, "cancelled chain was not outstanding");
    --g.outstanding;
  }
  // Drop the group's strong refs; queued backend work keeps losers alive
  // exactly as long as something still processes them.
  g.attempts.clear();
}

void Cluster::record_group_failure(std::uint32_t group_id) {
  // Every chain died before k responses arrived: one failed/timed-out
  // sample for the whole group, spanning all its attempts.
  FanoutGroup& g = group_slabs_[group_id];
  g.done = true;
  bool timed_out = false;
  bool failed = false;
  std::uint32_t device = 0;
  for (const RequestPtr& attempt : g.attempts) {
    timed_out = timed_out || attempt->timed_out;
    failed = failed || attempt->failed;
    device = attempt->device;
  }
  RequestSample sample;
  sample.is_write = false;
  sample.timed_out = timed_out && !failed;
  sample.failed = failed;
  sample.retried = g.attempts_total > g.base_attempts + g.hedges_issued;
  sample.frontend_arrival = g.original_arrival;
  sample.response_latency = engine_.now() - g.original_arrival;
  sample.backend_latency = 0.0;
  sample.accept_wait = 0.0;
  sample.device = device;
  sample.chunks = g.chunks_total;
  sample.attempts = g.attempts_total;
  sample.failovers = g.failovers_total;
  sample.hedges = g.hedges_issued;
  metrics_.on_request_complete(sample);
  g.attempts.clear();
}

void Cluster::group_chain_failed(const RequestPtr& req) {
  const std::uint32_t gid = req->group_id;
  FanoutGroup& g = group(gid);
  if (g.done) {  // lost a race with completion; the chain just winds down
    group_chain_done(gid);
    return;
  }
  if (req->attempt < config_.max_retries) {
    // Per-chain retries stay within the group; the chain remains
    // outstanding while the backoff timer runs.
    engine_.schedule_after_inline(
        backoff_delay(req->attempt),
        [this, next = make_retry_attempt(req)]() mutable {
          dispatch_attempt(std::move(next));
        });
    return;
  }
  if (g.outstanding == 1) {
    // This was the last live chain and the group never reached k
    // responses: the logical request fails as a whole.
    record_group_failure(gid);
  }
  group_chain_done(gid);
}

BackendDevice& Cluster::device(std::uint32_t id) {
  COSM_REQUIRE(id < devices_.size(), "device id out of range");
  return *devices_[id];
}

FrontendProcess& Cluster::frontend(std::uint32_t id) {
  COSM_REQUIRE(id < frontends_.size(), "frontend id out of range");
  return *frontends_[id];
}

void Cluster::on_response_started(const RequestPtr& req) {
  if (req->timed_out || req->failed) return;  // abandoned; work was wasted
  if (req->cancelled) {
    // Cancelled after its response had already started queueing through
    // the device callback — counted with the other late arrivals.
    obs::add(obs::Counter::kSimCancelLateResponses);
    return;
  }
  settle_attempt(req);
  if (req->group_id != kNoGroup) {
    group_response(req);
    return;
  }
  RequestSample sample;
  sample.is_write = req->is_write;
  sample.retried = req->attempt > 0;
  sample.frontend_arrival = req->original_arrival;
  sample.response_latency = engine_.now() - req->original_arrival;
  sample.backend_latency = req->respond_time - req->backend_enqueue_time;
  sample.accept_wait = req->accept_time - req->pool_enter_time;
  sample.device = req->device;
  sample.chunks = req->chunks_total;
  sample.attempts = req->attempt + 1;
  sample.failovers = req->failover_count;
  metrics_.on_request_complete(sample);
}

}  // namespace cosm::sim
