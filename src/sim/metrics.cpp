#include "sim/metrics.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "obs/obs.hpp"

namespace cosm::sim {

namespace {
std::size_t kind_index(AccessKind kind) {
  return static_cast<std::size_t>(kind);
}
}  // namespace

SimMetrics::SimMetrics(std::uint32_t device_count)
    : devices_(device_count), op_samples_(device_count) {
  COSM_REQUIRE(device_count > 0, "metrics need at least one device");
}

void SimMetrics::enable_streaming(const StreamingConfig& config) {
  COSM_REQUIRE(completed_ == 0,
               "enable_streaming must precede the first completed request");
  latency_hist_.emplace(config.hist_min, config.hist_max,
                        config.buckets_per_decade);
  keep_request_samples = false;
}

void SimMetrics::reserve_request_samples(std::size_t count) {
  if (keep_request_samples) requests_.reserve(count);
}

void SimMetrics::on_request_complete(const RequestSample& sample) {
  COSM_REQUIRE(sample.device < devices_.size(), "device id out of range");
  ++completed_;
  if (obs::enabled()) {
    obs::add(obs::Counter::kSimRequests);
    if (sample.failed) obs::add(obs::Counter::kSimFailures);
    if (sample.timed_out && !sample.failed) {
      obs::add(obs::Counter::kSimTimeouts);
    }
  }
  if (sample.failed) {
    ++failed_;
  } else if (sample.timed_out) {
    ++timeouts_;
  } else if (sample.retried) {
    ++retried_ok_;
  }
  ++devices_[sample.device].requests;
  if (sample.frontend_arrival >= sample_start_time) {
    if (!sample.timed_out && !sample.failed) {
      ++latency_count_;
      latency_moments_.add(sample.response_latency);
      if (latency_hist_) latency_hist_->add(sample.response_latency);
    }
    if (keep_request_samples) requests_.push_back(sample);
  }
}

stats::QuantileEstimate SimMetrics::latency_quantile_checked(double p) const {
  COSM_REQUIRE(p >= 0.0 && p <= 1.0, "quantile p must be in [0, 1]");
  if (latency_hist_) return latency_hist_->quantile_checked(p);
  return {latency_quantile(p), stats::QuantileBound::kExact};
}

double SimMetrics::latency_quantile(double p) const {
  COSM_REQUIRE(p >= 0.0 && p <= 1.0, "quantile p must be in [0, 1]");
  if (latency_hist_) return latency_hist_->quantile(p);
  quantile_scratch_.clear();
  quantile_scratch_.reserve(requests_.size());
  for (const RequestSample& sample : requests_) {
    if (!sample.timed_out && !sample.failed) {
      quantile_scratch_.push_back(sample.response_latency);
    }
  }
  if (quantile_scratch_.empty()) return 0.0;
  const double pos = p * static_cast<double>(quantile_scratch_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto nth = quantile_scratch_.begin() +
                   static_cast<std::ptrdiff_t>(lo);
  std::nth_element(quantile_scratch_.begin(), nth, quantile_scratch_.end());
  const double lo_value = *nth;
  if (lo + 1 >= quantile_scratch_.size()) return lo_value;
  // The interpolation partner is the minimum of the right partition.
  const double hi_value =
      *std::min_element(nth + 1, quantile_scratch_.end());
  return lo_value + (pos - static_cast<double>(lo)) * (hi_value - lo_value);
}

double SimMetrics::latency_fraction_below(double threshold) const {
  if (latency_hist_) return latency_hist_->fraction_below(threshold);
  std::uint64_t below = 0;
  std::uint64_t total = 0;
  for (const RequestSample& sample : requests_) {
    if (sample.timed_out || sample.failed) continue;
    ++total;
    if (sample.response_latency <= threshold) ++below;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(below) / static_cast<double>(total);
}

void SimMetrics::on_attempt(std::uint32_t device, bool is_retry,
                            bool is_failover) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  ++devices_[device].attempts;
  if (is_retry) {
    ++retry_attempts_;
    obs::add(obs::Counter::kSimRetryAttempts);
  }
  if (is_failover) {
    ++failover_attempts_;
    obs::add(obs::Counter::kSimFailoverAttempts);
  }
}

void SimMetrics::on_hedge_issued() {
  ++hedge_attempts_;
  obs::add(obs::Counter::kSimHedgeIssued);
}

void SimMetrics::on_hedge_win() {
  ++hedge_wins_;
  obs::add(obs::Counter::kSimHedgeWins);
}

void SimMetrics::on_fanout_group() {
  ++fanout_groups_;
  obs::add(obs::Counter::kSimFanoutGroups);
}

void SimMetrics::on_attempt_cancelled() {
  ++cancelled_attempts_;
  obs::add(obs::Counter::kSimCancelAttempts);
}

void SimMetrics::merge_from(const SimMetrics& other,
                            std::uint32_t device_offset) {
  COSM_REQUIRE(static_cast<std::size_t>(device_offset) +
                       other.devices_.size() <=
                   devices_.size(),
               "merge_from device range exceeds this metrics' device count");
  COSM_REQUIRE(streaming() == other.streaming(),
               "merge_from requires both sides in the same latency mode");
  for (std::size_t d = 0; d < other.devices_.size(); ++d) {
    DeviceCounters& dst = devices_[device_offset + d];
    const DeviceCounters& src = other.devices_[d];
    dst.requests += src.requests;
    dst.attempts += src.attempts;
    dst.data_reads += src.data_reads;
    for (std::size_t k = 0; k < kAccessKindCount; ++k) {
      dst.accesses[k] += src.accesses[k];
      dst.misses[k] += src.misses[k];
      dst.disk_service_sum[k] += src.disk_service_sum[k];
      dst.disk_ops[k] += src.disk_ops[k];
    }
    dst.tier_reads += src.tier_reads;
    dst.tier_hits += src.tier_hits;
    dst.tier_promotions += src.tier_promotions;
    dst.tier_writebacks += src.tier_writebacks;
    dst.tier_drain_writebacks += src.tier_drain_writebacks;
    dst.tier_ops += src.tier_ops;
    dst.tier_service_sum += src.tier_service_sum;
    for (std::size_t k = 0; k < kAccessKindCount; ++k) {
      auto& dst_ops = op_samples_[device_offset + d][k];
      const auto& src_ops = other.op_samples_[d][k];
      dst_ops.insert(dst_ops.end(), src_ops.begin(), src_ops.end());
    }
  }
  if (keep_request_samples) {
    requests_.reserve(requests_.size() + other.requests_.size());
    for (RequestSample sample : other.requests_) {
      sample.device += device_offset;
      requests_.push_back(sample);
    }
  }
  if (latency_hist_) latency_hist_->merge(*other.latency_hist_);
  latency_moments_.merge(other.latency_moments_);
  latency_count_ += other.latency_count_;
  completed_ += other.completed_;
  timeouts_ += other.timeouts_;
  failed_ += other.failed_;
  retried_ok_ += other.retried_ok_;
  retry_attempts_ += other.retry_attempts_;
  failover_attempts_ += other.failover_attempts_;
  hedge_attempts_ += other.hedge_attempts_;
  hedge_wins_ += other.hedge_wins_;
  fanout_groups_ += other.fanout_groups_;
  cancelled_attempts_ += other.cancelled_attempts_;
}

OutcomeCounts SimMetrics::outcomes() const {
  OutcomeCounts counts;
  counts.timed_out = timeouts_;
  counts.failed = failed_;
  counts.ok_retried = retried_ok_;
  counts.ok = completed_ - timeouts_ - failed_ - retried_ok_;
  counts.retry_attempts = retry_attempts_;
  counts.failover_attempts = failover_attempts_;
  counts.hedge_attempts = hedge_attempts_;
  counts.hedge_wins = hedge_wins_;
  counts.fanout_groups = fanout_groups_;
  counts.cancelled_attempts = cancelled_attempts_;
  return counts;
}

void SimMetrics::on_cache_access(std::uint32_t device, AccessKind kind,
                                 bool hit) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  ++devices_[device].accesses[kind_index(kind)];
  if (!hit) ++devices_[device].misses[kind_index(kind)];
}

void SimMetrics::on_tier_read(std::uint32_t device, bool hit) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  ++devices_[device].tier_reads;
  if (hit) ++devices_[device].tier_hits;
  if (obs::enabled()) {
    obs::add(obs::Counter::kSimTierReads);
    if (hit) obs::add(obs::Counter::kSimTierHits);
  }
}

void SimMetrics::on_tier_op(std::uint32_t device, double service_time) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  ++devices_[device].tier_ops;
  devices_[device].tier_service_sum += service_time;
}

void SimMetrics::on_tier_promotion(std::uint32_t device) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  ++devices_[device].tier_promotions;
  obs::add(obs::Counter::kSimTierPromotions);
}

void SimMetrics::on_tier_writeback(std::uint32_t device, bool drain) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  if (drain) {
    ++devices_[device].tier_drain_writebacks;
    obs::add(obs::Counter::kSimTierDrainWritebacks);
  } else {
    ++devices_[device].tier_writebacks;
    obs::add(obs::Counter::kSimTierWritebacks);
  }
}

void SimMetrics::on_disk_op(std::uint32_t device, AccessKind kind,
                            double service_time) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  devices_[device].disk_service_sum[kind_index(kind)] += service_time;
  ++devices_[device].disk_ops[kind_index(kind)];
}

void SimMetrics::on_data_read(std::uint32_t device) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  ++devices_[device].data_reads;
}

void SimMetrics::on_operation_latency(std::uint32_t device, AccessKind kind,
                                      double latency) {
  if (!keep_operation_samples) return;
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  op_samples_[device][kind_index(kind)].push_back(latency);
}

const DeviceCounters& SimMetrics::device(std::uint32_t id) const {
  COSM_REQUIRE(id < devices_.size(), "device id out of range");
  return devices_[id];
}

double SimMetrics::miss_ratio(std::uint32_t device, AccessKind kind) const {
  const DeviceCounters& counters = this->device(device);
  const std::uint64_t accesses = counters.accesses[kind_index(kind)];
  if (accesses == 0) return 0.0;
  return static_cast<double>(counters.misses[kind_index(kind)]) /
         static_cast<double>(accesses);
}

double SimMetrics::mean_disk_service(std::uint32_t device,
                                     AccessKind kind) const {
  const DeviceCounters& counters = this->device(device);
  const std::uint64_t ops = counters.disk_ops[kind_index(kind)];
  if (ops == 0) return 0.0;
  return counters.disk_service_sum[kind_index(kind)] /
         static_cast<double>(ops);
}

const std::vector<double>& SimMetrics::operation_samples(
    std::uint32_t device, AccessKind kind) const {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  return op_samples_[device][kind_index(kind)];
}

}  // namespace cosm::sim
