#include "sim/metrics.hpp"

#include "common/require.hpp"

namespace cosm::sim {

namespace {
std::size_t kind_index(AccessKind kind) {
  return static_cast<std::size_t>(kind);
}
}  // namespace

SimMetrics::SimMetrics(std::uint32_t device_count)
    : devices_(device_count), op_samples_(device_count) {
  COSM_REQUIRE(device_count > 0, "metrics need at least one device");
}

void SimMetrics::on_request_complete(const RequestSample& sample) {
  COSM_REQUIRE(sample.device < devices_.size(), "device id out of range");
  ++completed_;
  if (sample.failed) {
    ++failed_;
  } else if (sample.timed_out) {
    ++timeouts_;
  } else if (sample.attempts > 1) {
    ++retried_ok_;
  }
  ++devices_[sample.device].requests;
  if (keep_request_samples &&
      sample.frontend_arrival >= sample_start_time) {
    requests_.push_back(sample);
  }
}

void SimMetrics::on_attempt(std::uint32_t device, bool is_retry,
                            bool is_failover) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  ++devices_[device].attempts;
  if (is_retry) ++retry_attempts_;
  if (is_failover) ++failover_attempts_;
}

OutcomeCounts SimMetrics::outcomes() const {
  OutcomeCounts counts;
  counts.timed_out = timeouts_;
  counts.failed = failed_;
  counts.ok_retried = retried_ok_;
  counts.ok = completed_ - timeouts_ - failed_ - retried_ok_;
  counts.retry_attempts = retry_attempts_;
  counts.failover_attempts = failover_attempts_;
  return counts;
}

void SimMetrics::on_cache_access(std::uint32_t device, AccessKind kind,
                                 bool hit) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  ++devices_[device].accesses[kind_index(kind)];
  if (!hit) ++devices_[device].misses[kind_index(kind)];
}

void SimMetrics::on_disk_op(std::uint32_t device, AccessKind kind,
                            double service_time) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  devices_[device].disk_service_sum[kind_index(kind)] += service_time;
  ++devices_[device].disk_ops[kind_index(kind)];
}

void SimMetrics::on_data_read(std::uint32_t device) {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  ++devices_[device].data_reads;
}

void SimMetrics::on_operation_latency(std::uint32_t device, AccessKind kind,
                                      double latency) {
  if (!keep_operation_samples) return;
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  op_samples_[device][kind_index(kind)].push_back(latency);
}

const DeviceCounters& SimMetrics::device(std::uint32_t id) const {
  COSM_REQUIRE(id < devices_.size(), "device id out of range");
  return devices_[id];
}

double SimMetrics::miss_ratio(std::uint32_t device, AccessKind kind) const {
  const DeviceCounters& counters = this->device(device);
  const std::uint64_t accesses = counters.accesses[kind_index(kind)];
  if (accesses == 0) return 0.0;
  return static_cast<double>(counters.misses[kind_index(kind)]) /
         static_cast<double>(accesses);
}

double SimMetrics::mean_disk_service(std::uint32_t device,
                                     AccessKind kind) const {
  const DeviceCounters& counters = this->device(device);
  const std::uint64_t ops = counters.disk_ops[kind_index(kind)];
  if (ops == 0) return 0.0;
  return counters.disk_service_sum[kind_index(kind)] /
         static_cast<double>(ops);
}

const std::vector<double>& SimMetrics::operation_samples(
    std::uint32_t device, AccessKind kind) const {
  COSM_REQUIRE(device < devices_.size(), "device id out of range");
  return op_samples_[device][kind_index(kind)];
}

}  // namespace cosm::sim
