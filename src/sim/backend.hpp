// Backend tier: storage devices with event-driven processes.
//
// Faithful to the mechanics the paper models rather than to the model
// itself (DESIGN.md §5.2):
//
//  * Each device has one FCFS disk queue shared by its N_be processes and
//    a connection pool in front of them.
//  * A process runs an event loop over a FCFS task queue.  Tasks:
//      Accept       — takes one connection from the pool (kAcceptOne) or
//                     drains it (kBatchDrain; Fig. 4 shows both pooled
//                     connections accepted together), assigning the
//                     request(s) to this process (connection affinity —
//                     the S16 load-imbalance mechanism the paper calls
//                     out).  With defer_accepts, accepts only run when no
//                     request work is ready, which is what makes W_a an
//                     additive latency term (Sec. III-C).
//      StartRequest — parse, index lookup, metadata read, first data
//                     chunk, executed back to back (the event loop only
//                     yields at network I/O); disk misses block the whole
//                     process (Fig. 2).  Then the response starts and the
//                     chunk transmission proceeds asynchronously.
//      NextChunk    — enqueued when the previous chunk's transmission
//                     completes; reads one chunk, restarts transmission.
//    Interleaving of different requests' operations is *emergent* from
//    this scheduling, exactly the behaviour the union operation abstracts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/disk.hpp"
#include "sim/engine.hpp"
#include "sim/fifo_ring.hpp"
#include "sim/metrics.hpp"
#include "sim/request.hpp"
#include "sim/tier.hpp"

namespace cosm::sim {

class BackendDevice;

class BackendProcess {
 public:
  BackendProcess(Engine& engine, const ClusterConfig& config,
                 SimMetrics& metrics, BackendDevice& device, cosm::Rng rng);

  // Queue an accept task.  With `coalesce` (batch-drain strategy) at most
  // one accept op is pending per process; without it (accept-one) every
  // connection arrival contributes its own accept op, so each connection
  // independently traverses the op queue — the mechanism behind the
  // paper's additive W_a.
  void signal_accept(bool coalesce);
  void enqueue_start_request(RequestPtr req);

  // Fault injection: crash() kills the process — queued request work fails
  // (reported through the device so the cluster can retry/fail over), and
  // in-flight continuations recognize the epoch bump and abandon
  // themselves.  restart() brings the process back and lets it look at the
  // device's connection pool again.
  void crash();
  void restart();
  bool crashed() const { return crashed_; }

  std::size_t queue_depth() const {
    return tasks_.size() + accept_tasks_.size() + (busy_ ? 1 : 0);
  }
  std::uint64_t requests_started() const { return requests_started_; }

 private:
  struct Task {
    enum class Kind { kAccept, kStartRequest, kNextChunk, kWriteChunk };
    Kind kind;
    RequestPtr req;
  };

  void enqueue(Task task);
  void start_next();
  void execute(Task task);
  void run_accept();
  // Stamps the accept time and schedules the accepted connection's HTTP
  // request into this process's op queue after the handshake round-trip.
  void accept_connection(RequestPtr req, double now);
  void run_start_request(RequestPtr req);
  void run_next_chunk(RequestPtr req);
  // Write path (extension): parse, then chunk-by-chunk receive + blocking
  // disk write, then a blocking commit (fsync/rename/xattr) and the 201
  // response.
  void run_start_write(RequestPtr req);
  void run_write_chunk(RequestPtr req);
  void schedule_chunk_arrival(RequestPtr req);

  // Performs one index/meta/data access: cache lookup, disk on miss
  // (blocking this process), then `cont`.  Templated on the continuation
  // (every caller passes a small [this, req] lambda): the disk completion
  // captures it as its concrete type, so invoking it is a direct —
  // inlinable — call, and the capture block stays small enough for the
  // whole completion to live inside CompletionFn's inline storage.
  // Defined after BackendDevice (it needs the device's cache and disk).
  template <typename Cont>
  void access(AccessKind kind, const RequestPtr& req,
              std::uint32_t chunk_index, Cont cont);
  // Reads the due chunk, then starts its transmission and finishes the
  // task.
  void read_chunk_then_transmit(RequestPtr req);
  void on_chunk_transmitted(RequestPtr req);
  double chunk_transfer_time(const Request& req,
                             std::uint32_t chunk_index) const;

  Engine& engine_;
  const ClusterConfig& config_;
  SimMetrics& metrics_;
  BackendDevice& device_;
  cosm::Rng rng_;
  FifoRing<Task> tasks_;
  // Low-priority accept queue used when config_.defer_accepts is set;
  // drained only when tasks_ is empty.
  FifoRing<Task> accept_tasks_;
  bool busy_ = false;
  bool accept_queued_ = false;
  bool crashed_ = false;
  // Bumped on crash; every scheduled continuation carries the epoch it was
  // created under and abandons itself (failing its request) when stale.
  std::uint64_t epoch_ = 0;
  std::uint64_t requests_started_ = 0;
  // Reusable batch-drain scratch: run_accept() used to construct (and
  // heap-allocate) a fresh deque per accept op — one per pool signal, most
  // of them EAGAIN.  Capacity persists across accepts.
  std::vector<RequestPtr> accept_scratch_;
};

class BackendDevice {
 public:
  using ResponseStartedFn = std::function<void(const RequestPtr&)>;
  using RequestFailedFn = std::function<void(const RequestPtr&)>;

  BackendDevice(Engine& engine, const ClusterConfig& config,
                SimMetrics& metrics, std::uint32_t device_id,
                cosm::Rng& seed_source);

  // A TCP connect from the frontend tier reached this device.  Refused
  // (the request fails) while the device is offline.
  void connection_arrived(RequestPtr req);

  // Called by a process executing accept(): appends the whole pool (FIFO
  // order) to `out` — caller-owned scratch, so repeated accepts reuse its
  // capacity (kBatchDrain) ...
  void drain_pool(std::vector<RequestPtr>& out);
  // ... or just the oldest connection (kAcceptOne); null when empty.
  RequestPtr take_one_from_pool();

  // Cluster wiring: invoked when a request's response starts.
  void set_response_started_callback(ResponseStartedFn fn);
  void notify_response_started(const RequestPtr& req);

  // Cluster wiring for fault injection: invoked (at most once per attempt)
  // when an attempt dies before its response started.  Safe to call for
  // any request; responded / timed-out / already-failed attempts are
  // ignored.
  void set_request_failed_callback(RequestFailedFn fn);
  void notify_request_failed(const RequestPtr& req);

  // Fault injection.  Going offline crashes every process, fails the
  // connection pool and the disk's queued/in-flight operations; coming
  // back online restarts them.  crash_processes(n) / restart_processes(n)
  // model a partial capacity drop.
  void set_online(bool online);
  bool online() const { return online_; }
  void crash_processes(std::uint32_t count);
  void restart_processes(std::uint32_t count);

  std::uint32_t id() const { return id_; }
  Disk& disk() { return disk_; }
  CacheBank& cache() { return cache_; }
  // The SSD cache tier; nullptr when ClusterConfig::tier is disabled.
  TierDevice* tier() { return tier_.get(); }
  std::size_t pool_depth() const { return pool_.size(); }
  const std::vector<std::unique_ptr<BackendProcess>>& processes() const {
    return processes_;
  }

 private:
  Engine& engine_;
  const ClusterConfig& config_;
  std::uint32_t id_;
  Disk disk_;
  CacheBank cache_;
  // Constructed only when the tier is enabled, AFTER disk_ forks its RNG
  // and before the processes fork theirs — disabled runs draw the exact
  // legacy fork sequence and stay bit-identical.
  std::unique_ptr<TierDevice> tier_;
  FifoRing<RequestPtr> pool_;
  std::vector<std::unique_ptr<BackendProcess>> processes_;
  std::size_t next_wake_offset_ = 0;
  bool online_ = true;
  ResponseStartedFn response_started_;
  RequestFailedFn request_failed_;
};

template <typename Cont>
void BackendProcess::access(AccessKind kind, const RequestPtr& req,
                            std::uint32_t chunk_index, Cont cont) {
  const bool hit =
      device_.cache().lookup(kind, req->object_id, chunk_index, rng_);
  metrics_.on_cache_access(device_.id(), kind, hit);
  if (kind == AccessKind::kData) metrics_.on_data_read(device_.id());
  if (hit) {
    // Memory latency is approximated as zero, as in the model.
    metrics_.on_operation_latency(device_.id(), kind, 0.0);
    cont();
    return;
  }
  const double start = engine_.now();
  if (kind == AccessKind::kData && device_.tier() != nullptr) {
    // Two-tier data path: serve the page-cache miss from the SSD when
    // the chunk is resident, fall through to the capacity disk (and
    // promote afterwards) otherwise.  Index/meta always go to the
    // capacity disk.  The hit/miss decision happens now; the completion
    // only carries the verdict, keeping it inside inline storage.
    const bool tier_hit =
        device_.tier()->lookup_for_read(req->object_id, chunk_index);
    auto completion =
        [this, req = req, chunk_index, cont = std::move(cont), start,
         tier_hit, epoch = epoch_](double service, bool ok) mutable {
          if (epoch != epoch_) {
            device_.notify_request_failed(req);
            return;
          }
          if (!ok) {
            device_.notify_request_failed(req);
            start_next();
            return;
          }
          if (tier_hit) {
            metrics_.on_tier_op(device_.id(), service);
          } else {
            metrics_.on_disk_op(device_.id(), AccessKind::kData, service);
          }
          metrics_.on_operation_latency(device_.id(), AccessKind::kData,
                                        engine_.now() - start);
          device_.cache().fill(AccessKind::kData, req->object_id,
                               chunk_index);
          if (!tier_hit) {
            device_.tier()->promoted_after_read(req->object_id,
                                                chunk_index);
          }
          cont();
        };
    static_assert(Disk::CompletionFn::fits_inline_v<decltype(completion)>,
                  "the tiered data-read completion must stay inside "
                  "CompletionFn's inline storage");
    device_.tier()->submit_read(tier_hit, std::move(completion));
    return;
  }
  // `req = req`: a plain [req] capture from this const reference would make
  // a *const* member, which the closure's move constructor can only COPY —
  // RequestPtr refcount churn on every SmallFn relocation, and (worse) a
  // potentially-throwing member op that silently disqualified the closure
  // from CompletionFn's inline storage.  The init-capture's member is
  // mutable, so the closure stays nothrow-movable and inline.
  auto completion =
      [this, kind, req = req, chunk_index, cont = std::move(cont), start,
       epoch = epoch_](double service, bool ok) mutable {
        if (epoch != epoch_) {  // process crashed while blocked on the disk
          device_.notify_request_failed(req);
          return;
        }
        if (!ok) {  // the disk went away under us
          device_.notify_request_failed(req);
          start_next();
          return;
        }
        metrics_.on_disk_op(device_.id(), kind, service);
        metrics_.on_operation_latency(device_.id(), kind,
                                      engine_.now() - start);
        device_.cache().fill(kind, req->object_id, chunk_index);
        cont();
      };
  static_assert(Disk::CompletionFn::fits_inline_v<decltype(completion)>,
                "the hottest disk completion in the simulator must stay "
                "inside CompletionFn's inline storage");
  device_.disk().submit(kind, std::move(completion));
}

}  // namespace cosm::sim
