#include "sim/tier.hpp"

#include "common/require.hpp"
#include "sim/metrics.hpp"

namespace cosm::sim {

// ------------------------------ TierResidency ----------------------------

TierResidency::TierResidency(std::size_t capacity) : capacity_(capacity) {}

bool TierResidency::access(std::uint64_t key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  order_.splice(order_.begin(), order_, it->second);
  return true;
}

std::optional<TierResidency::Evicted> TierResidency::insert(std::uint64_t key,
                                                            bool dirty) {
  if (capacity_ == 0) return std::nullopt;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    if (dirty && !it->second->dirty) {
      it->second->dirty = true;
      ++dirty_count_;
    }
    return std::nullopt;
  }
  std::optional<Evicted> evicted;
  if (map_.size() >= capacity_) {
    const Entry& victim = order_.back();
    evicted = Evicted{victim.key, victim.dirty};
    if (victim.dirty) --dirty_count_;
    map_.erase(victim.key);
    order_.pop_back();
  }
  order_.push_front(Entry{key, dirty});
  map_[key] = order_.begin();
  if (dirty) ++dirty_count_;
  return evicted;
}

bool TierResidency::contains(std::uint64_t key) const {
  return map_.find(key) != map_.end();
}

bool TierResidency::dirty(std::uint64_t key) const {
  const auto it = map_.find(key);
  return it != map_.end() && it->second->dirty;
}

std::vector<std::uint64_t> TierResidency::take_dirty() {
  std::vector<std::uint64_t> keys;
  keys.reserve(dirty_count_);
  // Oldest first: reverse iteration walks LRU -> MRU.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    if (it->dirty) {
      it->dirty = false;
      keys.push_back(it->key);
    }
  }
  dirty_count_ = 0;
  return keys;
}

// -------------------------------- TierDevice -----------------------------

namespace {

DiskProfile ssd_disk_profile(const TierConfig& config) {
  // The SSD serves only data reads and install/write-back writes; the
  // index/meta/commit slots are filled to satisfy Disk's invariant but
  // never drawn from.
  return DiskProfile{config.read_service, config.read_service,
                     config.read_service, config.write_service,
                     config.write_service};
}

}  // namespace

TierDevice::TierDevice(Engine& engine, const TierConfig& config,
                       Disk& capacity_disk, SimMetrics& metrics,
                       std::uint32_t device_id, cosm::Rng rng)
    : config_(config),
      capacity_disk_(capacity_disk),
      metrics_(metrics),
      device_id_(device_id),
      ssd_(engine, ssd_disk_profile(config), rng),
      residency_(config.capacity_chunks) {
  COSM_REQUIRE(config.enabled, "TierDevice requires an enabled TierConfig");
  COSM_REQUIRE(config.capacity_chunks >= 1,
               "tier capacity must be >= 1 chunk");
  COSM_REQUIRE(config.read_service != nullptr &&
                   config.write_service != nullptr,
               "tier service distributions must be set (finalize())");
}

bool TierDevice::lookup_for_read(std::uint64_t object_id,
                                 std::uint32_t chunk_index) {
  const bool hit = residency_.access(data_chunk_key(object_id, chunk_index));
  metrics_.on_tier_read(device_id_, hit);
  return hit;
}

void TierDevice::promoted_after_read(std::uint64_t object_id,
                                     std::uint32_t chunk_index) {
  if (!config_.promote_on_read) return;
  install(data_chunk_key(object_id, chunk_index), /*dirty=*/false);
  metrics_.on_tier_promotion(device_id_);
  // The install write occupies the SSD queue but nothing waits on it.
  ssd_.submit(AccessKind::kWrite, [this](double service, bool ok) {
    if (ok) metrics_.on_tier_op(device_id_, service);
  });
}

void TierDevice::wrote_chunk(std::uint64_t object_id,
                             std::uint32_t chunk_index) {
  const std::uint64_t key = data_chunk_key(object_id, chunk_index);
  if (write_back()) {
    // The blocking SSD write already completed; remember the block is
    // ahead of the capacity disk until demotion flushes it.
    install(key, /*dirty=*/true);
    return;
  }
  // Write-through: the capacity disk holds the chunk; install a clean
  // SSD copy asynchronously so subsequent reads hit the tier.
  install(key, /*dirty=*/false);
  ssd_.submit(AccessKind::kWrite, [this](double service, bool ok) {
    if (ok) metrics_.on_tier_op(device_id_, service);
  });
}

void TierDevice::set_online(bool online) {
  ssd_.set_online(online);
  if (!online) return;
  // Recovery drain: every dirty block goes back to the (already online)
  // capacity disk, oldest first.  Blocks stay resident and clean.
  for (const std::uint64_t key : residency_.take_dirty()) {
    (void)key;
    demote(/*drain=*/true);
  }
}

void TierDevice::install(std::uint64_t key, bool dirty) {
  if (const auto evicted = residency_.insert(key, dirty)) {
    if (evicted->dirty) demote(/*drain=*/false);
  }
}

void TierDevice::demote(bool drain) {
  metrics_.on_tier_writeback(device_id_, drain);
  capacity_disk_.submit(AccessKind::kWrite, [this](double service, bool ok) {
    if (ok) metrics_.on_disk_op(device_id_, AccessKind::kWrite, service);
  });
}

}  // namespace cosm::sim
