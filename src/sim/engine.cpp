#include "sim/engine.hpp"

#include "common/require.hpp"

namespace cosm::sim {

void Engine::schedule_at(double time, EventCallback fn) {
  COSM_REQUIRE(time >= now_, "cannot schedule events in the past");
  COSM_REQUIRE(fn != nullptr, "event callback must be callable");
  calendar_.push({time, next_seq_++, std::move(fn)});
}

void Engine::schedule_after(double delay, EventCallback fn) {
  COSM_REQUIRE(delay >= 0, "event delay must be non-negative");
  schedule_at(now_ + delay, std::move(fn));
}

bool Engine::step() {
  if (calendar_.empty()) return false;
  // priority_queue::top is const; the callback must be moved out before
  // pop, so copy the handle via const_cast-free extraction.
  Event event = calendar_.top();
  calendar_.pop();
  now_ = event.time;
  ++processed_;
  event.fn();
  return true;
}

void Engine::run_until(double end_time) {
  COSM_REQUIRE(end_time >= now_, "end time precedes current time");
  while (!calendar_.empty() && calendar_.top().time <= end_time) {
    step();
  }
  now_ = end_time;
}

void Engine::run_all() {
  while (step()) {
  }
}

}  // namespace cosm::sim
