#include "sim/engine.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace cosm::sim {

void Engine::reserve(std::size_t events) {
  // The arena is a deque (stable addresses) and grows chunk-wise on its
  // own; the contiguous structures are worth pre-sizing.
  heap_.reserve(events);
  free_slots_.reserve(events);
}

// Classic hole-based sifts: the node being placed rides in `node`, holes
// move instead of swapping, so each level costs one 24-byte store.

void Engine::sift_up(std::size_t index, Node node) {
  while (index > 0) {
    const std::size_t parent = (index - 1) / kArity;
    if (!earlier(node, heap_[parent])) break;
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = node;
}

void Engine::sift_down(std::size_t index, Node node) {
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first_child = index * kArity + 1;
    if (first_child >= size) break;
    const std::size_t last_child = std::min(first_child + kArity, size);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], node)) break;
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = node;
}

// Instrumentation sits on the run_* entry points, never inside step():
// one span and one counter delta per drain, zero work per event.

void Engine::run_until(double end_time) {
  COSM_REQUIRE(end_time >= now_, "end time precedes current time");
  obs::Span span("sim.run_until");
  const std::uint64_t before = processed_;
  while (immediate_head_ < immediate_.size() ||
         (!heap_.empty() && heap_.front().time() <= end_time) ||
         (monotone_head_ < monotone_.size() &&
          monotone_[monotone_head_].time() <= end_time)) {
    step();
  }
  now_ = end_time;
  obs::add(obs::Counter::kSimEvents, processed_ - before);
}

void Engine::run_all() {
  obs::Span span("sim.run_all");
  const std::uint64_t before = processed_;
  while (step()) {
  }
  obs::add(obs::Counter::kSimEvents, processed_ - before);
}

}  // namespace cosm::sim
