#include "sim/shard.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <memory>
#include <thread>
#include <utility>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "sim/cluster.hpp"
#include "workload/arrivals.hpp"

namespace cosm::sim {

ShardTopology ShardTopology::build(const ClusterConfig& config) {
  ShardTopology topo;
  topo.shards = config.shards;
  const auto split = [](std::uint32_t total, std::uint32_t parts) {
    std::vector<std::uint32_t> offsets(parts + 1, 0);
    const std::uint32_t base = total / parts;
    const std::uint32_t extra = total % parts;
    for (std::uint32_t s = 0; s < parts; ++s) {
      offsets[s + 1] = offsets[s] + base + (s < extra ? 1 : 0);
    }
    return offsets;
  };
  topo.device_offsets = split(config.device_count, config.shards);
  topo.frontend_offsets = split(config.frontend_processes, config.shards);
  return topo;
}

std::uint32_t ShardTopology::min_devices() const {
  std::uint32_t smallest = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t s = 0; s < shards; ++s) {
    smallest = std::min(smallest, devices_of(s));
  }
  return smallest;
}

std::uint32_t shard_of_object(std::uint64_t object_id,
                              std::uint64_t route_seed,
                              std::uint32_t shards) {
  cosm::SplitMix64 mixer(object_id ^ route_seed);
  return static_cast<std::uint32_t>(mixer.next() % shards);
}

double shard_window_length(const ClusterConfig& config) {
  // 2.5 ms floor: at that width a simulated second costs 400 windows (800
  // barrier crossings), which profiling puts well under one window's event
  // work on the scaled scenarios — while still shifting the arrival
  // profile by an amount far below any phase segment duration.
  constexpr double kWindowFloor = 2.5e-3;
  if (config.shard_window > 0) return config.shard_window;
  return std::max(config.network_latency, kWindowFloor);
}

namespace {

// Per-shard seed lane: shard s derives cluster/placement/source seeds at
// base + 16s + {0, 2, 3}, so shard 0 reuses the unsharded derivation and
// lanes never collide for shards <= 64 (the validate() cap).  The object
// router takes the otherwise-unused +7 lane.
constexpr std::uint64_t kShardSeedStride = 16;
constexpr std::uint64_t kRouteSeedOffset = 7;

// Centralized barrier: counter + generation, acquire/release on the
// generation so everything a shard wrote before arriving (mailboxes, its
// engine state) is visible to every shard after release.  Bounded spin
// then yield — shard workers outnumbering cores (the CI case) must not
// burn a scheduling quantum busy-waiting.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {}

  void arrive_and_wait() {
    if (!obs::enabled()) {
      arrive();
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    arrive();
    const auto stop = std::chrono::steady_clock::now();
    obs::add(obs::Counter::kSimShardBarrierNanos,
             static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                      start)
                     .count()));
  }

 private:
  void arrive() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
    } else {
      int spins = 0;
      while (generation_.load(std::memory_order_acquire) == gen) {
        if (++spins >= 64) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  const std::uint32_t parties_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

// One generated arrival, possibly crossing a shard boundary.  All RNG
// draws happen on the SENDER (one uniform_index for the replica pick plus
// an optional bernoulli for the write bit, mirroring
// OpenLoopSource::fire), but only the drawn index travels: the owner
// re-derives the replica list from its own ring at submission time, so
// the mailbox record stays a small POD and the submission callback fits
// EventCallback's inline storage.
struct ShardArrival {
  double submit_time = 0.0;   // t_gen + window, strictly beyond the fence
  std::uint64_t object_id = 0;
  std::uint32_t primary = 0;  // replica index drawn in the owner's ring
  bool multi = false;         // replica-list path vs single-device path
  bool is_write = false;
};

class ShardSource;

struct Shard {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<workload::Placement> placement;
};

struct ShardedRun {
  const ReplicationPlan* plan = nullptr;
  ShardTopology topo;
  double window = 0.0;
  double horizon = 0.0;
  std::uint64_t route_seed = 0;
  const workload::ObjectCatalog* catalog = nullptr;
  std::vector<Shard> shards;
  std::vector<std::unique_ptr<ShardSource>> sources;
  // Per-(sender, owner) SPSC mailboxes: the sender appends during its
  // window, the owner drains between the two barriers — the phases never
  // overlap, so plain vectors suffice.
  std::vector<std::vector<ShardArrival>> mailboxes;

  std::vector<ShardArrival>& mailbox(std::uint32_t sender,
                                     std::uint32_t owner) {
    return mailboxes[static_cast<std::size_t>(sender) * topo.shards + owner];
  }
};

// Executes one arrival on its owner: resolve the replica pick against the
// owner's ring (the sender only drew the index) and submit.  Runs at
// engine.now() == arrival.submit_time.
void submit_arrival(Cluster& cluster, const workload::Placement& placement,
                    const workload::ObjectCatalog& catalog,
                    const ShardArrival& arrival) {
  const std::uint64_t size = catalog.size_of(arrival.object_id);
  if (arrival.multi) {
    std::vector<std::uint32_t> replicas =
        placement.replicas_of(arrival.object_id);
    std::rotate(replicas.begin(),
                replicas.begin() + static_cast<std::ptrdiff_t>(
                                       arrival.primary),
                replicas.end());
    cluster.submit_request(arrival.object_id, size, std::move(replicas),
                           arrival.is_write);
  } else {
    const auto& ring = placement.replicas_of_partition(
        placement.partition_of(arrival.object_id));
    cluster.submit_request(arrival.object_id, size, ring[arrival.primary],
                           arrival.is_write);
  }
}

// Files an arrival on its owner's calendar: the mailbox drain injects
// (engine quiescent between windows), a shard-local arrival schedules
// mid-window like any other event.
void file_arrival(ShardedRun& run, std::uint32_t owner,
                  const ShardArrival& arrival, bool injected) {
  Cluster* cluster = run.shards[owner].cluster.get();
  const workload::Placement* placement = run.shards[owner].placement.get();
  const workload::ObjectCatalog* catalog = run.catalog;
  auto fire = [cluster, placement, catalog, arrival] {
    submit_arrival(*cluster, *placement, *catalog, arrival);
  };
  if (injected) {
    cluster->engine().inject_at_inline(arrival.submit_time, std::move(fire));
  } else {
    cluster->engine().schedule_at_inline(arrival.submit_time,
                                         std::move(fire));
  }
}

// Open-loop source of one shard: OpenLoopSource's phase walk at
// rate / shards (Poisson splitting: the shards' superposed arrival stream
// is the plan's full Poisson process; only Poisson arrivals shard this
// way, which is all ReplicationPlan generates).  Every arrival resolves
// its owner shard by object hash and is submitted one full window after
// its generation time — the dispatch delay that gives the conservative
// protocol its lookahead.
class ShardSource {
 public:
  ShardSource(ShardedRun& run, std::uint32_t shard, cosm::Rng rng)
      : run_(run),
        shard_(shard),
        segments_(workload::expand_phases(run.plan->phases)),
        rng_(rng),
        write_fraction_(run.plan->write_fraction) {
    COSM_REQUIRE(!segments_.empty(), "phase plan expands to no segments");
    for (auto& segment : segments_) segment.rate /= run.topo.shards;
    const ClusterConfig& config = run.plan->cluster;
    const bool redundancy =
        config.hedge_delay > 0.0 || config.fanout_n > 1 ||
        config.replica_choice != ClusterConfig::ReplicaChoice::kPrimary;
    multi_ = (config.max_retries > 0 && config.failover) || redundancy;
  }

  double horizon() const {
    const auto& last = segments_.back();
    return last.start_time + last.duration;
  }

  double benchmark_start_time() const {
    for (const auto& segment : segments_) {
      if (segment.is_benchmark) return segment.start_time;
    }
    return horizon();
  }

  void start() {
    double expected = 0.0;
    for (const auto& segment : segments_) {
      if (segment.is_benchmark) expected += segment.rate * segment.duration;
    }
    constexpr double kReserveCap = 1 << 24;
    run_.shards[shard_].cluster->metrics().reserve_request_samples(
        static_cast<std::size_t>(std::min(1.1 * expected, kReserveCap)));
    schedule_next(0, segments_.front().start_time);
  }

 private:
  void schedule_next(std::size_t segment_index, double time) {
    while (segment_index < segments_.size()) {
      const auto& segment = segments_[segment_index];
      const double gap = arrivals_.next_gap(segment.rate, rng_);
      const double at = std::max(time, segment.start_time) + gap;
      if (at < segment.start_time + segment.duration) {
        run_.shards[shard_].cluster->engine().schedule_at_inline(
            at, [this, segment_index, at] { fire(segment_index, at); });
        return;
      }
      ++segment_index;
      if (segment_index < segments_.size()) {
        time = segments_[segment_index].start_time;
      }
    }
  }

  void fire(std::size_t segment_index, double generated_at) {
    const workload::ObjectId object = run_.catalog->sample_object(rng_);
    const std::uint32_t owner =
        shard_of_object(object, run_.route_seed, run_.topo.shards);
    const workload::Placement& placement = *run_.shards[owner].placement;
    ShardArrival arrival;
    arrival.submit_time = generated_at + run_.window;
    arrival.object_id = object;
    arrival.multi = multi_;
    // One uniform_index draw either way, exactly like OpenLoopSource: the
    // primary rotation of the replica-list path and choose_replica's pick
    // both reduce to an index into the owner's replica ring.
    arrival.primary = static_cast<std::uint32_t>(
        rng_.uniform_index(placement.replica_count()));
    arrival.is_write =
        write_fraction_ > 0.0 && rng_.bernoulli(write_fraction_);
    if (owner == shard_) {
      file_arrival(run_, owner, arrival, /*injected=*/false);
    } else {
      run_.mailbox(shard_, owner).push_back(arrival);
    }
    schedule_next(segment_index, generated_at);
  }

  ShardedRun& run_;
  const std::uint32_t shard_;
  std::vector<workload::PhaseSegment> segments_;
  cosm::Rng rng_;
  workload::PoissonArrivals arrivals_;
  const double write_fraction_;
  bool multi_ = false;
};

// One window of one shard: run to the fence, with the obs window /
// empty-window (wasted lookahead) accounting gated so the disabled path
// reads no extra state.
void run_window(ShardedRun& run, std::uint32_t shard, double fence) {
  Engine& engine = run.shards[shard].cluster->engine();
  if (!obs::enabled()) {
    engine.run_until(fence);
    return;
  }
  const std::uint64_t before = engine.events_processed();
  engine.run_until(fence);
  obs::add(obs::Counter::kSimShardWindows);
  if (engine.events_processed() == before) {
    obs::add(obs::Counter::kSimShardEmptyWindows);
  }
}

// Drains every mailbox addressed to `owner` in sender order, injecting
// each arrival on the owner's calendar.  Runs between the two window
// barriers (or in the serial round-robin), so no sender is appending.
void drain_inbound(ShardedRun& run, std::uint32_t owner) {
  std::uint64_t delivered = 0;
  for (std::uint32_t sender = 0; sender < run.topo.shards; ++sender) {
    if (sender == owner) continue;
    std::vector<ShardArrival>& box = run.mailbox(sender, owner);
    for (const ShardArrival& arrival : box) {
      file_arrival(run, owner, arrival, /*injected=*/true);
    }
    delivered += box.size();
    box.clear();  // capacity retained for the next window
  }
  if (delivered != 0) {
    obs::add(obs::Counter::kSimShardCrossMessages, delivered);
  }
}

// SPMD body of one shard worker.  Every worker computes the identical
// fence sequence (pure double arithmetic from shared window/horizon), so
// the barriers line up without any coordinator thread.  After the final
// window no source can generate further cross-shard traffic — sources
// are the only producers and their last event precedes the horizon — so
// the post-loop drain is barrier-free.
void run_shard_windows(ShardedRun& run, std::uint32_t shard,
                       SpinBarrier& barrier) {
  double fence = 0.0;
  while (fence < run.horizon) {
    fence = std::min(fence + run.window, run.horizon);
    run_window(run, shard, fence);
    barrier.arrive_and_wait();
    drain_inbound(run, shard);
    barrier.arrive_and_wait();
  }
  run.shards[shard].cluster->engine().run_all();
}

}  // namespace

ReplicationResult run_sharded_replication(const ReplicationPlan& plan,
                                          std::uint64_t seed) {
  obs::Span span("sim.sharded_replication");
  obs::add(obs::Counter::kSimReplications);
  COSM_REQUIRE(plan.cluster.shards > 1,
               "run_sharded_replication needs shards > 1");
  {
    // Trigger the sharding validations (lookahead, shard/device bounds)
    // on the base topology before any sub-config is derived.
    ClusterConfig base = plan.cluster;
    base.seed = seed;
    base.finalize();
  }

  ShardedRun run;
  run.plan = &plan;
  run.topo = ShardTopology::build(plan.cluster);
  run.window = shard_window_length(plan.cluster);
  run.route_seed = seed + kRouteSeedOffset;
  const std::uint32_t shards = run.topo.shards;

  COSM_REQUIRE(
      plan.placement.replica_count <= run.topo.min_devices(),
      "replica sets are shard-local: placement.replica_count must fit the "
      "smallest shard (floor(device_count / shards) devices); lower shards "
      "or replica_count");

  workload::CatalogConfig cat_config = plan.catalog;
  cat_config.seed = seed + 1;  // one global catalog, same lane as unsharded
  const workload::ObjectCatalog catalog(cat_config);
  run.catalog = &catalog;

  run.shards.resize(shards);
  run.mailboxes.assign(static_cast<std::size_t>(shards) * shards, {});
  run.sources.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    ClusterConfig config = plan.cluster;
    config.shards = 1;
    config.shard_window = 0.0;
    config.device_count = run.topo.devices_of(s);
    config.frontend_processes = run.topo.frontends_of(s);
    config.seed = seed + kShardSeedStride * s;
    // Faults retarget to their owner shard's local device ids; network
    // jitter is cluster-wide and lands on every shard.  (Jitter mutates
    // the live network latency, which cannot break the lookahead: the
    // dispatch delay is the configured window, fixed before the run.)
    config.faults = FaultSchedule{};
    const std::uint32_t offset = run.topo.device_offset(s);
    for (const FaultEvent& event : plan.cluster.faults.events()) {
      if (event.kind == FaultKind::kNetworkJitter) {
        config.faults.add(event);
      } else if (event.device >= offset &&
                 event.device < offset + config.device_count) {
        FaultEvent local = event;
        local.device -= offset;
        config.faults.add(local);
      }
    }
    run.shards[s].cluster = std::make_unique<Cluster>(std::move(config));
    if (plan.streaming) {
      run.shards[s].cluster->metrics().enable_streaming(
          plan.streaming_config);
    }

    workload::PlacementConfig placement_config = plan.placement;
    placement_config.device_count = run.topo.devices_of(s);
    placement_config.seed = seed + kShardSeedStride * s + 2;
    run.shards[s].placement =
        std::make_unique<workload::Placement>(placement_config);

    run.sources.push_back(std::make_unique<ShardSource>(
        run, s, cosm::Rng(seed + kShardSeedStride * s + 3)));
  }

  run.horizon = run.sources.front()->horizon();
  for (std::uint32_t s = 0; s < shards; ++s) {
    // Arrivals are submitted one window after generation, so the warmup
    // boundary shifts with them: a sample belongs to the benchmark phase
    // iff its generating draw did.
    run.shards[s].cluster->metrics().sample_start_time =
        run.sources[s]->benchmark_start_time() + run.window;
  }

  const auto loop_start = std::chrono::steady_clock::now();
  for (std::uint32_t s = 0; s < shards; ++s) run.sources[s]->start();
  if (plan.shard_threads == 1) {
    // Serial round-robin: the same windows, drains, and per-shard event
    // orders as the threaded path, interleaved on one thread — the
    // reference the bit-identity tests compare against.
    double fence = 0.0;
    while (fence < run.horizon) {
      fence = std::min(fence + run.window, run.horizon);
      for (std::uint32_t s = 0; s < shards; ++s) run_window(run, s, fence);
      for (std::uint32_t s = 0; s < shards; ++s) drain_inbound(run, s);
    }
    for (std::uint32_t s = 0; s < shards; ++s) {
      run.shards[s].cluster->engine().run_all();
    }
  } else {
    // Dedicated threads, one per shard: workers block at window barriers,
    // so they must never run as pool tasks (a pool caller draining shard
    // indices serially would deadlock at the first barrier).
    SpinBarrier barrier(shards);
    std::vector<std::thread> workers;
    workers.reserve(shards - 1);
    for (std::uint32_t s = 1; s < shards; ++s) {
      workers.emplace_back(
          [&run, &barrier, s] { run_shard_windows(run, s, barrier); });
    }
    run_shard_windows(run, 0, barrier);
    for (std::thread& worker : workers) worker.join();
  }
  const auto loop_stop = std::chrono::steady_clock::now();

  // Reduce in shard order on the calling thread: deterministic merge
  // sequence, hence a deterministic fingerprint.
  SimMetrics merged(plan.cluster.device_count);
  if (plan.streaming) merged.enable_streaming(plan.streaming_config);
  std::uint64_t events = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    merged.merge_from(run.shards[s].cluster->metrics(),
                      run.topo.device_offset(s));
    events += run.shards[s].cluster->engine().events_processed();
  }
  return detail::summarize_replication(
      merged, events,
      std::chrono::duration<double, std::milli>(loop_stop - loop_start)
          .count(),
      plan.streaming, seed);
}

}  // namespace cosm::sim
