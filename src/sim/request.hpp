// Per-request state threaded through the simulator.  Events hold a
// RequestPtr so a request lives exactly as long as something still
// references it.
//
// RequestPtr used to be std::shared_ptr<Request>; at simulator rates that
// meant one control-block allocation per attempt plus two *atomic*
// refcount operations per copy on a single-threaded hot path.  It is now
// an intrusive pointer with a plain (non-atomic) counter, and requests
// are recycled through a RequestPool free list — reacquiring a request
// also reuses its replicas vector's capacity.  An Engine (and everything
// scheduled on it) is single-threaded by construction, so the non-atomic
// count is safe; parallel replications give each replication its own
// Cluster, pool included.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace cosm::sim {

class RequestPool;
class WeakRequestRef;

// Sentinel for Request::group_id: the attempt belongs to no fan-out /
// hedge group (the common, redundancy-disabled case).
inline constexpr std::uint32_t kNoGroup = 0xffffffffu;

// One *attempt* of a client request.  Retries create a fresh Request per
// attempt (the abandoned attempt's backend work may still be in flight and
// must not clobber the new attempt's timeline), linked by the shared
// original_arrival / attempt / replicas fields.
struct Request {
  std::uint64_t id = 0;
  bool is_write = false;  // PUT (write-workload extension) vs GET
  std::uint64_t object_id = 0;
  std::uint64_t size_bytes = 0;
  std::uint32_t device = 0;
  std::uint32_t chunks_total = 1;
  std::uint32_t chunks_done = 0;

  // Resilience (robustness extension).
  std::uint32_t attempt = 0;          // 0 = first try
  std::uint32_t replica_index = 0;    // index of `device` in `replicas`
  std::uint32_t failover_count = 0;   // attempts that switched device
  bool failed_over_attempt = false;   // THIS attempt targets a new device
  std::vector<std::uint32_t> replicas;  // failover candidates (>= 1 entry)

  // Redundancy (robustness extension).  Hedged and (n,k) fan-out attempts
  // share a FanoutGroup owned by the Cluster; `cancelled` marks an attempt
  // whose group already completed — the frontend/backend unwind its
  // remaining work at the next task boundary instead of serving it.
  std::uint32_t group_id = kNoGroup;
  bool is_hedge = false;     // attempt issued by the hedge timer
  bool cancelled = false;    // group won elsewhere; drop remaining work
  bool settled = false;      // attempt reached a terminal state (Cluster
                             // per-device outstanding accounting ran)

  // Timeline (simulated seconds).
  double original_arrival = 0.0;   // client submit time of attempt 0
  double frontend_arrival = 0.0;   // entered a frontend process queue
  double pool_enter_time = 0.0;    // connection reached the backend pool
  double accept_time = 0.0;        // accept()-ed by a backend process
  double backend_enqueue_time = 0.0;  // HTTP request entered the op queue
  double respond_time = 0.0;       // backend sent headers + first chunk
  bool responded = false;
  bool timed_out = false;          // client gave up before first byte
  bool failed = false;             // attempt killed by a fault

 private:
  friend class RequestPool;
  friend class RequestPtr;
  friend class WeakRequestRef;
  std::uint32_t refs_ = 0;
  // Bumped every time the pool recycles this slot.  A WeakRequestRef
  // snapshots the generation it saw; a later lock() with a mismatched
  // generation means the attempt it watched is gone (and the slot may
  // already serve a different request) — the epoch half of the pool's
  // refcount/epoch safety machinery.
  std::uint64_t generation_ = 0;
  RequestPool* home_ = nullptr;  // owning pool; requests never outlive it
};

// Intrusive smart pointer over pool-owned requests.  Copies bump a plain
// counter (no atomics); the last release returns the request to its pool.
class RequestPtr {
 public:
  RequestPtr() = default;
  RequestPtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  // Copy operations are noexcept on purpose: lambdas that capture a
  // RequestPtr from a `const RequestPtr&` get a *const* member, which a
  // lambda move constructor can only copy — if that copy could throw, the
  // lambda stops being nothrow-move-constructible and SmallFn spills it to
  // the heap.  The operations are plain counter bumps; they never throw.
  RequestPtr(const RequestPtr& other) noexcept : p_(other.p_) {
    if (p_ != nullptr) ++p_->refs_;
  }
  RequestPtr(RequestPtr&& other) noexcept : p_(other.p_) {
    other.p_ = nullptr;
  }
  RequestPtr& operator=(const RequestPtr& other) noexcept {
    if (p_ != other.p_) {
      release();
      p_ = other.p_;
      if (p_ != nullptr) ++p_->refs_;
    }
    return *this;
  }
  RequestPtr& operator=(RequestPtr&& other) noexcept {
    if (this != &other) {
      release();
      p_ = other.p_;
      other.p_ = nullptr;
    }
    return *this;
  }
  ~RequestPtr() { release(); }

  Request* get() const { return p_; }
  Request& operator*() const { return *p_; }
  Request* operator->() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }
  friend bool operator==(const RequestPtr& a, const RequestPtr& b) {
    return a.p_ == b.p_;
  }
  friend bool operator==(const RequestPtr& a, std::nullptr_t) {
    return a.p_ == nullptr;
  }

 private:
  friend class RequestPool;
  friend class WeakRequestRef;
  explicit RequestPtr(Request* p) : p_(p) {
    if (p_ != nullptr) ++p_->refs_;
  }
  inline void release();

  Request* p_ = nullptr;
};

// Non-owning reference that survives the request's recycling: lock()
// returns a strong pointer only while the slot still holds the SAME
// attempt it was created from (generation match), and null once the pool
// recycled — or recycled and re-issued — the slot.  Used by timers (e.g.
// the hedge deadline) that must observe an attempt without extending its
// lifetime and must never resurrect a recycled request.  Safe without
// ownership because pool slabs have stable addresses for the pool's whole
// lifetime.
class WeakRequestRef {
 public:
  WeakRequestRef() = default;
  explicit WeakRequestRef(const RequestPtr& strong)
      : p_(strong.p_), generation_(p_ != nullptr ? p_->generation_ : 0) {}

  RequestPtr lock() const {
    if (p_ == nullptr || p_->generation_ != generation_) return nullptr;
    return RequestPtr(p_);
  }
  bool expired() const {
    return p_ == nullptr || p_->generation_ != generation_;
  }

 private:
  Request* p_ = nullptr;
  std::uint64_t generation_ = 0;
};

// Slab allocator + free list for requests.  acquire() hands out a request
// reset to default field values (keeping the replicas vector's capacity);
// the pool must outlive every RequestPtr into it — Cluster guarantees
// this by declaring its pool before the engine and all entities.
class RequestPool {
 public:
  RequestPool() = default;
  RequestPool(const RequestPool&) = delete;
  RequestPool& operator=(const RequestPool&) = delete;

  RequestPtr acquire() {
    Request* req;
    if (!free_.empty()) {
      req = free_.back();
      free_.pop_back();
      reset(*req);
    } else {
      slabs_.emplace_back();
      req = &slabs_.back();
      req->home_ = this;
    }
    return RequestPtr(req);
  }

  // Total requests ever materialized / currently idle (perf telemetry).
  std::size_t allocated() const { return slabs_.size(); }
  std::size_t idle() const { return free_.size(); }

 private:
  friend class RequestPtr;

  static void reset(Request& req) {
    req.id = 0;
    req.is_write = false;
    req.object_id = 0;
    req.size_bytes = 0;
    req.device = 0;
    req.chunks_total = 1;
    req.chunks_done = 0;
    req.attempt = 0;
    req.replica_index = 0;
    req.failover_count = 0;
    req.failed_over_attempt = false;
    req.replicas.clear();  // keeps capacity for the next attempt
    req.group_id = kNoGroup;
    req.is_hedge = false;
    req.cancelled = false;
    req.settled = false;
    req.original_arrival = 0.0;
    req.frontend_arrival = 0.0;
    req.pool_enter_time = 0.0;
    req.accept_time = 0.0;
    req.backend_enqueue_time = 0.0;
    req.respond_time = 0.0;
    req.responded = false;
    req.timed_out = false;
    req.failed = false;
  }

  // Recycling bumps the slot's generation so every WeakRequestRef taken
  // against the old occupant expires atomically with the free-list push.
  void recycle(Request* req) {
    ++req->generation_;
    free_.push_back(req);
  }

  // std::deque: stable addresses across growth (free list and live
  // RequestPtrs point into the slabs).
  std::deque<Request> slabs_;
  std::vector<Request*> free_;
};

inline void RequestPtr::release() {
  if (p_ != nullptr && --p_->refs_ == 0) {
    p_->home_->recycle(p_);
    p_ = nullptr;
  }
}

}  // namespace cosm::sim
