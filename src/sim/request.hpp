// Per-request state threaded through the simulator.  Events hold a
// shared_ptr so a request lives exactly as long as something still
// references it.
#pragma once

#include <cstdint>
#include <memory>

namespace cosm::sim {

struct Request {
  std::uint64_t id = 0;
  bool is_write = false;  // PUT (write-workload extension) vs GET
  std::uint64_t object_id = 0;
  std::uint64_t size_bytes = 0;
  std::uint32_t device = 0;
  std::uint32_t chunks_total = 1;
  std::uint32_t chunks_done = 0;

  // Timeline (simulated seconds).
  double frontend_arrival = 0.0;   // entered a frontend process queue
  double pool_enter_time = 0.0;    // connection reached the backend pool
  double accept_time = 0.0;        // accept()-ed by a backend process
  double backend_enqueue_time = 0.0;  // HTTP request entered the op queue
  double respond_time = 0.0;       // backend sent headers + first chunk
  bool responded = false;
  bool timed_out = false;          // client gave up before first byte
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace cosm::sim
