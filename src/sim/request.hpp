// Per-request state threaded through the simulator.  Events hold a
// shared_ptr so a request lives exactly as long as something still
// references it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace cosm::sim {

// One *attempt* of a client request.  Retries create a fresh Request per
// attempt (the abandoned attempt's backend work may still be in flight and
// must not clobber the new attempt's timeline), linked by the shared
// original_arrival / attempt / replicas fields.
struct Request {
  std::uint64_t id = 0;
  bool is_write = false;  // PUT (write-workload extension) vs GET
  std::uint64_t object_id = 0;
  std::uint64_t size_bytes = 0;
  std::uint32_t device = 0;
  std::uint32_t chunks_total = 1;
  std::uint32_t chunks_done = 0;

  // Resilience (robustness extension).
  std::uint32_t attempt = 0;          // 0 = first try
  std::uint32_t replica_index = 0;    // index of `device` in `replicas`
  std::uint32_t failover_count = 0;   // attempts that switched device
  bool failed_over_attempt = false;   // THIS attempt targets a new device
  std::vector<std::uint32_t> replicas;  // failover candidates (>= 1 entry)

  // Timeline (simulated seconds).
  double original_arrival = 0.0;   // client submit time of attempt 0
  double frontend_arrival = 0.0;   // entered a frontend process queue
  double pool_enter_time = 0.0;    // connection reached the backend pool
  double accept_time = 0.0;        // accept()-ed by a backend process
  double backend_enqueue_time = 0.0;  // HTTP request entered the op queue
  double respond_time = 0.0;       // backend sent headers + first chunk
  bool responded = false;
  bool timed_out = false;          // client gave up before first byte
  bool failed = false;             // attempt killed by a fault
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace cosm::sim
