// Caches at the backend server: index (inode), metadata (xattr) and page
// (data chunk) caches.
//
// Two modes (DESIGN.md §5.3):
//  * Probabilistic — every access misses i.i.d. with the configured ratio.
//    Makes the simulator's miss ratio equal the model's parameter by
//    construction, isolating queueing-model error from cache-model error.
//  * LRU — a real capacity-bounded LRU; miss ratios *emerge* from object
//    popularity and cache size, and the calibration pipeline has to
//    estimate them the way the paper does (latency thresholding).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/rng.hpp"

namespace cosm::sim {

// O(1) LRU over opaque 64-bit keys.
class LruCache {
 public:
  explicit LruCache(std::size_t capacity);

  // Lookup with promotion.  Returns true on hit.
  bool access(std::uint64_t key);
  // Inserts (promoting if present), evicting the least recently used entry
  // if at capacity.  A zero-capacity cache ignores inserts.
  void insert(std::uint64_t key);
  bool contains(std::uint64_t key) const;

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;  // most recent at front
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
};

// Operation kinds seen by the disk and the metrics.  The first three are
// the paper's read-path operations and the only cacheable ones; kWrite
// (a data-chunk write) and kCommit (the fsync/rename/xattr commit at the
// end of a PUT) exist for the write-workload extension.
enum class AccessKind { kIndex, kMeta, kData, kWrite, kCommit };
inline constexpr std::size_t kAccessKindCount = 5;

// Cache key of one data chunk, shared by the page cache (CacheBank) and
// the SSD tier residency (TierResidency) so both layers track the same
// unit.  Objects are dense ranks well below 2^40; folding the chunk into
// the top bits keeps keys collision-free across objects.
inline std::uint64_t data_chunk_key(std::uint64_t object_id,
                                    std::uint32_t chunk_index) {
  return (object_id << 24) ^ chunk_index;
}

struct CacheBankConfig {
  enum class Mode { kProbabilistic, kLru };
  Mode mode = Mode::kProbabilistic;
  // Probabilistic mode: per-kind miss ratios.
  double index_miss_ratio = 0.3;
  double meta_miss_ratio = 0.3;
  double data_miss_ratio = 0.7;
  // LRU mode: capacities in entries (chunks for the data cache).
  std::size_t index_entries = 10000;
  std::size_t meta_entries = 10000;
  std::size_t data_chunks = 4000;
};

// The three caches of one storage device.
class CacheBank {
 public:
  explicit CacheBank(const CacheBankConfig& config);

  // Decides whether this access hits.  LRU mode: a lookup with promotion.
  bool lookup(AccessKind kind, std::uint64_t object_id,
              std::uint32_t chunk_index, cosm::Rng& rng);
  // Called after a disk read to populate the cache (LRU mode only;
  // probabilistic mode ignores it).
  void fill(AccessKind kind, std::uint64_t object_id,
            std::uint32_t chunk_index);

 private:
  static std::uint64_t chunk_key(std::uint64_t object_id,
                                 std::uint32_t chunk_index);

  CacheBankConfig config_;
  LruCache index_;
  LruCache meta_;
  LruCache data_;
};

}  // namespace cosm::sim
