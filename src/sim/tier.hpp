// Two-tier storage (tiering extension): an SSD-like cache tier in front
// of each device's capacity disk.
//
// The tier covers the DATA path only — after a page-cache miss, a chunk
// read is served by the SSD when the chunk is resident and by the
// capacity disk otherwise (with an optional clean promotion afterwards);
// index and metadata operations always go to the capacity disk.  PUT
// chunk writes follow the configured write policy: write-through blocks
// on the capacity disk and installs a clean SSD copy asynchronously;
// write-back blocks only on the SSD write and flushes the dirty block to
// the capacity disk when it is evicted (demotion) or when an outage
// recovery drains the tier.  The SSD is a second sim::Disk — its own
// FCFS queue, its own seeded service draws — so SSD queueing contention
// emerges the same way capacity-disk contention does.
//
// Model-side mirror: numerics::TieredService + core::TierOptions, with
// hit ratios predicted from the Zipf catalog (calibration/lru_prediction).
// Derivation, semantics, and validity limits: docs/TIERING.md.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "numerics/distribution.hpp"
#include "sim/cache.hpp"
#include "sim/disk.hpp"
#include "sim/engine.hpp"

namespace cosm::sim {

class SimMetrics;

// Sizing and policy knobs for the SSD cache tier of one device
// (ClusterConfig::tier; disabled by default, which keeps every legacy
// run bit-identical — no tier RNG stream is even forked).
struct TierConfig {
  bool enabled = false;

  // SSD residency, in data chunks (must be >= 1 when enabled).
  std::size_t capacity_chunks = 4096;

  // What a PUT chunk write does:
  //  * kWriteThrough — the request blocks on the capacity-disk write
  //    (durability unchanged) and a clean copy is installed on the SSD
  //    asynchronously.
  //  * kWriteBack — the request blocks only on the SSD write; the block
  //    is marked dirty and written to the capacity disk when evicted
  //    (demotion) or when an outage recovery drains the tier.
  enum class WritePolicy { kWriteThrough, kWriteBack };
  WritePolicy write_policy = WritePolicy::kWriteThrough;

  // Install a clean copy of the chunk on the SSD after a tier-miss read
  // (the install write occupies the SSD queue but nothing waits on it).
  bool promote_on_read = true;

  // SSD service-time distributions; ClusterConfig::finalize() fills
  // unset slots from default_ssd_profile().
  numerics::DistPtr read_service;
  numerics::DistPtr write_service;
};

// Dirty-bit LRU residency over chunk keys.  Like LruCache, but an insert
// reports the evicted victim (key + dirty bit) so the tier can schedule
// the demotion write, and dirty keys are enumerable for outage drains.
class TierResidency {
 public:
  struct Evicted {
    std::uint64_t key;
    bool dirty;
  };

  explicit TierResidency(std::size_t capacity);

  // Lookup with recency promotion.  Returns true when resident.
  bool access(std::uint64_t key);
  // Inserts (promoting and OR-ing the dirty bit if already present);
  // returns the evicted victim when the insert pushed one out.  A
  // zero-capacity residency ignores inserts.
  std::optional<Evicted> insert(std::uint64_t key, bool dirty);
  bool contains(std::uint64_t key) const;
  bool dirty(std::uint64_t key) const;

  // Outage-recovery drain: marks every dirty block clean (they stay
  // resident) and returns their keys in LRU order, oldest first — the
  // order the flusher writes them back.
  std::vector<std::uint64_t> take_dirty();

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t dirty_count() const { return dirty_count_; }

 private:
  struct Entry {
    std::uint64_t key;
    bool dirty;
  };

  std::size_t capacity_;
  std::size_t dirty_count_ = 0;
  std::list<Entry> order_;  // most recent at front
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
};

// The SSD cache tier of one BackendDevice: dirty-bit LRU residency plus
// its own FCFS service queue (a Disk with SSD-scale service times).
//
// The read path is split in phases so BackendProcess::access keeps its
// disk completion inside CompletionFn's inline storage:
//   1. lookup_for_read  — hit/miss decision (promotes recency, files the
//      sim.tier.* counters);
//   2. submit_read      — the blocking read against the SSD (hit) or the
//      capacity disk (miss), with the caller's completion untouched;
//   3. promoted_after_read — on a miss, install the block clean, pay the
//      asynchronous SSD install write, demote a dirty victim if evicted.
class TierDevice {
 public:
  TierDevice(Engine& engine, const TierConfig& config, Disk& capacity_disk,
             SimMetrics& metrics, std::uint32_t device_id, cosm::Rng rng);

  bool lookup_for_read(std::uint64_t object_id, std::uint32_t chunk_index);

  template <typename F>
  void submit_read(bool tier_hit, F&& done) {
    if (tier_hit) {
      ssd_.submit(AccessKind::kData, std::forward<F>(done));
    } else {
      capacity_disk_.submit(AccessKind::kData, std::forward<F>(done));
    }
  }

  void promoted_after_read(std::uint64_t object_id,
                           std::uint32_t chunk_index);

  // Write path.  Under write-back the caller blocks on the SSD write
  // (submit_write); under write-through it blocks on the capacity disk
  // as before.  Either way wrote_chunk() is called once the blocking
  // write completed, to install the block with the policy's dirty bit.
  bool write_back() const {
    return config_.write_policy == TierConfig::WritePolicy::kWriteBack;
  }

  template <typename F>
  void submit_write(F&& done) {
    ssd_.submit(AccessKind::kWrite, std::forward<F>(done));
  }

  void wrote_chunk(std::uint64_t object_id, std::uint32_t chunk_index);

  // Outage plumbing, driven by BackendDevice::set_online.  Going offline
  // fails the SSD's queued/in-flight operations; residency survives
  // (flash is persistent).  Coming back online drains every dirty block
  // to the capacity disk — the write-back durability recovery the fault
  // tests assert on.
  void set_online(bool online);

  Disk& ssd() { return ssd_; }
  const TierResidency& residency() const { return residency_; }

 private:
  // Installs `key`, demoting the evicted victim's dirty block (if any)
  // to the capacity disk.
  void install(std::uint64_t key, bool dirty);
  // One asynchronous dirty write-back toward the capacity disk.
  void demote(bool drain);

  const TierConfig& config_;
  Disk& capacity_disk_;
  SimMetrics& metrics_;
  std::uint32_t device_id_;
  Disk ssd_;
  TierResidency residency_;
};

}  // namespace cosm::sim
