// Vector-backed FIFO for the simulator's hot queues.
//
// The process task queues, device connection pools, and disk op queues
// used to be std::deque.  libstdc++'s deque allocates 512-byte chunks —
// only FOUR elements per chunk once the element carries a SmallFn<96> —
// and a FIFO marches through its chunks, so steady-state traffic
// allocates and frees a chunk every few operations.  The malloc census of
// the canonical benchmark attributed ~30k allocations per run to exactly
// that churn.
//
// FifoRing keeps one std::vector and a head index instead: push_back
// appends, pop_front advances the head, and the buffer resets (keeping
// capacity) whenever the queue fully drains — which event-loop queues do
// constantly.  If a queue stays backlogged for a long stretch, the dead
// prefix is compacted once it dominates the buffer, so memory stays
// proportional to the live queue length.  Steady state: zero allocations.
//
// Semantics preserved relative to deque: FIFO order, random access by
// index (the SIRO service-order draw), mid-queue erase, iteration.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace cosm::sim {

template <typename T>
class FifoRing {
 public:
  bool empty() const { return head_ == buf_.size(); }
  std::size_t size() const { return buf_.size() - head_; }

  T& front() { return buf_[head_]; }
  T& back() { return buf_.back(); }
  const T& back() const { return buf_.back(); }
  // Index 0 is the front (oldest) element.
  T& operator[](std::size_t i) { return buf_[head_ + i]; }
  const T& operator[](std::size_t i) const { return buf_[head_ + i]; }

  void push_back(T value) { buf_.push_back(std::move(value)); }

  void pop_front() {
    ++head_;
    compact_or_reset();
  }

  // Removes element `i` (0 == front), preserving the order of the rest.
  void erase(std::size_t i) {
    buf_.erase(buf_.begin() + static_cast<std::ptrdiff_t>(head_ + i));
    compact_or_reset();
  }

  void clear() {
    buf_.clear();
    head_ = 0;
  }

  // Moves every queued element out (FIFO order) and empties the ring; the
  // cold fault paths use this to snapshot the queue before failing it, so
  // completion callbacks can safely re-enter push_back.
  std::vector<T> take_all() {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
    std::vector<T> out;
    out.swap(buf_);
    return out;
  }

  auto begin() { return buf_.begin() + static_cast<std::ptrdiff_t>(head_); }
  auto end() { return buf_.end(); }
  auto begin() const {
    return buf_.begin() + static_cast<std::ptrdiff_t>(head_);
  }
  auto end() const { return buf_.end(); }

 private:
  void compact_or_reset() {
    if (head_ == buf_.size()) {  // drained: recycle, capacity persists
      buf_.clear();
      head_ = 0;
    } else if (head_ >= kCompactAt && head_ >= buf_.size() - head_) {
      // Backlogged queue whose dead prefix outgrew the live suffix: pay an
      // O(size) shift now, amortized over the >= size pops that built the
      // prefix.
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  static constexpr std::size_t kCompactAt = 64;

  std::vector<T> buf_;
  std::size_t head_ = 0;
};

}  // namespace cosm::sim
