// Simulation measurement taps.
//
// SimMetrics records everything the experiments and the calibration
// pipeline need:
//  * per-request response latencies (measured at the frontend, as in the
//    paper) with their device, completion time, and accept()-wait;
//  * per-device operation accounting: arrival counts, data-read (chunk)
//    counts, cache hits/misses per kind — the "system online metrics" of
//    Sec. IV-B;
//  * per-device disk service-time samples per kind — the raw material of
//    the Sec. IV-A benchmarking, available here for cross-checks;
//  * per-operation latency samples (0 on cache hit) so the latency-
//    threshold miss-ratio estimator can be exercised exactly as published.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/cache.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace cosm::sim {

struct RequestSample {
  bool is_write = false;
  bool timed_out = false;
  bool failed = false;            // every attempt was killed by a fault
  // At least one timeout/fault-triggered retry happened.  Distinct from
  // attempts > 1: hedged and fan-out requests dispatch several attempts
  // up front without any of them being a retry.
  bool retried = false;
  double frontend_arrival = 0.0;
  double response_latency = 0.0;  // first-byte-at-frontend - arrival
  double backend_latency = 0.0;   // backend parse-queue entry -> respond
  double accept_wait = 0.0;       // connection in pool -> accept()-ed
  std::uint32_t device = 0;       // device of the final attempt
  std::uint32_t chunks = 0;
  std::uint32_t attempts = 1;     // 1 = served on the first try
  std::uint32_t failovers = 0;    // attempts that switched replica
  std::uint32_t hedges = 0;       // hedge attempts issued for this request
};

struct DeviceCounters {
  std::uint64_t requests = 0;
  // Dispatched attempts, retries included — the retry-inflated arrival
  // stream this device actually saw (the lambda the degraded what-if
  // model needs).
  std::uint64_t attempts = 0;
  std::uint64_t data_reads = 0;  // chunk reads, cache hits included
  std::array<std::uint64_t, kAccessKindCount> accesses{};  // by AccessKind
  std::array<std::uint64_t, kAccessKindCount> misses{};
  std::array<double, kAccessKindCount> disk_service_sum{};
  std::array<std::uint64_t, kAccessKindCount> disk_ops{};
  // SSD cache tier (tiering extension; all zero when the tier is off).
  // O(1) counters, so streaming mode keeps them for arbitrarily long runs.
  std::uint64_t tier_reads = 0;       // data reads offered to the tier
  std::uint64_t tier_hits = 0;        // served from the SSD
  std::uint64_t tier_promotions = 0;  // clean installs after a miss
  std::uint64_t tier_writebacks = 0;  // dirty demotion writes (evictions)
  std::uint64_t tier_drain_writebacks = 0;  // outage-recovery flushes
  std::uint64_t tier_ops = 0;         // SSD operations (reads + writes)
  double tier_service_sum = 0.0;      // raw SSD service seconds

  // Measured tier hit ratio (NaN-free: 0 when the tier saw no reads).
  double tier_hit_ratio() const {
    return tier_reads == 0
               ? 0.0
               : static_cast<double>(tier_hits) /
                     static_cast<double>(tier_reads);
  }
};

// Request outcomes per class (robustness extension): how the client
// population experienced the run.
struct OutcomeCounts {
  std::uint64_t ok = 0;           // responded on the first attempt
  std::uint64_t ok_retried = 0;   // responded after at least one retry
  std::uint64_t timed_out = 0;    // gave up after the last attempt timed out
  std::uint64_t failed = 0;       // last attempt fault-killed, retries spent
  std::uint64_t retry_attempts = 0;     // extra attempts dispatched
  std::uint64_t failover_attempts = 0;  // attempts aimed at a new replica
  // Redundancy extension.
  std::uint64_t hedge_attempts = 0;     // hedge attempts dispatched
  std::uint64_t hedge_wins = 0;         // requests won by a hedge attempt
  std::uint64_t fanout_groups = 0;      // (n,k) fan-out groups created
  std::uint64_t cancelled_attempts = 0;  // losers cancelled by a completion
};

// Constant-memory latency accounting for long runs (streaming mode): a
// log-bucketed histogram for quantiles plus Welford moments, instead of
// one retained RequestSample per request.
struct StreamingConfig {
  double hist_min = 1e-4;   // 0.1 ms — well under any simulated latency
  double hist_max = 100.0;  // seconds; above goes to the clamp bucket
  int buckets_per_decade = 200;  // <=0.6% relative quantile error
};

class SimMetrics {
 public:
  explicit SimMetrics(std::uint32_t device_count);

  // Set true to retain per-operation latency samples (memory-heavy; used
  // by calibration tests, off by default).
  bool keep_operation_samples = false;
  // Set false to drop per-request samples and keep only counters.
  bool keep_request_samples = true;
  // Requests arriving before this simulated time are counted but not
  // sampled — the paper's warmup/transition exclusion.
  double sample_start_time = 0.0;

  // Switches latency recording to constant memory: successful post-warmup
  // latencies go into a log histogram + running moments and per-request
  // samples are dropped.  Call before the run produces any sample.
  void enable_streaming(const StreamingConfig& config = {});
  bool streaming() const { return latency_hist_.has_value(); }

  // Pre-sizes the retained-sample vector from the expected benchmark
  // arrival count (no-op in streaming mode); kills reallocation stalls in
  // long sampled runs.
  void reserve_request_samples(std::size_t count);

  // Response-latency distribution of successful post-warmup requests,
  // available in BOTH modes: exact (nth_element over retained samples) in
  // sampled mode, within one bucket width in streaming mode.
  double latency_quantile(double p) const;
  // Same value plus the clamp verdict: sampled mode is always kExact
  // (selection over raw samples); streaming mode surfaces the
  // histogram's bound when the quantile fell in a clamp bucket (latency
  // outside [hist_min, hist_max]) instead of letting a fabricated
  // number pass for a measurement.
  stats::QuantileEstimate latency_quantile_checked(double p) const;
  double latency_fraction_below(double threshold) const;
  std::uint64_t latency_count() const { return latency_count_; }
  const stats::StreamingStats& latency_moments() const {
    return latency_moments_;
  }

  void on_request_complete(const RequestSample& sample);
  // One attempt dispatched toward `device` (the retry-inflated arrival
  // accounting; called for first tries, retries, hedges, and fan-out
  // siblings alike — every attempt is load the device actually saw).
  void on_attempt(std::uint32_t device, bool is_retry, bool is_failover);
  // Redundancy lifecycle taps (each also files its obs counter).
  void on_hedge_issued();
  void on_hedge_win();
  void on_fanout_group();
  void on_attempt_cancelled();
  void on_cache_access(std::uint32_t device, AccessKind kind, bool hit);
  // SSD cache tier taps (tiering extension; each also files its
  // sim.tier.* obs counter).
  void on_tier_read(std::uint32_t device, bool hit);
  void on_tier_op(std::uint32_t device, double service_time);
  void on_tier_promotion(std::uint32_t device);
  void on_tier_writeback(std::uint32_t device, bool drain);
  void on_disk_op(std::uint32_t device, AccessKind kind,
                  double service_time);
  void on_data_read(std::uint32_t device);
  void on_operation_latency(std::uint32_t device, AccessKind kind,
                            double latency);

  // Folds another shard's metrics into this one (the cross-shard metric
  // reduction of sim/shard.hpp).  `other`'s devices land in the id range
  // [device_offset, device_offset + other.device_count()); retained
  // request samples are appended in `other`'s order with their device ids
  // remapped, so repeated merges in shard order yield a deterministic
  // (per-shard-concatenated, not globally arrival-sorted) sample vector.
  // Streaming state merges exactly: Welford moments via
  // StreamingStats::merge (Chan's algorithm), histograms bucket-wise via
  // LogHistogram::merge — both sides must be in the same latency mode and
  // share the histogram layout.  Outcome and per-device counters sum.
  void merge_from(const SimMetrics& other, std::uint32_t device_offset);

  const std::vector<RequestSample>& requests() const { return requests_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t failures() const { return failed_; }
  OutcomeCounts outcomes() const;
  const DeviceCounters& device(std::uint32_t id) const;
  std::uint32_t device_count() const {
    return static_cast<std::uint32_t>(devices_.size());
  }
  std::uint64_t completed_requests() const { return completed_; }

  // Measured miss ratio of one access kind on one device.
  double miss_ratio(std::uint32_t device, AccessKind kind) const;
  // Mean raw disk service time of one kind on one device.
  double mean_disk_service(std::uint32_t device, AccessKind kind) const;

  const std::vector<double>& operation_samples(std::uint32_t device,
                                               AccessKind kind) const;

 private:
  std::vector<DeviceCounters> devices_;
  std::vector<RequestSample> requests_;
  std::optional<stats::LogHistogram> latency_hist_;
  stats::StreamingStats latency_moments_;
  std::uint64_t latency_count_ = 0;
  // Scratch for sampled-mode latency_quantile (selection, not a sort of a
  // fresh copy); mutable because quantile queries are logically const.
  mutable std::vector<double> quantile_scratch_;
  // op_samples_[device][kind]
  std::vector<std::array<std::vector<double>, kAccessKindCount>> op_samples_;
  std::uint64_t completed_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retried_ok_ = 0;
  std::uint64_t retry_attempts_ = 0;
  std::uint64_t failover_attempts_ = 0;
  std::uint64_t hedge_attempts_ = 0;
  std::uint64_t hedge_wins_ = 0;
  std::uint64_t fanout_groups_ = 0;
  std::uint64_t cancelled_attempts_ = 0;
};

}  // namespace cosm::sim
