#include "sim/backend.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "obs/obs.hpp"

namespace cosm::sim {

// ------------------------------ BackendProcess ---------------------------

BackendProcess::BackendProcess(Engine& engine, const ClusterConfig& config,
                               SimMetrics& metrics, BackendDevice& device,
                               cosm::Rng rng)
    : engine_(engine),
      config_(config),
      metrics_(metrics),
      device_(device),
      rng_(rng) {}

void BackendProcess::signal_accept(bool coalesce) {
  if (crashed_) return;  // nobody is listening on this process's socket
  if (coalesce) {
    if (accept_queued_) return;
    accept_queued_ = true;
  }
  enqueue({Task::Kind::kAccept, nullptr});
}

void BackendProcess::enqueue_start_request(RequestPtr req) {
  req->backend_enqueue_time = engine_.now();
  enqueue({Task::Kind::kStartRequest, std::move(req)});
}

void BackendProcess::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++epoch_;
  busy_ = false;
  accept_queued_ = false;
  // Queued request work dies with the process; the cluster decides whether
  // to retry it.  A request in service at crash time fails when its
  // current operation's stale continuation fires (the simulator's stand-in
  // for the client noticing the TCP reset).
  for (const Task& task : tasks_) {
    if (task.req) device_.notify_request_failed(task.req);
  }
  tasks_.clear();
  accept_tasks_.clear();
}

void BackendProcess::restart() {
  if (!crashed_) return;
  crashed_ = false;
  // Look at the listening socket again; pooled connections may be waiting.
  signal_accept(config_.accept_strategy == AcceptStrategy::kBatchDrain);
}

void BackendProcess::enqueue(Task task) {
  if (crashed_) {
    if (task.req) device_.notify_request_failed(task.req);
    return;
  }
  if (config_.defer_accepts && task.kind == Task::Kind::kAccept) {
    accept_tasks_.push_back(std::move(task));
  } else {
    tasks_.push_back(std::move(task));
  }
  if (!busy_) start_next();
}

void BackendProcess::start_next() {
  for (;;) {
    // Ready request work first; the listening socket is only looked at
    // when the loop has nothing else ready (config_.defer_accepts).
    FifoRing<Task>* source = nullptr;
    if (!tasks_.empty()) {
      source = &tasks_;
    } else if (!accept_tasks_.empty()) {
      source = &accept_tasks_;
    } else {
      busy_ = false;
      return;
    }
    busy_ = true;
    std::size_t pick = 0;
    if (config_.service_order == ClusterConfig::ServiceOrder::kSiro &&
        source->size() > 1) {
      // epoll readiness order is uncorrelated with arrival order.
      pick = rng_.uniform_index(source->size());
    }
    Task task = std::move((*source)[pick]);
    if (pick == 0) {  // FCFS (and the common SIRO draw): plain pop
      source->pop_front();
    } else {
      source->erase(pick);
    }
    // Cancel-on-first-complete unwind: the group this task served already
    // completed — drop the task at the boundary instead of executing it.
    if (task.req != nullptr && task.req->cancelled) {
      obs::add(obs::Counter::kSimCancelSkippedWork);
      continue;
    }
    execute(std::move(task));
    return;
  }
}

void BackendProcess::execute(Task task) {
  switch (task.kind) {
    case Task::Kind::kAccept:
      run_accept();
      break;
    case Task::Kind::kStartRequest:
      run_start_request(std::move(task.req));
      break;
    case Task::Kind::kNextChunk:
      run_next_chunk(std::move(task.req));
      break;
    case Task::Kind::kWriteChunk:
      run_write_chunk(std::move(task.req));
      break;
  }
}

void BackendProcess::run_accept() {
  accept_queued_ = false;
  // Accept one connection or drain the pool depending on the configured
  // strategy.  Another process's queued accept may find the pool empty —
  // that is EAGAIN on a real server, effectively free.
  bool any = false;
  if (config_.accept_strategy == AcceptStrategy::kBatchDrain) {
    device_.drain_pool(accept_scratch_);
    const double now = engine_.now();
    for (RequestPtr& req : accept_scratch_) {
      if (req->cancelled) {  // group already won; closing the socket is free
        obs::add(obs::Counter::kSimCancelSkippedWork);
        continue;
      }
      any = true;
      accept_connection(std::move(req), now);
    }
    accept_scratch_.clear();
  } else {
    RequestPtr one = device_.take_one_from_pool();
    while (one != nullptr && one->cancelled) {
      obs::add(obs::Counter::kSimCancelSkippedWork);
      one = device_.take_one_from_pool();
    }
    if (one != nullptr) {
      any = true;
      accept_connection(std::move(one), engine_.now());
    }
  }
  // Only a successful accept pays the accept cost; EAGAIN is free.
  const double cost = any ? config_.accept_cost : 0.0;
  engine_.schedule_after_inline(cost, [this, epoch = epoch_] {
    if (epoch != epoch_) return;
    start_next();
  });
}

void BackendProcess::accept_connection(RequestPtr req, double now) {
  req->accept_time = now;
  // Frontend learns of the accept, then ships the HTTP request: two
  // one-way latencies before the request enters this op queue.
  engine_.schedule_after_inline(
      2.0 * config_.network_latency,
      [this, req = std::move(req), epoch = epoch_]() mutable {
        if (epoch != epoch_) {  // the accepting process died meanwhile
          device_.notify_request_failed(req);
          return;
        }
        enqueue_start_request(std::move(req));
      });
}

void BackendProcess::run_start_request(RequestPtr req) {
  ++requests_started_;
  if (req->is_write) {
    run_start_write(std::move(req));
    return;
  }
  const double parse = config_.backend_parse->sample(rng_);
  engine_.schedule_after_inline(
      parse, [this, req = std::move(req), epoch = epoch_]() mutable {
        if (epoch != epoch_) {
          device_.notify_request_failed(req);
          return;
        }
        if (req->cancelled) {  // group won while we parsed
          obs::add(obs::Counter::kSimCancelSkippedWork);
          start_next();
          return;
        }
        access(AccessKind::kIndex, req, 0, [this, req]() mutable {
          access(AccessKind::kMeta, req, 0, [this, req]() mutable {
            read_chunk_then_transmit(std::move(req));
          });
        });
      });
}

void BackendProcess::run_start_write(RequestPtr req) {
  const double parse = config_.backend_parse->sample(rng_);
  engine_.schedule_after_inline(
      parse, [this, req = std::move(req), epoch = epoch_]() mutable {
        if (epoch != epoch_) {
          device_.notify_request_failed(req);
          return;
        }
        // The first body chunk is still in flight from the frontend; the
        // event loop moves on and the chunk's arrival enqueues the write.
        schedule_chunk_arrival(std::move(req));
        start_next();
      });
}

void BackendProcess::schedule_chunk_arrival(RequestPtr req) {
  const double transfer = chunk_transfer_time(*req, req->chunks_done);
  engine_.schedule_after_inline(
      transfer, [this, req = std::move(req), epoch = epoch_]() mutable {
        if (epoch != epoch_) {
          device_.notify_request_failed(req);
          return;
        }
        enqueue({Task::Kind::kWriteChunk, std::move(req)});
      });
}

void BackendProcess::run_write_chunk(RequestPtr req) {
  // Blocking write of the received chunk — against the SSD tier under
  // write-back (the capacity copy happens at demotion), against the
  // capacity disk otherwise (write-through installs a clean SSD copy
  // asynchronously via wrote_chunk).
  const std::uint32_t chunk = req->chunks_done;
  const double start = engine_.now();
  const bool tier_write =
      device_.tier() != nullptr && device_.tier()->write_back();
  auto completion =
      [this, req, chunk, start, tier_write,
       epoch = epoch_](double service, bool ok) mutable {
        if (epoch != epoch_) {
          device_.notify_request_failed(req);
          return;
        }
        if (!ok) {
          device_.notify_request_failed(req);
          start_next();
          return;
        }
        if (tier_write) {
          metrics_.on_tier_op(device_.id(), service);
        } else {
          metrics_.on_disk_op(device_.id(), AccessKind::kWrite, service);
        }
        metrics_.on_operation_latency(device_.id(), AccessKind::kWrite,
                                      engine_.now() - start);
        device_.cache().fill(AccessKind::kData, req->object_id, chunk);
        if (TierDevice* const tier = device_.tier()) {
          tier->wrote_chunk(req->object_id, chunk);
        }
        ++req->chunks_done;
        if (req->chunks_done < req->chunks_total) {
          schedule_chunk_arrival(std::move(req));
          start_next();
          return;
        }
        // All chunks durable in the tmp file: commit (fsync + rename +
        // xattr write), also blocking, then respond 201.
        const double commit_start = engine_.now();
        device_.disk().submit(
            AccessKind::kCommit,
            [this, req = std::move(req), commit_start,
             epoch = epoch_](double commit, bool commit_ok) {
              if (epoch != epoch_) {
                device_.notify_request_failed(req);
                return;
              }
              if (!commit_ok) {
                device_.notify_request_failed(req);
                start_next();
                return;
              }
              metrics_.on_disk_op(device_.id(), AccessKind::kCommit,
                                  commit);
              metrics_.on_operation_latency(device_.id(),
                                            AccessKind::kCommit,
                                            engine_.now() - commit_start);
              device_.cache().fill(AccessKind::kIndex, req->object_id, 0);
              device_.cache().fill(AccessKind::kMeta, req->object_id, 0);
              req->responded = true;
              req->respond_time = engine_.now();
              engine_.schedule_after_inline(
                  config_.network_latency, [this, req] {
                    device_.notify_response_started(req);
                  });
              start_next();
            });
      };
  if (tier_write) {
    device_.tier()->submit_write(std::move(completion));
  } else {
    device_.disk().submit(AccessKind::kWrite, std::move(completion));
  }
}

void BackendProcess::run_next_chunk(RequestPtr req) {
  read_chunk_then_transmit(std::move(req));
}

void BackendProcess::read_chunk_then_transmit(RequestPtr req) {
  const std::uint32_t chunk = req->chunks_done;
  access(AccessKind::kData, req, chunk, [this, req]() mutable {
    if (req->cancelled) {
      // Chunk-loop boundary: the group completed while this chunk was on
      // the disk; the read was wasted work, the transmission is skipped.
      obs::add(obs::Counter::kSimCancelSkippedWork);
      start_next();
      return;
    }
    if (!req->responded) {
      // Headers are formed from the metadata and the response starts once
      // the first data chunk is in hand (paper, Sec. III-B).
      req->responded = true;
      req->respond_time = engine_.now();
      engine_.schedule_after_inline(config_.network_latency, [this, req] {
        device_.notify_response_started(req);
      });
    }
    // Asynchronous transmission: the process moves on to its next queued
    // task while the chunk is on the wire.
    const double transfer = chunk_transfer_time(*req, req->chunks_done);
    engine_.schedule_after_inline(
        transfer, [this, req = std::move(req), epoch = epoch_]() mutable {
          // The response already started; a crash just drops remaining
          // chunks.
          if (epoch != epoch_) return;
          on_chunk_transmitted(std::move(req));
        });
    start_next();
  });
}

void BackendProcess::on_chunk_transmitted(RequestPtr req) {
  ++req->chunks_done;
  if (req->chunks_done >= req->chunks_total) return;
  if (req->cancelled) {  // chunk-loop boundary: stop streaming to a loser
    obs::add(obs::Counter::kSimCancelSkippedWork);
    return;
  }
  enqueue({Task::Kind::kNextChunk, std::move(req)});
}

double BackendProcess::chunk_transfer_time(
    const Request& req, std::uint32_t chunk_index) const {
  const std::uint64_t offset =
      static_cast<std::uint64_t>(chunk_index) * config_.chunk_bytes;
  COSM_CHECK(offset < req.size_bytes || req.size_bytes == 0,
             "chunk index beyond object size");
  const std::uint64_t bytes =
      std::min<std::uint64_t>(config_.chunk_bytes,
                              req.size_bytes - offset);
  return static_cast<double>(bytes) /
         config_.network_bandwidth_bytes_per_sec;
}

// ------------------------------ BackendDevice ----------------------------

BackendDevice::BackendDevice(Engine& engine, const ClusterConfig& config,
                             SimMetrics& metrics, std::uint32_t device_id,
                             cosm::Rng& seed_source)
    : engine_(engine),
      config_(config),
      id_(device_id),
      disk_(engine, config.disk, seed_source.fork()),
      cache_(config.cache) {
  COSM_REQUIRE(config.processes_per_device >= 1,
               "device needs at least one process");
  if (config.tier.enabled) {
    // Forked between disk_ and the processes; when the tier is disabled
    // no fork happens here and the legacy RNG sequence is preserved.
    tier_ = std::make_unique<TierDevice>(engine, config.tier, disk_,
                                         metrics, device_id,
                                         seed_source.fork());
  }
  processes_.reserve(config.processes_per_device);
  for (std::uint32_t i = 0; i < config.processes_per_device; ++i) {
    processes_.push_back(std::make_unique<BackendProcess>(
        engine, config, metrics, *this, seed_source.fork()));
  }
}

void BackendDevice::connection_arrived(RequestPtr req) {
  req->pool_enter_time = engine_.now();
  if (!online_) {
    // Connection refused; the cluster retries / fails over if configured.
    notify_request_failed(req);
    return;
  }
  const bool coalesce =
      config_.accept_strategy == AcceptStrategy::kBatchDrain;
  pool_.push_back(std::move(req));
  // Rotate the wake order so ties between idle processes don't always
  // favor the same one (kernels don't guarantee a wake order either).
  const std::size_t start = next_wake_offset_++ % processes_.size();
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    processes_[(start + i) % processes_.size()]->signal_accept(coalesce);
  }
}

void BackendDevice::drain_pool(std::vector<RequestPtr>& out) {
  while (!pool_.empty()) {
    out.push_back(std::move(pool_.front()));
    pool_.pop_front();
  }
}

RequestPtr BackendDevice::take_one_from_pool() {
  if (pool_.empty()) return nullptr;
  RequestPtr req = std::move(pool_.front());
  pool_.pop_front();
  return req;
}

void BackendDevice::set_response_started_callback(ResponseStartedFn fn) {
  response_started_ = std::move(fn);
}

void BackendDevice::notify_response_started(const RequestPtr& req) {
  COSM_CHECK(response_started_ != nullptr,
             "device response callback not wired");
  response_started_(req);
}

void BackendDevice::set_request_failed_callback(RequestFailedFn fn) {
  request_failed_ = std::move(fn);
}

void BackendDevice::notify_request_failed(const RequestPtr& req) {
  if (!req || req->responded || req->timed_out || req->failed ||
      req->cancelled) {
    return;  // already terminal (cancelled attempts settled at cancel time)
  }
  req->failed = true;
  // Devices driven outside a Cluster (unit tests) may leave this unwired;
  // the attempt is still marked failed.
  if (request_failed_) request_failed_(req);
}

void BackendDevice::set_online(bool online) {
  if (online == online_) return;
  online_ = online;
  if (online) {
    // Capacity disk first so the tier's recovery drain (dirty blocks
    // written back, oldest first) lands on a live queue.
    disk_.set_online(true);
    if (tier_) tier_->set_online(true);
    for (auto& process : processes_) process->restart();
    return;
  }
  // Crash the processes first so the disk's synchronous failure callbacks
  // see stale epochs (the blocked process is already gone).
  for (auto& process : processes_) process->crash();
  if (tier_) tier_->set_online(false);
  disk_.set_online(false);
  const std::vector<RequestPtr> orphaned = pool_.take_all();
  for (const RequestPtr& req : orphaned) notify_request_failed(req);
}

void BackendDevice::crash_processes(std::uint32_t count) {
  for (auto& process : processes_) {
    if (count == 0) break;
    if (!process->crashed()) {
      process->crash();
      --count;
    }
  }
}

void BackendDevice::restart_processes(std::uint32_t count) {
  for (auto& process : processes_) {
    if (count == 0) break;
    if (process->crashed()) {
      process->restart();
      --count;
    }
  }
}

}  // namespace cosm::sim
