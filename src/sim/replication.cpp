#include "sim/replication.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <thread>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "obs/obs.hpp"
#include "sim/cluster.hpp"
#include "sim/shard.hpp"
#include "sim/source.hpp"

namespace cosm::sim {

namespace {

// SplitMix64 finalizer as an order-sensitive fold (the same construction
// the golden-trace test uses, kept self-contained on purpose).
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

}  // namespace

ReplicationResult run_replication(const ReplicationPlan& plan,
                                  std::uint64_t seed) {
  if (plan.cluster.shards > 1) return run_sharded_replication(plan, seed);
  obs::Span span("sim.replication");
  obs::add(obs::Counter::kSimReplications);
  ClusterConfig cluster_config = plan.cluster;
  cluster_config.seed = seed;
  Cluster cluster(cluster_config);

  workload::CatalogConfig cat_config = plan.catalog;
  cat_config.seed = seed + 1;
  const workload::ObjectCatalog catalog(cat_config);

  workload::PlacementConfig placement_config = plan.placement;
  placement_config.seed = seed + 2;
  const workload::Placement placement(placement_config);

  if (plan.streaming) {
    cluster.metrics().enable_streaming(plan.streaming_config);
  }

  OpenLoopSource source(cluster, catalog, placement, plan.phases,
                        cosm::Rng(seed + 3), plan.write_fraction);
  cluster.metrics().sample_start_time = source.benchmark_start_time();
  const auto loop_start = std::chrono::steady_clock::now();
  source.start();
  cluster.engine().run_until(source.horizon());
  cluster.engine().run_all();
  const auto loop_stop = std::chrono::steady_clock::now();

  return detail::summarize_replication(
      cluster.metrics(), cluster.engine().events_processed(),
      std::chrono::duration<double, std::milli>(loop_stop - loop_start)
          .count(),
      plan.streaming, seed);
}

ReplicationResult detail::summarize_replication(const SimMetrics& metrics,
                                                std::uint64_t events,
                                                double wall_ms,
                                                bool streaming,
                                                std::uint64_t seed) {
  ReplicationResult result;
  result.engine_wall_ms = wall_ms;
  result.seed = seed;
  result.completed = metrics.completed_requests();
  result.timeouts = metrics.timeouts();
  result.failures = metrics.failures();
  result.events = events;
  result.latency_count = metrics.latency_count();
  result.moments = metrics.latency_moments();
  if (result.latency_count > 0) {
    result.q50 = metrics.latency_quantile(0.50);
    result.q99 = metrics.latency_quantile(0.99);
    result.q999 = metrics.latency_quantile(0.999);
  }

  std::uint64_t h = 0x243F6A8885A308D3ULL;
  if (streaming) {
    // No retained samples; the fingerprint folds everything streaming mode
    // observes.  Welford moments are order-sensitive in their float error,
    // so equal bits really do mean the same samples in the same order.
    h = mix(h, result.latency_count);
    if (result.latency_count > 0) {
      h = mix(h, bits(result.moments.mean()));
      h = mix(h, bits(result.moments.variance()));
      h = mix(h, bits(result.moments.min()));
      h = mix(h, bits(result.moments.max()));
    }
  } else {
    result.latencies.reserve(metrics.requests().size());
    for (const RequestSample& sample : metrics.requests()) {
      h = mix(h, bits(sample.response_latency));
      h = mix(h, bits(sample.frontend_arrival));
      h = mix(h, (static_cast<std::uint64_t>(sample.device) << 8) |
                     (sample.timed_out ? 2u : 0u) |
                     (sample.failed ? 1u : 0u));
      if (!sample.timed_out && !sample.failed) {
        result.latencies.push_back(sample.response_latency);
      }
    }
  }
  h = mix(h, result.completed);
  h = mix(h, result.timeouts);
  h = mix(h, result.failures);
  result.fingerprint = h;
  return result;
}

ReplicationSet run_replications(const ReplicationPlan& plan,
                                unsigned num_threads) {
  COSM_REQUIRE(!plan.seeds.empty(), "replication plan needs >= 1 seed");
  ReplicationSet set;
  set.replications.resize(plan.seeds.size());

  // Sharded replications spawn their own per-shard worker threads, so the
  // replication fan-out is narrowed to keep shards × replications near the
  // requested thread budget (num_threads == 0 means "the hardware").
  unsigned fanout = num_threads;
  const unsigned per_replication =
      plan.cluster.shards > 1 && plan.shard_threads != 1
          ? plan.cluster.shards
          : 1;
  if (per_replication > 1) {
    const unsigned budget =
        num_threads != 0 ? num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
    fanout = std::max(1u, budget / per_replication);
  }

  // Fan out: slot-indexed writes only, no shared state between indices.
  cosm::parallel_for(plan.seeds.size(), fanout, [&](std::size_t i) {
    set.replications[i] = run_replication(plan, plan.seeds[i]);
  });

  // Reduce on the calling thread, in plan order — float merges happen in
  // a fixed sequence, so the set-level numbers cannot depend on which
  // thread finished first.
  std::uint64_t h = 0x243F6A8885A308D3ULL;
  for (const ReplicationResult& r : set.replications) {
    set.completed += r.completed;
    set.timeouts += r.timeouts;
    set.failures += r.failures;
    set.events += r.events;
    set.latency_count += r.latency_count;
    set.moments.merge(r.moments);
    h = mix(h, r.fingerprint);
  }
  set.fingerprint = h;
  return set;
}

}  // namespace cosm::sim
