// The storage device: one FCFS disk queue shared by all processes of the
// device (paper Fig. 2).  Service times are drawn per operation kind from
// the configured distributions (Gamma on the authors' testbed, Fig. 5).
// At most N_be operations are ever outstanding because each blocking
// process contributes one — the simulator does not enforce that cap, it
// emerges from the blocking semantics in BackendProcess.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "common/rng.hpp"
#include "numerics/distribution.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"

namespace cosm::sim {

struct DiskProfile {
  numerics::DistPtr index_service;
  numerics::DistPtr meta_service;
  numerics::DistPtr data_service;
  // Write-path services (extension; the paper's workload is read-only):
  // chunk writes and the end-of-PUT commit (fsync + rename + xattr).
  numerics::DistPtr write_service;
  numerics::DistPtr commit_service;
};

// A Gamma-distributed HDD-like profile mirroring the paper's fitted disk
// (Fig. 5 service times in the 5–80 ms range).
DiskProfile default_hdd_profile();

class Disk {
 public:
  // `ok` is false when the operation was killed by an outage rather than
  // served (service_time is 0 in that case).
  using CompletionFn = std::function<void(double service_time, bool ok)>;

  Disk(Engine& engine, DiskProfile profile, cosm::Rng rng);

  // Enqueues one operation; `done` fires at completion with the sampled
  // raw service time (not including queueing).  While offline, `done`
  // fires at the current time with ok = false.
  void submit(AccessKind kind, CompletionFn done);

  // Failure injection: multiplies every subsequent sampled service time
  // (1.0 = healthy).  Models media degradation (pending sector remaps,
  // vibration, misbehaving firmware) for bottleneck-identification and
  // fault-injection experiments.
  void set_degradation(double factor);
  double degradation() const { return degradation_; }

  // Outage injection: taking the disk offline fails the in-service and all
  // queued operations immediately (done(0, false)); subsequent submissions
  // fail until the disk is brought back online.
  void set_online(bool online);
  bool online() const { return online_; }

  std::size_t queue_depth() const {
    return queue_.size() + (busy_ ? 1 : 0);
  }
  std::uint64_t ops_completed() const { return completed_; }
  std::uint64_t ops_failed() const { return failed_; }
  double busy_time() const { return busy_time_; }

 private:
  struct PendingOp {
    AccessKind kind;
    CompletionFn done;
  };

  void start_next();
  double sample_service(AccessKind kind);

  Engine& engine_;
  DiskProfile profile_;
  cosm::Rng rng_;
  std::deque<PendingOp> queue_;
  // The op currently on the platter; kept here (not in the completion
  // event) so an outage can fail it and the stale event can be dropped.
  std::optional<PendingOp> inflight_;
  double degradation_ = 1.0;
  bool online_ = true;
  // Bumped on outage so in-flight completion events recognize themselves
  // as stale.
  std::uint64_t epoch_ = 0;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  double busy_time_ = 0.0;
};

}  // namespace cosm::sim
