// The storage device: one FCFS disk queue shared by all processes of the
// device (paper Fig. 2).  Service times are drawn per operation kind from
// the configured distributions (Gamma on the authors' testbed, Fig. 5).
// At most N_be operations are ever outstanding because each blocking
// process contributes one — the simulator does not enforce that cap, it
// emerges from the blocking semantics in BackendProcess.
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/rng.hpp"
#include "numerics/distribution.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"
#include "sim/fifo_ring.hpp"

namespace cosm::sim {

struct DiskProfile {
  numerics::DistPtr index_service;
  numerics::DistPtr meta_service;
  numerics::DistPtr data_service;
  // Write-path services (extension; the paper's workload is read-only):
  // chunk writes and the end-of-PUT commit (fsync + rename + xattr).
  numerics::DistPtr write_service;
  numerics::DistPtr commit_service;
};

// A Gamma-distributed HDD-like profile mirroring the paper's fitted disk
// (Fig. 5 service times in the 5–80 ms range).
DiskProfile default_hdd_profile();

// A Gamma-distributed SSD-like profile (tiering extension): roughly an
// order of magnitude faster than default_hdd_profile, with writes slower
// than reads as flash translation layers behave.  The SSD cache tier's
// default read/write services come from its data/write slots
// (ClusterConfig::finalize()).
DiskProfile default_ssd_profile();

class Disk {
 public:
  // `ok` is false when the operation was killed by an outage rather than
  // served (service_time is 0 in that case).  Inline capacity 96 covers
  // the largest submitter capture (BackendProcess::access's continuation-
  // carrying completion, ~88 bytes), so queueing a disk op never
  // heap-allocates.
  using CompletionFn = SmallFn<96, double, bool>;

  Disk(Engine& engine, DiskProfile profile, cosm::Rng rng);

  // Enqueues one operation; `done` fires at completion with the sampled
  // raw service time (not including queueing).  While offline, `done`
  // fires at the current time with ok = false.
  //
  // Templated so the (large) completion is constructed once, directly in
  // its resting place — straight into service when the platter is idle
  // (the common case at moderate load; the FIFO queue is untouched), or
  // into the queue slot — instead of relocating a SmallFn<96> through
  // the vtable at every hand-off.  Service order, rng draw order, and
  // therefore simulated behaviour are identical to the queue-everything
  // formulation: `!busy_` implies an empty queue, so the direct start
  // serves exactly the op a push-then-pop would have picked.
  template <typename F>
  void submit(AccessKind kind, F&& done) {
    if (!online_) {
      submit_while_offline(CompletionFn(std::forward<F>(done)));
      return;
    }
    if (!busy_) {
      busy_ = true;
      inflight_.emplace();
      inflight_->kind = kind;
      fill(inflight_->done, std::forward<F>(done));
      COSM_REQUIRE(inflight_->done != nullptr,
                   "disk completion callback required");
      begin_inflight_service();
      return;
    }
    queue_.push_back(PendingOp{kind, nullptr});
    fill(queue_.back().done, std::forward<F>(done));
    COSM_REQUIRE(queue_.back().done != nullptr,
                 "disk completion callback required");
  }

  // Failure injection: multiplies every subsequent sampled service time
  // (1.0 = healthy).  Models media degradation (pending sector remaps,
  // vibration, misbehaving firmware) for bottleneck-identification and
  // fault-injection experiments.
  void set_degradation(double factor);
  double degradation() const { return degradation_; }

  // Outage injection: taking the disk offline fails the in-service and all
  // queued operations immediately (done(0, false)); subsequent submissions
  // fail until the disk is brought back online.
  void set_online(bool online);
  bool online() const { return online_; }

  std::size_t queue_depth() const {
    return queue_.size() + (busy_ ? 1 : 0);
  }
  std::uint64_t ops_completed() const { return completed_; }
  std::uint64_t ops_failed() const { return failed_; }
  double busy_time() const { return busy_time_; }

 private:
  struct PendingOp {
    AccessKind kind;
    CompletionFn done;
  };

  // In-place construction for lambdas, move-assign for an already-built
  // CompletionFn (SmallFn::emplace excludes its own type).
  template <typename F>
  static void fill(CompletionFn& slot, F&& done) {
    if constexpr (std::is_same_v<std::decay_t<F>, CompletionFn>) {
      slot = std::forward<F>(done);
    } else {
      slot.emplace(std::forward<F>(done));
    }
  }

  void submit_while_offline(CompletionFn done);
  // Samples a service time for the op in inflight_ and schedules its
  // completion event (which chains into start_next).
  void begin_inflight_service();
  void start_next();
  double sample_service(AccessKind kind);

  Engine& engine_;
  DiskProfile profile_;
  cosm::Rng rng_;
  // FifoRing, not deque: a PendingOp carries a SmallFn<96>, so a deque
  // chunk held only four — steady-state traffic allocated a chunk every
  // few ops.
  FifoRing<PendingOp> queue_;
  // The op currently on the platter; kept here (not in the completion
  // event) so an outage can fail it and the stale event can be dropped.
  std::optional<PendingOp> inflight_;
  double degradation_ = 1.0;
  bool online_ = true;
  // Bumped on outage so in-flight completion events recognize themselves
  // as stale.
  std::uint64_t epoch_ = 0;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  double busy_time_ = 0.0;
};

}  // namespace cosm::sim
