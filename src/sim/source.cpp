#include "sim/source.hpp"

#include <algorithm>
#include <utility>

#include "common/require.hpp"

namespace cosm::sim {

OpenLoopSource::OpenLoopSource(Cluster& cluster,
                               const workload::ObjectCatalog& catalog,
                               const workload::Placement& placement,
                               const workload::PhasePlan& plan,
                               cosm::Rng rng, double write_fraction,
                               workload::ArrivalProcessPtr arrivals)
    : OpenLoopSource(cluster, catalog, placement,
                     workload::expand_phases(plan), rng, write_fraction,
                     std::move(arrivals)) {}

OpenLoopSource::OpenLoopSource(Cluster& cluster,
                               const workload::ObjectCatalog& catalog,
                               const workload::Placement& placement,
                               std::vector<workload::PhaseSegment> segments,
                               cosm::Rng rng, double write_fraction,
                               workload::ArrivalProcessPtr arrivals)
    : cluster_(cluster),
      catalog_(catalog),
      placement_(placement),
      segments_(std::move(segments)),
      rng_(rng),
      write_fraction_(write_fraction),
      arrival_process_(arrivals
                           ? std::move(arrivals)
                           : std::make_shared<workload::PoissonArrivals>()) {
  COSM_REQUIRE(!segments_.empty(), "phase plan expands to no segments");
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    COSM_REQUIRE(segments_[i].rate > 0 && segments_[i].duration > 0,
                 "phase segments need positive rate and duration");
    if (i > 0) {
      const auto& prev = segments_[i - 1];
      COSM_REQUIRE(segments_[i].start_time >= prev.start_time + prev.duration,
                   "phase segments must be in time order without overlap");
    }
  }
  COSM_REQUIRE(write_fraction >= 0 && write_fraction <= 1,
               "write fraction must be in [0, 1]");
  COSM_REQUIRE(placement_.device_count() == cluster_.config().device_count,
               "placement and cluster disagree on device count");
}

double OpenLoopSource::horizon() const {
  const auto& last = segments_.back();
  return last.start_time + last.duration;
}

double OpenLoopSource::benchmark_start_time() const {
  for (const auto& segment : segments_) {
    if (segment.is_benchmark) return segment.start_time;
  }
  return horizon();
}

void OpenLoopSource::start() {
  // Pre-size the metrics sample vector from the benchmark phases' expected
  // arrival count (Poisson mean = rate * duration, plus headroom for the
  // tail) so sampled long runs never stall on mid-run reallocation.  The
  // cap bounds the up-front reservation for extreme plans.
  double expected = 0.0;
  for (const auto& segment : segments_) {
    if (segment.is_benchmark) expected += segment.rate * segment.duration;
  }
  constexpr double kReserveCap = 1 << 24;
  cluster_.metrics().reserve_request_samples(
      static_cast<std::size_t>(std::min(1.1 * expected, kReserveCap)));
  schedule_next(0, segments_.front().start_time);
}

void OpenLoopSource::schedule_next(std::size_t segment_index, double time) {
  while (segment_index < segments_.size()) {
    const auto& segment = segments_[segment_index];
    const double gap = arrival_process_->next_gap(segment.rate, rng_);
    const double at = std::max(time, segment.start_time) + gap;
    if (at < segment.start_time + segment.duration) {
      cluster_.engine().schedule_at_inline(at, [this, segment_index, at] {
        fire(segment_index, at);
      });
      return;
    }
    // This segment is exhausted; restart the clock at the next segment's
    // boundary so each segment's Poisson process is fresh.
    ++segment_index;
    if (segment_index < segments_.size()) {
      time = segments_[segment_index].start_time;
    }
  }
}

void OpenLoopSource::fire(std::size_t segment_index, double time) {
  ++arrivals_;
  const workload::ObjectId object = catalog_.sample_object(rng_);
  const auto& config = cluster_.config();
  const bool redundancy =
      config.hedge_delay > 0.0 || config.fanout_n > 1 ||
      config.replica_choice != ClusterConfig::ReplicaChoice::kPrimary;
  if ((config.max_retries > 0 && config.failover) || redundancy) {
    // Hand the full replica set to the cluster so retries can fail over
    // (and hedges / fan-out reads / replica-choice scheduling can spread).
    // Exactly one uniform_index draw, same as choose_replica, so seeded
    // runs are unchanged by the retry knobs being on.
    std::vector<std::uint32_t> replicas = placement_.replicas_of(object);
    const std::size_t primary = rng_.uniform_index(replicas.size());
    std::rotate(replicas.begin(),
                replicas.begin() + static_cast<std::ptrdiff_t>(primary),
                replicas.end());
    const bool is_write =
        write_fraction_ > 0.0 && rng_.bernoulli(write_fraction_);
    if (is_write) ++write_arrivals_;
    cluster_.submit_request(object, catalog_.size_of(object),
                            std::move(replicas), is_write);
  } else {
    const auto device = placement_.choose_replica(object, rng_);
    const bool is_write =
        write_fraction_ > 0.0 && rng_.bernoulli(write_fraction_);
    if (is_write) ++write_arrivals_;
    cluster_.submit_request(object, catalog_.size_of(object), device,
                            is_write);
  }
  schedule_next(segment_index, time);
}

std::uint64_t replay_trace(Cluster& cluster,
                           const std::vector<workload::TraceRecord>& trace,
                           const workload::Placement& placement,
                           cosm::Rng& rng) {
  COSM_REQUIRE(placement.device_count() == cluster.config().device_count,
               "placement and cluster disagree on device count");
  std::uint64_t scheduled = 0;
  for (const auto& record : trace) {
    const auto device = placement.choose_replica(record.object_id, rng);
    cluster.engine().schedule_at_inline(
        record.timestamp,
        [&cluster, record, device] {
          cluster.submit_request(record.object_id, record.size_bytes,
                                 device);
        });
    ++scheduled;
  }
  return scheduled;
}

}  // namespace cosm::sim
