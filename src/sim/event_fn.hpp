// Small-buffer-optimized, move-only callable — the simulator's
// replacement for std::function on hot paths.
//
// Every simulated event used to cost a heap allocation: libstdc++'s
// std::function inlines only 16 bytes, and the entities' captures
// ([this, RequestPtr, epoch] and friends) are 16-40 bytes, so each
// schedule_*() call allocated, and Engine::step()'s copy-out of the
// calendar top allocated *again*.  SmallFn stores captures up to
// `Capacity` bytes inline (larger ones fall back to the heap so cold
// paths — fault arming, offline-disk error delivery — stay correct), is
// move-only (no copy of captured state, ever), and exposes
// `fits_inline_v` so hot call sites can static_assert that their capture
// block really is allocation-free (see Engine::schedule_*_inline).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace cosm::sim {

template <std::size_t Capacity, typename... Args>
class SmallFn {
 public:
  // True when F is stored inline (no allocation on construction or move).
  template <typename F>
  static constexpr bool fits_inline_v =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&, Args...>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::decay_t<F>;
    // Null std::function / function pointer wrapped in a SmallFn would
    // only blow up at call time; map it to the empty state here so
    // callers' null checks keep working.
    if constexpr (std::is_constructible_v<bool, const Decayed&>) {
      if (!static_cast<bool>(fn)) return;
    }
    if constexpr (fits_inline_v<Decayed>) {
      ::new (storage()) Decayed(std::forward<F>(fn));
      vtable_ = &inline_vtable<Decayed>;
    } else {
      ::new (storage()) Decayed*(new Decayed(std::forward<F>(fn)));
      vtable_ = &heap_vtable<Decayed>;
    }
  }

  // Constructs a callable in place (over whatever was held before):
  // the hot-path alternative to `fn = SmallFn(lambda)`, which would
  // relocate the capture block through the vtable twice.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&, Args...>>>
  void emplace(F&& fn) {
    reset();
    using Decayed = std::decay_t<F>;
    if constexpr (std::is_constructible_v<bool, const Decayed&>) {
      if (!static_cast<bool>(fn)) return;
    }
    if constexpr (fits_inline_v<Decayed>) {
      ::new (storage()) Decayed(std::forward<F>(fn));
      vtable_ = &inline_vtable<Decayed>;
    } else {
      ::new (storage()) Decayed*(new Decayed(std::forward<F>(fn)));
      vtable_ = &heap_vtable<Decayed>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  SmallFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  ~SmallFn() { reset(); }

  void operator()(Args... args) {
    vtable_->invoke(storage(), std::forward<Args>(args)...);
  }

  explicit operator bool() const { return vtable_ != nullptr; }
  friend bool operator==(const SmallFn& fn, std::nullptr_t) {
    return fn.vtable_ == nullptr;
  }
  friend bool operator!=(const SmallFn& fn, std::nullptr_t) {
    return fn.vtable_ != nullptr;
  }

  // Diagnostic: false when the callable spilled to the heap.
  bool is_inline() const { return vtable_ == nullptr || vtable_->is_inline; }

 private:
  struct VTable {
    void (*invoke)(void*, Args&&...);
    // Move-construct *dst from *src, then destroy *src's remains.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool is_inline;
  };

  template <typename F>
  static constexpr VTable inline_vtable = {
      [](void* s, Args&&... args) {
        (*std::launder(static_cast<F*>(s)))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        F* from = std::launder(static_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* s) noexcept { std::launder(static_cast<F*>(s))->~F(); },
      true};

  template <typename F>
  static constexpr VTable heap_vtable = {
      [](void* s, Args&&... args) {
        (**std::launder(static_cast<F**>(s)))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) F*(*std::launder(static_cast<F**>(src)));
      },
      [](void* s) noexcept { delete *std::launder(static_cast<F**>(s)); },
      false};

  void* storage() { return storage_; }

  void move_from(SmallFn& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(storage(), other.storage());
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage());
      vtable_ = nullptr;
    }
  }

  static_assert(Capacity >= sizeof(void*), "capacity below a heap pointer");
  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[Capacity];
};

}  // namespace cosm::sim
