#include "sim/disk.hpp"

#include "common/require.hpp"

namespace cosm::sim {

DiskProfile default_hdd_profile() {
  // Shapes/means consistent with the paper's Fig. 5: index lookups cost
  // the most (directory walk + inode), metadata (xattr) slightly less,
  // data chunk reads in between; all a few–tens of milliseconds.
  return DiskProfile{
      std::make_shared<numerics::Gamma>(3.0, 300.0),   // mean 10 ms
      std::make_shared<numerics::Gamma>(2.5, 312.5),   // mean  8 ms
      std::make_shared<numerics::Gamma>(2.8, 233.33),  // mean 12 ms
      std::make_shared<numerics::Gamma>(2.2, 157.14),  // write: 14 ms
      std::make_shared<numerics::Gamma>(1.8, 100.0),   // commit: 18 ms
  };
}

DiskProfile default_ssd_profile() {
  // Low-dispersion flash-scale services: sub-millisecond reads, writes a
  // bit slower (program/erase cost), commit the slowest.
  return DiskProfile{
      std::make_shared<numerics::Gamma>(4.0, 5000.0),  // index: 0.8 ms
      std::make_shared<numerics::Gamma>(4.0, 5000.0),  // meta:  0.8 ms
      std::make_shared<numerics::Gamma>(4.0, 4000.0),  // data:  1.0 ms
      std::make_shared<numerics::Gamma>(3.0, 2000.0),  // write: 1.5 ms
      std::make_shared<numerics::Gamma>(2.0, 1000.0),  // commit: 2 ms
  };
}

Disk::Disk(Engine& engine, DiskProfile profile, cosm::Rng rng)
    : engine_(engine), profile_(std::move(profile)), rng_(rng) {
  COSM_REQUIRE(profile_.index_service && profile_.meta_service &&
                   profile_.data_service,
               "disk profile must provide the three read services");
  // Read-only callers (the paper's workload) may omit the write-path
  // services; fill the defaults so PUTs are well-defined if they appear.
  if (!profile_.write_service) {
    profile_.write_service =
        std::make_shared<numerics::Gamma>(2.2, 157.14);  // mean 14 ms
  }
  if (!profile_.commit_service) {
    profile_.commit_service =
        std::make_shared<numerics::Gamma>(1.8, 100.0);   // mean 18 ms
  }
}

void Disk::set_degradation(double factor) {
  COSM_REQUIRE(factor > 0, "degradation factor must be positive");
  degradation_ = factor;
}

void Disk::set_online(bool online) {
  if (online == online_) return;
  online_ = online;
  if (online) return;  // back in service; waits for new submissions
  // Outage: the in-service operation and everything queued behind it fail
  // now.  The already-scheduled completion event of the in-service op
  // recognizes the epoch bump and drops itself.
  ++epoch_;
  busy_ = false;
  std::vector<PendingOp> killed = queue_.take_all();
  if (inflight_) {  // the in-service op fails first, then the queue (FIFO)
    ++failed_;
    PendingOp op = std::move(*inflight_);
    inflight_.reset();
    op.done(0.0, false);
  }
  for (PendingOp& op : killed) {
    ++failed_;
    op.done(0.0, false);
  }
}

double Disk::sample_service(AccessKind kind) {
  switch (kind) {
    case AccessKind::kIndex:
      return profile_.index_service->sample(rng_);
    case AccessKind::kMeta:
      return profile_.meta_service->sample(rng_);
    case AccessKind::kData:
      return profile_.data_service->sample(rng_);
    case AccessKind::kWrite:
      return profile_.write_service->sample(rng_);
    case AccessKind::kCommit:
      return profile_.commit_service->sample(rng_);
  }
  return 0.0;  // unreachable
}

void Disk::submit_while_offline(CompletionFn done) {
  COSM_REQUIRE(done != nullptr, "disk completion callback required");
  // I/O error reported asynchronously (same simulated instant), keeping
  // caller code free of reentrancy.
  ++failed_;
  // Error-delivery capture holds the (large) completion inline in the
  // lambda, so this one spills to the EventCallback heap path — fine,
  // outages are cold.
  engine_.schedule_after(0.0, [done = std::move(done)]() mutable {
    done(0.0, false);
  });
}

void Disk::begin_inflight_service() {
  const double service = degradation_ * sample_service(inflight_->kind);
  busy_time_ += service;
  engine_.schedule_after_inline(service, [this, service, epoch = epoch_] {
    if (epoch != epoch_) return;  // killed by an outage meanwhile
    ++completed_;
    PendingOp done_op = std::move(*inflight_);
    inflight_.reset();
    done_op.done(service, true);
    start_next();
  });
}

void Disk::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  inflight_ = std::move(queue_.front());
  queue_.pop_front();
  begin_inflight_service();
}

}  // namespace cosm::sim
