// Sharded simulation: one topology partitioned into per-shard engines
// running on their own threads, synchronized conservatively in bounded
// time windows at the frontend boundary.
//
// A shard is a full single-threaded sub-Cluster (engine, pools, RNGs,
// metrics — nothing shared) owning a balanced contiguous range of the
// topology's backend devices and frontend processes.  Objects are routed
// to an owner shard by hash, each shard's placement ring is built over its
// own devices, and every replica set is therefore shard-local — retries,
// failover, hedges, and (n,k) fan-out reads never cross a shard boundary.
// The only cross-shard interaction is the open-loop arrival stream, and
// it crosses in exactly one direction: a per-shard source generates
// arrivals at rate/shards (Poisson splitting: the superposition over
// shards is the plan's full Poisson process) and forwards each arrival to
// its owner shard.
//
// Window protocol (the conservative synchronization):
//
//   fence_k = min(k * W, horizon), W = shard_window_length(config)
//
//   per window k, every shard:         between windows, every shard:
//     run_until(fence_k)  ──barrier──▶   drain inbound mailboxes,
//                                        injecting arrivals at their
//                         ◀─barrier──    submit times (all > fence_k)
//
// Correctness rests on a lookahead the workload provides by construction:
// an arrival generated at t_gen (inside window k) is *submitted* at
// t_sub = t_gen + W, which lies strictly beyond fence_k — so when the
// owner drains its mailboxes at the barrier, every injected event is in
// that engine's future and the per-shard (time, seq) total order is a
// pure function of (local schedule order, sender-ordered drain order).
// Both are deterministic, hence the hard gate: bit-identical results for
// a fixed (shard count, seed set), threaded or serial.  The classical
// conservative lookahead here would be the frontend→backend floor
// (network_latency + frontend parse); dispatching arrivals one full
// window ahead decouples W from that floor — any W > 0 is correct, and
// since a time-shifted stationary Poisson stream is the same process,
// shifting the open-loop arrivals by W is statistically free (the phase
// plan's rate profile shifts by W ≪ segment durations).  Larger W only
// amortizes barrier cost; docs/ARCHITECTURE.md derives the default.
//
// What sharding does NOT preserve: results across *different* shard
// counts.  Arrival streams are split per shard, placement rings are
// per-shard, and objects are hash-routed, so a 4-shard run is a different
// (equally valid) sample of the same scenario than a 1-shard run — the
// two agree statistically (moments, quantiles), not bitwise.  The full
// story lives in docs/PERFORMANCE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/replication.hpp"

namespace cosm::sim {

// Balanced contiguous partition of a topology's devices and frontends
// into config.shards ranges: shard s owns devices
// [device_offset(s), device_offset(s + 1)), earlier shards take the
// remainder devices.
struct ShardTopology {
  std::uint32_t shards = 1;
  std::vector<std::uint32_t> device_offsets;    // size shards + 1
  std::vector<std::uint32_t> frontend_offsets;  // size shards + 1

  static ShardTopology build(const ClusterConfig& config);

  std::uint32_t device_offset(std::uint32_t shard) const {
    return device_offsets[shard];
  }
  std::uint32_t devices_of(std::uint32_t shard) const {
    return device_offsets[shard + 1] - device_offsets[shard];
  }
  std::uint32_t frontends_of(std::uint32_t shard) const {
    return frontend_offsets[shard + 1] - frontend_offsets[shard];
  }
  // Smallest per-shard device count (the replica-set feasibility bound).
  std::uint32_t min_devices() const;
};

// The owner shard of an object: a SplitMix64 hash of (id ^ route_seed),
// reduced mod shards.  Deterministic, uniform over shards, and
// independent of the placement hash so per-shard rings stay unbiased.
std::uint32_t shard_of_object(std::uint64_t object_id,
                              std::uint64_t route_seed,
                              std::uint32_t shards);

// The synchronization window length: config.shard_window when set, else
// max(network_latency, 2.5 ms).  Any positive value is conservative-
// correct (see the protocol note above); the floor keeps the barrier
// count per simulated second small enough that synchronization cost
// cannot dominate window work.
double shard_window_length(const ClusterConfig& config);

// Runs one replication of the plan sharded plan.cluster.shards ways and
// merges the per-shard outputs (metrics via SimMetrics::merge_from in
// shard order, events summed) into a ReplicationResult with the same
// fingerprint scheme as the unsharded path.  plan.shard_threads picks the
// execution mode: 0 (default) = one dedicated thread per shard, 1 =
// serial round-robin on the calling thread — both produce bit-identical
// results, which tests/sim/test_shard.cpp pins.  Called automatically by
// run_replication when shards > 1.
ReplicationResult run_sharded_replication(const ReplicationPlan& plan,
                                          std::uint64_t seed);

}  // namespace cosm::sim
