#include "sim/faults.hpp"

#include <cmath>

#include "common/require.hpp"

namespace cosm::sim {

void FaultEvent::validate(std::uint32_t device_count,
                          std::uint32_t processes_per_device) const {
  COSM_REQUIRE(std::isfinite(start) && start >= 0,
               "FaultEvent::start must be finite and >= 0");
  COSM_REQUIRE(std::isfinite(duration) && duration > 0,
               "FaultEvent::duration must be finite and positive");
  if (kind != FaultKind::kNetworkJitter) {
    COSM_REQUIRE(device < device_count,
                 "FaultEvent::device must name an existing device");
  }
  if (kind == FaultKind::kDiskSlowdown || kind == FaultKind::kNetworkJitter) {
    COSM_REQUIRE(std::isfinite(factor) && factor > 0,
                 "FaultEvent::factor must be finite and positive");
  }
  if (kind == FaultKind::kProcessCrash) {
    COSM_REQUIRE(processes >= 1 && processes <= processes_per_device,
                 "FaultEvent::processes must be in [1, processes_per_device]");
  }
}

FaultSchedule& FaultSchedule::disk_slowdown(std::uint32_t device,
                                            double start, double duration,
                                            double factor) {
  return add({FaultKind::kDiskSlowdown, start, duration, device, factor, 1});
}

FaultSchedule& FaultSchedule::device_outage(std::uint32_t device,
                                            double start, double duration) {
  return add({FaultKind::kDeviceOutage, start, duration, device, 1.0, 1});
}

FaultSchedule& FaultSchedule::process_crash(std::uint32_t device,
                                            double start, double duration,
                                            std::uint32_t processes) {
  return add(
      {FaultKind::kProcessCrash, start, duration, device, 1.0, processes});
}

FaultSchedule& FaultSchedule::network_jitter(double start, double duration,
                                             double factor) {
  return add({FaultKind::kNetworkJitter, start, duration, 0, factor, 1});
}

FaultSchedule& FaultSchedule::add(const FaultEvent& event) {
  events_.push_back(event);
  return *this;
}

void FaultSchedule::validate(std::uint32_t device_count,
                             std::uint32_t processes_per_device) const {
  for (const auto& event : events_) {
    event.validate(device_count, processes_per_device);
  }
}

}  // namespace cosm::sim
