#include "sim/cache.hpp"

#include "common/require.hpp"

namespace cosm::sim {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {}

bool LruCache::access(std::uint64_t key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  order_.splice(order_.begin(), order_, it->second);
  return true;
}

void LruCache::insert(std::uint64_t key) {
  if (capacity_ == 0) return;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(key);
  map_[key] = order_.begin();
}

bool LruCache::contains(std::uint64_t key) const {
  return map_.find(key) != map_.end();
}

CacheBank::CacheBank(const CacheBankConfig& config)
    : config_(config),
      index_(config.index_entries),
      meta_(config.meta_entries),
      data_(config.data_chunks) {
  COSM_REQUIRE(config.index_miss_ratio >= 0 && config.index_miss_ratio <= 1,
               "index miss ratio must be in [0, 1]");
  COSM_REQUIRE(config.meta_miss_ratio >= 0 && config.meta_miss_ratio <= 1,
               "meta miss ratio must be in [0, 1]");
  COSM_REQUIRE(config.data_miss_ratio >= 0 && config.data_miss_ratio <= 1,
               "data miss ratio must be in [0, 1]");
}

std::uint64_t CacheBank::chunk_key(std::uint64_t object_id,
                                   std::uint32_t chunk_index) {
  return data_chunk_key(object_id, chunk_index);
}

bool CacheBank::lookup(AccessKind kind, std::uint64_t object_id,
                       std::uint32_t chunk_index, cosm::Rng& rng) {
  COSM_REQUIRE(kind == AccessKind::kIndex || kind == AccessKind::kMeta ||
                   kind == AccessKind::kData,
               "only read-path operations consult the caches");
  if (config_.mode == CacheBankConfig::Mode::kProbabilistic) {
    switch (kind) {
      case AccessKind::kIndex:
        return !rng.bernoulli(config_.index_miss_ratio);
      case AccessKind::kMeta:
        return !rng.bernoulli(config_.meta_miss_ratio);
      case AccessKind::kData:
        return !rng.bernoulli(config_.data_miss_ratio);
      default:
        break;
    }
  }
  switch (kind) {
    case AccessKind::kIndex:
      return index_.access(object_id);
    case AccessKind::kMeta:
      return meta_.access(object_id);
    case AccessKind::kData:
      return data_.access(chunk_key(object_id, chunk_index));
    default:
      break;
  }
  return false;  // unreachable
}

void CacheBank::fill(AccessKind kind, std::uint64_t object_id,
                     std::uint32_t chunk_index) {
  if (config_.mode == CacheBankConfig::Mode::kProbabilistic) return;
  switch (kind) {
    case AccessKind::kIndex:
      index_.insert(object_id);
      break;
    case AccessKind::kMeta:
      meta_.insert(object_id);
      break;
    case AccessKind::kData:
      data_.insert(chunk_key(object_id, chunk_index));
      break;
    default:
      break;
  }
}

}  // namespace cosm::sim
