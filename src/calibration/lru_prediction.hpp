// Predicting LRU hit ratios from the Zipf catalog — Che's approximation.
//
// The tiering extension needs the SSD tier's hit ratio BEFORE any run
// exists (capacity planning: "how much SSD buys p99 <= d?"), so instead
// of measuring it the way the online-metrics path measures page-cache
// miss ratios, we predict it from the same catalog parameters the
// workload generator uses.
//
// Che's approximation (Che, Tung & Wang 2002): an LRU cache of C entries
// fed by an independent-reference stream where item j is referenced with
// probability w_j behaves like a TTL cache with one characteristic time
// T_C, the root of
//
//     sum_j (1 - e^{-w_j T}) = C,
//
// and item j hits with probability 1 - e^{-w_j T_C}; the stream hit
// ratio is H = sum_j w_j (1 - e^{-w_j T_C}).  The approximation is
// remarkably accurate for Zipf-like popularity at realistic cache sizes.
//
// Two-level hierarchy (page cache, then SSD tier): the tier sees the
// page cache's MISS stream.  Under the same TTL picture a chunk of
// reference probability w_j leaks through the page cache with
// probability e^{-w_j T_1}, so the tier's stream re-weights to
// w2_j ∝ w_j e^{-w_j T_1} and Che is applied again with the tier's
// capacity.  Validity limits (IRM assumption, promotion-on-read
// coupling): docs/TIERING.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workload/catalog.hpp"

namespace cosm::calibration {

// Chunk-level reference weights of the catalog under the independent
// reference model: a request samples object i with popularity p_i and
// reads all of its c_i chunks, so every chunk of object i carries the
// per-chunk-access reference probability w_i = p_i / sum_j p_j c_j.
// Chunks of one object share a weight, so the vectors are per-object
// with an explicit chunk multiplicity.
struct ChunkPopulation {
  std::vector<double> weight;  // per-chunk reference probability, by object
  std::vector<double> chunks;  // chunks per object (>= 1)
  double total_chunks = 0.0;   // catalog footprint, in chunks
};

ChunkPopulation chunk_population(const workload::ObjectCatalog& catalog,
                                 std::uint64_t chunk_bytes);

// Che's characteristic time for a cache of `capacity_chunks` fed by
// `pop`; +infinity when the whole catalog fits.
double che_characteristic_time(const ChunkPopulation& pop,
                               std::size_t capacity_chunks);

// Predicted steady-state hit ratio of an LRU cache of `capacity_chunks`
// chunks fed directly by the catalog's chunk stream (the page cache's
// data bank in CacheBankConfig::Mode::kLru).
double predict_lru_hit_ratio(const ChunkPopulation& pop,
                             std::size_t capacity_chunks);

// Predicted hit ratio of an SSD tier of `tier_capacity_chunks` sitting
// BEHIND a page cache of `mem_capacity_chunks` (core::TierOptions::
// hit_ratio): Che applied to the page-cache-filtered miss stream.
double predict_tier_hit_ratio(const ChunkPopulation& pop,
                              std::size_t mem_capacity_chunks,
                              std::size_t tier_capacity_chunks);

}  // namespace cosm::calibration
