#include "calibration/parse_benchmark.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "sim/cluster.hpp"

namespace cosm::calibration {

ParseCalibration benchmark_parse(const sim::ClusterConfig& base_config,
                                 const ParseBenchmarkConfig& config) {
  COSM_REQUIRE(config.requests >= 10,
               "parse benchmark needs at least 10 requests");
  sim::ClusterConfig bench_config = base_config;
  // The hot-object trick: everything is served from memory.
  bench_config.cache.mode = sim::CacheBankConfig::Mode::kProbabilistic;
  bench_config.cache.index_miss_ratio = 0.0;
  bench_config.cache.meta_miss_ratio = 0.0;
  bench_config.cache.data_miss_ratio = 0.0;
  bench_config.seed = config.seed;
  sim::Cluster cluster(bench_config);

  ParseCalibration calibration;
  calibration.frontend_samples.reserve(config.requests);
  calibration.backend_samples.reserve(config.requests);

  const double d_net =
      static_cast<double>(config.object_size_bytes) /
      bench_config.network_bandwidth_bytes_per_sec;

  // Closed loop with one outstanding request: submit, drain, measure.
  for (std::uint32_t i = 0; i < config.requests; ++i) {
    cluster.engine().schedule_after(1e-3, [&cluster, &config] {
      cluster.submit_request(/*object_id=*/1, config.object_size_bytes, 0);
    });
    cluster.engine().run_all();
    COSM_CHECK(cluster.metrics().requests().size() == i + 1,
               "closed-loop request did not complete");
    const sim::RequestSample& sample = cluster.metrics().requests().back();
    const double d_fp = sample.response_latency;
    const double d_bp = sample.backend_latency;
    calibration.backend_samples.push_back(d_bp);
    calibration.frontend_samples.push_back(
        std::max(0.0, d_fp - d_bp - d_net));
  }

  calibration.frontend_fit =
      numerics::fit_best(calibration.frontend_samples);
  calibration.backend_fit = numerics::fit_best(calibration.backend_samples);
  return calibration;
}

}  // namespace cosm::calibration
