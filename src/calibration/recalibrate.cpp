#include "calibration/recalibrate.hpp"

#include <exception>
#include <utility>

#include "common/require.hpp"
#include "core/system_model.hpp"
#include "obs/obs.hpp"

namespace cosm::calibration {

void RecalibrateConfig::validate() const {
  COSM_REQUIRE(window > 0, "window length must be positive");
  COSM_REQUIRE(min_requests > 0, "min_requests must be >= 1");
  COSM_REQUIRE(!slas.empty(), "the published SLA grid must be non-empty");
  for (const double sla : slas) {
    COSM_REQUIRE(sla > 0, "SLA points must be positive seconds");
  }
  if (population != nullptr) {
    COSM_REQUIRE(tier_capacity_chunks > 0,
                 "tiered recalibration needs a tier capacity");
  }
  drift.validate();
}

CalibrationLoop::CalibrationLoop(RecalibrateConfig config,
                                 DiskCalibration disk_calibration,
                                 core::FrontendParams frontend,
                                 numerics::DistPtr backend_parse,
                                 std::uint32_t processes)
    : config_(std::move(config)),
      disk_calibration_(std::move(disk_calibration)),
      frontend_(std::move(frontend)),
      backend_parse_(std::move(backend_parse)),
      processes_(processes),
      detector_(config_.drift) {
  config_.validate();
  COSM_REQUIRE(backend_parse_ != nullptr, "backend_parse must be set");
  COSM_REQUIRE(processes_ >= 1, "processes must be >= 1");
}

void CalibrationLoop::prime(const sim::DeviceCounters& snapshot) {
  previous_ = snapshot;
}

const core::DeviceParams& CalibrationLoop::params() const {
  COSM_REQUIRE(calibrated(), "no calibration published yet");
  return *params_;
}

const std::vector<double>& CalibrationLoop::predictions() const {
  COSM_REQUIRE(calibrated(), "no calibration published yet");
  return predictions_;
}

CalibrationLoop::WindowResult CalibrationLoop::offer(
    const sim::DeviceCounters& snapshot) {
  ++windows_;
  const std::optional<WindowObservation> window =
      observe_window(previous_, snapshot, config_.window,
                     config_.min_requests, &skew_carry_);
  previous_ = snapshot;

  WindowResult result;
  if (!window) {
    // Insufficiency is an expected idle condition (Satellite: the loop
    // consumes the outcome instead of catching throws) — skip the window
    // without feeding the detector, so idle gaps neither alarm nor
    // corrupt the baseline.
    obs::add(obs::Counter::kCalibInsufficientWindows);
    ++insufficient_;
    result.insufficient = true;
    result.verdict = detector_.baseline_ready() ? DriftVerdict::kStable
                                                : DriftVerdict::kWarmup;
    return result;
  }
  last_observation_ = window;

  DriftSignals signals;
  signals.arrival_rate = window->observation.request_rate;
  signals.data_read_rate = window->observation.data_read_rate;
  signals.index_miss_ratio = window->observation.index_miss_ratio;
  signals.meta_miss_ratio = window->observation.meta_miss_ratio;
  signals.data_miss_ratio = window->observation.data_miss_ratio;
  signals.mean_disk_service = window->aggregate_mean_service;

  const DriftDecision decision = detector_.offer(signals);
  result.verdict = decision.verdict;
  result.alarm_mask = decision.alarm_mask;

  const bool initial_fit =
      !calibrated() && decision.verdict != DriftVerdict::kWarmup;
  const bool drift_fit = decision.verdict == DriftVerdict::kDrift;
  if (!initial_fit && !drift_fit) return result;

  if (refit(*window, drift_fit ? decision.alarm_mask : 0)) {
    result.refit = true;
    // The regime changed under the detector's feet: judge the new regime
    // against its own baseline.  The initial fit is not a regime change,
    // so its baseline stands.
    if (drift_fit) detector_.rebaseline();
  } else {
    result.refit_failed = true;
    // Still rebaseline on confirmed drift: re-confirming against the
    // stale baseline every window would retry the failing fit forever.
    if (drift_fit) detector_.rebaseline();
  }
  return result;
}

bool CalibrationLoop::refit(const WindowObservation& window,
                            std::uint32_t alarm_mask) {
  core::SystemParams sys;
  std::vector<double> predictions;
  std::uint64_t fingerprint = 0;
  try {
    core::DeviceParams params = build_device_params(
        window.observation, disk_calibration_, backend_parse_, processes_,
        window.aggregate_mean_service);
    if (config_.population != nullptr) {
      params.tier = config_.tier_template;
      params.tier.enabled = true;
      params.tier.hit_ratio = predict_tier_hit_ratio(
          *config_.population, config_.mem_capacity_chunks,
          config_.tier_capacity_chunks);
    }
    sys.frontend = frontend_;
    sys.frontend.arrival_rate = params.arrival_rate;
    sys.devices.push_back(std::move(params));

    core::PredictOptions predict;
    predict.num_threads = config_.num_threads;
    predict.cache = config_.cache;
    predict.tape_mode = config_.tape_mode;
    const core::SystemModel model(sys, config_.options, predict);
    predictions = model.predict_sla_percentiles(config_.slas);
    fingerprint = model.devices().front().fingerprint();
  } catch (const std::exception&) {
    // Unfittable regime (saturated device, degenerate split, exhausted
    // Che bracket): keep the previous calibration published rather than
    // replacing it with nothing.
    return false;
  }

  // Evict exactly the entries the previous publication made stale.
  std::size_t evictions = 0;
  if (config_.cache != nullptr && calibrated()) {
    if (config_.cache->backends.erase(
            core::backend_fingerprint(*params_, config_.options))) {
      ++evictions;
    }
    for (const double sla : config_.slas) {
      if (config_.cache->cdf.erase(core::cdf_cache_key(
              published_fingerprint_, sla, config_.tape_mode))) {
        ++evictions;
      }
    }
    obs::add(obs::Counter::kCalibRefitCacheEvictions, evictions);
  }

  params_ = sys.devices.front();
  predictions_ = std::move(predictions);
  published_fingerprint_ = fingerprint;
  obs::add(obs::Counter::kCalibRefitModels);

  RefitEvent event;
  event.window_index = windows_;
  event.alarm_mask = alarm_mask;
  event.params = *params_;
  event.predictions = predictions_;
  event.cache_evictions = evictions;
  refits_.push_back(std::move(event));
  return true;
}

}  // namespace cosm::calibration
