// Section IV-B: "System online metrics".
//
// In production, the model's online inputs come from monitoring, not from
// simulator internals:
//  * arrival and data-read rates — request/chunk counting;
//  * cache miss ratios — a latency threshold separates memory hits from
//    disk misses ("thanks to the huge speed gap between memory and disk";
//    the paper uses 0.015 ms);
//  * per-kind mean disk service times — Linux only reports one aggregate
//    disk service time, so the paper splits it using the service-time
//    proportions measured offline (Sec. IV-A) by solving
//        b_i/p_i = b_m/p_m = b_d/p_d
//        m_i b_i r + m_m b_m r + m_d b_d r_d = (m_i r + m_m r + m_d r_d) b.
//
// This module implements those estimators, plus a builder that assembles
// core::DeviceParams from simulator measurements the way an operator
// would from monitoring data.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "calibration/disk_benchmark.hpp"
#include "core/params.hpp"
#include "sim/metrics.hpp"

namespace cosm::calibration {

// Fraction of operation latencies above the hit/miss threshold (seconds).
// The paper's threshold is 0.015 ms.
double estimate_miss_ratio(std::span<const double> operation_latencies,
                           double threshold = 0.015e-3);

// Outcome-carrying variant for the online calibration loop: an idle
// window legitimately produces zero samples, so emptiness reports as
// nullopt ("insufficient samples") instead of throwing.  A non-positive
// threshold is still caller misuse and still throws.
std::optional<double> try_estimate_miss_ratio(
    std::span<const double> operation_latencies, double threshold = 0.015e-3);

struct ServiceSplit {
  double index_mean = 0.0;
  double meta_mean = 0.0;
  double data_mean = 0.0;
};

// Solves the Sec. IV-B equations: given the offline proportions
// (p_i, p_m, p_d), the miss ratios, the rates (r, r_d) and the aggregate
// mean disk service time b, recover per-kind means.
ServiceSplit split_disk_service(double aggregate_mean_service,
                                double index_proportion,
                                double meta_proportion,
                                double data_proportion,
                                double index_miss_ratio,
                                double meta_miss_ratio,
                                double data_miss_ratio, double request_rate,
                                double data_read_rate);

struct DeviceObservation {
  double request_rate = 0.0;
  double data_read_rate = 0.0;
  double index_miss_ratio = 0.0;
  double meta_miss_ratio = 0.0;
  double data_miss_ratio = 0.0;
};

// Reads one device's online metrics out of a simulation run of duration
// `window` seconds (counts / window).
DeviceObservation observe_device(const sim::SimMetrics& metrics,
                                 std::uint32_t device, double window);

// One closed measurement window, derived from counter deltas between two
// snapshots of a device's counters (the calibration loop's unit of
// observation).
struct WindowObservation {
  DeviceObservation observation;
  // Aggregate mean disk service time over the window (all kinds pooled) —
  // the operator-visible `b` that split_disk_service consumes, and a
  // drift signal in its own right.
  double aggregate_mean_service = 0.0;
  std::uint64_t requests = 0;  // raw delta counts backing the estimates
  std::uint64_t disk_ops = 0;
};

// Windowed counterpart of observe_device: estimates one device's online
// metrics from the counter deltas `end - start` over `window` seconds.
//
// Insufficiency is an outcome, not an error: a window with fewer than
// `min_requests` requests or with no disk operation at all cannot support
// a trustworthy fit, so the function returns nullopt (callers count it
// under calib.insufficient_windows) instead of throwing the way the
// whole-run estimators do on misuse.
//
// Boundary skew: a window can close with fewer data reads than requests
// because chunk reads of requests admitted near the boundary land in the
// next window — a transient violation of the r_d >= r identity that
// split_disk_service rightly rejects.  observe_window clamps the window
// to r_d = r, counts the clamp under calib.window_skew, and carries the
// deficit in `*skew_carry` so the surplus reads arriving next window are
// not double-counted.  Pass the same carry slot (initialised to 0) across
// consecutive windows of one device.
std::optional<WindowObservation> observe_window(
    const sim::DeviceCounters& start, const sim::DeviceCounters& end,
    double window, std::uint64_t min_requests, double* skew_carry);

// Rescales a fitted distribution to a new mean, preserving its shape: for
// the Gamma winner this keeps k and scales the rate (the paper's "the
// proportion of b_i, b_m, b_d remains in the context of fluctuating disk
// service times").  A fitted distribution reporting non-positive variance
// (or mean) cannot form the coefficient of variation the generic fallback
// needs; such inputs route to Degenerate(new_mean) — counted under
// calib.refit.degenerate_rescale — instead of a fabricated near-zero-CV
// Gamma.  Precondition: new_mean > 0.
numerics::DistPtr rescale_to_mean(const numerics::DistPtr& fitted,
                                  double new_mean);

// Assembles model parameters for one device the way an operator would:
// online observation + offline disk calibration (fitted distributions are
// rescaled so their means satisfy the service-split equations; their
// shapes come from the offline fit, mirroring the paper's assumption that
// the *proportions* of service times persist).
core::DeviceParams build_device_params(
    const DeviceObservation& observation,
    const DiskCalibration& disk_calibration,
    numerics::DistPtr backend_parse, std::uint32_t processes,
    double aggregate_mean_service);

}  // namespace cosm::calibration
