#include "calibration/drift.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "obs/obs.hpp"

namespace cosm::calibration {

namespace {

constexpr std::array<std::string_view, kDriftSignalCount> kSignalNames = {
    "arrival_rate",   "data_read_rate",    "index_miss_ratio",
    "meta_miss_ratio", "data_miss_ratio",  "mean_disk_service",
};

// Signals in [0, 1] (miss ratios) deviate absolutely; unbounded signals
// (rates, service times) deviate relative to their baseline so one
// (delta, lambda) pair is scale-free across them.
constexpr std::array<bool, kDriftSignalCount> kRelativeSignal = {
    true, true, false, false, false, true,
};

// Floor for relative normalization: a baseline at (or below) this is
// treated as "effectively zero", falling back to absolute deviations so
// an idle-baseline signal cannot divide to infinity.
constexpr double kRelativeFloor = 1e-12;

std::array<double, kDriftSignalCount> signal_values(
    const DriftSignals& signals) {
  return {signals.arrival_rate,     signals.data_read_rate,
          signals.index_miss_ratio, signals.meta_miss_ratio,
          signals.data_miss_ratio,  signals.mean_disk_service};
}

}  // namespace

std::string_view drift_signal_name(std::size_t index) {
  COSM_REQUIRE(index < kDriftSignalCount, "drift signal index out of range");
  return kSignalNames[index];
}

std::string_view to_string(DriftVerdict verdict) {
  switch (verdict) {
    case DriftVerdict::kWarmup:
      return "warmup";
    case DriftVerdict::kCooldown:
      return "cooldown";
    case DriftVerdict::kStable:
      return "stable";
    case DriftVerdict::kAlarm:
      return "alarm";
    case DriftVerdict::kDrift:
      return "drift";
  }
  return "unknown";
}

void DriftConfig::validate() const {
  COSM_REQUIRE(ph_delta >= 0, "ph_delta must be non-negative");
  COSM_REQUIRE(ph_lambda > 0, "ph_lambda must be positive");
  COSM_REQUIRE(warmup_windows >= 1, "warmup needs at least one window");
  COSM_REQUIRE(confirm_windows >= 1, "confirm_windows must be >= 1");
  COSM_REQUIRE(cooldown_windows >= 0, "cooldown_windows must be >= 0");
}

DriftDetector::DriftDetector(DriftConfig config) : config_(config) {
  config_.validate();
  warmup_remaining_ = config_.warmup_windows;
}

DriftDecision DriftDetector::offer(const DriftSignals& signals) {
  obs::add(obs::Counter::kCalibDriftWindows);
  ++windows_;
  const std::array<double, kDriftSignalCount> values = signal_values(signals);

  if (warmup_remaining_ > 0) {
    for (std::size_t i = 0; i < kDriftSignalCount; ++i) {
      signals_[i].warmup_sum += values[i];
    }
    if (--warmup_remaining_ == 0) {
      for (SignalState& state : signals_) {
        state.baseline =
            state.warmup_sum / static_cast<double>(config_.warmup_windows);
        state.warmup_sum = 0.0;
        state.up = state.down = 0.0;
      }
      baseline_ready_ = true;
    }
    return {DriftVerdict::kWarmup, 0};
  }

  std::uint32_t alarm_mask = 0;
  for (std::size_t i = 0; i < kDriftSignalCount; ++i) {
    SignalState& state = signals_[i];
    double dev = values[i] - state.baseline;
    if (kRelativeSignal[i] && std::abs(state.baseline) > kRelativeFloor) {
      dev /= std::abs(state.baseline);
    }
    state.up = std::max(0.0, state.up + dev - config_.ph_delta);
    state.down = std::max(0.0, state.down - dev - config_.ph_delta);
    if (state.up > config_.ph_lambda || state.down > config_.ph_lambda) {
      alarm_mask |= std::uint32_t{1} << i;
    }
  }

  if (cooldown_remaining_ > 0) {
    // Quiet period after a re-fit: the statistics keep updating (so a
    // genuine second shift is not forgotten) but alarms are held and the
    // confirmation streak stays broken.
    --cooldown_remaining_;
    consecutive_alarms_ = 0;
    return {DriftVerdict::kCooldown, alarm_mask};
  }

  if (alarm_mask == 0) {
    consecutive_alarms_ = 0;
    return {DriftVerdict::kStable, 0};
  }

  obs::add(obs::Counter::kCalibDriftAlarms);
  ++consecutive_alarms_;
  if (consecutive_alarms_ < config_.confirm_windows) {
    return {DriftVerdict::kAlarm, alarm_mask};
  }
  if (consecutive_alarms_ == config_.confirm_windows) {
    obs::add(obs::Counter::kCalibDriftDetected);
  }
  return {DriftVerdict::kDrift, alarm_mask};
}

void DriftDetector::rebaseline() {
  for (SignalState& state : signals_) state = SignalState{};
  warmup_remaining_ = config_.warmup_windows;
  cooldown_remaining_ = config_.cooldown_windows;
  consecutive_alarms_ = 0;
  baseline_ready_ = false;
}

}  // namespace cosm::calibration
