#include "calibration/lru_prediction.hpp"

#include <cmath>
#include <limits>

#include "common/require.hpp"

namespace cosm::calibration {

namespace {

// Expected occupancy of a TTL cache with characteristic time t:
// sum_i c_i (1 - e^{-w_i t}).  Monotone increasing in t, saturating at
// the catalog footprint.
double occupancy(const ChunkPopulation& pop, double t) {
  double occ = 0.0;
  for (std::size_t i = 0; i < pop.weight.size(); ++i) {
    occ += pop.chunks[i] * -std::expm1(-pop.weight[i] * t);
  }
  return occ;
}

// Hit ratio of the TTL cache at characteristic time t: each chunk of
// object i is referenced with probability w_i and hits with probability
// 1 - e^{-w_i t}.
double ttl_hit_ratio(const ChunkPopulation& pop, double t) {
  double hit = 0.0;
  for (std::size_t i = 0; i < pop.weight.size(); ++i) {
    hit += pop.chunks[i] * pop.weight[i] * -std::expm1(-pop.weight[i] * t);
  }
  return hit;
}

double solve_characteristic_time(const ChunkPopulation& pop,
                                 std::size_t capacity_chunks) {
  const double capacity = static_cast<double>(capacity_chunks);
  if (capacity <= 0.0) return 0.0;
  if (capacity >= pop.total_chunks) {
    return std::numeric_limits<double>::infinity();
  }
  // Bracket: occupancy(0) = 0 and occupancy is monotone, so double the
  // upper end until it clears the capacity, then bisect.  The doubling
  // budget (2^200 ~ 1.6e60) is generous, but filtered tier populations
  // can carry weights as small as w * e^{-w t1} — far below 1e-60 — whose
  // occupancy never clears the capacity within the budget.  Bisecting
  // that unverified bracket would converge on hi and return a silently
  // wrong characteristic time, so exhaustion must fail loudly instead.
  double lo = 0.0;
  double hi = 1.0;
  int doublings = 0;
  while (occupancy(pop, hi) < capacity) {
    COSM_CHECK(++doublings <= 200,
               "characteristic-time bracket exhausted: occupancy cannot "
               "reach the cache capacity within 200 doublings (population "
               "weights too small; capacity effectively unreachable)");
    lo = hi;
    hi *= 2.0;
  }
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (occupancy(pop, mid) < capacity) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

ChunkPopulation chunk_population(const workload::ObjectCatalog& catalog,
                                 std::uint64_t chunk_bytes) {
  COSM_REQUIRE(chunk_bytes > 0, "chunk_bytes must be positive");
  COSM_REQUIRE(catalog.object_count() > 0, "catalog must be non-empty");
  ChunkPopulation pop;
  const std::uint64_t n = catalog.object_count();
  pop.weight.reserve(n);
  pop.chunks.reserve(n);
  double reference_mass = 0.0;  // sum_j p_j c_j (chunk reads per request)
  for (std::uint64_t id = 0; id < n; ++id) {
    const std::uint64_t size = catalog.size_of(id);
    const double chunks = static_cast<double>(
        size == 0 ? 1 : (size + chunk_bytes - 1) / chunk_bytes);
    const double p = catalog.popularity(id);
    pop.weight.push_back(p);  // normalized below
    pop.chunks.push_back(chunks);
    pop.total_chunks += chunks;
    reference_mass += p * chunks;
  }
  COSM_REQUIRE(reference_mass > 0, "catalog popularity must not vanish");
  for (double& w : pop.weight) w /= reference_mass;
  return pop;
}

double che_characteristic_time(const ChunkPopulation& pop,
                               std::size_t capacity_chunks) {
  return solve_characteristic_time(pop, capacity_chunks);
}

double predict_lru_hit_ratio(const ChunkPopulation& pop,
                             std::size_t capacity_chunks) {
  const double t = solve_characteristic_time(pop, capacity_chunks);
  if (std::isinf(t)) return 1.0;  // everything fits
  return ttl_hit_ratio(pop, t);
}

double predict_tier_hit_ratio(const ChunkPopulation& pop,
                              std::size_t mem_capacity_chunks,
                              std::size_t tier_capacity_chunks) {
  const double t1 = solve_characteristic_time(pop, mem_capacity_chunks);
  if (std::isinf(t1)) return 0.0;  // the page cache absorbs the stream
  // The tier sees the page cache's miss stream: chunk i leaks through
  // with probability e^{-w_i t1}, so its tier-stream weight re-scales.
  ChunkPopulation filtered;
  filtered.weight.reserve(pop.weight.size());
  filtered.chunks = pop.chunks;
  filtered.total_chunks = pop.total_chunks;
  double miss_mass = 0.0;
  for (std::size_t i = 0; i < pop.weight.size(); ++i) {
    const double leak = pop.weight[i] * std::exp(-pop.weight[i] * t1);
    filtered.weight.push_back(leak);
    miss_mass += pop.chunks[i] * leak;
  }
  if (miss_mass <= 0.0) return 0.0;
  for (double& w : filtered.weight) w /= miss_mass;
  return predict_lru_hit_ratio(filtered, tier_capacity_chunks);
}

}  // namespace cosm::calibration
