// Section IV-A: "The distribution of request parsing latencies".
//
// The paper benchmarks the whole system closed-loop against one hot
// object (so everything is served from cache) with max 1 outstanding
// request (so nothing queues), recording per request
//   D_fp — frontend receive -> frontend starts responding,
//   D_bp — backend receive -> backend starts responding,
// and computing
//   backend parse  = D_bp,
//   frontend parse = D_fp - D_bp - D_net,  D_net = size / bandwidth.
// We run the identical procedure against the simulated cluster.
#pragma once

#include <cstdint>
#include <vector>

#include "numerics/fitting.hpp"
#include "sim/config.hpp"

namespace cosm::calibration {

struct ParseBenchmarkConfig {
  std::uint32_t requests = 2000;
  std::uint64_t object_size_bytes = 4096;
  std::uint64_t seed = 13;
};

struct ParseCalibration {
  std::vector<double> frontend_samples;
  std::vector<double> backend_samples;
  numerics::FitSelection frontend_fit;
  numerics::FitSelection backend_fit;
};

// Benchmarks a cluster with the given configuration (caches forced to
// all-hit for the run, mirroring the hot-object trick).
ParseCalibration benchmark_parse(const sim::ClusterConfig& base_config,
                                 const ParseBenchmarkConfig& config = {});

}  // namespace cosm::calibration
