// Online drift detection for the digital-twin calibration loop.
//
// A published calibration is only as good as the regime it was fitted
// in: arrival ramps, working-set shifts that move the cache miss ratios,
// and disk service degradation all leave the frozen model predicting a
// system that no longer exists.  DriftDetector watches the windowed
// Sec. IV-B online metrics — one DriftSignals sample per closed
// measurement window — and decides, per window, whether the regime has
// changed enough to warrant a re-fit.
//
// Detector math.  Each signal runs an independent two-sided CUSUM in the
// Page–Hinkley form over deviations from a frozen baseline:
//
//   dev_t  = normalize(x_t) - normalize(baseline)      (see below)
//   up_t   = max(0, up_{t-1}  + dev_t - delta)
//   down_t = max(0, down_{t-1} - dev_t - delta)
//   alarm when up_t > lambda or down_t > lambda.
//
// The baseline is the mean of the first `warmup_windows` samples after
// construction or rebaseline().  Rates and service times are scale-free
// (dev is relative: x/baseline - 1) so one (delta, lambda) pair covers
// signals of any magnitude; miss ratios are already in [0, 1] and use
// absolute deviations (a relative form would explode near the
// hot-cache baseline of ~0).
//
// Hysteresis — the no-flap contract.  `delta` absorbs per-window drift
// below its magnitude, so slow diurnal ramps never accumulate; an alarm
// must persist `confirm_windows` consecutive windows before the verdict
// escalates to kDrift; and after rebaseline() (which the calibration
// loop calls on every re-fit) the detector re-learns its baseline over a
// fresh warmup and then holds alarms for `cooldown_windows` more
// windows, so one regime change produces one re-fit, not a burst.
// tests/calibration/test_drift.cpp pins stationary stability, detection
// latency, and ramp robustness.
//
// Observability: every offer() files calib.drift.windows; windows where
// some signal crossed file calib.drift.alarms; confirmed verdicts file
// calib.drift.detected (once per confirmation, not per drifting window).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cosm::calibration {

// One window's online metrics — the Sec. IV-B monitoring quantities the
// loop derives via observe_window().
struct DriftSignals {
  double arrival_rate = 0.0;       // r (req/s)
  double data_read_rate = 0.0;     // r_d (chunk reads/s)
  double index_miss_ratio = 0.0;   // m_i
  double meta_miss_ratio = 0.0;    // m_m
  double data_miss_ratio = 0.0;    // m_d
  double mean_disk_service = 0.0;  // aggregate b (seconds)
};

inline constexpr std::size_t kDriftSignalCount = 6;

// Stable name of signal `index` (the DriftSignals field order) — used in
// drift_status JSON and test diagnostics.
std::string_view drift_signal_name(std::size_t index);

struct DriftConfig {
  // Per-window drift allowance in normalized units: deviations below
  // delta never accumulate, which is what absorbs slow diurnal ramps.
  double ph_delta = 0.05;
  // Alarm threshold on the cumulative statistic (normalized units).
  double ph_lambda = 0.4;
  // Windows averaged into the frozen baseline after (re)baseline.
  int warmup_windows = 3;
  // Consecutive alarmed windows required before kDrift is declared.
  int confirm_windows = 2;
  // Post-warmup windows after rebaseline() during which alarms are held.
  int cooldown_windows = 2;

  void validate() const;
};

enum class DriftVerdict : std::uint8_t {
  kWarmup,    // collecting the baseline; no test is run
  kCooldown,  // post-refit quiet period; statistics update, alarms held
  kStable,    // no signal crossed its test this window
  kAlarm,     // crossed, but not yet for confirm_windows in a row
  kDrift,     // confirmed regime change — re-fit now
};

std::string_view to_string(DriftVerdict verdict);

struct DriftDecision {
  DriftVerdict verdict = DriftVerdict::kWarmup;
  // Bit i set = signal i (DriftSignals field order) crossed its test.
  std::uint32_t alarm_mask = 0;
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftConfig config = {});

  // Offers one closed window's signals; returns the verdict.  Windows
  // must arrive in time order, one call per window.
  DriftDecision offer(const DriftSignals& signals);

  // Discards the baseline and test statistics and starts a fresh warmup
  // followed by a cooldown — called by the calibration loop after every
  // re-fit so the new regime is judged against its own baseline.
  void rebaseline();

  const DriftConfig& config() const { return config_; }
  std::uint64_t windows_seen() const { return windows_; }
  // Baseline currently frozen (valid once warmup completed).
  bool baseline_ready() const { return baseline_ready_; }

 private:
  struct SignalState {
    double baseline = 0.0;
    double warmup_sum = 0.0;
    double up = 0.0;
    double down = 0.0;
  };

  DriftConfig config_;
  std::array<SignalState, kDriftSignalCount> signals_{};
  std::uint64_t windows_ = 0;
  int warmup_remaining_ = 0;
  int cooldown_remaining_ = 0;
  int consecutive_alarms_ = 0;
  bool baseline_ready_ = false;
};

}  // namespace cosm::calibration
