#include "calibration/online_metrics.hpp"

#include <cmath>

#include "common/require.hpp"
#include "obs/obs.hpp"

namespace cosm::calibration {

double estimate_miss_ratio(std::span<const double> operation_latencies,
                           double threshold) {
  COSM_REQUIRE(!operation_latencies.empty(),
               "miss-ratio estimation needs samples");
  COSM_REQUIRE(threshold > 0, "latency threshold must be positive");
  std::size_t misses = 0;
  for (const double latency : operation_latencies) {
    if (latency > threshold) ++misses;
  }
  return static_cast<double>(misses) /
         static_cast<double>(operation_latencies.size());
}

std::optional<double> try_estimate_miss_ratio(
    std::span<const double> operation_latencies, double threshold) {
  COSM_REQUIRE(threshold > 0, "latency threshold must be positive");
  if (operation_latencies.empty()) return std::nullopt;
  return estimate_miss_ratio(operation_latencies, threshold);
}

ServiceSplit split_disk_service(double aggregate_mean_service,
                                double index_proportion,
                                double meta_proportion,
                                double data_proportion,
                                double index_miss_ratio,
                                double meta_miss_ratio,
                                double data_miss_ratio, double request_rate,
                                double data_read_rate) {
  COSM_REQUIRE(aggregate_mean_service > 0,
               "aggregate disk service time must be positive");
  COSM_REQUIRE(index_proportion > 0 && meta_proportion > 0 &&
                   data_proportion > 0,
               "service proportions must be positive");
  COSM_REQUIRE(request_rate > 0 && data_read_rate >= request_rate,
               "rates must satisfy r_d >= r > 0");
  // b_k = alpha * p_k; substitute into the rate-weighted identity:
  // alpha (m_i p_i r + m_m p_m r + m_d p_d r_d)
  //   = (m_i r + m_m r + m_d r_d) b.
  const double weighted_props = index_miss_ratio * index_proportion *
                                    request_rate +
                                meta_miss_ratio * meta_proportion *
                                    request_rate +
                                data_miss_ratio * data_proportion *
                                    data_read_rate;
  const double disk_rate = index_miss_ratio * request_rate +
                           meta_miss_ratio * request_rate +
                           data_miss_ratio * data_read_rate;
  COSM_REQUIRE(weighted_props > 0 && disk_rate > 0,
               "at least one operation kind must miss for the split");
  const double alpha = disk_rate * aggregate_mean_service / weighted_props;
  return {alpha * index_proportion, alpha * meta_proportion,
          alpha * data_proportion};
}

DeviceObservation observe_device(const sim::SimMetrics& metrics,
                                 std::uint32_t device, double window) {
  COSM_REQUIRE(window > 0, "observation window must be positive");
  const sim::DeviceCounters& counters = metrics.device(device);
  DeviceObservation obs;
  obs.request_rate = static_cast<double>(counters.requests) / window;
  obs.data_read_rate = static_cast<double>(counters.data_reads) / window;
  obs.index_miss_ratio = metrics.miss_ratio(device, sim::AccessKind::kIndex);
  obs.meta_miss_ratio = metrics.miss_ratio(device, sim::AccessKind::kMeta);
  obs.data_miss_ratio = metrics.miss_ratio(device, sim::AccessKind::kData);
  return obs;
}

namespace {

// Delta of one counter kind across a window, guarding against snapshots
// taken out of order (a programming error, not a data condition).
std::uint64_t delta(std::uint64_t start, std::uint64_t end,
                    const char* what) {
  COSM_REQUIRE(end >= start, std::string("window counters ran backwards: ") +
                                 what);
  return end - start;
}

}  // namespace

std::optional<WindowObservation> observe_window(
    const sim::DeviceCounters& start, const sim::DeviceCounters& end,
    double window, std::uint64_t min_requests, double* skew_carry) {
  COSM_REQUIRE(window > 0, "observation window must be positive");
  COSM_REQUIRE(skew_carry != nullptr && *skew_carry >= 0,
               "skew carry slot must be present and non-negative");
  const std::uint64_t requests = delta(start.requests, end.requests,
                                       "requests");
  const std::uint64_t data_reads = delta(start.data_reads, end.data_reads,
                                         "data_reads");
  // Only the read-path kinds enter the Sec. IV-B split; writes and
  // commits have their own service model.
  constexpr sim::AccessKind kReadKinds[] = {
      sim::AccessKind::kIndex, sim::AccessKind::kMeta,
      sim::AccessKind::kData};
  double service_sum = 0.0;
  std::uint64_t disk_ops = 0;
  for (const sim::AccessKind kind : kReadKinds) {
    const auto k = static_cast<std::size_t>(kind);
    disk_ops += delta(start.disk_ops[k], end.disk_ops[k], "disk_ops");
    service_sum += end.disk_service_sum[k] - start.disk_service_sum[k];
  }
  if (requests < min_requests || requests == 0 || disk_ops == 0) {
    return std::nullopt;  // insufficient samples — an outcome, not an error
  }

  // Boundary-skew correction: subtract the reads this window inherited
  // from the previous clamp, then clamp up to the r_d >= r identity if
  // the window is still deficient, carrying the new deficit forward.
  double effective_reads = static_cast<double>(data_reads) - *skew_carry;
  *skew_carry = 0.0;
  if (effective_reads < static_cast<double>(requests)) {
    *skew_carry = static_cast<double>(requests) - effective_reads;
    effective_reads = static_cast<double>(requests);
    obs::add(obs::Counter::kCalibWindowSkew);
  }

  WindowObservation out;
  out.requests = requests;
  out.disk_ops = disk_ops;
  out.aggregate_mean_service = service_sum / static_cast<double>(disk_ops);
  out.observation.request_rate = static_cast<double>(requests) / window;
  out.observation.data_read_rate = effective_reads / window;
  for (const sim::AccessKind kind : kReadKinds) {
    const auto k = static_cast<std::size_t>(kind);
    const std::uint64_t accesses =
        delta(start.accesses[k], end.accesses[k], "accesses");
    const std::uint64_t misses = delta(start.misses[k], end.misses[k],
                                       "misses");
    const double ratio =
        accesses == 0 ? 0.0
                      : static_cast<double>(misses) /
                            static_cast<double>(accesses);
    switch (kind) {
      case sim::AccessKind::kIndex:
        out.observation.index_miss_ratio = ratio;
        break;
      case sim::AccessKind::kMeta:
        out.observation.meta_miss_ratio = ratio;
        break;
      default:
        out.observation.data_miss_ratio = ratio;
        break;
    }
  }
  return out;
}

numerics::DistPtr rescale_to_mean(const numerics::DistPtr& fitted,
                                  double new_mean) {
  COSM_REQUIRE(new_mean > 0, "rescale target mean must be positive");
  if (const auto* gamma =
          dynamic_cast<const numerics::Gamma*>(fitted.get())) {
    return std::make_shared<numerics::Gamma>(
        gamma->shape(), gamma->shape() / new_mean);
  }
  if (dynamic_cast<const numerics::Exponential*>(fitted.get()) != nullptr) {
    return std::make_shared<numerics::Exponential>(1.0 / new_mean);
  }
  if (dynamic_cast<const numerics::Degenerate*>(fitted.get()) != nullptr) {
    return std::make_shared<numerics::Degenerate>(new_mean);
  }
  // Generic fallback: keep the fitted coefficient of variation with a
  // Gamma of the same CV.  Non-positive variance (or mean) leaves no CV
  // to keep — the distribution is effectively deterministic, so route to
  // Degenerate instead of a fabricated near-zero-CV Gamma.
  const double mean = fitted->mean();
  const double var = fitted->variance();
  if (!(var > 0.0) || !(mean > 0.0)) {
    obs::add(obs::Counter::kCalibRescaleDegenerate);
    return std::make_shared<numerics::Degenerate>(new_mean);
  }
  const double cv2 = var / (mean * mean);
  const double shape = 1.0 / cv2;
  return std::make_shared<numerics::Gamma>(shape, shape / new_mean);
}

core::DeviceParams build_device_params(
    const DeviceObservation& observation,
    const DiskCalibration& disk_calibration,
    numerics::DistPtr backend_parse, std::uint32_t processes,
    double aggregate_mean_service) {
  const ServiceSplit split = split_disk_service(
      aggregate_mean_service, disk_calibration.index_proportion(),
      disk_calibration.meta_proportion(),
      disk_calibration.data_proportion(), observation.index_miss_ratio,
      observation.meta_miss_ratio, observation.data_miss_ratio,
      observation.request_rate, observation.data_read_rate);
  core::DeviceParams params;
  params.arrival_rate = observation.request_rate;
  params.data_read_rate = observation.data_read_rate;
  params.index_miss_ratio = observation.index_miss_ratio;
  params.meta_miss_ratio = observation.meta_miss_ratio;
  params.data_miss_ratio = observation.data_miss_ratio;
  params.index_disk = rescale_to_mean(
      disk_calibration.index.selection.best().dist, split.index_mean);
  params.meta_disk = rescale_to_mean(
      disk_calibration.meta.selection.best().dist, split.meta_mean);
  params.data_disk = rescale_to_mean(
      disk_calibration.data.selection.best().dist, split.data_mean);
  params.backend_parse = std::move(backend_parse);
  params.processes = processes;
  return params;
}

}  // namespace cosm::calibration
