#include "calibration/disk_benchmark.hpp"

#include <functional>

#include "common/require.hpp"
#include "sim/engine.hpp"

namespace cosm::calibration {

namespace {

double proportion_denominator(const DiskCalibration& calibration) {
  return calibration.index.mean + calibration.meta.mean +
         calibration.data.mean;
}

OperationFit fit_samples(std::vector<double> samples, bool extended) {
  OperationFit fit;
  fit.samples = std::move(samples);
  const numerics::SampleStats stats =
      numerics::compute_stats(fit.samples);
  fit.mean = stats.mean;
  fit.selection = numerics::fit_best(fit.samples, extended);
  return fit;
}

}  // namespace

double DiskCalibration::index_proportion() const {
  return index.mean / proportion_denominator(*this);
}

double DiskCalibration::meta_proportion() const {
  return meta.mean / proportion_denominator(*this);
}

double DiskCalibration::data_proportion() const {
  return data.mean / proportion_denominator(*this);
}

DiskCalibration benchmark_disk(const sim::DiskProfile& profile,
                               const DiskBenchmarkConfig& config) {
  COSM_REQUIRE(config.objects >= 10,
               "disk benchmark needs at least 10 objects for a usable fit");
  sim::Engine engine;
  sim::Disk disk(engine, profile, cosm::Rng(config.seed));

  std::vector<double> index_samples;
  std::vector<double> meta_samples;
  std::vector<double> data_samples;
  index_samples.reserve(config.objects);
  meta_samples.reserve(config.objects);
  data_samples.reserve(config.objects);

  // Max 1 outstanding operation: each completion submits the next, so the
  // recorded latency is the raw service time (no queueing), exactly the
  // paper's measurement discipline.
  std::uint32_t remaining = config.objects;
  std::function<void()> read_one_object = [&] {
    if (remaining == 0) return;
    --remaining;
    disk.submit(sim::AccessKind::kIndex, [&](double service, bool) {
      index_samples.push_back(service);
      disk.submit(sim::AccessKind::kMeta, [&](double service2, bool) {
        meta_samples.push_back(service2);
        disk.submit(sim::AccessKind::kData, [&](double service3, bool) {
          data_samples.push_back(service3);
          read_one_object();
        });
      });
    });
  };
  engine.schedule_at(0.0, read_one_object);
  engine.run_all();

  DiskCalibration calibration;
  calibration.index =
      fit_samples(std::move(index_samples), config.extended_candidates);
  calibration.meta =
      fit_samples(std::move(meta_samples), config.extended_candidates);
  calibration.data =
      fit_samples(std::move(data_samples), config.extended_candidates);
  return calibration;
}

}  // namespace cosm::calibration
