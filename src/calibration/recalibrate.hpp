// The auto-recalibration loop — the digital twin's feedback path.
//
// The paper calibrates once (Sec. IV) and predicts forever; this module
// closes the loop instead:
//
//   counter snapshots ──observe_window──▶ WindowObservation
//        │                                     │ (signals)
//        │                               DriftDetector (drift.hpp)
//        │                                     │ kDrift?
//        └────────────▶ re-fit: build_device_params + rescale_to_mean
//                              + predict_tier_hit_ratio (tiered devices)
//                       publish: SystemModel over the SLA grid
//                       invalidate: fingerprint-keyed cache erasure
//
// One CalibrationLoop tracks ONE device's twin (its own counters, skew
// carry, detector state, published params); a cluster runs one loop per
// device.  The loop never throws on data conditions — idle windows are
// counted and skipped, an unfittable regime (e.g. observed saturation)
// keeps the previous calibration — and throws only on caller misuse.
//
// Cache-invalidation contract (docs/CALIBRATION.md): a re-fit makes
// exactly two kinds of PredictionCache entries stale, and the loop
// erases exactly those —
//  * the backend entry of the PREVIOUS params,
//    key core::backend_fingerprint(old_params, options);
//  * the cdf entries of the previous model's response tape over the
//    published SLA grid, keys core::cdf_cache_key(old_fingerprint, sla,
//    tape_mode) — enumerable because the loop knows its own grid.
// Everything else (other tenants' devices, other SLA points) stays
// resident; erasures are counted under calib.refit.cache_evictions.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "calibration/disk_benchmark.hpp"
#include "calibration/drift.hpp"
#include "calibration/lru_prediction.hpp"
#include "calibration/online_metrics.hpp"
#include "core/params.hpp"

namespace cosm::calibration {

struct RecalibrateConfig {
  // Measurement window length in simulated seconds (offer() cadence).
  double window = 5.0;
  // Windows with fewer requests are skipped as insufficient.
  std::uint64_t min_requests = 50;
  DriftConfig drift;

  // Model variant and SLA grid (seconds) the loop publishes predictions
  // for — also the grid whose cdf cache entries a re-fit invalidates.
  core::ModelOptions options;
  std::vector<double> slas;

  // Shared memoization to maintain (may be null: no caching, nothing to
  // invalidate).  Must outlive the loop.
  core::PredictionCache* cache = nullptr;
  numerics::TapeEvalMode tape_mode = numerics::TapeEvalMode::kExact;
  unsigned num_threads = 1;

  // SSD-tier re-prediction (tiering extension).  Tier hit ratios are
  // predicted, not measured (core::TierOptions); when `population` is
  // set and tier_capacity_chunks > 0, every re-fit re-derives
  // tier_template.hit_ratio via predict_tier_hit_ratio over the current
  // catalog population.  Null population = single-tier device.
  const ChunkPopulation* population = nullptr;
  std::size_t mem_capacity_chunks = 0;
  std::size_t tier_capacity_chunks = 0;
  core::TierOptions tier_template;

  void validate() const;
};

// One published re-fit (initial fit included).
struct RefitEvent {
  std::uint64_t window_index = 0;  // offer() count at publication
  std::uint32_t alarm_mask = 0;    // 0 for the initial fit
  core::DeviceParams params;
  std::vector<double> predictions;  // P[latency <= sla] per config sla
  std::size_t cache_evictions = 0;  // stale entries erased for this fit
};

class CalibrationLoop {
 public:
  struct WindowResult {
    DriftVerdict verdict = DriftVerdict::kWarmup;
    std::uint32_t alarm_mask = 0;
    bool insufficient = false;  // window skipped: too few samples
    bool refit = false;         // a calibration was published
    bool refit_failed = false;  // drift confirmed but the fit was rejected
  };

  // `frontend` is the twin's frontend tier (arrival_rate is overwritten
  // per fit from the observed device rate); `disk_calibration` supplies
  // the offline shapes every re-fit rescales; `backend_parse` and
  // `processes` complete the DeviceParams the way build_device_params
  // expects.
  CalibrationLoop(RecalibrateConfig config, DiskCalibration disk_calibration,
                  core::FrontendParams frontend,
                  numerics::DistPtr backend_parse, std::uint32_t processes);

  // Sets the counter baseline without consuming a window — call with the
  // snapshot at measurement start (e.g. the benchmark-start snapshot) so
  // the first window excludes warmup traffic.
  void prime(const sim::DeviceCounters& snapshot);

  // Offers the cumulative counter snapshot at one window close.  Windows
  // must be offered in time order, one call per elapsed config.window.
  WindowResult offer(const sim::DeviceCounters& snapshot);

  bool calibrated() const { return params_.has_value(); }
  // Currently published calibration; requires calibrated().
  const core::DeviceParams& params() const;
  // P[latency <= sla] for config().slas under the published calibration;
  // requires calibrated().
  const std::vector<double>& predictions() const;

  const RecalibrateConfig& config() const { return config_; }
  const DriftDetector& detector() const { return detector_; }
  const std::vector<RefitEvent>& refits() const { return refits_; }
  std::uint64_t windows_offered() const { return windows_; }
  std::uint64_t insufficient_windows() const { return insufficient_; }
  // Most recent sufficient observation (diagnostics; nullopt until one).
  const std::optional<WindowObservation>& last_observation() const {
    return last_observation_;
  }

 private:
  // Fits + publishes from `window`; returns false when the regime cannot
  // be modelled (the previous calibration stays published).
  bool refit(const WindowObservation& window, std::uint32_t alarm_mask);

  RecalibrateConfig config_;
  DiskCalibration disk_calibration_;
  core::FrontendParams frontend_;
  numerics::DistPtr backend_parse_;
  std::uint32_t processes_ = 1;

  DriftDetector detector_;
  sim::DeviceCounters previous_{};
  double skew_carry_ = 0.0;
  std::uint64_t windows_ = 0;
  std::uint64_t insufficient_ = 0;
  std::optional<WindowObservation> last_observation_;

  std::optional<core::DeviceParams> params_;
  std::vector<double> predictions_;
  // Response-tape fingerprint of the published model's device — the key
  // root for cdf invalidation at the next re-fit.
  std::uint64_t published_fingerprint_ = 0;
  std::vector<RefitEvent> refits_;
};

}  // namespace cosm::calibration
