// Section IV-A: "The distribution of disk service times".
//
// The paper fills the disk with objects, then reads randomly selected
// objects one at a time (max 1 outstanding op, so no queueing), recording
// the latency of each index lookup / metadata read / data read, and fits a
// distribution per kind (Gamma wins on their testbed).  We run the same
// procedure against the simulator's Disk, which plays the role of
// /dev/sdX: the benchmark only observes op latencies, never the profile's
// parameters, so the whole estimate-then-fit pipeline is exercised
// honestly.
#pragma once

#include <cstdint>
#include <vector>

#include "numerics/fitting.hpp"
#include "sim/disk.hpp"

namespace cosm::calibration {

struct DiskBenchmarkConfig {
  // Number of randomly selected objects to read (one index + one meta +
  // one data op each).
  std::uint32_t objects = 5000;
  std::uint64_t seed = 7;
  // Also fit lognormal/weibull candidates, beyond the paper's four.
  bool extended_candidates = false;
};

struct OperationFit {
  std::vector<double> samples;          // recorded latencies, unsorted
  numerics::FitSelection selection;     // all candidates, best first
  double mean = 0.0;
};

struct DiskCalibration {
  OperationFit index;
  OperationFit meta;
  OperationFit data;

  // Service-time proportions p_i : p_m : p_d (normalized to sum 1), the
  // quantity Sec. IV-B reuses online.
  double index_proportion() const;
  double meta_proportion() const;
  double data_proportion() const;
};

// Runs the benchmark against a fresh simulated disk with the given
// profile.  The profile is used only to *generate* latencies; the
// calibration result is computed purely from the recorded samples.
DiskCalibration benchmark_disk(const sim::DiskProfile& profile,
                               const DiskBenchmarkConfig& config = {});

}  // namespace cosm::calibration
