#include "queueing/mg1k.hpp"

#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "numerics/quadrature.hpp"
#include "numerics/transform_nodes.hpp"

namespace cosm::queueing {

MG1K::MG1K(double arrival_rate, numerics::DistPtr service, int capacity)
    : arrival_rate_(arrival_rate),
      service_(std::move(service)),
      capacity_(capacity) {
  COSM_REQUIRE(arrival_rate > 0, "M/G/1/K arrival rate must be positive");
  COSM_REQUIRE(service_ != nullptr, "M/G/1/K service distribution required");
  COSM_REQUIRE(std::isfinite(service_->mean()) && service_->mean() > 0,
               "M/G/1/K service mean must be positive and finite");
  COSM_REQUIRE(capacity >= 1 && capacity <= 512,
               "M/G/1/K capacity must be in [1, 512]");
  solve();
}

std::vector<double> MG1K::arrivals_per_service() const {
  // a_j = ∫ e^{-rt}(rt)^j/j! dB(t).  The service CDF B is all we have, so
  // integrate by parts: for j >= 1 the boundary terms vanish and
  //   a_j = ∫ e^{-rt} r [ (rt)^j/j! - (rt)^{j-1}/(j-1)! ] B(t) dt,
  // and a_0 = r ∫ e^{-rt} B(t) dt.
  const double r = arrival_rate_;
  // Upper cut: beyond it either e^{-rt} or 1 - B(t) is negligible.
  const double horizon = std::max(40.0 / r, 64.0 * service_->mean());
  const int panels = 256;
  std::vector<double> a(capacity_, 0.0);
  for (int j = 0; j < capacity_; ++j) {
    const auto integrand = [&, j](double t) {
      const double b = service_->cdf(t);
      const double x = r * t;
      double weight;
      if (j == 0) {
        weight = 1.0;
      } else {
        // (rt)^{j-1}/(j-1)! - (rt)^j/j!, computed in log space to survive
        // large j * log(rt) magnitudes.
        const double log_pow_jm1 =
            (j - 1) * std::log(std::max(x, 1e-300)) - std::lgamma(j);
        const double log_pow_j =
            j * std::log(std::max(x, 1e-300)) - std::lgamma(j + 1.0);
        weight = std::exp(log_pow_j) - std::exp(log_pow_jm1);
      }
      return std::exp(-x) * r * weight * b;
    };
    a[j] = numerics::integrate_gauss(integrand, 0.0, horizon, panels);
  }
  return a;
}

double MG1K::mean_jobs() const {
  double n = 0.0;
  for (int i = 0; i <= capacity_; ++i) n += i * p_[i];
  return n;
}

double MG1K::mean_sojourn_time() const {
  return mean_jobs() /
         (arrival_rate_ * (1.0 - blocking_probability()));
}

numerics::DistPtr MG1K::sojourn_time() const {
  const numerics::DistPtr service = service_;
  const double mean_service = service->mean();
  // Acceptance-conditioned state weights q_i = p_i / (1 - P_K), i < K.
  std::vector<double> weights(capacity_);
  const double admit = 1.0 - blocking_probability();
  for (int i = 0; i < capacity_; ++i) weights[i] = p_[i] / admit;
  // Moments from the same construction (may differ slightly from the
  // exact Little's-law mean because of the residual approximation).  The
  // second moment uses the equilibrium residual moments E[R] = m2/(2 m1)
  // and E[R^2] = m3/(3 m1); NaN service third moments propagate honestly.
  const double m1 = mean_service;
  const double m2_service = service->second_moment();
  const double m3_service = service->third_moment();
  const double residual_mean = m2_service / (2.0 * m1);
  const double residual_m2 = m3_service / (3.0 * m1);
  const double residual_var =
      residual_m2 - residual_mean * residual_mean;
  const double service_var = m2_service - m1 * m1;
  double mean = weights[0] * m1;
  double m2 = weights[0] * m2_service;
  for (std::size_t i = 1; i < weights.size(); ++i) {
    const double n = static_cast<double>(i);  // i - 1 fresh + own service
    const double state_mean = residual_mean + n * m1;
    const double state_var = residual_var + n * service_var;
    mean += weights[i] * state_mean;
    m2 += weights[i] * (state_var + state_mean * state_mean);
  }
  // Structured node (same transform, same evaluation order — see
  // numerics/transform_nodes.hpp) so the tape compiler keeps flattening
  // into the service distribution.
  return std::make_shared<numerics::MG1KSojourn>(
      service, mean_service, std::move(weights), mean, m2);
}

void MG1K::solve() {
  const int k = capacity_;
  const std::vector<double> a = arrivals_per_service();
  // Embedded chain at departure epochs over states {0, ..., K-1} (jobs
  // left behind).  From state i >= 1 the next departure leaves
  // min(i - 1 + J, K - 1); state 0 behaves like state 1 after the next
  // arrival.  Stationary distribution by power iteration (K is small).
  std::vector<double> pi(k, 1.0 / k);
  std::vector<double> next(k, 0.0);
  for (int iter = 0; iter < 20000; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (int i = 0; i < k; ++i) {
      const int base = (i == 0) ? 0 : i - 1;  // jobs present after departure
      double tail = 1.0;
      for (int j = 0; base + j < k - 1 && j < k; ++j) {
        next[base + j] += pi[i] * a[j];
        tail -= a[j];
      }
      next[k - 1] += pi[i] * std::max(tail, 0.0);
    }
    double delta = 0.0;
    for (int i = 0; i < k; ++i) {
      delta += std::abs(next[i] - pi[i]);
      pi[i] = next[i];
    }
    if (delta < 1e-14) break;
  }
  // Normalize defensively (quadrature noise in a_j).
  double total = 0.0;
  for (const double v : pi) total += v;
  for (double& v : pi) v /= total;
  // Departure-epoch -> time-average (Cooper): p_i = pi_i / (pi_0 + rho)
  // for i < K, p_K = 1 - 1 / (pi_0 + rho).
  const double rho = arrival_rate_ * service_->mean();
  const double denom = pi[0] + rho;
  p_.assign(k + 1, 0.0);
  double acc = 0.0;
  for (int i = 0; i < k; ++i) {
    p_[i] = pi[i] / denom;
    acc += p_[i];
  }
  p_[k] = std::max(0.0, 1.0 - acc);
}

}  // namespace cosm::queueing
