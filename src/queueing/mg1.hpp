// M/G/1 queue analysis via the Pollaczek–Khinchine transform.
//
// This is the workhorse of the paper's model: the backend operation queue
// (union operations, Sec. III-B) and the frontend parse queue (Sec. III-C)
// are both M/G/1, and the waiting-time distribution doubles as the paper's
// approximation of the waiting time for being accept()-ed (W_a = W_be).
//
//   L[W](s) = (1 - rho) s / (r L[B](s) + s - r)           (P–K formula)
//   W̄      = r E[B^2] / (2 (1 - rho))                     (P–K mean)
#pragma once

#include <vector>

#include "numerics/compose.hpp"
#include "numerics/distribution.hpp"

namespace cosm::queueing {

class MG1 {
 public:
  // arrival_rate r > 0; `service` must have a finite mean.
  MG1(double arrival_rate, numerics::DistPtr service);

  double arrival_rate() const { return arrival_rate_; }
  const numerics::Distribution& service() const { return *service_; }

  // rho = r * E[B].
  double utilization() const;
  // The model assumes steady state ("normal status"), so every output
  // below requires stable() — they throw std::invalid_argument otherwise.
  bool stable() const { return utilization() < 1.0; }

  // P–K mean waiting time; requires a finite service second moment.
  double mean_waiting_time() const;
  double mean_sojourn_time() const;

  // Waiting-time distribution W (time from arrival to start of service).
  // Transform-only: exposes laplace(), mean(), cdf() via inversion.
  numerics::DistPtr waiting_time() const;

  // Sojourn time W * B (waiting plus own service).
  numerics::DistPtr sojourn_time() const;

  // P[W = 0] = 1 - rho (the atom at zero of the waiting time).
  double idle_probability() const;

  // Mean number in system, L = r * sojourn mean (Little).
  double mean_jobs() const;

  // P[N = n]: the number-in-system distribution from the P-K PGF
  // Pi(z) = (1-rho)(1-z) L[B](r(1-z)) / (L[B](r(1-z)) - z), extracted by
  // numerically differentiating along the unit circle (FFT of Pi over
  // 2^m samples).  Returns probabilities for n = 0..max_n.
  std::vector<double> queue_length_distribution(int max_n) const;

 private:
  void require_stable() const;

  double arrival_rate_;
  numerics::DistPtr service_;
};

}  // namespace cosm::queueing
