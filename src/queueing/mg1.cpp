#include "queueing/mg1.hpp"

#include <cmath>
#include <complex>
#include <limits>
#include <numbers>

#include "numerics/fft.hpp"
#include "numerics/transform_nodes.hpp"

#include "common/require.hpp"

namespace cosm::queueing {

using numerics::DistPtr;

MG1::MG1(double arrival_rate, DistPtr service)
    : arrival_rate_(arrival_rate), service_(std::move(service)) {
  COSM_REQUIRE(arrival_rate > 0, "M/G/1 arrival rate must be positive");
  COSM_REQUIRE(service_ != nullptr, "M/G/1 service distribution required");
  COSM_REQUIRE(std::isfinite(service_->mean()),
               "M/G/1 service mean must be finite");
}

double MG1::utilization() const { return arrival_rate_ * service_->mean(); }

void MG1::require_stable() const {
  COSM_REQUIRE(stable(),
               "M/G/1 queue is overloaded (rho >= 1); the model only covers "
               "the paper's 'normal status' regime");
}

double MG1::mean_waiting_time() const {
  require_stable();
  const double m2 = service_->second_moment();
  COSM_REQUIRE(std::isfinite(m2),
               "P-K mean needs a finite service second moment");
  return arrival_rate_ * m2 / (2.0 * (1.0 - utilization()));
}

double MG1::mean_sojourn_time() const {
  return mean_waiting_time() + service_->mean();
}

double MG1::idle_probability() const {
  require_stable();
  return 1.0 - utilization();
}

double MG1::mean_jobs() const { return arrival_rate_ * mean_sojourn_time(); }

std::vector<double> MG1::queue_length_distribution(int max_n) const {
  require_stable();
  COSM_REQUIRE(max_n >= 0, "max_n must be non-negative");
  const double r = arrival_rate_;
  const double rho = utilization();
  // Evaluate the P-K PGF on the unit circle and inverse-FFT: the n-th
  // Fourier coefficient of Pi(e^{i theta}) is P[N = n].
  std::size_t samples = 1;
  while (samples < static_cast<std::size_t>(max_n + 1) * 8) samples <<= 1;
  std::vector<std::complex<double>> values(samples);
  for (std::size_t k = 0; k < samples; ++k) {
    const double theta = 2.0 * std::numbers::pi *
                         static_cast<double>(k) /
                         static_cast<double>(samples);
    const std::complex<double> z(std::cos(theta), std::sin(theta));
    if (std::abs(z - 1.0) < 1e-12) {
      values[k] = 1.0;  // Pi(1) = 1
      continue;
    }
    const std::complex<double> lb = service_->laplace(r * (1.0 - z));
    values[k] = (1.0 - rho) * (1.0 - z) * lb / (lb - z);
  }
  // p_n = (1/N) sum_k Pi(e^{i theta_k}) e^{-i theta_k n}: the *forward*
  // DFT of the samples, scaled by 1/N.
  numerics::fft(values, /*inverse=*/false);
  std::vector<double> probabilities(max_n + 1);
  for (int n = 0; n <= max_n; ++n) {
    probabilities[n] =
        std::max(0.0, values[static_cast<std::size_t>(n)].real() /
                          static_cast<double>(samples));
  }
  return probabilities;
}

DistPtr MG1::waiting_time() const {
  require_stable();
  const double rho = utilization();
  double mean = std::numeric_limits<double>::quiet_NaN();
  if (std::isfinite(service_->second_moment())) {
    mean = arrival_rate_ * service_->second_moment() /
           (2.0 * (1.0 - rho));
  }
  // A structured node rather than an opaque LaplaceDistribution lambda:
  // same formula, same arithmetic order (bit-identical transform values),
  // but the transform-tape compiler can see the parameters and flatten
  // through the service child.
  return std::make_shared<numerics::PKWaitingTime>(
      arrival_rate_, rho, service_, mean,
      std::numeric_limits<double>::quiet_NaN());
}

DistPtr MG1::sojourn_time() const {
  return numerics::convolve_dists({waiting_time(), service_});
}

}  // namespace cosm::queueing
