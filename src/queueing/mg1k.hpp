// M/G/1/K analysis.
//
// The paper approximates the N_be-process disk queue (an M/G/1/K system,
// K = N_be) with an M/M/1/K because the latter has a closed-form sojourn
// transform.  To quantify that approximation error (the paper's stated
// source of systematic error in scenario S16), this module solves the
// M/G/1/K embedded Markov chain at departure epochs *exactly* (up to
// numerical quadrature of the arrivals-per-service kernel):
//
//   a_j = P(j Poisson arrivals during one service) = ∫ e^{-rt}(rt)^j/j! dB(t)
//
// From the departure-epoch distribution pi we recover the time-average
// queue-length distribution p_i and blocking probability P_K via the
// standard M/G/1/K relations (Cooper, "Introduction to Queueing Theory"):
//
//   p_i = pi_i / (pi_0 + rho_eff),  i < K;  p_K = 1 - sum_{i<K} p_i
//
// and the mean sojourn time of accepted jobs via Little's law.
#pragma once

#include <vector>

#include "numerics/compose.hpp"
#include "numerics/distribution.hpp"

namespace cosm::queueing {

class MG1K {
 public:
  MG1K(double arrival_rate, numerics::DistPtr service, int capacity);

  double arrival_rate() const { return arrival_rate_; }
  int capacity() const { return capacity_; }

  // Time-average probability of i jobs in system, i in [0, K].
  double state_probability(int i) const { return p_[i]; }
  const std::vector<double>& state_probabilities() const { return p_; }

  double blocking_probability() const { return p_.back(); }

  double mean_jobs() const;

  // Mean sojourn of accepted jobs: N / (r (1 - P_K)).
  double mean_sojourn_time() const;

  // Sojourn-time distribution of accepted jobs (transform-only), built
  // from the exact state probabilities plus the stationary-residual
  // approximation: an accepted arrival seeing i >= 1 jobs waits the
  // equilibrium residual service (LT: (1 - L[B](s)) / (s B̄)), i - 1
  // fresh services, and its own; i = 0 waits only its own.  Exact for
  // exponential service (collapses to M/M/1/K); for general service the
  // elapsed-service/state correlation is neglected, but the *state
  // weights* are exact — a strictly better approximation than the
  // paper's M/M/1/K substitution (see core::ModelOptions::disk_queue and
  // bench/ablation_mg1k).
  numerics::DistPtr sojourn_time() const;

 private:
  // P(j arrivals during one service), j = 0..capacity_ (last entry pools
  // ">= capacity").
  std::vector<double> arrivals_per_service() const;
  void solve();

  double arrival_rate_;
  numerics::DistPtr service_;
  int capacity_;
  std::vector<double> p_;  // time-average state probabilities
};

}  // namespace cosm::queueing
