// M/M/1/K queue: the paper's approximation of the per-device disk queue
// when N_be > 1 processes share one disk (Sec. III-B).
//
// K = N_be bounds the number of outstanding disk operations because each
// blocking process contributes at most one.  The paper substitutes the
// M/M/1/K sojourn-time distribution for the per-process "disk service
// time":
//
//   L[S](s)  = v P0 / (1 - P_K) * (1 - (r / (v + s))^K) / (v - r + s)
//   S̄        = N / (r (1 - P_K))
//   P_i      = (1 - u) u^i / (1 - u^{K+1}),  u = r / v
//   N        = u (1 - (K+1) u^K + K u^{K+1}) / ((1 - u)(1 - u^{K+1}))
//
// Unlike M/G/1, the finite buffer keeps every quantity well defined for
// u >= 1 (the queue saturates instead of diverging).
#pragma once

#include <vector>

#include "numerics/compose.hpp"
#include "numerics/distribution.hpp"

namespace cosm::queueing {

class MM1K {
 public:
  // arrival_rate r > 0, service_rate v > 0, capacity K >= 1 (buffer
  // including the job in service).
  MM1K(double arrival_rate, double service_rate, int capacity);

  double arrival_rate() const { return arrival_rate_; }
  double service_rate() const { return service_rate_; }
  int capacity() const { return capacity_; }

  // Offered utilization u = r / v (may exceed 1; the buffer bounds it).
  double offered_utilization() const;

  // Steady-state probability of i jobs in the system, i in [0, K].
  double state_probability(int i) const;
  std::vector<double> state_probabilities() const;

  // Blocking probability P_K (an arrival finds the buffer full).
  double blocking_probability() const;

  // Mean number in system N.
  double mean_jobs() const;

  // Mean sojourn time of accepted jobs, N / (r (1 - P_K)) (Little).
  double mean_sojourn_time() const;

  // Sojourn-time distribution of accepted jobs (transform-only).
  numerics::DistPtr sojourn_time() const;

 private:
  double arrival_rate_;
  double service_rate_;
  int capacity_;
};

}  // namespace cosm::queueing
