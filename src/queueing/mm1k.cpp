#include "queueing/mm1k.hpp"

#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "numerics/transform_nodes.hpp"

namespace cosm::queueing {

using numerics::DistPtr;

namespace {

// u^i / sum_{j=0..K} u^j, evaluated stably for u near 1 (the geometric
// form 0/0s at u = 1, where the distribution is uniform over states).
double state_prob(double u, int i, int capacity) {
  if (std::abs(u - 1.0) < 1e-9) {
    return 1.0 / static_cast<double>(capacity + 1);
  }
  return (1.0 - u) * std::pow(u, i) /
         (1.0 - std::pow(u, capacity + 1));
}

}  // namespace

MM1K::MM1K(double arrival_rate, double service_rate, int capacity)
    : arrival_rate_(arrival_rate),
      service_rate_(service_rate),
      capacity_(capacity) {
  COSM_REQUIRE(arrival_rate > 0, "M/M/1/K arrival rate must be positive");
  COSM_REQUIRE(service_rate > 0, "M/M/1/K service rate must be positive");
  COSM_REQUIRE(capacity >= 1, "M/M/1/K capacity must be at least 1");
}

double MM1K::offered_utilization() const {
  return arrival_rate_ / service_rate_;
}

double MM1K::state_probability(int i) const {
  COSM_REQUIRE(i >= 0 && i <= capacity_, "state index out of [0, K]");
  return state_prob(offered_utilization(), i, capacity_);
}

std::vector<double> MM1K::state_probabilities() const {
  std::vector<double> probs(capacity_ + 1);
  for (int i = 0; i <= capacity_; ++i) probs[i] = state_probability(i);
  return probs;
}

double MM1K::blocking_probability() const {
  return state_probability(capacity_);
}

double MM1K::mean_jobs() const {
  // The closed form u(1-(K+1)u^K+Ku^{K+1}) / ((1-u)(1-u^{K+1})) cancels
  // catastrophically near u = 1; the state-probability sum is exact and
  // K+1 terms are cheap.
  double n = 0.0;
  for (int i = 1; i <= capacity_; ++i) n += i * state_probability(i);
  return n;
}

double MM1K::mean_sojourn_time() const {
  return mean_jobs() / (arrival_rate_ * (1.0 - blocking_probability()));
}

DistPtr MM1K::sojourn_time() const {
  const double v = service_rate_;
  const int k = capacity_;
  const double p0 = state_probability(0);
  const double pk = blocking_probability();
  // Closed-form second moment: the sojourn is an Erlang(i+1, v) mixture
  // over the accepted-arrival state distribution, so
  // E[S^2] = sum q_i (i+1)(i+2)/v^2.
  double m2 = 0.0;
  for (int i = 0; i < k; ++i) {
    m2 += state_probability(i) / (1.0 - pk) * (i + 1.0) * (i + 2.0) /
          (v * v);
  }
  // Structured node (same closed-form transform, bit-identical values)
  // so the transform-tape compiler sees a dedicated leaf instead of an
  // opaque lambda.
  return std::make_shared<numerics::MM1KSojourn>(
      arrival_rate_, v, k, p0, pk, mean_sojourn_time(), m2);
}

}  // namespace cosm::queueing
