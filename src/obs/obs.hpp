// Observability: scoped spans, typed counters, and a structured event
// trace for the prediction pipeline and the simulator.
//
// The paper's value proposition is trusting an analytic percentile
// instead of measuring — which is only defensible when each submodel's
// cost and error are attributable (Thomasian's survey of hybrid
// analytic/simulation studies makes the same point).  This subsystem is
// the substrate for that attribution:
//
//  * Counter — a fixed registry of typed counters (cache hits, inversion
//    quality verdicts, warm-start accepts/rejects, retry attempts, pool
//    queue depth, ...).  Each is a relaxed atomic; add() is safe from any
//    thread and never blocks.
//  * Span — RAII scoped timing over the monotonic clock.  Completed spans
//    land in a fixed-capacity ring buffer with their thread, nesting
//    depth, start offset, and duration; overflow overwrites the oldest
//    records and is itself counted, never silently lost.
//  * export_json / export_csv — the structured trace: every counter (zero
//    or not, so the schema is stable) plus the retained span records.
//    docs/obs_trace.schema.json pins the JSON shape; the obs-smoke CI job
//    validates exported traces against it.
//
// Zero cost when disabled — the contract the perf gates rely on:
// observability is OFF by default, and every instrumentation point (add,
// Span, record_max) first performs one relaxed atomic load of the enable
// flag.  When disabled nothing else happens: no clock reads, no
// allocation, no stores — so instrumented code paths produce bit-identical
// outputs and benchmark times within noise of uninstrumented builds
// (tests/obs/test_obs.cpp pins allocation-freeness and bit-identity;
// BENCH_pipeline.json / BENCH_sim.json pin the timings).  Enabling is
// explicit (set_enabled(true), or the --trace-json flag of the perf
// harnesses and examples).
//
// Instrumentation never changes results: counters and spans observe;
// the clamp/quality/warm-start *decisions* they report are made by the
// instrumented code itself and are identical whether or not anyone is
// watching.
//
// Thread-safety: all functions are safe to call concurrently.  Span
// nesting depth is tracked per thread (thread_local), so spans opened on
// pool workers inside cosm::parallel_for nest correctly within whatever
// that worker was running.  Span names must be string literals (or
// otherwise outlive the process) — the ring stores the pointer.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace cosm::obs {

// The counter registry.  Adding a counter means adding an enumerator here
// and a name in kCounterNames (obs.cpp) — the trace schema carries the
// names, so exported traces stay self-describing.
enum class Counter : std::uint32_t {
  // Laplace-inversion quality (see numerics::InversionQuality): every CDF
  // inversion gets exactly one verdict counter bump.
  kInversionConverged,
  kInversionTruncated,
  kInversionClamped,
  kInversionNonFinite,
  kInversionCalls,   // CDF inversions performed (sum of the four above)
  kInversionTerms,   // contour evaluations spent (terms per inversion)

  // Quantile searches (lt_inversion::quantile_impl, SystemModel).
  kQuantileColdStart,
  kQuantileWarmAccept,        // warm bracket seed used
  kQuantileWarmRejectRegime,  // seed discarded: regime fingerprint changed
  kQuantileWarmFallback,      // seed discarded mid-search: bracket invalid

  // core::PredictionCache traffic (per lookup, at the call sites).
  kCdfCacheHit,
  kCdfCacheMiss,
  kBackendCacheHit,
  kBackendCacheMiss,

  // numerics::TransformTape.
  kTapeCompiles,
  kTapeOps,          // ops emitted across all compiles
  kTapeEvalBatches,  // evaluate() calls
  kTapeEvalPoints,   // contour points pushed through evaluate()
  kTapeSimdBatches,  // evaluate() calls routed to the SoA/SIMD evaluator
  kTapeSimdPoints,   // contour points pushed through the SoA/SIMD evaluator

  // stats::LogHistogram clamp buckets (and through it the simulator's
  // streaming latency histogram).
  kHistUnderflowAdd,
  kHistOverflowAdd,
  kHistQuantileClamped,  // quantile query answered with a bound

  // Simulator.
  kSimEvents,
  kSimRequests,
  kSimTimeouts,
  kSimFailures,
  kSimRetryAttempts,
  kSimFailoverAttempts,
  kSimReplications,

  // Redundancy-aware requests (robustness extension): hedged attempts,
  // (n,k) fan-out groups, and the cancel-on-first-complete path.
  kSimHedgeIssued,      // hedge attempts dispatched past the deadline
  kSimHedgeWins,        // groups whose winning response was a hedge
  kSimFanoutGroups,     // (n,k) fan-out groups created
  kSimCancelAttempts,   // live attempts cancelled when their group won
  kSimCancelSkippedWork,    // queued/in-flight work dropped as cancelled
  kSimCancelLateResponses,  // responses that arrived after their group won

  // SSD cache tier (tiering extension; see sim/tier.hpp).
  kSimTierReads,            // data reads offered to the tier
  kSimTierHits,             // served from the SSD
  kSimTierPromotions,       // clean installs after a tier-miss read
  kSimTierWritebacks,       // dirty demotion writes at eviction
  kSimTierDrainWritebacks,  // dirty flushes at outage recovery

  // Sharded simulation (sim/shard.hpp): the conservative window protocol.
  // Windows are counted once per shard per window; barrier nanoseconds are
  // wall-clock time a shard worker spent blocked at a window barrier (only
  // measured when observability is enabled — no clock reads otherwise).
  kSimShardWindows,        // shard × window executions
  kSimShardEmptyWindows,   // windows a shard crossed without local events
  kSimShardCrossMessages,  // cross-shard arrivals delivered via mailboxes
  kSimShardBarrierNanos,   // wall ns spent blocked at window barriers

  // ThreadPool.
  kPoolSubmits,
  kPoolMaxQueueDepth,  // gauge: high-water mark, via record_max

  // service::WhatIfService (the long-lived what-if prediction service).
  kServiceRequests,     // requests parsed off the wire
  kServiceErrors,       // requests answered with an error object
  kServicePredictions,  // individual percentile/capacity answers produced

  // Online calibration loop (calibration/drift.hpp, recalibrate.hpp):
  // windowed drift detection and auto-recalibration.
  kCalibDriftWindows,         // windows offered to the drift detector
  kCalibDriftAlarms,          // windows where some signal crossed its test
  kCalibDriftDetected,        // confirmed drift verdicts (post-hysteresis)
  kCalibInsufficientWindows,  // windows skipped: too few samples to trust
  kCalibWindowSkew,           // windowed r_d < r boundary skews clamped
  kCalibRefitModels,          // calibration re-fits published
  kCalibRefitCacheEvictions,  // stale cache entries evicted by fingerprint
  kCalibRescaleDegenerate,    // rescale fallbacks routed to Degenerate

  kCount,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

namespace detail {
// The enable flag and counter slots live in the header-visible extern so
// add()/enabled() inline down to one relaxed load (+ one relaxed add when
// enabled) at every instrumentation point.
extern std::atomic<bool> g_enabled;
extern std::array<std::atomic<std::uint64_t>, kCounterCount> g_counters;
}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// Turns collection on or off.  Enabling allocates the span ring on first
// use; disabling stops collection but keeps whatever was recorded (so a
// harness can stop tracing before exporting).
void set_enabled(bool on);

// Increments `counter` by `delta`.  No-op when disabled.
inline void add(Counter counter, std::uint64_t delta = 1) {
  if (!enabled()) return;
  detail::g_counters[static_cast<std::size_t>(counter)].fetch_add(
      delta, std::memory_order_relaxed);
}

// Raises `counter` to at least `value` (gauge high-water mark, e.g. pool
// queue depth).  No-op when disabled.
void record_max(Counter counter, std::uint64_t value);

std::uint64_t counter_value(Counter counter);
std::string_view counter_name(Counter counter);

// One completed span.  `start_us` is microseconds since the process-wide
// trace epoch (the first set_enabled(true)); `depth` is the number of
// enclosing spans on the recording thread; `thread` is a dense id
// assigned per recording thread in first-use order.
struct SpanRecord {
  const char* name = nullptr;
  std::uint32_t thread = 0;
  std::uint32_t depth = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
};

// RAII scoped timing.  Construction with observability disabled records
// nothing and reads no clock; the enable decision is latched at
// construction so a span that straddles set_enabled(false) still closes
// consistently.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;  // nullptr = disarmed (disabled at construction)
  std::uint32_t depth_ = 0;
  double start_us_ = 0.0;
};

struct TraceStats {
  std::uint64_t recorded = 0;   // spans ever recorded
  std::uint64_t retained = 0;   // spans currently in the ring
  std::uint64_t dropped = 0;    // recorded - retained (overwritten)
  std::size_t capacity = 0;
};
TraceStats trace_stats();

// Retained spans, oldest first (by start time).  A snapshot: concurrent
// recording during the call may tear the ring's newest slots; export
// after the instrumented work has finished.
std::vector<SpanRecord> snapshot_spans();

// Every counter with its name, in registry order (zeros included).
std::vector<std::pair<std::string_view, std::uint64_t>> snapshot_counters();

// Zeroes all counters and clears the trace.  The enable flag is left
// untouched.
void reset();

// Structured trace export — the shape docs/obs_trace.schema.json pins:
// {"schema": "cosm-obs-trace", "version": 1, "enabled": ...,
//  "counters": [{"name", "value"}...], "spans": [{...}...],
//  "span_total": N, "span_dropped": N}.
void export_json(std::ostream& out);
// CSV: one `counter,<name>,<value>` line per counter, then one
// `span,<name>,<thread>,<depth>,<start_us>,<dur_us>` line per span.
void export_csv(std::ostream& out);

}  // namespace cosm::obs
