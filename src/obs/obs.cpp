#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <ostream>

namespace cosm::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
std::array<std::atomic<std::uint64_t>, kCounterCount> g_counters{};
}  // namespace detail

namespace {

constexpr std::array<std::string_view, kCounterCount> kCounterNames = {
    "inversion.converged",
    "inversion.truncated",
    "inversion.clamped",
    "inversion.nonfinite",
    "inversion.calls",
    "inversion.terms",
    "quantile.cold_start",
    "quantile.warm_accept",
    "quantile.warm_reject_regime",
    "quantile.warm_fallback",
    "cache.cdf.hit",
    "cache.cdf.miss",
    "cache.backend.hit",
    "cache.backend.miss",
    "tape.compiles",
    "tape.ops",
    "tape.eval_batches",
    "tape.eval_points",
    "tape.simd.batches",
    "tape.simd.points",
    "hist.underflow_add",
    "hist.overflow_add",
    "hist.quantile_clamped",
    "sim.events",
    "sim.requests",
    "sim.timeouts",
    "sim.failures",
    "sim.retry_attempts",
    "sim.failover_attempts",
    "sim.replications",
    "sim.hedge.issued",
    "sim.hedge.wins",
    "sim.fanout.groups",
    "sim.cancel.attempts",
    "sim.cancel.skipped_work",
    "sim.cancel.late_responses",
    "sim.tier.reads",
    "sim.tier.hits",
    "sim.tier.promotions",
    "sim.tier.writebacks",
    "sim.tier.drain_writebacks",
    "sim.shard.windows",
    "sim.shard.empty_windows",
    "sim.shard.cross_messages",
    "sim.shard.barrier_nanos",
    "pool.submits",
    "pool.max_queue_depth",
    "service.requests",
    "service.errors",
    "service.predictions",
    "calib.drift.windows",
    "calib.drift.alarms",
    "calib.drift.detected",
    "calib.insufficient_windows",
    "calib.window_skew",
    "calib.refit.models",
    "calib.refit.cache_evictions",
    "calib.refit.degenerate_rescale",
};

// Span ring.  Capacity is a power of two so the claim index maps to a
// slot with a mask; the total claim counter doubles as the drop
// accounting (total - retained = overwritten).  Slots are plain records:
// a writer that laps the ring more than capacity spans ahead of a
// concurrent export can tear a slot, which costs one garbled record in a
// diagnostic trace, never a crash — export is documented to run after
// the instrumented work quiesces.
constexpr std::size_t kRingCapacity = std::size_t{1} << 16;

struct Ring {
  std::array<SpanRecord, kRingCapacity> slots{};
  std::atomic<std::uint64_t> total{0};
};

// Allocated on first enable (keeping the disabled footprint at two cache
// lines of atomics), then intentionally leaked: spans may still be
// closing on pool threads at process exit, after static destructors.
std::atomic<Ring*> g_ring{nullptr};
std::mutex g_init_mutex;

using Clock = std::chrono::steady_clock;
std::atomic<std::int64_t> g_epoch_ns{0};

Ring* ring_or_null() { return g_ring.load(std::memory_order_acquire); }

double now_us() {
  const std::int64_t ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count();
  return static_cast<double>(ns - g_epoch_ns.load(std::memory_order_relaxed)) *
         1e-3;
}

// Dense per-thread ids, assigned in first-recording order.
std::atomic<std::uint32_t> g_next_thread_id{0};
thread_local std::uint32_t t_thread_id = UINT32_MAX;
thread_local std::uint32_t t_depth = 0;

std::uint32_t thread_id() {
  if (t_thread_id == UINT32_MAX) {
    t_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_id;
}

void record_span(const char* name, std::uint32_t depth, double start_us,
                 double dur_us) {
  Ring* ring = ring_or_null();
  if (ring == nullptr) return;  // disabled before the ring ever existed
  const std::uint64_t index =
      ring->total.fetch_add(1, std::memory_order_relaxed);
  SpanRecord& slot = ring->slots[index & (kRingCapacity - 1)];
  slot.name = name;
  slot.thread = thread_id();
  slot.depth = depth;
  slot.start_us = start_us;
  slot.dur_us = dur_us;
}

}  // namespace

void set_enabled(bool on) {
  if (on && ring_or_null() == nullptr) {
    std::lock_guard<std::mutex> lock(g_init_mutex);
    if (ring_or_null() == nullptr) {
      g_epoch_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now().time_since_epoch())
                           .count(),
                       std::memory_order_relaxed);
      g_ring.store(new Ring(), std::memory_order_release);
    }
  }
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void record_max(Counter counter, std::uint64_t value) {
  if (!enabled()) return;
  auto& slot = detail::g_counters[static_cast<std::size_t>(counter)];
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (current < value &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t counter_value(Counter counter) {
  return detail::g_counters[static_cast<std::size_t>(counter)].load(
      std::memory_order_relaxed);
}

std::string_view counter_name(Counter counter) {
  return kCounterNames[static_cast<std::size_t>(counter)];
}

Span::Span(const char* name) : name_(nullptr) {
  if (!enabled()) return;
  name_ = name;
  depth_ = t_depth++;
  start_us_ = now_us();
}

Span::~Span() {
  if (name_ == nullptr) return;
  --t_depth;
  record_span(name_, depth_, start_us_, now_us() - start_us_);
}

TraceStats trace_stats() {
  TraceStats stats;
  stats.capacity = kRingCapacity;
  if (Ring* ring = ring_or_null()) {
    stats.recorded = ring->total.load(std::memory_order_relaxed);
    stats.retained = std::min<std::uint64_t>(stats.recorded, kRingCapacity);
    stats.dropped = stats.recorded - stats.retained;
  }
  return stats;
}

std::vector<SpanRecord> snapshot_spans() {
  std::vector<SpanRecord> spans;
  Ring* ring = ring_or_null();
  if (ring == nullptr) return spans;
  const std::uint64_t total = ring->total.load(std::memory_order_relaxed);
  const std::uint64_t retained = std::min<std::uint64_t>(total, kRingCapacity);
  spans.reserve(static_cast<std::size_t>(retained));
  for (std::uint64_t i = 0; i < retained; ++i) {
    const SpanRecord& slot = ring->slots[static_cast<std::size_t>(i)];
    if (slot.name != nullptr) spans.push_back(slot);
  }
  // Ring order is claim order only until the first wrap; present the
  // trace oldest-first regardless.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_us < b.start_us;
                   });
  return spans;
}

std::vector<std::pair<std::string_view, std::uint64_t>> snapshot_counters() {
  std::vector<std::pair<std::string_view, std::uint64_t>> counters;
  counters.reserve(kCounterCount);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    counters.emplace_back(kCounterNames[i],
                          detail::g_counters[i].load(
                              std::memory_order_relaxed));
  }
  return counters;
}

void reset() {
  for (auto& counter : detail::g_counters) {
    counter.store(0, std::memory_order_relaxed);
  }
  if (Ring* ring = ring_or_null()) {
    for (auto& slot : ring->slots) slot = SpanRecord{};
    ring->total.store(0, std::memory_order_relaxed);
  }
}

namespace {

// Minimal JSON number formatting: microsecond fields are finite by
// construction, so fixed precision is enough.
void json_number(std::ostream& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  out << buffer;
}

}  // namespace

void export_json(std::ostream& out) {
  const TraceStats stats = trace_stats();
  out << "{\n"
      << "  \"schema\": \"cosm-obs-trace\",\n"
      << "  \"version\": 1,\n"
      << "  \"enabled\": " << (enabled() ? "true" : "false") << ",\n"
      << "  \"counters\": [\n";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out << "    {\"name\": \"" << kCounterNames[i] << "\", \"value\": "
        << detail::g_counters[i].load(std::memory_order_relaxed) << "}"
        << (i + 1 < kCounterCount ? ",\n" : "\n");
  }
  out << "  ],\n"
      << "  \"span_total\": " << stats.recorded << ",\n"
      << "  \"span_dropped\": " << stats.dropped << ",\n"
      << "  \"spans\": [\n";
  const std::vector<SpanRecord> spans = snapshot_spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    out << "    {\"name\": \"" << span.name << "\", \"thread\": "
        << span.thread << ", \"depth\": " << span.depth
        << ", \"start_us\": ";
    json_number(out, span.start_us);
    out << ", \"dur_us\": ";
    json_number(out, span.dur_us);
    out << "}" << (i + 1 < spans.size() ? ",\n" : "\n");
  }
  out << "  ]\n"
      << "}\n";
}

void export_csv(std::ostream& out) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out << "counter," << kCounterNames[i] << ","
        << detail::g_counters[i].load(std::memory_order_relaxed) << "\n";
  }
  for (const SpanRecord& span : snapshot_spans()) {
    out << "span," << span.name << "," << span.thread << "," << span.depth
        << ",";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.3f,%.3f", span.start_us,
                  span.dur_us);
    out << buffer << "\n";
  }
}

}  // namespace cosm::obs
