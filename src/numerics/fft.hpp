// Fast Fourier transforms implemented from scratch.
//
// The radix-2 iterative Cooley–Tukey kernel handles power-of-two sizes;
// Bluestein's chirp-z algorithm extends it to arbitrary sizes.  The main
// client is grid convolution (src/numerics/grid.hpp), which convolves
// discretized latency densities as a cross-check on Laplace-transform
// inversion and as an alternative prediction path.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace cosm::numerics {

// In-place forward/inverse DFT.  data.size() may be any positive value;
// power-of-two sizes take the radix-2 fast path.  The inverse transform is
// normalized by 1/N.
void fft(std::vector<std::complex<double>>& data, bool inverse);

// Convenience wrappers.
std::vector<std::complex<double>> fft_forward(
    std::vector<std::complex<double>> data);
std::vector<std::complex<double>> fft_inverse(
    std::vector<std::complex<double>> data);

// Linear convolution of two real sequences via zero-padded FFT; result has
// size a.size() + b.size() - 1.
std::vector<double> convolve(const std::vector<double>& a,
                             const std::vector<double>& b);

// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

}  // namespace cosm::numerics
