#include "numerics/transform_tape.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <utility>

#include "common/require.hpp"
#include "numerics/compose.hpp"
#include "obs/obs.hpp"
#include "numerics/memo_cache.hpp"
#include "numerics/order_statistics.hpp"
#include "numerics/phase_type.hpp"
#include "numerics/simd_kernels.hpp"
#include "numerics/transform_nodes.hpp"

namespace cosm::numerics {

namespace {

// Evaluation workspace, leased from a thread-local free list so steady
// state allocates nothing and re-entrant evaluations (a generic leaf
// whose laplace() runs its own inversion) never share buffers.  The AoS
// vectors serve the exact evaluator; the *_re/_im planes are the
// structure-of-arrays layout of the SIMD evaluator (plus an AoS scratch
// for generic leaves, which still speak std::complex).  One lease carries
// both so a pooled workspace serves either mode.
struct TapeWorkspace {
  std::vector<std::complex<double>> values;  // value stack, batch-major
  std::vector<std::complex<double>> args;    // scaled-argument batches
  std::vector<std::complex<double>> slots;   // CSE slots
  std::vector<const std::complex<double>*> arg_stack;

  std::vector<double> values_re, values_im;  // SoA value stack
  std::vector<double> args_re, args_im;      // SoA argument planes; plane 0
                                             // holds the deinterleaved s
  std::vector<double> slots_re, slots_im;    // SoA CSE slots
  std::vector<const double*> arg_stack_re, arg_stack_im;
  std::vector<std::complex<double>> aos;     // generic-leaf interleave
};

class WorkspaceLease {
 public:
  WorkspaceLease() : ws_(acquire()) {}
  ~WorkspaceLease() { pool().push_back(std::move(ws_)); }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;
  TapeWorkspace* operator->() { return ws_.get(); }

 private:
  static std::vector<std::unique_ptr<TapeWorkspace>>& pool() {
    thread_local std::vector<std::unique_ptr<TapeWorkspace>> free_list;
    return free_list;
  }
  static std::unique_ptr<TapeWorkspace> acquire() {
    auto& free_list = pool();
    if (free_list.empty()) return std::make_unique<TapeWorkspace>();
    auto ws = std::move(free_list.back());
    free_list.pop_back();
    return ws;
  }
  std::unique_ptr<TapeWorkspace> ws_;
};

}  // namespace

// ------------------------------- compiler --------------------------------

class TapeCompiler {
 public:
  using Op = TransformTape::Op;
  using OpCode = TransformTape::OpCode;

  TransformTape run(const DistPtr& root) {
    COSM_REQUIRE(root != nullptr, "cannot compile a null distribution");
    count_node(root.get(), kRootCtx);
    emit_node(root, kRootCtx);
    compute_depths();
    return std::move(tape_);
  }

 private:
  static constexpr int kRootCtx = 0;
  // Occurrence keys pair the node pointer with an argument-context id so
  // CSE never conflates X evaluated at s with X evaluated at c·s (the
  // same subtree under different Scaled wrappers).
  using Key = std::pair<const Distribution*, int>;

  // Context ids are allocated on first sight in the counting pass and
  // looked up (never created) in the emit pass, so both passes see the
  // same ids for the same (parent context, scale factor) chains.
  int child_ctx(int parent, double factor, bool create) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(factor));
    std::memcpy(&bits, &factor, sizeof(bits));
    const auto key = std::make_pair(parent, bits);
    auto it = ctx_ids_.find(key);
    if (it == ctx_ids_.end()) {
      COSM_REQUIRE(create, "tape compiler context id missing in emit pass");
      it = ctx_ids_.emplace(key, next_ctx_++).first;
    }
    return it->second;
  }

  // Pass 1: count how often each (node, context) occurs.  Children are
  // only visited on the first occurrence, mirroring the emit pass where
  // repeats become LOAD ops with no children of their own.
  void count_node(const Distribution* d, int ctx) {
    if (++counts_[Key(d, ctx)] > 1) return;
    if (const auto* mix = dynamic_cast<const Mixture*>(d)) {
      for (const auto& c : mix->components()) count_node(c.dist.get(), ctx);
    } else if (const auto* conv = dynamic_cast<const Convolution*>(d)) {
      for (const auto& p : conv->parts()) count_node(p.get(), ctx);
    } else if (const auto* cp =
                   dynamic_cast<const CompoundPoissonConvolution*>(d)) {
      count_node(cp->base().get(), ctx);
      count_node(cp->extra().get(), ctx);
    } else if (const auto* ts = dynamic_cast<const TieredService*>(d)) {
      count_node(ts->hit().get(), ctx);
      count_node(ts->miss().get(), ctx);
    } else if (const auto* sc = dynamic_cast<const Scaled*>(d)) {
      count_node(sc->inner().get(),
                 child_ctx(ctx, sc->factor(), /*create=*/true));
    } else if (const auto* sh = dynamic_cast<const Shifted*>(d)) {
      count_node(sh->inner().get(), ctx);
    } else if (const auto* pk = dynamic_cast<const PKWaitingTime*>(d)) {
      count_node(pk->service().get(), ctx);
    } else if (const auto* gk = dynamic_cast<const MG1KSojourn*>(d)) {
      count_node(gk->service().get(), ctx);
    }
    // Every other type is a leaf (closed-form or generic): no children.
  }

  // Pass 2: emit postfix ops; subtrees occurring more than once get a
  // STORE at their first emission and LOADs afterwards.
  void emit_node(const DistPtr& sp, int ctx) {
    const Distribution* d = sp.get();
    const Key key(d, ctx);
    if (const auto slot_it = cse_slots_.find(key);
        slot_it != cse_slots_.end()) {
      push_op(OpCode::kLoad, slot_it->second, 0);
      return;
    }

    if (const auto* deg = dynamic_cast<const Degenerate*>(d)) {
      push_op(OpCode::kLeafDegenerate, 0, push_params({deg->value()}));
    } else if (const auto* ex = dynamic_cast<const Exponential*>(d)) {
      push_op(OpCode::kLeafExponential, 0, push_params({ex->rate()}));
    } else if (const auto* ga = dynamic_cast<const Gamma*>(d)) {
      push_op(OpCode::kLeafGamma, 0, push_params({ga->shape(), ga->rate()}));
    } else if (const auto* un = dynamic_cast<const Uniform*>(d)) {
      push_op(OpCode::kLeafUniform, 0, push_params({un->lo(), un->hi()}));
    } else if (const auto* er = dynamic_cast<const Erlang*>(d)) {
      // Erlang::laplace raises to static_cast<double>(stages_); storing
      // the exponent as a double keeps the same pow(complex, double)
      // instantiation.
      push_op(OpCode::kLeafErlang, 0,
              push_params({static_cast<double>(er->stages()), er->rate()}));
    } else if (const auto* he = dynamic_cast<const HyperExponential*>(d)) {
      std::vector<double> params;
      params.reserve(2 * he->branches().size());
      for (const auto& branch : he->branches()) {
        params.push_back(branch.probability);
        params.push_back(branch.rate);
      }
      push_op(OpCode::kLeafHyperExp,
              static_cast<std::uint32_t>(he->branches().size()),
              push_params(params));
    } else if (const auto* mk = dynamic_cast<const MM1KSojourn*>(d)) {
      // capacity rides in the params array as a double and is cast back
      // to int at evaluation so the tape calls the exact
      // pow(complex, int) overload MM1KSojourn::laplace calls.
      push_op(OpCode::kLeafMM1K, 0,
              push_params({mk->arrival_rate(), mk->service_rate(),
                           static_cast<double>(mk->capacity()), mk->p0(),
                           mk->blocking()}));
    } else if (const auto* os = dynamic_cast<const OrderStatistic*>(d)) {
      // The base distribution is already folded into the combined
      // F_(k:n) grid at construction, so the op is a leaf: [dt, F...] in
      // params, grid size in `a`.  MIN-OF-K and KTH-OF-N share an
      // evaluator; the distinct opcodes keep min-of-n and k-of-n tapes
      // structurally distinct for regime fingerprints.
      std::vector<double> params;
      params.reserve(1 + os->grid().size());
      params.push_back(os->grid_dt());
      for (const double f : os->grid()) params.push_back(f);
      push_op(os->k() == 1 ? OpCode::kMinOfK : OpCode::kKthOfN,
              static_cast<std::uint32_t>(os->grid().size()),
              push_params(params));
    } else if (const auto* mix = dynamic_cast<const Mixture*>(d)) {
      std::vector<double> weights;
      weights.reserve(mix->components().size());
      for (const auto& c : mix->components()) {
        emit_node(c.dist, ctx);
        weights.push_back(c.weight);
      }
      push_op(OpCode::kMix, static_cast<std::uint32_t>(weights.size()),
              push_params(weights));
    } else if (const auto* conv = dynamic_cast<const Convolution*>(d)) {
      for (const auto& p : conv->parts()) emit_node(p, ctx);
      push_op(OpCode::kMul, static_cast<std::uint32_t>(conv->parts().size()),
              0);
    } else if (const auto* cp =
                   dynamic_cast<const CompoundPoissonConvolution*>(d)) {
      emit_node(cp->base(), ctx);
      emit_node(cp->extra(), ctx);
      push_op(OpCode::kCPoisson, 0, push_params({cp->rate()}));
    } else if (const auto* ts = dynamic_cast<const TieredService*>(d)) {
      // The miss weight is the node's stored 1 − h, not recomputed here,
      // so the tape's fused multiply-add chain matches the tree walk's
      // exactly (bit-identity contract).
      emit_node(ts->hit(), ctx);
      emit_node(ts->miss(), ctx);
      push_op(OpCode::kTierMix, 0,
              push_params({ts->hit_ratio(), ts->miss_ratio()}));
    } else if (const auto* sc = dynamic_cast<const Scaled*>(d)) {
      push_op(OpCode::kScaleArg, 0, push_params({sc->factor()}));
      emit_node(sc->inner(), child_ctx(ctx, sc->factor(), /*create=*/false));
      push_op(OpCode::kPopArg, 0, 0);
    } else if (const auto* sh = dynamic_cast<const Shifted*>(d)) {
      emit_node(sh->inner(), ctx);
      push_op(OpCode::kShift, 0, push_params({sh->offset()}));
    } else if (const auto* pk = dynamic_cast<const PKWaitingTime*>(d)) {
      emit_node(pk->service(), ctx);
      push_op(OpCode::kPKWait, 0,
              push_params({pk->arrival_rate(), pk->utilization()}));
    } else if (const auto* gk = dynamic_cast<const MG1KSojourn*>(d)) {
      emit_node(gk->service(), ctx);
      std::vector<double> params;
      params.reserve(1 + gk->weights().size());
      params.push_back(gk->mean_service());
      for (double w : gk->weights()) params.push_back(w);
      push_op(OpCode::kMG1KSojourn,
              static_cast<std::uint32_t>(gk->weights().size()),
              push_params(params));
    } else {
      // Quadrature leaves, opaque LaplaceDistribution callables, unknown
      // subclasses: batched compatibility path via laplace_many.  Fold
      // the *value-based* distribution fingerprint so identically
      // parameterized generic leaves hash equal.
      const auto index = static_cast<std::uint32_t>(tape_.leaves_.size());
      tape_.leaves_.push_back(sp);
      push_op(OpCode::kLeafGeneric, index, 0, numerics::fingerprint(*d));
    }

    if (counts_.at(key) > 1) {
      const auto slot = static_cast<std::uint32_t>(tape_.slot_count_++);
      push_op(OpCode::kStore, slot, 0);
      cse_slots_.emplace(key, slot);
    }
  }

  // Appends params and returns their offset; folds them into the
  // fingerprint alongside the owning op in push_op.
  std::uint32_t push_params(const std::vector<double>& values) {
    const auto offset = static_cast<std::uint32_t>(tape_.params_.size());
    tape_.params_.insert(tape_.params_.end(), values.begin(), values.end());
    pending_param_count_ = values.size();
    return offset;
  }

  void push_op(OpCode code, std::uint32_t a, std::uint32_t b,
               std::uint64_t extra = 0) {
    tape_.ops_.push_back(Op{code, a, b});
    std::uint64_t fp = tape_.fingerprint_;
    fp = hash_mix(fp, (static_cast<std::uint64_t>(code) << 32) | a);
    for (std::size_t i = 0; i < pending_param_count_; ++i) {
      fp = hash_mix(fp, tape_.params_[b + i]);
    }
    if (extra != 0) fp = hash_mix(fp, extra);
    tape_.fingerprint_ = fp;
    // Shape-only hash: opcode + a, never params or leaf values.
    tape_.structure_fingerprint_ = hash_mix(
        tape_.structure_fingerprint_,
        (static_cast<std::uint64_t>(code) << 32) | a);
    pending_param_count_ = 0;
  }

  // Replays the op stream's stack effects to size the workspaces.
  void compute_depths() {
    std::size_t value_height = 0;
    std::size_t arg_height = 0;
    for (const Op& op : tape_.ops_) {
      switch (op.code) {
        case OpCode::kLeafDegenerate:
        case OpCode::kLeafExponential:
        case OpCode::kLeafGamma:
        case OpCode::kLeafUniform:
        case OpCode::kLeafErlang:
        case OpCode::kLeafHyperExp:
        case OpCode::kLeafMM1K:
        case OpCode::kMinOfK:
        case OpCode::kKthOfN:
        case OpCode::kLeafGeneric:
        case OpCode::kLoad:
          ++value_height;
          break;
        case OpCode::kMul:
        case OpCode::kMix:
          value_height -= op.a - 1;
          break;
        case OpCode::kCPoisson:
        case OpCode::kTierMix:
          --value_height;
          break;
        case OpCode::kShift:
        case OpCode::kPKWait:
        case OpCode::kMG1KSojourn:
        case OpCode::kStore:
          break;
        case OpCode::kScaleArg:
          ++arg_height;
          tape_.arg_depth_ = std::max(tape_.arg_depth_, arg_height);
          break;
        case OpCode::kPopArg:
          --arg_height;
          break;
      }
      tape_.value_depth_ = std::max(tape_.value_depth_, value_height);
    }
    COSM_REQUIRE(value_height == 1 && arg_height == 0,
                 "tape compiler produced an unbalanced program");
  }

  TransformTape tape_;
  std::map<Key, int> counts_;
  std::map<Key, std::uint32_t> cse_slots_;
  std::map<std::pair<int, std::uint64_t>, int> ctx_ids_;
  int next_ctx_ = 1;
  std::size_t pending_param_count_ = 0;
};

TransformTape TransformTape::compile(const DistPtr& root) {
  obs::Span span("tape.compile");
  TransformTape tape = TapeCompiler().run(root);
  if (obs::enabled()) {
    obs::add(obs::Counter::kTapeCompiles);
    obs::add(obs::Counter::kTapeOps,
             static_cast<std::uint64_t>(tape.ops_.size()));
  }
  return tape;
}

// ------------------------------- evaluator -------------------------------

void TransformTape::evaluate(std::span<const std::complex<double>> s,
                             std::span<std::complex<double>> out) const {
  evaluate(s, out, TapeEvalMode::kExact);
}

void TransformTape::evaluate(std::span<const std::complex<double>> s,
                             std::span<std::complex<double>> out,
                             TapeEvalMode mode) const {
  COSM_REQUIRE(compiled(), "cannot evaluate an empty transform tape");
  COSM_REQUIRE(s.size() == out.size(),
               "evaluate spans must have equal length");
  if (s.empty()) return;
  const bool simd = mode != TapeEvalMode::kExact;
  if (obs::enabled()) {
    obs::add(obs::Counter::kTapeEvalBatches);
    obs::add(obs::Counter::kTapeEvalPoints,
             static_cast<std::uint64_t>(s.size()));
    if (simd) {
      obs::add(obs::Counter::kTapeSimdBatches);
      obs::add(obs::Counter::kTapeSimdPoints,
               static_cast<std::uint64_t>(s.size()));
    }
  }
  if (simd) {
    evaluate_simd(s, out, mode == TapeEvalMode::kSimdFast);
  } else {
    evaluate_exact(s, out);
  }
}

void TransformTape::evaluate_exact(std::span<const std::complex<double>> s,
                                   std::span<std::complex<double>> out) const {
  const std::size_t batch = s.size();

  WorkspaceLease ws;
  ws->values.resize(value_depth_ * batch);
  ws->args.resize(arg_depth_ * batch);
  ws->slots.resize(slot_count_ * batch);
  ws->arg_stack.clear();
  ws->arg_stack.push_back(s.data());

  std::complex<double>* const values = ws->values.data();
  std::complex<double>* const args = ws->args.data();
  std::complex<double>* const slots = ws->slots.data();
  std::size_t top = 0;       // value-stack height, in batches
  std::size_t arg_used = 0;  // scaled-argument batches in use

  for (const Op& op : ops_) {
    const std::complex<double>* const sv = ws->arg_stack.back();
    const double* const p = params_.data() + op.b;
    switch (op.code) {
      case OpCode::kLeafDegenerate: {
        std::complex<double>* dst = values + top * batch;
        const double value = p[0];
        for (std::size_t i = 0; i < batch; ++i) {
          dst[i] = std::exp(-sv[i] * value);
        }
        ++top;
        break;
      }
      case OpCode::kLeafExponential: {
        std::complex<double>* dst = values + top * batch;
        const double rate = p[0];
        for (std::size_t i = 0; i < batch; ++i) {
          dst[i] = rate / (rate + sv[i]);
        }
        ++top;
        break;
      }
      case OpCode::kLeafGamma: {
        std::complex<double>* dst = values + top * batch;
        const double shape = p[0];
        const double rate = p[1];
        for (std::size_t i = 0; i < batch; ++i) {
          const std::complex<double> z = sv[i] / rate;
          if (std::abs(z) < 1e-6) {
            dst[i] = std::exp(-shape * (z - 0.5 * z * z));
          } else {
            dst[i] = std::pow(rate / (rate + sv[i]), shape);
          }
        }
        ++top;
        break;
      }
      case OpCode::kLeafUniform: {
        std::complex<double>* dst = values + top * batch;
        const double lo = p[0];
        const double hi = p[1];
        for (std::size_t i = 0; i < batch; ++i) {
          const std::complex<double> sc = sv[i];
          if (std::abs(sc) < 1e-8) {
            dst[i] = 1.0 - sc * (0.5 * (lo + hi)) +
                     sc * sc * ((lo * lo + lo * hi + hi * hi) / 6.0);
          } else {
            dst[i] = (std::exp(-sc * lo) - std::exp(-sc * hi)) /
                     (sc * (hi - lo));
          }
        }
        ++top;
        break;
      }
      case OpCode::kLeafErlang: {
        std::complex<double>* dst = values + top * batch;
        const double stages = p[0];
        const double rate = p[1];
        for (std::size_t i = 0; i < batch; ++i) {
          dst[i] = std::pow(rate / (rate + sv[i]), stages);
        }
        ++top;
        break;
      }
      case OpCode::kLeafHyperExp: {
        std::complex<double>* dst = values + top * batch;
        const std::size_t branches = op.a;
        for (std::size_t i = 0; i < batch; ++i) {
          std::complex<double> total = 0.0;
          for (std::size_t k = 0; k < branches; ++k) {
            total += p[2 * k] * p[2 * k + 1] / (p[2 * k + 1] + sv[i]);
          }
          dst[i] = total;
        }
        ++top;
        break;
      }
      case OpCode::kLeafMM1K: {
        std::complex<double>* dst = values + top * batch;
        const double arrival = p[0];
        const double service = p[1];
        const int capacity = static_cast<int>(p[2]);
        const double p0 = p[3];
        const double blocking = p[4];
        for (std::size_t i = 0; i < batch; ++i) {
          const std::complex<double> sc = sv[i];
          if (std::abs(sc) < 1e-14) {
            dst[i] = std::complex<double>(1.0, 0.0);
            continue;
          }
          const std::complex<double> ratio_pow =
              std::pow(arrival / (service + sc), capacity);
          dst[i] = service * p0 / (1.0 - blocking) * (1.0 - ratio_pow) /
                   (service - arrival + sc);
        }
        ++top;
        break;
      }
      case OpCode::kMinOfK:
      case OpCode::kKthOfN: {
        std::complex<double>* dst = values + top * batch;
        const double dt = p[0];
        const double* const cdf = p + 1;
        const std::size_t count = op.a;
        for (std::size_t i = 0; i < batch; ++i) {
          dst[i] = detail::piecewise_cdf_laplace(sv[i], dt, cdf, count);
        }
        ++top;
        break;
      }
      case OpCode::kLeafGeneric: {
        std::complex<double>* dst = values + top * batch;
        leaves_[op.a]->laplace_many(
            std::span<const std::complex<double>>(sv, batch),
            std::span<std::complex<double>>(dst, batch));
        ++top;
        break;
      }
      case OpCode::kMul: {
        const std::size_t n = op.a;
        std::complex<double>* base = values + (top - n) * batch;
        for (std::size_t i = 0; i < batch; ++i) {
          std::complex<double> product = 1.0;
          for (std::size_t c = 0; c < n; ++c) product *= base[c * batch + i];
          base[i] = product;
        }
        top -= n - 1;
        break;
      }
      case OpCode::kMix: {
        const std::size_t n = op.a;
        std::complex<double>* base = values + (top - n) * batch;
        for (std::size_t i = 0; i < batch; ++i) {
          std::complex<double> sum = 0.0;
          for (std::size_t c = 0; c < n; ++c) {
            sum += p[c] * base[c * batch + i];
          }
          base[i] = sum;
        }
        top -= n - 1;
        break;
      }
      case OpCode::kCPoisson: {
        std::complex<double>* base = values + (top - 2) * batch;
        const std::complex<double>* extra = values + (top - 1) * batch;
        const double rate = p[0];
        for (std::size_t i = 0; i < batch; ++i) {
          base[i] = base[i] * std::exp(rate * (extra[i] - 1.0));
        }
        --top;
        break;
      }
      case OpCode::kTierMix: {
        std::complex<double>* hit = values + (top - 2) * batch;
        const std::complex<double>* miss = values + (top - 1) * batch;
        for (std::size_t i = 0; i < batch; ++i) {
          hit[i] = p[0] * hit[i] + p[1] * miss[i];
        }
        --top;
        break;
      }
      case OpCode::kShift: {
        std::complex<double>* inner = values + (top - 1) * batch;
        const double offset = p[0];
        for (std::size_t i = 0; i < batch; ++i) {
          inner[i] = std::exp(-sv[i] * offset) * inner[i];
        }
        break;
      }
      case OpCode::kScaleArg: {
        std::complex<double>* dst = args + arg_used * batch;
        const double factor = p[0];
        for (std::size_t i = 0; i < batch; ++i) dst[i] = factor * sv[i];
        ws->arg_stack.push_back(dst);
        ++arg_used;
        break;
      }
      case OpCode::kPopArg: {
        ws->arg_stack.pop_back();
        --arg_used;
        break;
      }
      case OpCode::kPKWait: {
        std::complex<double>* lb = values + (top - 1) * batch;
        const double arrival = p[0];
        const double rho = p[1];
        for (std::size_t i = 0; i < batch; ++i) {
          const std::complex<double> sc = sv[i];
          if (std::abs(sc) < 1e-14) {
            lb[i] = std::complex<double>(1.0, 0.0);
            continue;
          }
          lb[i] = (1.0 - rho) * sc / (arrival * lb[i] + sc - arrival);
        }
        break;
      }
      case OpCode::kMG1KSojourn: {
        std::complex<double>* lbv = values + (top - 1) * batch;
        const double mean_service = p[0];
        const double* const weights = p + 1;
        const std::size_t n = op.a;
        for (std::size_t i = 0; i < batch; ++i) {
          const std::complex<double> sc = sv[i];
          if (std::abs(sc) * mean_service < 1e-8) {
            lbv[i] = std::complex<double>(1.0, 0.0);
            continue;
          }
          const std::complex<double> lb = lbv[i];
          const std::complex<double> residual =
              (1.0 - lb) / (sc * mean_service);
          std::complex<double> total = weights[0] * lb;
          std::complex<double> lb_power = 1.0;
          for (std::size_t k = 1; k < n; ++k) {
            total += weights[k] * residual * lb_power * lb;
            lb_power *= lb;
          }
          lbv[i] = total;
        }
        break;
      }
      case OpCode::kStore: {
        const std::complex<double>* src = values + (top - 1) * batch;
        std::complex<double>* dst = slots + op.a * batch;
        for (std::size_t i = 0; i < batch; ++i) dst[i] = src[i];
        break;
      }
      case OpCode::kLoad: {
        const std::complex<double>* src = slots + op.a * batch;
        std::complex<double>* dst = values + top * batch;
        for (std::size_t i = 0; i < batch; ++i) dst[i] = src[i];
        ++top;
        break;
      }
    }
  }
  COSM_REQUIRE(top == 1, "tape evaluation finished with a non-unit stack");
  const std::complex<double>* result = values;
  for (std::size_t i = 0; i < batch; ++i) out[i] = result[i];
}

// The structure-of-arrays evaluator: the same stack machine, but every
// batch lives as separate re/im planes and every op body is a call into
// the runtime-dispatched kernel table (numerics/simd_kernels.hpp).  Stack
// discipline, CSE slots, and the scaled-argument stack are identical to
// evaluate_exact; only the data layout and the op arithmetic provider
// change.
void TransformTape::evaluate_simd(std::span<const std::complex<double>> s,
                                  std::span<std::complex<double>> out,
                                  bool fast) const {
  const std::size_t batch = s.size();
  const simd::TapeKernels& kern = simd::active_kernels();

  WorkspaceLease ws;
  ws->values_re.resize(value_depth_ * batch);
  ws->values_im.resize(value_depth_ * batch);
  ws->args_re.resize((arg_depth_ + 1) * batch);
  ws->args_im.resize((arg_depth_ + 1) * batch);
  ws->slots_re.resize(slot_count_ * batch);
  ws->slots_im.resize(slot_count_ * batch);
  ws->arg_stack_re.clear();
  ws->arg_stack_im.clear();

  // Argument plane 0: the deinterleaved contour.
  double* const s_re = ws->args_re.data();
  double* const s_im = ws->args_im.data();
  for (std::size_t i = 0; i < batch; ++i) {
    s_re[i] = s[i].real();
    s_im[i] = s[i].imag();
  }
  ws->arg_stack_re.push_back(s_re);
  ws->arg_stack_im.push_back(s_im);

  double* const vre = ws->values_re.data();
  double* const vim = ws->values_im.data();
  double* const slre = ws->slots_re.data();
  double* const slim = ws->slots_im.data();
  std::size_t top = 0;       // value-stack height, in batches
  std::size_t arg_used = 1;  // argument planes in use (plane 0 is s)

  for (const Op& op : ops_) {
    const double* const svr = ws->arg_stack_re.back();
    const double* const svi = ws->arg_stack_im.back();
    const double* const p = params_.data() + op.b;
    switch (op.code) {
      case OpCode::kLeafDegenerate:
        (fast ? kern.leaf_degenerate_fast : kern.leaf_degenerate)(
            svr, svi, p[0], vre + top * batch, vim + top * batch, batch);
        ++top;
        break;
      case OpCode::kLeafExponential:
        kern.leaf_exponential(svr, svi, p[0], vre + top * batch,
                              vim + top * batch, batch);
        ++top;
        break;
      case OpCode::kLeafGamma:
        (fast ? kern.leaf_gamma_fast : kern.leaf_gamma)(
            svr, svi, p[0], p[1], vre + top * batch, vim + top * batch, batch);
        ++top;
        break;
      case OpCode::kLeafUniform:
        (fast ? kern.leaf_uniform_fast : kern.leaf_uniform)(
            svr, svi, p[0], p[1], vre + top * batch, vim + top * batch, batch);
        ++top;
        break;
      case OpCode::kLeafErlang:
        (fast ? kern.leaf_erlang_fast : kern.leaf_erlang)(
            svr, svi, p[0], p[1], vre + top * batch, vim + top * batch, batch);
        ++top;
        break;
      case OpCode::kLeafHyperExp:
        kern.leaf_hyperexp(svr, svi, p, op.a, vre + top * batch,
                           vim + top * batch, batch);
        ++top;
        break;
      case OpCode::kLeafMM1K:
        kern.leaf_mm1k(svr, svi, p, vre + top * batch, vim + top * batch,
                       batch);
        ++top;
        break;
      case OpCode::kMinOfK:
      case OpCode::kKthOfN:
        (fast ? kern.order_stat_fast : kern.order_stat)(
            svr, svi, p[0], p + 1, op.a, vre + top * batch, vim + top * batch,
            batch);
        ++top;
        break;
      case OpCode::kLeafGeneric: {
        // Compatibility path: generic leaves speak std::complex, so
        // interleave the current argument plane, call laplace_many, and
        // deinterleave the results.
        ws->aos.resize(2 * batch);
        std::complex<double>* const in = ws->aos.data();
        std::complex<double>* const res = ws->aos.data() + batch;
        for (std::size_t i = 0; i < batch; ++i) {
          in[i] = std::complex<double>(svr[i], svi[i]);
        }
        leaves_[op.a]->laplace_many(
            std::span<const std::complex<double>>(in, batch),
            std::span<std::complex<double>>(res, batch));
        double* const dr = vre + top * batch;
        double* const di = vim + top * batch;
        for (std::size_t i = 0; i < batch; ++i) {
          dr[i] = res[i].real();
          di[i] = res[i].imag();
        }
        ++top;
        break;
      }
      case OpCode::kMul:
        kern.mul(vre + (top - op.a) * batch, vim + (top - op.a) * batch,
                 op.a, batch);
        top -= op.a - 1;
        break;
      case OpCode::kMix:
        kern.mix(vre + (top - op.a) * batch, vim + (top - op.a) * batch, p,
                 op.a, batch);
        top -= op.a - 1;
        break;
      case OpCode::kCPoisson:
        (fast ? kern.cpoisson_fast : kern.cpoisson)(
            vre + (top - 2) * batch, vim + (top - 2) * batch,
            vre + (top - 1) * batch, vim + (top - 1) * batch, p[0], batch);
        --top;
        break;
      case OpCode::kTierMix:
        kern.tier_mix(vre + (top - 2) * batch, vim + (top - 2) * batch,
                      vre + (top - 1) * batch, vim + (top - 1) * batch, p[0],
                      p[1], batch);
        --top;
        break;
      case OpCode::kShift:
        (fast ? kern.shift_fast : kern.shift)(svr, svi, p[0],
                                              vre + (top - 1) * batch,
                                              vim + (top - 1) * batch, batch);
        break;
      case OpCode::kScaleArg: {
        double* const dr = ws->args_re.data() + arg_used * batch;
        double* const di = ws->args_im.data() + arg_used * batch;
        kern.scale_arg(svr, svi, p[0], dr, di, batch);
        ws->arg_stack_re.push_back(dr);
        ws->arg_stack_im.push_back(di);
        ++arg_used;
        break;
      }
      case OpCode::kPopArg:
        ws->arg_stack_re.pop_back();
        ws->arg_stack_im.pop_back();
        --arg_used;
        break;
      case OpCode::kPKWait:
        kern.pk_wait(svr, svi, p[0], p[1], vre + (top - 1) * batch,
                     vim + (top - 1) * batch, batch);
        break;
      case OpCode::kMG1KSojourn:
        kern.mg1k(svr, svi, p, op.a, vre + (top - 1) * batch,
                  vim + (top - 1) * batch, batch);
        break;
      case OpCode::kStore:
        std::memcpy(slre + op.a * batch, vre + (top - 1) * batch,
                    batch * sizeof(double));
        std::memcpy(slim + op.a * batch, vim + (top - 1) * batch,
                    batch * sizeof(double));
        break;
      case OpCode::kLoad:
        std::memcpy(vre + top * batch, slre + op.a * batch,
                    batch * sizeof(double));
        std::memcpy(vim + top * batch, slim + op.a * batch,
                    batch * sizeof(double));
        ++top;
        break;
    }
  }
  COSM_REQUIRE(top == 1, "tape evaluation finished with a non-unit stack");
  for (std::size_t i = 0; i < batch; ++i) {
    out[i] = std::complex<double>(vre[i], vim[i]);
  }
}

// ----------------------------- entry points ------------------------------

BatchLaplaceFn TransformTape::batch_fn(TapeEvalMode mode) const {
  return [this, mode](std::span<const std::complex<double>> s,
                      std::span<std::complex<double>> out) {
    evaluate(s, out, mode);
  };
}

double TransformTape::cdf(double t, int m, TapeEvalMode mode) const {
  return cdf_from_laplace(batch_fn(mode), t, m);
}

std::vector<double> TransformTape::cdf_many(std::span<const double> ts, int m,
                                            TapeEvalMode mode) const {
  return cdf_many_from_laplace(batch_fn(mode), ts, m);
}

double TransformTape::quantile(double p, double mean_hint, double t_max,
                               QuantileWarmStart* warm,
                               TapeEvalMode mode) const {
  return quantile_from_laplace(batch_fn(mode), p, mean_hint, t_max, warm);
}

double TransformTape::invert_density(double t, int m) const {
  return invert_euler(batch_fn(), t, m);
}

double TransformTape::invert_density_talbot(double t, int m) const {
  return invert_talbot(batch_fn(), t, m);
}

}  // namespace cosm::numerics
