#include "numerics/compose.hpp"

#include <cmath>
#include <limits>

#include "common/require.hpp"

namespace cosm::numerics {

// -------------------------------- Mixture --------------------------------

Mixture::Mixture(std::vector<Component> components)
    : components_(std::move(components)) {
  COSM_REQUIRE(!components_.empty(), "mixture needs at least one component");
  double total = 0.0;
  for (const auto& c : components_) {
    COSM_REQUIRE(c.weight >= 0, "mixture weights must be non-negative");
    COSM_REQUIRE(c.dist != nullptr, "mixture component must be non-null");
    total += c.weight;
  }
  COSM_REQUIRE(std::abs(total - 1.0) < 1e-9, "mixture weights must sum to 1");
}

std::string Mixture::name() const { return "mixture"; }

std::complex<double> Mixture::laplace(std::complex<double> s) const {
  std::complex<double> sum = 0.0;
  for (const auto& c : components_) sum += c.weight * c.dist->laplace(s);
  return sum;
}

double Mixture::mean() const {
  double sum = 0.0;
  for (const auto& c : components_) sum += c.weight * c.dist->mean();
  return sum;
}

double Mixture::second_moment() const {
  double sum = 0.0;
  for (const auto& c : components_) {
    sum += c.weight * c.dist->second_moment();
  }
  return sum;
}

double Mixture::third_moment() const {
  double sum = 0.0;
  for (const auto& c : components_) {
    sum += c.weight * c.dist->third_moment();
  }
  return sum;
}

double Mixture::cdf(double t) const {
  double sum = 0.0;
  for (const auto& c : components_) sum += c.weight * c.dist->cdf(t);
  return sum;
}

double Mixture::sample(Rng& rng) const {
  double u = rng.uniform();
  for (const auto& c : components_) {
    if (u < c.weight) return c.dist->sample(rng);
    u -= c.weight;
  }
  return components_.back().dist->sample(rng);
}

DistPtr atom_at_zero_mixture(double miss_ratio, DistPtr on_miss) {
  COSM_REQUIRE(miss_ratio >= 0 && miss_ratio <= 1,
               "miss ratio must be in [0, 1]");
  COSM_REQUIRE(on_miss != nullptr, "on_miss distribution must be non-null");
  return std::make_shared<Mixture>(std::vector<Mixture::Component>{
      {1.0 - miss_ratio, std::make_shared<Degenerate>(0.0)},
      {miss_ratio, std::move(on_miss)}});
}

// ------------------------------ Convolution ------------------------------

Convolution::Convolution(std::vector<DistPtr> parts)
    : parts_(std::move(parts)) {
  COSM_REQUIRE(!parts_.empty(), "convolution needs at least one part");
  for (const auto& p : parts_) {
    COSM_REQUIRE(p != nullptr, "convolution part must be non-null");
  }
}

std::string Convolution::name() const { return "convolution"; }

std::complex<double> Convolution::laplace(std::complex<double> s) const {
  std::complex<double> product = 1.0;
  for (const auto& p : parts_) product *= p->laplace(s);
  return product;
}

double Convolution::mean() const {
  double sum = 0.0;
  for (const auto& p : parts_) sum += p->mean();
  return sum;
}

double Convolution::second_moment() const {
  // E[(sum X_i)^2] = sum Var(X_i) + (sum E X_i)^2 for independent parts.
  double var_sum = 0.0;
  for (const auto& p : parts_) var_sum += p->variance();
  const double m = mean();
  return var_sum + m * m;
}

double Convolution::third_moment() const {
  // Third cumulants add for independent parts:
  // kappa3 = m3 - 3 m1 m2 + 2 m1^3.
  double kappa3_sum = 0.0;
  for (const auto& p : parts_) {
    const double m1 = p->mean();
    const double m2 = p->second_moment();
    const double m3 = p->third_moment();
    kappa3_sum += m3 - 3.0 * m1 * m2 + 2.0 * m1 * m1 * m1;
  }
  const double m1 = mean();
  const double m2 = second_moment();
  return kappa3_sum + 3.0 * m1 * m2 - 2.0 * m1 * m1 * m1;
}

double Convolution::sample(Rng& rng) const {
  double sum = 0.0;
  for (const auto& p : parts_) sum += p->sample(rng);
  return sum;
}

// ----------------------- CompoundPoissonConvolution ----------------------

CompoundPoissonConvolution::CompoundPoissonConvolution(DistPtr base,
                                                       double rate,
                                                       DistPtr extra)
    : base_(std::move(base)), rate_(rate), extra_(std::move(extra)) {
  COSM_REQUIRE(base_ != nullptr && extra_ != nullptr,
               "compound poisson parts must be non-null");
  COSM_REQUIRE(rate >= 0, "compound poisson rate must be non-negative");
}

std::string CompoundPoissonConvolution::name() const {
  return "compound_poisson_convolution";
}

std::complex<double> CompoundPoissonConvolution::laplace(
    std::complex<double> s) const {
  // Sum over j of e^{-p} p^j / j! · L[extra]^j collapses to
  // exp(p (L[extra](s) - 1)).
  return base_->laplace(s) * std::exp(rate_ * (extra_->laplace(s) - 1.0));
}

double CompoundPoissonConvolution::mean() const {
  return base_->mean() + rate_ * extra_->mean();
}

double CompoundPoissonConvolution::second_moment() const {
  // Compound Poisson variance: p · E[extra^2]; parts are independent.
  const double var =
      base_->variance() + rate_ * extra_->second_moment();
  const double m = mean();
  return var + m * m;
}

double CompoundPoissonConvolution::third_moment() const {
  // Compound-Poisson cumulants: kappa_n(sum) = p * E[extra^n]; cumulants
  // add with the independent base.
  const double b1 = base_->mean();
  const double b2 = base_->second_moment();
  const double b3 = base_->third_moment();
  const double base_kappa3 = b3 - 3.0 * b1 * b2 + 2.0 * b1 * b1 * b1;
  const double kappa3 = base_kappa3 + rate_ * extra_->third_moment();
  const double m1 = mean();
  const double m2 = second_moment();
  return kappa3 + 3.0 * m1 * m2 - 2.0 * m1 * m1 * m1;
}

double CompoundPoissonConvolution::sample(Rng& rng) const {
  double total = base_->sample(rng);
  const std::uint64_t extras = rng.poisson(rate_);
  for (std::uint64_t i = 0; i < extras; ++i) total += extra_->sample(rng);
  return total;
}

// ---------------------------- LaplaceDistribution -------------------------

LaplaceDistribution::LaplaceDistribution(std::string name, LaplaceFn lt,
                                         double mean, double second_moment)
    : name_(std::move(name)),
      lt_(std::move(lt)),
      mean_(mean),
      second_moment_(second_moment) {
  COSM_REQUIRE(lt_ != nullptr, "laplace function must be non-null");
  // NaN means "unknown" and is allowed; negative means a caller bug.
  COSM_REQUIRE(!(mean < 0), "mean must be non-negative or NaN");
}

// --------------------------------- Scaled ---------------------------------

Scaled::Scaled(DistPtr inner, double factor)
    : inner_(std::move(inner)), factor_(factor) {
  COSM_REQUIRE(inner_ != nullptr, "scaled distribution needs an inner one");
  COSM_REQUIRE(std::isfinite(factor) && factor > 0,
               "scale factor must be finite and positive");
}

std::string Scaled::name() const {
  return "Scaled(" + inner_->name() + ")";
}

std::complex<double> Scaled::laplace(std::complex<double> s) const {
  // E[e^{-s cX}] = L[X](c s).
  return inner_->laplace(factor_ * s);
}

double Scaled::mean() const { return factor_ * inner_->mean(); }

double Scaled::second_moment() const {
  return factor_ * factor_ * inner_->second_moment();
}

double Scaled::third_moment() const {
  return factor_ * factor_ * factor_ * inner_->third_moment();
}

double Scaled::cdf(double t) const { return inner_->cdf(t / factor_); }

double Scaled::sample(Rng& rng) const {
  return factor_ * inner_->sample(rng);
}

// ----------------------------- TieredService -----------------------------

TieredService::TieredService(double hit_ratio, DistPtr hit, DistPtr miss)
    : hit_ratio_(hit_ratio),
      miss_ratio_(1.0 - hit_ratio),
      hit_(std::move(hit)),
      miss_(std::move(miss)) {
  COSM_REQUIRE(hit_ratio >= 0 && hit_ratio <= 1,
               "tier hit ratio must be in [0, 1]");
  COSM_REQUIRE(hit_ != nullptr && miss_ != nullptr,
               "tier components must be non-null");
}

std::string TieredService::name() const { return "tiered_service"; }

std::complex<double> TieredService::laplace(std::complex<double> s) const {
  return hit_ratio_ * hit_->laplace(s) + miss_ratio_ * miss_->laplace(s);
}

double TieredService::mean() const {
  return hit_ratio_ * hit_->mean() + miss_ratio_ * miss_->mean();
}

double TieredService::second_moment() const {
  return hit_ratio_ * hit_->second_moment() +
         miss_ratio_ * miss_->second_moment();
}

double TieredService::third_moment() const {
  return hit_ratio_ * hit_->third_moment() +
         miss_ratio_ * miss_->third_moment();
}

double TieredService::cdf(double t) const {
  return hit_ratio_ * hit_->cdf(t) + miss_ratio_ * miss_->cdf(t);
}

double TieredService::sample(Rng& rng) const {
  return rng.uniform() < hit_ratio_ ? hit_->sample(rng) : miss_->sample(rng);
}

DistPtr scale_dist(DistPtr inner, double factor) {
  if (factor == 1.0) return inner;
  return std::make_shared<Scaled>(std::move(inner), factor);
}

DistPtr convolve_dists(std::vector<DistPtr> parts) {
  if (parts.size() == 1) return parts.front();
  return std::make_shared<Convolution>(std::move(parts));
}

}  // namespace cosm::numerics
