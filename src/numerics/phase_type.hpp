// Phase-type convenience distributions: the classic two-moment matching
// tools of queueing practice.
//
//  * Erlang(k, rate)      — sum of k exponentials; CV² = 1/k < 1.
//  * HyperExponential     — probabilistic mixture of exponentials;
//                           CV² > 1.  two_moment() builds the standard
//                           balanced-means H2 fit.
//  * Shifted(d, D)        — constant offset plus a distribution; models
//                           "fixed setup + variable work" service laws.
//
// All three carry exact Laplace transforms, so they slot directly into
// the model wherever a fitted Gamma would go — useful both for
// sensitivity studies (how much does the latency percentile care about
// the service-law family at matched moments?) and for building M/G/1
// test cases with known structure.
#pragma once

#include <vector>

#include "numerics/distribution.hpp"

namespace cosm::numerics {

class Erlang final : public Distribution {
 public:
  Erlang(unsigned stages, double rate);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override;
  double second_moment() const override;
  double third_moment() const override;
  double cdf(double t) const override;
  double sample(Rng& rng) const override;

  unsigned stages() const { return stages_; }
  double rate() const { return rate_; }

 private:
  unsigned stages_;
  double rate_;
};

class HyperExponential final : public Distribution {
 public:
  struct Branch {
    double probability;
    double rate;
  };
  // Branch probabilities must sum to 1.
  explicit HyperExponential(std::vector<Branch> branches);

  // Balanced-means two-moment H2 fit: returns a hyperexponential with the
  // given mean and squared coefficient of variation (cv2 > 1).
  static HyperExponential two_moment(double mean, double cv2);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override;
  double second_moment() const override;
  double third_moment() const override;
  double cdf(double t) const override;
  double sample(Rng& rng) const override;

  const std::vector<Branch>& branches() const { return branches_; }

 private:
  std::vector<Branch> branches_;
};

// offset + inner variate.
class Shifted final : public Distribution {
 public:
  Shifted(double offset, DistPtr inner);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override;
  double second_moment() const override;
  double third_moment() const override;
  double cdf(double t) const override;
  double sample(Rng& rng) const override;
  double offset() const { return offset_; }
  const DistPtr& inner() const { return inner_; }

 private:
  double offset_;
  DistPtr inner_;
};

}  // namespace cosm::numerics
