#pragma once

// SoA tape kernels: the vectorized op bodies behind TapeEvalMode::kSimd.
//
// Each kernel operates on separate re/im planes (structure-of-arrays) so
// the compiler can keep full vector lanes of doubles instead of shuffling
// interleaved std::complex pairs.  The same kernel source
// (simd_kernels_impl.hpp) is compiled into up to three translation units
// with different target flags:
//
//   simd_kernels_scalar.cpp   — baseline flags (always built; the
//                               COSM_NO_SIMD=ON build ships only this)
//   simd_kernels_avx2.cpp     — -mavx2
//   simd_kernels_avx512.cpp   — -mavx512f -mavx512dq
//
// All three compile with -ffp-contract=off and contain no std::fma, so
// every variant executes the same IEEE operations per element and their
// results are BIT-IDENTICAL — the variant choice affects speed only.
// active_kernels() picks the widest variant the CPU supports at runtime
// (overridable via the COSM_SIMD environment variable: "scalar", "avx2",
// or "avx512"); the scalar variant is the compile-time fallback on
// non-x86 targets or under COSM_NO_SIMD.
//
// Exactness classes (enforced by tests/numerics/test_simd_kernels.cpp):
//   bit-exact (TapeEvalMode::kSimd — every kernel in the default table):
//     * exponential, hyperexp, mm1k, mul, mix, tier_mix, scale_arg,
//       pk_wait, mg1k — vectorized rational/integer-power arithmetic
//       replicating the scalar walk's operation order and guard
//       predicates exactly.
//     * degenerate, gamma, uniform, erlang, order_stat, cpoisson, shift —
//       per-lane through the exact evaluator's own libm expressions.
//       These CANNOT be vectorized under a flat ULP bound: pow's
//       conditioning amplifies log/atan2 error by |shape·log z|, and the
//       exp-difference/combinator paths cancel, so bit-identity is the
//       only honest contract for the default mode.
//   ULP-bounded (TapeEvalMode::kSimdFast — the *_fast alternates):
//     degenerate, gamma, uniform, erlang, order_stat, cpoisson, shift via
//     the branchless vector transcendentals of numerics/simd_math.hpp;
//     within the documented per-op bound of the scalar walk
//     (docs/PERFORMANCE.md §7; pow-family bounds carry a conditioning
//     term, and guard predicates use squared magnitudes instead of
//     hypot).  Deviations compound through downstream combinators.

#include <cstddef>

namespace cosm::numerics::simd {

struct TapeKernels {
  const char* name;

  // Closed-form leaves: dst[i] = L(s[i]) from the op params.
  void (*leaf_degenerate)(const double* sr, const double* si, double value, double* dr, double* di, std::size_t n);
  void (*leaf_exponential)(const double* sr, const double* si, double rate, double* dr, double* di, std::size_t n);
  void (*leaf_gamma)(const double* sr, const double* si, double shape, double rate, double* dr, double* di,
                     std::size_t n);
  void (*leaf_uniform)(const double* sr, const double* si, double lo, double hi, double* dr, double* di,
                       std::size_t n);
  void (*leaf_erlang)(const double* sr, const double* si, double stages, double rate, double* dr, double* di,
                      std::size_t n);
  // params layout as on the tape: [p0, r0, p1, r1, ...].
  void (*leaf_hyperexp)(const double* sr, const double* si, const double* params, std::size_t branches, double* dr,
                        double* di, std::size_t n);
  // params layout: [arrival, service, capacity, p0, blocking].
  void (*leaf_mm1k)(const double* sr, const double* si, const double* params, double* dr, double* di, std::size_t n);
  // Order-statistic leaf: piecewise-linear CDF grid + tail atom
  // (numerics::detail::piecewise_cdf_laplace in SoA form).
  void (*order_stat)(const double* sr, const double* si, double dt, const double* cdf, std::size_t count, double* dr,
                     double* di, std::size_t n);

  // Stack combinators.  base planes hold `children` consecutive batches of
  // `batch` elements; the result lands in child 0's batch.
  void (*mul)(double* base_r, double* base_i, std::size_t children, std::size_t batch);
  void (*mix)(double* base_r, double* base_i, const double* weights, std::size_t children, std::size_t batch);
  void (*tier_mix)(double* hit_r, double* hit_i, const double* miss_r, const double* miss_i, double hit_w,
                   double miss_w, std::size_t n);
  void (*cpoisson)(double* base_r, double* base_i, const double* extra_r, const double* extra_i, double rate,
                   std::size_t n);
  void (*shift)(const double* sr, const double* si, double offset, double* vr, double* vi, std::size_t n);
  void (*scale_arg)(const double* sr, const double* si, double factor, double* dr, double* di, std::size_t n);
  void (*pk_wait)(const double* sr, const double* si, double arrival, double rho, double* vr, double* vi,
                  std::size_t n);
  // params layout as on the tape: [mean_service, w0, ..., w_{nw-1}].
  void (*mg1k)(const double* sr, const double* si, const double* params, std::size_t nw, double* vr, double* vi,
               std::size_t n);

  // kSimdFast alternates for the exp/pow-family ops (same signatures as
  // their bit-exact counterparts above; see the ULP-bounded class note).
  void (*leaf_degenerate_fast)(const double* sr, const double* si, double value, double* dr, double* di,
                               std::size_t n);
  void (*leaf_gamma_fast)(const double* sr, const double* si, double shape, double rate, double* dr, double* di,
                          std::size_t n);
  void (*leaf_uniform_fast)(const double* sr, const double* si, double lo, double hi, double* dr, double* di,
                            std::size_t n);
  void (*leaf_erlang_fast)(const double* sr, const double* si, double stages, double rate, double* dr, double* di,
                           std::size_t n);
  void (*order_stat_fast)(const double* sr, const double* si, double dt, const double* cdf, std::size_t count,
                          double* dr, double* di, std::size_t n);
  void (*cpoisson_fast)(double* base_r, double* base_i, const double* extra_r, const double* extra_i, double rate,
                        std::size_t n);
  void (*shift_fast)(const double* sr, const double* si, double offset, double* vr, double* vi, std::size_t n);
};

// The variant active_kernels() selected (its TapeKernels::name).
const char* dispatch_name();

// Widest variant supported by this build AND this CPU, honoring the
// COSM_SIMD env override ("scalar" | "avx2" | "avx512"); decided once.
const TapeKernels& active_kernels();

// Individual variants, for parity tests and benches.  scalar_kernels() is
// always available; the others return nullptr when the build lacks the
// variant or the CPU lacks the instructions.
const TapeKernels& scalar_kernels();
const TapeKernels* avx2_kernels();
const TapeKernels* avx512_kernels();

}  // namespace cosm::numerics::simd
