// AVX-512 variant of the SoA tape kernels (-mavx512f -mavx512dq
// -mprefer-vector-width=512, 8 doubles per lane — one full tile).
// Identical source to the scalar variant; -ffp-contract=off and the
// absence of std::fma keep the results bit-identical to it.
#define COSM_SIMD_NS avx512_variant
#define COSM_SIMD_NAME "avx512"
#include "numerics/simd_kernels_impl.hpp"
