// Distribution framework for the latency model.
//
// The paper's model manipulates latency distributions almost entirely in
// Laplace-transform space: convolution of latency components multiplies
// transforms, the Pollaczek–Khinchine formula produces a waiting-time
// transform, and the union operation is a compound-Poisson transform.  A
// Distribution therefore exposes:
//
//   laplace(s)       — the Laplace–Stieltjes transform E[e^{-sT}] for
//                      complex s (evaluated along inversion contours),
//   mean(), second_moment(), variance() — moments used by P–K and tests,
//   cdf(t)           — P[T <= t]; closed form where available, otherwise
//                      numerical inversion of laplace(s)/s,
//   sample(rng)      — a random variate, used by the discrete-event
//                      simulator so model and simulator consume *the same*
//                      distribution objects.
//
// All distributions describe non-negative random variables (latencies).
#pragma once

#include <complex>
#include <memory>
#include <span>
#include <string>

#include "common/rng.hpp"

namespace cosm::numerics {

class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual std::string name() const = 0;

  // Laplace–Stieltjes transform E[e^{-sT}].
  virtual std::complex<double> laplace(std::complex<double> s) const = 0;

  // Batched transform evaluation: out[i] = laplace(s[i]) for every i.
  // The default implementation is a scalar loop, so every subclass is
  // automatically correct; it exists so batched inversion (lt_inversion's
  // BatchLaplaceFn overloads, TransformTape's generic-leaf op) has one
  // compatibility entry point for distributions the tape compiler cannot
  // flatten.  Overrides MUST produce bit-identical values to the scalar
  // loop (same per-point arithmetic order) — the inversion layer's
  // bit-identity guarantee rests on it.  Precondition: out.size() ==
  // s.size().
  virtual void laplace_many(std::span<const std::complex<double>> s,
                            std::span<std::complex<double>> out) const;

  virtual double mean() const = 0;

  // E[T^2]; NaN when no closed form is implemented.
  virtual double second_moment() const;

  // E[T^3]; NaN when no closed form is implemented.  Needed by the
  // equilibrium-residual second moment E[R^2] = E[T^3] / (3 E[T]) that
  // the M/G/1/K sojourn moments use.
  virtual double third_moment() const;

  // Var[T], derived from second_moment() unless overridden.
  virtual double variance() const;

  // P[T <= t].  The default implementation numerically inverts
  // laplace(s)/s with the Abate–Whitt Euler algorithm and clamps to [0,1].
  virtual double cdf(double t) const;

  // Draw a variate.  Throws std::logic_error for transform-only
  // distributions (e.g. P–K waiting times), which the simulator never uses.
  virtual double sample(Rng& rng) const;
};

using DistPtr = std::shared_ptr<const Distribution>;

// -------------------------- concrete distributions -----------------------

// Point mass at a constant value >= 0 (the paper's Degenerate distribution;
// request parsing latency fits this on the authors' testbed).
class Degenerate final : public Distribution {
 public:
  explicit Degenerate(double value);
  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override { return value_; }
  double second_moment() const override { return value_ * value_; }
  double third_moment() const override {
    return value_ * value_ * value_;
  }
  double cdf(double t) const override { return t >= value_ ? 1.0 : 0.0; }
  double sample(Rng& rng) const override;
  double value() const { return value_; }

 private:
  double value_;
};

class Exponential final : public Distribution {
 public:
  explicit Exponential(double rate);
  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override { return 1.0 / rate_; }
  double second_moment() const override { return 2.0 / (rate_ * rate_); }
  double third_moment() const override {
    return 6.0 / (rate_ * rate_ * rate_);
  }
  double cdf(double t) const override;
  double sample(Rng& rng) const override;
  double rate() const { return rate_; }

 private:
  double rate_;
};

// Gamma(shape k, rate l): the distribution the paper fits to disk service
// times (Fig. 5).  L[f](s) = l^k (s + l)^{-k}, mean k / l.
class Gamma final : public Distribution {
 public:
  Gamma(double shape, double rate);
  static Gamma from_mean_shape(double mean, double shape);
  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override { return shape_ / rate_; }
  double second_moment() const override {
    return shape_ * (shape_ + 1.0) / (rate_ * rate_);
  }
  double third_moment() const override {
    return shape_ * (shape_ + 1.0) * (shape_ + 2.0) /
           (rate_ * rate_ * rate_);
  }
  double cdf(double t) const override;
  double sample(Rng& rng) const override;
  double quantile(double p) const;
  double shape() const { return shape_; }
  double rate() const { return rate_; }

 private:
  double shape_;
  double rate_;
};

class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);
  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double second_moment() const override {
    return (lo_ * lo_ + lo_ * hi_ + hi_ * hi_) / 3.0;
  }
  double third_moment() const override {
    // (hi^4 - lo^4) / (4 (hi - lo)).
    const double hi2 = hi_ * hi_;
    const double lo2 = lo_ * lo_;
    return (hi2 * hi2 - lo2 * lo2) / (4.0 * (hi_ - lo_));
  }
  double cdf(double t) const override;
  double sample(Rng& rng) const override;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
};

// Normal(mu, sigma) left-truncated at zero — the "Normal" fitting candidate
// of Section IV-A, made proper for non-negative latencies.  The Laplace
// transform has no convenient closed form for complex s, so it is computed
// by Gauss–Legendre quadrature of e^{-st} f(t); safe on contours with
// bounded |Re s| * support (the Euler inversion contour qualifies).
class TruncatedNormal final : public Distribution {
 public:
  TruncatedNormal(double mu, double sigma);
  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override;
  double second_moment() const override;
  double cdf(double t) const override;
  double sample(Rng& rng) const override;
  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double pdf(double t) const;
  double mu_;
  double sigma_;
  double z_;  // normalizing constant P[N(mu, sigma) >= 0]
};

class Lognormal final : public Distribution {
 public:
  Lognormal(double mu_log, double sigma_log);
  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override;
  double second_moment() const override;
  double cdf(double t) const override;
  double sample(Rng& rng) const override;

 private:
  double pdf(double t) const;
  double mu_;
  double sigma_;
};

class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);
  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override;
  double second_moment() const override;
  double cdf(double t) const override;
  double sample(Rng& rng) const override;

 private:
  double pdf(double t) const;
  double shape_;
  double scale_;
};

class Pareto final : public Distribution {
 public:
  // P[T > t] = (scale / t)^shape for t >= scale; shape > 2 gives finite
  // variance.
  Pareto(double shape, double scale);
  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override;
  double second_moment() const override;
  double cdf(double t) const override;
  double sample(Rng& rng) const override;

 private:
  double pdf(double t) const;
  double shape_;
  double scale_;
};

}  // namespace cosm::numerics
