#include "numerics/transform_nodes.hpp"

#include <cmath>
#include <utility>

#include "common/require.hpp"

namespace cosm::numerics {

// ------------------------------ PKWaitingTime -----------------------------

PKWaitingTime::PKWaitingTime(double arrival_rate, double utilization,
                             DistPtr service, double mean,
                             double second_moment)
    : arrival_rate_(arrival_rate),
      utilization_(utilization),
      service_(std::move(service)),
      mean_(mean),
      second_moment_(second_moment) {
  COSM_REQUIRE(arrival_rate > 0, "P-K arrival rate must be positive");
  COSM_REQUIRE(utilization > 0 && utilization < 1,
               "P-K waiting time requires rho in (0, 1)");
  COSM_REQUIRE(service_ != nullptr, "P-K service distribution required");
}

std::string PKWaitingTime::name() const { return "mg1_waiting_time"; }

std::complex<double> PKWaitingTime::laplace(std::complex<double> s) const {
  if (std::abs(s) < 1e-14) return std::complex<double>(1.0, 0.0);
  return (1.0 - utilization_) * s /
         (arrival_rate_ * service_->laplace(s) + s - arrival_rate_);
}

// ------------------------------- MM1KSojourn ------------------------------

MM1KSojourn::MM1KSojourn(double arrival_rate, double service_rate,
                         int capacity, double p0, double blocking,
                         double mean, double second_moment)
    : arrival_rate_(arrival_rate),
      service_rate_(service_rate),
      capacity_(capacity),
      p0_(p0),
      blocking_(blocking),
      mean_(mean),
      second_moment_(second_moment) {
  COSM_REQUIRE(arrival_rate > 0, "M/M/1/K arrival rate must be positive");
  COSM_REQUIRE(service_rate > 0, "M/M/1/K service rate must be positive");
  COSM_REQUIRE(capacity >= 1, "M/M/1/K capacity must be at least 1");
  COSM_REQUIRE(p0 > 0 && p0 <= 1, "M/M/1/K p0 must be in (0, 1]");
  COSM_REQUIRE(blocking >= 0 && blocking < 1,
               "M/M/1/K blocking probability must be in [0, 1)");
}

std::string MM1KSojourn::name() const { return "mm1k_sojourn"; }

std::complex<double> MM1KSojourn::laplace(std::complex<double> s) const {
  // An accepted arrival that finds i jobs waits for i + 1 exponential
  // services: L[S](s) = sum_{i<K} P_i/(1-P_K) (v/(v+s))^{i+1}, which the
  // paper writes in the closed form below.
  if (std::abs(s) < 1e-14) return std::complex<double>(1.0, 0.0);
  const std::complex<double> ratio_pow =
      std::pow(arrival_rate_ / (service_rate_ + s), capacity_);
  return service_rate_ * p0_ / (1.0 - blocking_) * (1.0 - ratio_pow) /
         (service_rate_ - arrival_rate_ + s);
}

// ------------------------------- MG1KSojourn ------------------------------

MG1KSojourn::MG1KSojourn(DistPtr service, double mean_service,
                         std::vector<double> weights, double mean,
                         double second_moment)
    : service_(std::move(service)),
      mean_service_(mean_service),
      weights_(std::move(weights)),
      mean_(mean),
      second_moment_(second_moment) {
  COSM_REQUIRE(service_ != nullptr, "M/G/1/K service distribution required");
  COSM_REQUIRE(mean_service > 0, "M/G/1/K mean service must be positive");
  COSM_REQUIRE(!weights_.empty(), "M/G/1/K state weights required");
}

std::string MG1KSojourn::name() const { return "mg1k_sojourn"; }

std::complex<double> MG1KSojourn::laplace(std::complex<double> s) const {
  // The residual transform (1 - L[B])/(s B̄) cancels catastrophically
  // for |s B̄| below double precision noise; L ~ 1 there anyway.
  if (std::abs(s) * mean_service_ < 1e-8) {
    return std::complex<double>(1.0, 0.0);
  }
  const std::complex<double> lb = service_->laplace(s);
  // Equilibrium residual service transform.
  const std::complex<double> residual = (1.0 - lb) / (s * mean_service_);
  std::complex<double> total = weights_[0] * lb;
  std::complex<double> lb_power = 1.0;  // L[B]^{i-1}
  for (std::size_t i = 1; i < weights_.size(); ++i) {
    total += weights_[i] * residual * lb_power * lb;
    lb_power *= lb;
  }
  return total;
}

}  // namespace cosm::numerics
