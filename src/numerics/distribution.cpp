#include "numerics/distribution.hpp"

#include <cmath>
#include <functional>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "common/require.hpp"
#include "numerics/lt_inversion.hpp"
#include "numerics/quadrature.hpp"
#include "numerics/special.hpp"

namespace cosm::numerics {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Laplace transform by quadrature of e^{-st} f(t), for distributions
// without a closed-form transform.  The caller supplies breakpoints
// (typically quantiles of the distribution) so peaked densities get fine
// panels where the mass is; within a segment the panel count additionally
// scales with the number of e^{-i Im(s) t} oscillation periods it spans.
std::complex<double> laplace_by_quadrature(
    const std::function<double(double)>& pdf, std::complex<double> s,
    const std::vector<double>& breakpoints) {
  std::complex<double> total = 0.0;
  for (std::size_t i = 0; i + 1 < breakpoints.size(); ++i) {
    const double a = breakpoints[i];
    const double b = breakpoints[i + 1];
    if (!(b > a)) continue;
    const double periods =
        std::abs(s.imag()) * (b - a) / (2.0 * std::numbers::pi);
    const int panels = std::max(8, static_cast<int>(periods) + 2);
    total += integrate_gauss_complex(
        [&pdf, s](double t) { return std::exp(-s * t) * pdf(t); }, a, b,
        panels);
  }
  return total;
}

}  // namespace

void Distribution::laplace_many(std::span<const std::complex<double>> s,
                                std::span<std::complex<double>> out) const {
  COSM_REQUIRE(s.size() == out.size(),
               "laplace_many spans must have equal length");
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = laplace(s[i]);
}

double Distribution::second_moment() const { return kNaN; }

double Distribution::third_moment() const { return kNaN; }

double Distribution::variance() const {
  const double m2 = second_moment();
  const double m1 = mean();
  return m2 - m1 * m1;
}

double Distribution::cdf(double t) const {
  return cdf_from_laplace(
      [this](std::complex<double> s) { return laplace(s); }, t);
}

double Distribution::sample(Rng&) const {
  throw std::logic_error("distribution '" + name() +
                         "' is transform-only and cannot be sampled");
}

// ------------------------------- Degenerate ------------------------------

Degenerate::Degenerate(double value) : value_(value) {
  COSM_REQUIRE(value >= 0, "degenerate value must be non-negative");
}

std::string Degenerate::name() const { return "degenerate"; }

std::complex<double> Degenerate::laplace(std::complex<double> s) const {
  return std::exp(-s * value_);
}

double Degenerate::sample(Rng&) const { return value_; }

// ------------------------------ Exponential ------------------------------

Exponential::Exponential(double rate) : rate_(rate) {
  COSM_REQUIRE(rate > 0, "exponential rate must be positive");
}

std::string Exponential::name() const { return "exponential"; }

std::complex<double> Exponential::laplace(std::complex<double> s) const {
  return rate_ / (rate_ + s);
}

double Exponential::cdf(double t) const {
  return t <= 0 ? 0.0 : 1.0 - std::exp(-rate_ * t);
}

double Exponential::sample(Rng& rng) const { return rng.exponential(rate_); }

// --------------------------------- Gamma ---------------------------------

Gamma::Gamma(double shape, double rate) : shape_(shape), rate_(rate) {
  COSM_REQUIRE(shape > 0, "gamma shape must be positive");
  COSM_REQUIRE(rate > 0, "gamma rate must be positive");
}

Gamma Gamma::from_mean_shape(double mean, double shape) {
  COSM_REQUIRE(mean > 0, "gamma mean must be positive");
  return Gamma(shape, shape / mean);
}

std::string Gamma::name() const { return "gamma"; }

std::complex<double> Gamma::laplace(std::complex<double> s) const {
  // (l / (l + s))^k = exp(-k log(1 + s/l)) via the principal branch;
  // l + s never touches the negative real axis on the Euler contour
  // (Re s > 0).  For |s/l| below double precision the direct pow loses
  // every significant digit once k is large, so switch to the log1p
  // series log(1+z) ~ z - z^2/2 there.
  const std::complex<double> z = s / rate_;
  if (std::abs(z) < 1e-6) {
    return std::exp(-shape_ * (z - 0.5 * z * z));
  }
  return std::pow(rate_ / (rate_ + s), shape_);
}

double Gamma::cdf(double t) const {
  return t <= 0 ? 0.0 : gamma_p(shape_, rate_ * t);
}

double Gamma::sample(Rng& rng) const { return rng.gamma(shape_, rate_); }

double Gamma::quantile(double p) const {
  return gamma_p_inv(shape_, p) / rate_;
}

// -------------------------------- Uniform --------------------------------

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  COSM_REQUIRE(lo >= 0, "uniform lower bound must be non-negative");
  COSM_REQUIRE(hi > lo, "uniform bounds must satisfy hi > lo");
}

std::string Uniform::name() const { return "uniform"; }

std::complex<double> Uniform::laplace(std::complex<double> s) const {
  if (std::abs(s) < 1e-8) {
    // Series expansion avoids 0/0: 1 - s(a+b)/2 + s^2(a^2+ab+b^2)/6.
    return 1.0 - s * (0.5 * (lo_ + hi_)) +
           s * s * ((lo_ * lo_ + lo_ * hi_ + hi_ * hi_) / 6.0);
  }
  return (std::exp(-s * lo_) - std::exp(-s * hi_)) / (s * (hi_ - lo_));
}

double Uniform::cdf(double t) const {
  if (t <= lo_) return 0.0;
  if (t >= hi_) return 1.0;
  return (t - lo_) / (hi_ - lo_);
}

double Uniform::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

// ---------------------------- TruncatedNormal ----------------------------

TruncatedNormal::TruncatedNormal(double mu, double sigma)
    : mu_(mu), sigma_(sigma), z_(normal_cdf(mu / sigma)) {
  COSM_REQUIRE(sigma > 0, "truncated normal sigma must be positive");
  COSM_REQUIRE(z_ > 1e-12, "truncation keeps almost no mass above zero");
}

std::string TruncatedNormal::name() const { return "truncated_normal"; }

double TruncatedNormal::pdf(double t) const {
  if (t < 0) return 0.0;
  const double u = (t - mu_) / sigma_;
  return std::exp(-0.5 * u * u) /
         (sigma_ * std::sqrt(2.0 * std::numbers::pi) * z_);
}

std::complex<double> TruncatedNormal::laplace(std::complex<double> s) const {
  std::vector<double> breaks = {0.0};
  for (double k : {-4.0, -2.0, 0.0, 2.0, 4.0, 8.0, 12.0}) {
    const double edge = mu_ + k * sigma_;
    if (edge > breaks.back()) breaks.push_back(edge);
  }
  return laplace_by_quadrature([this](double t) { return pdf(t); }, s,
                               breaks);
}

double TruncatedNormal::mean() const {
  // mu + sigma * phi(alpha) / Phi(-alpha) with alpha = -mu/sigma.
  const double alpha = -mu_ / sigma_;
  const double phi = std::exp(-0.5 * alpha * alpha) /
                     std::sqrt(2.0 * std::numbers::pi);
  return mu_ + sigma_ * phi / z_;
}

double TruncatedNormal::second_moment() const {
  const double alpha = -mu_ / sigma_;
  const double phi = std::exp(-0.5 * alpha * alpha) /
                     std::sqrt(2.0 * std::numbers::pi);
  const double lambda = phi / z_;
  // Var = sigma^2 (1 + alpha lambda - lambda^2); E[X^2] = Var + mean^2.
  const double var =
      sigma_ * sigma_ * (1.0 + alpha * lambda - lambda * lambda);
  const double m = mean();
  return var + m * m;
}

double TruncatedNormal::cdf(double t) const {
  if (t <= 0) return 0.0;
  const double below_zero = normal_cdf(-mu_ / sigma_);
  return (normal_cdf((t - mu_) / sigma_) - below_zero) / z_;
}

double TruncatedNormal::sample(Rng& rng) const {
  // Rejection from the untruncated normal; efficient because the model
  // only uses mu >> sigma * small (latency-like shapes).
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal(mu_, sigma_);
    if (x >= 0) return x;
  }
  throw std::logic_error("truncated normal rejection sampling stalled");
}

// ------------------------------- Lognormal -------------------------------

Lognormal::Lognormal(double mu_log, double sigma_log)
    : mu_(mu_log), sigma_(sigma_log) {
  COSM_REQUIRE(sigma_log > 0, "lognormal sigma must be positive");
}

std::string Lognormal::name() const { return "lognormal"; }

double Lognormal::pdf(double t) const {
  if (t <= 0) return 0.0;
  const double u = (std::log(t) - mu_) / sigma_;
  return std::exp(-0.5 * u * u) /
         (t * sigma_ * std::sqrt(2.0 * std::numbers::pi));
}

std::complex<double> Lognormal::laplace(std::complex<double> s) const {
  // Breakpoints at log-space quantiles resolve the density peak; the
  // support is cut at the 1 - 1e-13 quantile (negligible tail mass).
  std::vector<double> breaks = {0.0};
  for (double p : {0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999, 1.0 - 1e-8,
                   1.0 - 1e-13}) {
    breaks.push_back(std::exp(mu_ + sigma_ * normal_cdf_inv(p)));
  }
  return laplace_by_quadrature([this](double t) { return pdf(t); }, s,
                               breaks);
}

double Lognormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double Lognormal::second_moment() const {
  return std::exp(2.0 * mu_ + 2.0 * sigma_ * sigma_);
}

double Lognormal::cdf(double t) const {
  if (t <= 0) return 0.0;
  return normal_cdf((std::log(t) - mu_) / sigma_);
}

double Lognormal::sample(Rng& rng) const { return rng.lognormal(mu_, sigma_); }

// -------------------------------- Weibull --------------------------------

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  COSM_REQUIRE(shape > 0 && scale > 0, "weibull parameters must be positive");
}

std::string Weibull::name() const { return "weibull"; }

double Weibull::pdf(double t) const {
  if (t <= 0) return 0.0;
  const double u = t / scale_;
  return shape_ / scale_ * std::pow(u, shape_ - 1.0) *
         std::exp(-std::pow(u, shape_));
}

std::complex<double> Weibull::laplace(std::complex<double> s) const {
  if (shape_ == 1.0) return Exponential(1.0 / scale_).laplace(s);
  // Quantile breakpoints: q(p) = scale * (-ln(1-p))^{1/shape}.
  std::vector<double> breaks = {0.0};
  for (double p : {0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999, 1.0 - 1e-8,
                   1.0 - 1e-13}) {
    breaks.push_back(scale_ * std::pow(-std::log1p(-p), 1.0 / shape_));
  }
  return laplace_by_quadrature([this](double t) { return pdf(t); }, s,
                               breaks);
}

double Weibull::mean() const {
  return scale_ * std::exp(std::lgamma(1.0 + 1.0 / shape_));
}

double Weibull::second_moment() const {
  return scale_ * scale_ * std::exp(std::lgamma(1.0 + 2.0 / shape_));
}

double Weibull::cdf(double t) const {
  if (t <= 0) return 0.0;
  return 1.0 - std::exp(-std::pow(t / scale_, shape_));
}

double Weibull::sample(Rng& rng) const { return rng.weibull(shape_, scale_); }

// --------------------------------- Pareto --------------------------------

Pareto::Pareto(double shape, double scale) : shape_(shape), scale_(scale) {
  COSM_REQUIRE(shape > 0 && scale > 0, "pareto parameters must be positive");
}

std::string Pareto::name() const { return "pareto"; }

double Pareto::pdf(double t) const {
  if (t < scale_) return 0.0;
  return shape_ * std::pow(scale_, shape_) / std::pow(t, shape_ + 1.0);
}

std::complex<double> Pareto::laplace(std::complex<double> s) const {
  // Quantile breakpoints: q(p) = scale / (1-p)^{1/shape}.  The support is
  // cut at the 1 - 1e-10 quantile; heavy tails make tighter cuts
  // numerically pointless.
  std::vector<double> breaks = {scale_};
  for (double p : {0.1, 0.3, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0 - 1e-6,
                   1.0 - 1e-10}) {
    breaks.push_back(scale_ / std::pow(1.0 - p, 1.0 / shape_));
  }
  return laplace_by_quadrature([this](double t) { return pdf(t); }, s,
                               breaks);
}

double Pareto::mean() const {
  if (shape_ <= 1.0) return std::numeric_limits<double>::infinity();
  return shape_ * scale_ / (shape_ - 1.0);
}

double Pareto::second_moment() const {
  if (shape_ <= 2.0) return std::numeric_limits<double>::infinity();
  return shape_ * scale_ * scale_ / (shape_ - 2.0);
}

double Pareto::cdf(double t) const {
  if (t <= scale_) return 0.0;
  return 1.0 - std::pow(scale_ / t, shape_);
}

double Pareto::sample(Rng& rng) const { return rng.pareto(shape_, scale_); }

}  // namespace cosm::numerics
