// Scalar-fallback variant of the SoA tape kernels: same source as the
// vector variants, compiled with baseline target flags.  Always built —
// this is the only variant in a COSM_NO_SIMD=ON build and on non-x86
// targets, and the parity reference the vector variants are tested
// bit-identical against.
#define COSM_SIMD_NS scalar_variant
#define COSM_SIMD_NAME "scalar"
#include "numerics/simd_kernels_impl.hpp"
