// Discretized densities on a uniform time grid.
//
// An independent prediction path used to cross-validate Laplace-transform
// inversion: any Distribution can be discretized (by CDF differencing, so
// atoms land in the right bin), grids convolve via FFT, and the grid CDF
// can be compared against cdf_from_laplace at the SLA points.  Tests use
// both representations and require agreement.
#pragma once

#include <vector>

#include "numerics/distribution.hpp"

namespace cosm::numerics {

class GridDensity {
 public:
  // Probability mass per bin: bin i covers [i*dt, (i+1)*dt).
  GridDensity(double dt, std::vector<double> mass);

  // Discretizes `dist` over [0, horizon) with the given bin width by CDF
  // differencing; any tail mass beyond the horizon is added to the last
  // bin so the grid stays a proper distribution.
  static GridDensity discretize(const Distribution& dist, double dt,
                                double horizon);

  double dt() const { return dt_; }
  std::size_t bins() const { return mass_.size(); }
  const std::vector<double>& mass() const { return mass_; }

  double total_mass() const;
  double mean() const;
  // P[T <= t] with linear interpolation inside the containing bin.
  double cdf(double t) const;
  // Smallest t with cdf(t) >= p.
  double quantile(double p) const;

  // Convolution of two grids with the same dt (FFT-based); the result is
  // truncated to max_bins with overflow folded into the last bin.
  GridDensity convolve_with(const GridDensity& other,
                            std::size_t max_bins) const;

  // Pointwise mixture: this*w + other*(1-w); grids must share dt, shorter
  // grid is zero-extended.
  GridDensity mix_with(const GridDensity& other, double w) const;

 private:
  double dt_;
  std::vector<double> mass_;
};

}  // namespace cosm::numerics
