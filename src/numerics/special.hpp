// Special functions needed by the latency model and the distribution
// fitting pipeline.  Everything here is implemented from scratch (no GSL /
// Boost.Math): the digamma/trigamma pair drives the Gamma MLE Newton
// iteration, and the regularized incomplete gamma gives the Gamma CDF used
// for goodness-of-fit and closed-form percentile checks.
#pragma once

namespace cosm::numerics {

// Digamma ψ(x) = d/dx ln Γ(x), x > 0.  Recurrence to shift x above 6, then
// the asymptotic Bernoulli series.  Absolute error < 1e-12 for x > 0.
double digamma(double x);

// Trigamma ψ'(x), x > 0.  Same shift-then-asymptotic-series scheme.
double trigamma(double x);

// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0,
// x >= 0.  Series expansion for x < a + 1, continued fraction otherwise
// (Numerical Recipes scheme).  This is the CDF of Gamma(shape=a, rate=1)
// at x.
double gamma_p(double a, double x);

// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

// Inverse of P(a, ·): returns x such that P(a, x) = p, for p in [0, 1).
// Halley iteration seeded with the Wilson–Hilferty approximation.
double gamma_p_inv(double a, double p);

// Standard normal CDF Φ(x), via erfc.
double normal_cdf(double x);

// Inverse standard normal CDF, Acklam's rational approximation polished
// with one Halley step; |error| < 1e-13.
double normal_cdf_inv(double p);

// Generalized harmonic number H_{n,s} = sum_{i=1..n} i^{-s}.
double generalized_harmonic(unsigned long long n, double s);

}  // namespace cosm::numerics
