#include "numerics/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/require.hpp"

namespace cosm::numerics {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Iterative radix-2 Cooley–Tukey; n must be a power of two.
void fft_radix2(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& value : a) value *= scale;
  }
}

// Bluestein's chirp-z transform: expresses an arbitrary-size DFT as a
// power-of-two convolution.
void fft_bluestein(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  const std::size_t m = next_pow2(2 * n - 1);
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<std::complex<double>> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the phase argument bounded for large k.
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle =
        sign * std::numbers::pi * static_cast<double>(k2) /
        static_cast<double>(n);
    chirp[k] = std::complex<double>(std::cos(angle), std::sin(angle));
  }
  std::vector<std::complex<double>> x(m, {0.0, 0.0});
  std::vector<std::complex<double>> y(m, {0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * chirp[k];
  y[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    y[k] = y[m - k] = std::conj(chirp[k]);
  }
  fft_radix2(x, false);
  fft_radix2(y, false);
  for (std::size_t k = 0; k < m; ++k) x[k] *= y[k];
  fft_radix2(x, true);
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * chirp[k];
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& value : a) value *= scale;
  }
}

}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  COSM_REQUIRE(!data.empty(), "fft input must be non-empty");
  if (data.size() == 1) return;
  if (is_pow2(data.size())) {
    fft_radix2(data, inverse);
  } else {
    fft_bluestein(data, inverse);
  }
}

std::vector<std::complex<double>> fft_forward(
    std::vector<std::complex<double>> data) {
  fft(data, false);
  return data;
}

std::vector<std::complex<double>> fft_inverse(
    std::vector<std::complex<double>> data) {
  fft(data, true);
  return data;
}

std::vector<double> convolve(const std::vector<double>& a,
                             const std::vector<double>& b) {
  COSM_REQUIRE(!a.empty() && !b.empty(), "convolve inputs must be non-empty");
  const std::size_t out_size = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_size);
  std::vector<std::complex<double>> fa(n, {0.0, 0.0});
  std::vector<std::complex<double>> fb(n, {0.0, 0.0});
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];
  fft(fa, false);
  fft(fb, false);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  fft(fa, true);
  std::vector<double> out(out_size);
  for (std::size_t i = 0; i < out_size; ++i) out[i] = fa[i].real();
  return out;
}

}  // namespace cosm::numerics
