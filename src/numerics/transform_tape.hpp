// Transform tape: the distribution tree compiled to a flat evaluation
// kernel.
//
// Motivation.  A device's response-time transform is an immutable tree of
// small nodes (Mixture / Convolution / CompoundPoissonConvolution /
// queueing sojourn formulas / parametric leaves).  The scalar pipeline
// walks that tree once per contour node: for an Euler inversion at M=20
// that is 41 virtual-dispatch tree walks through shared_ptr indirection,
// re-evaluating every shared subtree (the disk sojourn appears under
// index/meta/data misses; the P–K waiting time appears twice in the
// response convolution) at every node.  Since the tree never changes
// after model construction, all of that work can be hoisted: compile the
// tree ONCE into a flat postfix program over POD ops, then run a stack
// machine over whole contour batches.
//
// The tape IR.  Ops are {opcode, a, b} triples (12 bytes); `a` is an op
// count / slot / leaf index, `b` an offset into a flat params array of
// doubles.  Leaf ops (LEAF-DEGENERATE, LEAF-EXPONENTIAL, LEAF-GAMMA,
// LEAF-UNIFORM, LEAF-ERLANG, LEAF-HYPEREXP, LEAF-MM1K) evaluate closed
// forms from params; combinator ops (MUL for Convolution, MIX for
// Mixture, CPOISSON for the union operation's compound-Poisson
// exponential, SHIFT, PK-WAIT and MG1K-SOJOURN for the queueing
// formulas) fold the value stack; SCALE-ARG / POP-ARG maintain an
// argument stack so Scaled subtrees evaluate at c·s; STORE / LOAD give
// common-subexpression elimination — a subtree shared k times is
// evaluated once and copied k-1 times.  Leaves with no closed form
// (quadrature distributions, opaque LaplaceDistribution callables) become
// LEAF-GENERIC ops that call Distribution::laplace_many — the
// compatibility path, still batched, never a compile failure.  The
// DIV-BY-S op of CDF inversion (inverting L(s)/s instead of L(s)) is
// fused into the cdf entry points after evaluation rather than stored on
// the tape, so one compiled tape serves both density and CDF queries.
//
// Batching contract.  evaluate(s, out) fills out[i] = L(s[i]) for every i
// with values BIT-IDENTICAL to the scalar Distribution::laplace walk:
// every op replicates its node's arithmetic expression in the node's
// evaluation order, per batch element.  This is a hard guarantee, not a
// tolerance — tests/numerics/test_transform_tape.cpp asserts exact double
// equality for every Distribution subclass and for fuzzed random trees,
// and the perf harness (bench/perf_numerics_tape) gates on it.  The
// speedup comes only from removing dispatch, allocation, and repeated
// shared-subtree work, never from reordering arithmetic.
//
// Allocation.  Steady-state evaluation allocates nothing: workspaces
// (value stack, scaled-argument batches, CSE slots) are leased from a
// thread-local pool and sized once per tape.  Entry points that run whole
// inversions (cdf, cdf_many, quantile) reuse the contour scratch of
// numerics/lt_inversion.cpp the same way.
//
// Fingerprints.  fingerprint() folds the full op stream and parameter
// values (generic leaves contribute numerics::fingerprint of the wrapped
// distribution) into a 64-bit key.  Two tapes compiled from identically
// constructed trees — e.g. the homogeneous devices the pipeline builds
// from equal DeviceParams — fingerprint equal, which is what lets
// core::PredictionCache share CDF entries across devices.  The
// fingerprint is structural: it distinguishes a shared subtree from two
// equal copies (same values, different sharing), which only ever costs a
// cache miss, never a wrong hit.
//
// Thread-safety: a compiled tape is immutable; evaluate() and every entry
// point are safe to call concurrently from any number of threads.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "numerics/distribution.hpp"
#include "numerics/lt_inversion.hpp"
#include "numerics/tape_mode.hpp"

namespace cosm::numerics {

class TransformTape {
 public:
  // An empty (default-constructed) tape; compiled() is false and
  // evaluation throws.  Exists so owners can default-construct members.
  TransformTape() = default;

  // Compiles `root` into a tape.  Never fails on exotic nodes — anything
  // the compiler cannot pattern-match becomes a generic batched leaf.
  // The tape keeps the generic leaves' DistPtrs alive; flattened nodes
  // are fully copied into the op/param arrays.
  static TransformTape compile(const DistPtr& root);

  bool compiled() const { return !ops_.empty(); }

  // Batched transform evaluation: out[i] = L(s[i]).  With
  // TapeEvalMode::kExact (the two-argument form and the default), values
  // are bit-identical to the scalar tree walk (see batching contract
  // above).  TapeEvalMode::kSimd runs the structure-of-arrays evaluator
  // over the runtime-dispatched vector kernels and is STILL bit-identical
  // to kExact; TapeEvalMode::kSimdFast additionally swaps the
  // exp/pow-family ops to branchless vector transcendentals and is only
  // ULP-bounded (documented in docs/PERFORMANCE.md §7).  All modes are
  // deterministic across build variants and CPUs.  Preconditions:
  // compiled(), s.size() == out.size().
  void evaluate(std::span<const std::complex<double>> s,
                std::span<std::complex<double>> out) const;
  void evaluate(std::span<const std::complex<double>> s,
                std::span<std::complex<double>> out, TapeEvalMode mode) const;

  // The tape as a BatchLaplaceFn, for lt_inversion's batched overloads.
  BatchLaplaceFn batch_fn(TapeEvalMode mode = TapeEvalMode::kExact) const;

  // CDF at t via batched Euler inversion of L(s)/s (the fused DIV-BY-S
  // op); in kExact mode bit-identical to cdf_from_laplace on the scalar
  // tree.
  double cdf(double t, int m = 20,
             TapeEvalMode mode = TapeEvalMode::kExact) const;

  // CDF at many points with ONE batched evaluation over all contours —
  // the amortized path for SLA sweeps and Brent ladders.  Element i is
  // bit-identical to cdf(ts[i], m, mode).
  std::vector<double> cdf_many(std::span<const double> ts, int m = 20,
                               TapeEvalMode mode = TapeEvalMode::kExact) const;

  // p-quantile via bracketing + Brent over batched CDF probes; `warm`
  // carries the previous root across monotone sweeps (see
  // QuantileWarmStart in lt_inversion.hpp).
  double quantile(double p, double mean_hint, double t_max = 1e9,
                  QuantileWarmStart* warm = nullptr,
                  TapeEvalMode mode = TapeEvalMode::kExact) const;

  // Density at t via batched Euler / fixed-Talbot inversion of L(s).
  double invert_density(double t, int m = 20) const;
  double invert_density_talbot(double t, int m = 32) const;

  // Structural 64-bit identity of the compiled program (see header doc).
  std::uint64_t fingerprint() const { return fingerprint_; }

  // Shape-only identity: folds the op stream (opcodes and their `a`
  // fields — child counts, slot ids, leaf indices) but NO parameter
  // values.  Two tapes compiled from trees of the same shape hash equal
  // here even when rates/means differ; a device dropping out, healing,
  // or gaining a Scaled wrapper changes the op stream and therefore this
  // hash.  This is the "curve family" key QuantileWarmStart::enter_regime
  // wants: rate sweeps stay warm, regime changes reset.
  std::uint64_t structure_fingerprint() const { return structure_fingerprint_; }

  // Introspection for tests, benches, and cache diagnostics.
  std::size_t op_count() const { return ops_.size(); }
  std::size_t slot_count() const { return slot_count_; }
  std::size_t generic_leaf_count() const { return leaves_.size(); }

 private:
  enum class OpCode : std::uint8_t {
    kLeafDegenerate,   // params [value]
    kLeafExponential,  // params [rate]
    kLeafGamma,        // params [shape, rate]
    kLeafUniform,      // params [lo, hi]
    kLeafErlang,       // params [stages (as double), rate]
    kLeafHyperExp,     // a = branches, params [p0, r0, p1, r1, ...]
    kLeafMM1K,         // params [arrival, service, capacity, p0, blocking]
    kMinOfK,           // a = grid points, params [dt, F_0, ..., F_{a-1}]:
                       // OrderStatistic with k == 1 (min of n), evaluated
                       // via piecewise_cdf_laplace on the combined grid
    kKthOfN,           // same layout, OrderStatistic with k > 1
    kLeafGeneric,      // a = index into leaves_; calls laplace_many
    kMul,              // a = child count (Convolution)
    kMix,              // a = child count, params [w0, ..., w_{a-1}]
    kTierMix,          // params [hit_ratio, miss_ratio]; children hit,
                       // miss (TieredService — distinct from kMix so
                       // tiered trees stay structurally distinct)
    kCPoisson,         // params [rate]; children base, extra
    kShift,            // params [offset]
    kScaleArg,         // params [factor]: push arg batch factor * current
    kPopArg,           // pop the argument stack
    kPKWait,           // params [arrival_rate, utilization]; child L[B]
    kMG1KSojourn,      // a = weights, params [mean_service, w0, ...]
    kStore,            // a = slot: copy stack top into CSE slot
    kLoad,             // a = slot: push CSE slot
  };

  struct Op {
    OpCode code;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
  };

  friend class TapeCompiler;

  void evaluate_exact(std::span<const std::complex<double>> s,
                      std::span<std::complex<double>> out) const;
  void evaluate_simd(std::span<const std::complex<double>> s,
                     std::span<std::complex<double>> out, bool fast) const;

  std::vector<Op> ops_;
  std::vector<double> params_;
  std::vector<DistPtr> leaves_;  // generic-leaf distributions, by index
  std::size_t slot_count_ = 0;
  std::size_t value_depth_ = 0;  // max value-stack height over the program
  std::size_t arg_depth_ = 0;    // max *scaled* argument batches live
  std::uint64_t fingerprint_ = 0;
  std::uint64_t structure_fingerprint_ = 0;
};

}  // namespace cosm::numerics
