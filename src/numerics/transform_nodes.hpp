// Structured queueing-formula transform nodes.
//
// The queueing layer used to publish its closed-form transforms (P–K
// waiting time, M/M/1/K and M/G/1/K sojourn) as LaplaceDistribution
// wrappers around opaque std::function lambdas.  That was fine for the
// scalar laplace() walk, but an opaque callable is a wall for the
// transform-tape compiler (numerics/transform_tape.hpp): it cannot see
// the formula's parameters or its service-distribution child, so every
// such node would fall back to the slow generic-leaf path.
//
// These classes carry the *same formulas with the same arithmetic, in the
// same evaluation order* (bit-identical laplace() results), but expose
// their structure: the tape compiler pattern-matches on the concrete type
// and emits a dedicated opcode (and keeps flattening into the service
// child).  queueing::MG1 / MM1K / MG1K emit these instead of
// LaplaceDistribution; everything downstream (moments, cdf-by-inversion,
// transform-only sample() behavior) is unchanged.
#pragma once

#include <vector>

#include "numerics/distribution.hpp"

namespace cosm::numerics {

// Pollaczek–Khinchine M/G/1 waiting-time transform (paper Eq. for W_be):
//   L[W](s) = (1 - rho) s / (r L[B](s) + s - r),     L[W](0) = 1.
// `second_moment` may be NaN (no closed form is derived by MG1).
class PKWaitingTime final : public Distribution {
 public:
  PKWaitingTime(double arrival_rate, double utilization, DistPtr service,
                double mean, double second_moment);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override { return mean_; }
  double second_moment() const override { return second_moment_; }

  double arrival_rate() const { return arrival_rate_; }
  double utilization() const { return utilization_; }
  const DistPtr& service() const { return service_; }

 private:
  double arrival_rate_;
  double utilization_;
  DistPtr service_;
  double mean_;
  double second_moment_;
};

// M/M/1/K sojourn transform (the paper's disk-queue substitution):
//   L[S](s) = v p0 / (1 - pK) · (1 - (r/(v+s))^K) / (v - r + s),
// i.e. an Erlang(i+1, v) mixture over the accepted-arrival state
// distribution, in closed form.  Pure leaf: fully described by scalars.
class MM1KSojourn final : public Distribution {
 public:
  MM1KSojourn(double arrival_rate, double service_rate, int capacity,
              double p0, double blocking, double mean, double second_moment);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override { return mean_; }
  double second_moment() const override { return second_moment_; }

  double arrival_rate() const { return arrival_rate_; }
  double service_rate() const { return service_rate_; }
  int capacity() const { return capacity_; }
  double p0() const { return p0_; }
  double blocking() const { return blocking_; }

 private:
  double arrival_rate_;
  double service_rate_;
  int capacity_;
  double p0_;
  double blocking_;
  double mean_;
  double second_moment_;
};

// M/G/1/K sojourn built from the embedded-chain state weights q_i and the
// equilibrium residual-service transform (queueing::MG1K::sojourn_time):
//   L[S](s) = q_0 L[B] + sum_{i>=1} q_i · (1-L[B])/(s m1) · L[B]^{i-1} L[B].
class MG1KSojourn final : public Distribution {
 public:
  MG1KSojourn(DistPtr service, double mean_service,
              std::vector<double> weights, double mean, double second_moment);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override { return mean_; }
  double second_moment() const override { return second_moment_; }

  const DistPtr& service() const { return service_; }
  double mean_service() const { return mean_service_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  DistPtr service_;
  double mean_service_;
  std::vector<double> weights_;
  double mean_;
  double second_moment_;
};

}  // namespace cosm::numerics
