// AVX2 variant of the SoA tape kernels (-mavx2, 4 doubles per lane).
// Identical source to the scalar variant; -ffp-contract=off and the
// absence of std::fma keep the results bit-identical to it.
#define COSM_SIMD_NS avx2_variant
#define COSM_SIMD_NAME "avx2"
#include "numerics/simd_kernels_impl.hpp"
