#include "numerics/roots.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace cosm::numerics {

RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 double x_tol, int max_iter) {
  COSM_REQUIRE(lo <= hi, "brent bracket must be ordered");
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  RootResult result;
  if (std::abs(fa) < 1e-300) {
    result = {a, fa, 0, true};
    return result;
  }
  if (std::abs(fb) < 1e-300) {
    result = {b, fb, 0, true};
    return result;
  }
  COSM_REQUIRE(fa * fb < 0, "brent requires a sign change over the bracket");
  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;
  for (int iter = 1; iter <= max_iter; ++iter) {
    if (fb * fc > 0) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol = 2.0 * 1e-16 * std::abs(b) + 0.5 * x_tol;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0) {
      return {b, fb, iter, true};
    }
    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic interpolation / secant.
      const double s = fb / fa;
      double p;
      double q;
      if (a == c) {
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0) q = -q;
      p = std::abs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q),
                             std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0 ? tol : -tol);
    fb = f(b);
  }
  return {b, fb, max_iter, false};
}

RootResult newton_safeguarded(const std::function<double(double)>& f,
                              const std::function<double(double)>& dfdx,
                              double x0, double lo, double hi, double x_tol,
                              int max_iter) {
  COSM_REQUIRE(lo <= hi, "newton bracket must be ordered");
  double x = std::clamp(x0, lo, hi);
  for (int iter = 1; iter <= max_iter; ++iter) {
    const double fx = f(x);
    if (std::abs(fx) < 1e-300) return {x, fx, iter, true};
    const double dx = dfdx(x);
    double next;
    if (dx != 0.0 && std::isfinite(dx)) {
      next = x - fx / dx;
    } else {
      next = 0.5 * (lo + hi);
    }
    if (!(next > lo) || !(next < hi)) {
      // Newton stepped out of the trust region — bisect instead, tightening
      // the side with the same sign as f(x).
      if (f(lo) * fx < 0) {
        hi = x;
      } else {
        lo = x;
      }
      next = 0.5 * (lo + hi);
    }
    if (std::abs(next - x) < x_tol * (1.0 + std::abs(x))) {
      return {next, f(next), iter, true};
    }
    x = next;
  }
  return {x, f(x), max_iter, false};
}

bool expand_bracket_upward(const std::function<double(double)>& f, double lo,
                           double& hi, double growth, int max_steps) {
  const double f_lo = f(lo);
  double candidate = hi;
  for (int i = 0; i < max_steps; ++i) {
    if (f_lo * f(candidate) <= 0) {
      hi = candidate;
      return true;
    }
    candidate *= growth;
  }
  return false;
}

}  // namespace cosm::numerics
