#include "numerics/phase_type.hpp"

#include <cmath>

#include "common/require.hpp"
#include "numerics/special.hpp"

namespace cosm::numerics {

// --------------------------------- Erlang --------------------------------

Erlang::Erlang(unsigned stages, double rate) : stages_(stages), rate_(rate) {
  COSM_REQUIRE(stages >= 1, "erlang needs at least one stage");
  COSM_REQUIRE(rate > 0, "erlang rate must be positive");
}

std::string Erlang::name() const { return "erlang"; }

std::complex<double> Erlang::laplace(std::complex<double> s) const {
  return std::pow(rate_ / (rate_ + s), static_cast<double>(stages_));
}

double Erlang::mean() const { return stages_ / rate_; }

double Erlang::second_moment() const {
  return stages_ * (stages_ + 1.0) / (rate_ * rate_);
}

double Erlang::third_moment() const {
  return stages_ * (stages_ + 1.0) * (stages_ + 2.0) /
         (rate_ * rate_ * rate_);
}

double Erlang::cdf(double t) const {
  if (t <= 0) return 0.0;
  return gamma_p(static_cast<double>(stages_), rate_ * t);
}

double Erlang::sample(Rng& rng) const {
  double total = 0.0;
  for (unsigned i = 0; i < stages_; ++i) total += rng.exponential(rate_);
  return total;
}

// ----------------------------- HyperExponential ---------------------------

HyperExponential::HyperExponential(std::vector<Branch> branches)
    : branches_(std::move(branches)) {
  COSM_REQUIRE(!branches_.empty(), "hyperexponential needs branches");
  double total = 0.0;
  for (const auto& branch : branches_) {
    COSM_REQUIRE(branch.probability >= 0,
                 "branch probabilities must be non-negative");
    COSM_REQUIRE(branch.rate > 0, "branch rates must be positive");
    total += branch.probability;
  }
  COSM_REQUIRE(std::abs(total - 1.0) < 1e-9,
               "branch probabilities must sum to 1");
}

HyperExponential HyperExponential::two_moment(double mean, double cv2) {
  COSM_REQUIRE(mean > 0, "mean must be positive");
  COSM_REQUIRE(cv2 > 1.0, "H2 fits require cv2 > 1");
  // Balanced means: p1/mu1 = p2/mu2 (each branch carries half the mean).
  const double root = std::sqrt((cv2 - 1.0) / (cv2 + 1.0));
  const double p1 = 0.5 * (1.0 + root);
  const double p2 = 1.0 - p1;
  const double mu1 = 2.0 * p1 / mean;
  const double mu2 = 2.0 * p2 / mean;
  return HyperExponential({{p1, mu1}, {p2, mu2}});
}

std::string HyperExponential::name() const { return "hyperexponential"; }

std::complex<double> HyperExponential::laplace(std::complex<double> s) const {
  std::complex<double> total = 0.0;
  for (const auto& branch : branches_) {
    total += branch.probability * branch.rate / (branch.rate + s);
  }
  return total;
}

double HyperExponential::mean() const {
  double total = 0.0;
  for (const auto& branch : branches_) {
    total += branch.probability / branch.rate;
  }
  return total;
}

double HyperExponential::second_moment() const {
  double total = 0.0;
  for (const auto& branch : branches_) {
    total += branch.probability * 2.0 / (branch.rate * branch.rate);
  }
  return total;
}

double HyperExponential::third_moment() const {
  double total = 0.0;
  for (const auto& branch : branches_) {
    total += branch.probability * 6.0 /
             (branch.rate * branch.rate * branch.rate);
  }
  return total;
}

double HyperExponential::cdf(double t) const {
  if (t <= 0) return 0.0;
  double total = 0.0;
  for (const auto& branch : branches_) {
    total += branch.probability * (1.0 - std::exp(-branch.rate * t));
  }
  return total;
}

double HyperExponential::sample(Rng& rng) const {
  double u = rng.uniform();
  for (const auto& branch : branches_) {
    if (u < branch.probability) return rng.exponential(branch.rate);
    u -= branch.probability;
  }
  return rng.exponential(branches_.back().rate);
}

// --------------------------------- Shifted --------------------------------

Shifted::Shifted(double offset, DistPtr inner)
    : offset_(offset), inner_(std::move(inner)) {
  COSM_REQUIRE(offset >= 0, "shift must be non-negative");
  COSM_REQUIRE(inner_ != nullptr, "inner distribution required");
}

std::string Shifted::name() const { return "shifted_" + inner_->name(); }

std::complex<double> Shifted::laplace(std::complex<double> s) const {
  return std::exp(-s * offset_) * inner_->laplace(s);
}

double Shifted::mean() const { return offset_ + inner_->mean(); }

double Shifted::second_moment() const {
  // E[(d + X)^2] = d^2 + 2 d E[X] + E[X^2].
  return offset_ * offset_ + 2.0 * offset_ * inner_->mean() +
         inner_->second_moment();
}

double Shifted::third_moment() const {
  // E[(d + X)^3] = d^3 + 3 d^2 E[X] + 3 d E[X^2] + E[X^3].
  return offset_ * offset_ * offset_ +
         3.0 * offset_ * offset_ * inner_->mean() +
         3.0 * offset_ * inner_->second_moment() +
         inner_->third_moment();
}

double Shifted::cdf(double t) const { return inner_->cdf(t - offset_); }

double Shifted::sample(Rng& rng) const {
  return offset_ + inner_->sample(rng);
}

}  // namespace cosm::numerics
