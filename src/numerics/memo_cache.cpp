#include "numerics/memo_cache.hpp"

#include <bit>
#include <complex>
#include <string>

#include "numerics/distribution.hpp"

namespace cosm::numerics {

std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t value) {
  // splitmix64 finalizer over seed ^ value, with a golden-ratio offset so
  // hash_mix(0, 0) != 0 and mixing is order-sensitive.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL + value;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_mix(std::uint64_t seed, double value) {
  // Bit-pattern hashing: NaNs (moments without closed forms) mix as their
  // payload bits, +0.0/-0.0 deliberately differ — exactness over cleverness.
  return hash_mix(seed, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t fingerprint(const Distribution& dist) {
  std::uint64_t h = 0x636f736d0000000bULL;  // arbitrary domain tag
  for (const char c : dist.name()) {
    h = hash_mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  h = hash_mix(h, dist.mean());
  h = hash_mix(h, dist.second_moment());
  h = hash_mix(h, dist.third_moment());
  // Two transform probes pin down distributions whose name + moments
  // coincide (e.g. different shapes tuned to equal mean and variance).
  // Fixed real parts keep the probes cheap and well-conditioned for every
  // latency-scale distribution in the repo.
  const std::complex<double> p1 = dist.laplace({1.0, 0.0});
  const std::complex<double> p2 = dist.laplace({12.5, 40.0});
  h = hash_mix(h, p1.real());
  h = hash_mix(h, p1.imag());
  h = hash_mix(h, p2.real());
  h = hash_mix(h, p2.imag());
  return h;
}

}  // namespace cosm::numerics
