// Kernel bodies for one SIMD variant.  Included (not compiled standalone)
// by simd_kernels_{scalar,avx2,avx512}.cpp with:
//
//   #define COSM_SIMD_NS   <variant namespace>
//   #define COSM_SIMD_NAME "<variant name>"
//
// The includer's CMake rule sets the target flags (-mavx2 / -mavx512f ...)
// and ALWAYS -ffp-contract=off.  The bodies are written as branchless
// elementwise loops — or W-lane tiles where an op has a sequential inner
// loop (repeated squaring, segment walks, child folds) — so the
// auto-vectorizer can turn each lane loop into vector code at whatever
// width the variant allows.  No intrinsics: every variant runs the same
// IEEE operation sequence per element, which is what makes the variants
// bit-identical to each other (and the rational kernels bit-identical to
// the scalar tree walk; see simd_kernels.hpp for the exactness classes).

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>

#include "numerics/order_statistics.hpp"
#include "numerics/simd_kernels.hpp"
#include "numerics/simd_math.hpp"

#ifndef COSM_SIMD_NS
#error "simd_kernels_impl.hpp requires COSM_SIMD_NS"
#endif

namespace cosm::numerics::simd {
namespace COSM_SIMD_NS {

namespace {

// Tile width for ops with sequential inner loops: 8 doubles is one
// AVX-512 register or two AVX2 registers per plane.
constexpr std::size_t kW = 8;

void leaf_degenerate(const double* sr, const double* si, double value, double* dr, double* di, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::complex<double> sv(sr[i], si[i]);
    const std::complex<double> v = std::exp(-sv * value);
    dr[i] = v.real();
    di[i] = v.imag();
  }
}

void leaf_degenerate_fast(const double* sr, const double* si, double value, double* dr, double* di, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    cexp_fast(-sr[i] * value, -si[i] * value, dr[i], di[i]);
  }
}

void leaf_exponential(const double* sr, const double* si, double rate, double* dr, double* di, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    cdiv_real(rate, rate + sr[i], si[i], dr[i], di[i]);
  }
}

// Gamma, Uniform, and Erlang run per-lane through libm, replicating the
// exact evaluator's expressions verbatim (bit-identical class).  These
// leaves CANNOT meet a flat ULP bound with vectorized fast math: pow's
// conditioning amplifies any log/atan2 deviation by |shape·log z|, and
// Uniform's exp-difference cancels catastrophically just above its series
// guard — both blow past any fixed bound for legitimate parameters.
// Bit-identity costs leaf-local vector speed but keeps the gates honest;
// the surrounding ops (divisions, folds, queueing loops) still vectorize.
void leaf_gamma(const double* sr, const double* si, double shape, double rate, double* dr, double* di,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::complex<double> sv(sr[i], si[i]);
    const std::complex<double> z = sv / rate;
    std::complex<double> v;
    if (std::abs(z) < 1e-6) {
      v = std::exp(-shape * (z - 0.5 * z * z));
    } else {
      v = std::pow(rate / (rate + sv), shape);
    }
    dr[i] = v.real();
    di[i] = v.imag();
  }
}

void leaf_uniform(const double* sr, const double* si, double lo, double hi, double* dr, double* di, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::complex<double> sc(sr[i], si[i]);
    std::complex<double> v;
    if (std::abs(sc) < 1e-8) {
      v = 1.0 - sc * (0.5 * (lo + hi)) +
          sc * sc * ((lo * lo + lo * hi + hi * hi) / 6.0);
    } else {
      v = (std::exp(-sc * lo) - std::exp(-sc * hi)) / (sc * (hi - lo));
    }
    dr[i] = v.real();
    di[i] = v.imag();
  }
}

void leaf_erlang(const double* sr, const double* si, double stages, double rate, double* dr, double* di,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::complex<double> sv(sr[i], si[i]);
    const std::complex<double> v = std::pow(rate / (rate + sv), stages);
    dr[i] = v.real();
    di[i] = v.imag();
  }
}

// kSimdFast alternates: vector transcendentals, guards via squared
// magnitudes.  Per-op ULP-bounded against the exact walk (pow-family
// bounds carry the |shape·log z| conditioning term; see
// docs/PERFORMANCE.md §7).
void leaf_gamma_fast(const double* sr, const double* si, double shape, double rate, double* dr, double* di,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double zr = sr[i] / rate;
    const double zi = si[i] / rate;
    // Small-|z| series exp(-shape*(z - z^2/2)) — the scalar walk's guard
    // against pow() noise near s = 0.
    double z2r, z2i;
    cmul(zr, zi, zr, zi, z2r, z2i);
    double smr, smi;
    cexp_fast(-shape * (zr - 0.5 * z2r), -shape * (zi - 0.5 * z2i), smr, smi);
    // Main branch pow(rate/(rate+s), shape).
    double qr, qi;
    cdiv_real(rate, rate + sr[i], si[i], qr, qi);
    double bgr, bgi;
    cpow_fast(qr, qi, shape, bgr, bgi);
    const bool small = (zr * zr + zi * zi) < 1e-12;
    dr[i] = small ? smr : bgr;
    di[i] = small ? smi : bgi;
  }
}

void leaf_uniform_fast(const double* sr, const double* si, double lo, double hi, double* dr, double* di,
                       std::size_t n) {
  const double mid = 0.5 * (lo + hi);
  const double quad = (lo * lo + lo * hi + hi * hi) / 6.0;
  const double width = hi - lo;
  for (std::size_t i = 0; i < n; ++i) {
    const double scr = sr[i];
    const double sci = si[i];
    // Series branch: 1 - s*mid + s^2*quad.
    double s2r, s2i;
    cmul(scr, sci, scr, sci, s2r, s2i);
    const double smr = 1.0 - scr * mid + s2r * quad;
    const double smi = -sci * mid + s2i * quad;
    // Main branch: (exp(-s*lo) - exp(-s*hi)) / (s*(hi-lo)).
    double e1r, e1i, e2r, e2i;
    cexp_fast(-scr * lo, -sci * lo, e1r, e1i);
    cexp_fast(-scr * hi, -sci * hi, e2r, e2i);
    double bgr, bgi;
    cdiv(e1r - e2r, e1i - e2i, scr * width, sci * width, bgr, bgi);
    const bool small = (scr * scr + sci * sci) < 1e-16;
    dr[i] = small ? smr : bgr;
    di[i] = small ? smi : bgi;
  }
}

void leaf_erlang_fast(const double* sr, const double* si, double stages, double rate, double* dr, double* di,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    double qr, qi;
    cdiv_real(rate, rate + sr[i], si[i], qr, qi);
    cpow_fast(qr, qi, stages, dr[i], di[i]);
  }
}

void leaf_hyperexp(const double* sr, const double* si, const double* params, std::size_t branches, double* dr,
                   double* di, std::size_t n) {
  for (std::size_t base = 0; base < n; base += kW) {
    const std::size_t w = std::min(kW, n - base);
    double xr[kW], xi[kW], tr[kW], ti[kW];
    for (std::size_t l = 0; l < w; ++l) {
      xr[l] = sr[base + l];
      xi[l] = si[base + l];
    }
    for (std::size_t l = w; l < kW; ++l) {
      xr[l] = xr[0];
      xi[l] = xi[0];
    }
    for (std::size_t l = 0; l < kW; ++l) {
      tr[l] = 0.0;
      ti[l] = 0.0;
    }
    for (std::size_t k = 0; k < branches; ++k) {
      const double num = params[2 * k] * params[2 * k + 1];
      const double rate = params[2 * k + 1];
      for (std::size_t l = 0; l < kW; ++l) {
        double qr, qi;
        cdiv_real(num, rate + xr[l], xi[l], qr, qi);
        tr[l] += qr;
        ti[l] += qi;
      }
    }
    for (std::size_t l = 0; l < w; ++l) {
      dr[base + l] = tr[l];
      di[base + l] = ti[l];
    }
  }
}

void leaf_mm1k(const double* sr, const double* si, const double* params, double* dr, double* di, std::size_t n) {
  const double arrival = params[0];
  const double service = params[1];
  const unsigned capacity = static_cast<unsigned>(static_cast<int>(params[2]));
  const double p0 = params[3];
  const double blocking = params[4];
  const double coef = service * p0 / (1.0 - blocking);
  const double drift = service - arrival;
  for (std::size_t base = 0; base < n; base += kW) {
    const std::size_t w = std::min(kW, n - base);
    double xr[kW], xi[kW], rr[kW], ri[kW], pr[kW], pi[kW];
    for (std::size_t l = 0; l < w; ++l) {
      xr[l] = sr[base + l];
      xi[l] = si[base + l];
    }
    for (std::size_t l = w; l < kW; ++l) {
      xr[l] = xr[0];
      xi[l] = xi[0];
    }
    // ratio = arrival / (service + s)
    for (std::size_t l = 0; l < kW; ++l) {
      cdiv_real(arrival, service + xr[l], xi[l], rr[l], ri[l]);
    }
    // ratio^capacity by repeated squaring in __cmath_power's order.
    const bool odd = (capacity & 1u) != 0;
    for (std::size_t l = 0; l < kW; ++l) {
      pr[l] = odd ? rr[l] : 1.0;
      pi[l] = odd ? ri[l] : 0.0;
    }
    unsigned m = capacity;
    while (m >>= 1) {
      for (std::size_t l = 0; l < kW; ++l) {
        cmul(rr[l], ri[l], rr[l], ri[l], rr[l], ri[l]);
      }
      if ((m & 1u) != 0) {
        for (std::size_t l = 0; l < kW; ++l) {
          cmul(pr[l], pi[l], rr[l], ri[l], pr[l], pi[l]);
        }
      }
    }
    for (std::size_t l = 0; l < w; ++l) {
      double vr, vi;
      cdiv(coef * (1.0 - pr[l]), coef * -pi[l], drift + xr[l], xi[l], vr, vi);
      // Guard predicate exactly as the scalar walk writes it (hypot).
      const bool guard = std::abs(std::complex<double>(xr[l], xi[l])) < 1e-14;
      dr[base + l] = guard ? 1.0 : vr;
      di[base + l] = guard ? 0.0 : vi;
    }
  }
}

// Bit-exact order-statistic leaf: per-lane through the same helper the
// scalar walk calls.  The vectorized segment walk lives in
// order_stat_fast — its three exponentials put it in the ULP class.
void order_stat(const double* sr, const double* si, double dt, const double* cdf, std::size_t count, double* dr,
                double* di, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::complex<double> v = cosm::numerics::detail::piecewise_cdf_laplace(
        std::complex<double>(sr[i], si[i]), dt, cdf, count);
    dr[i] = v.real();
    di[i] = v.imag();
  }
}

void order_stat_fast(const double* sr, const double* si, double dt, const double* cdf, std::size_t count, double* dr,
                     double* di, std::size_t n) {
  const double t_end = dt * static_cast<double>(count - 1);
  const double tail = 1.0 - cdf[count - 1];
  for (std::size_t base = 0; base < n; base += kW) {
    const std::size_t w = std::min(kW, n - base);
    double xr[kW], xi[kW];
    for (std::size_t l = 0; l < w; ++l) {
      xr[l] = sr[base + l];
      xi[l] = si[base + l];
    }
    for (std::size_t l = w; l < kW; ++l) {
      xr[l] = xr[0];
      xi[l] = xi[0];
    }
    double der[kW], dei[kW];  // decay = exp(-s*dt)
    double gr[kW], gi[kW];    // segment factor (1 - e^{-s dt})/s
    double er[kW], ei[kW];    // running e^{-s t_i}
    double tr[kW], ti[kW];    // accumulated transform
    for (std::size_t l = 0; l < kW; ++l) {
      const double zr = xr[l] * dt;
      const double zi = xi[l] * dt;
      cexp_fast(-zr, -zi, der[l], dei[l]);
      // Series for small |z| (the scalar guard at |z| < 1e-6):
      // dt * (1 - z/2 + z^2/6 - z^3/24).
      double z2r, z2i, z3r, z3i;
      cmul(zr, zi, zr, zi, z2r, z2i);
      cmul(z2r, z2i, zr, zi, z3r, z3i);
      const double smr = dt * (1.0 - zr * 0.5 + z2r / 6.0 - z3r / 24.0);
      const double smi = dt * (-zi * 0.5 + z2i / 6.0 - z3i / 24.0);
      double bgr, bgi;
      cdiv(1.0 - der[l], -dei[l], xr[l], xi[l], bgr, bgi);
      const bool small = (zr * zr + zi * zi) < 1e-12;
      gr[l] = small ? smr : bgr;
      gi[l] = small ? smi : bgi;
      er[l] = 1.0;
      ei[l] = 0.0;
      tr[l] = cdf[0];
      ti[l] = 0.0;
    }
    for (std::size_t seg = 0; seg + 1 < count; ++seg) {
      const double mass = (cdf[seg + 1] - cdf[seg]) / dt;
      for (std::size_t l = 0; l < kW; ++l) {
        double wr, wi;
        cmul(mass * er[l], mass * ei[l], gr[l], gi[l], wr, wi);
        tr[l] += wr;
        ti[l] += wi;
        cmul(er[l], ei[l], der[l], dei[l], er[l], ei[l]);
      }
    }
    for (std::size_t l = 0; l < w; ++l) {
      double hr, hi;
      cexp_fast(-xr[l] * t_end, -xi[l] * t_end, hr, hi);
      dr[base + l] = tr[l] + tail * hr;
      di[base + l] = ti[l] + tail * hi;
    }
  }
}

void mul(double* base_r, double* base_i, std::size_t children, std::size_t batch) {
  for (std::size_t off = 0; off < batch; off += kW) {
    const std::size_t w = std::min(kW, batch - off);
    double pr[kW], pi[kW];
    for (std::size_t l = 0; l < kW; ++l) {
      pr[l] = 1.0;
      pi[l] = 0.0;
    }
    for (std::size_t c = 0; c < children; ++c) {
      const double* cr = base_r + c * batch + off;
      const double* ci = base_i + c * batch + off;
      for (std::size_t l = 0; l < w; ++l) {
        cmul(pr[l], pi[l], cr[l], ci[l], pr[l], pi[l]);
      }
    }
    for (std::size_t l = 0; l < w; ++l) {
      base_r[off + l] = pr[l];
      base_i[off + l] = pi[l];
    }
  }
}

void mix(double* base_r, double* base_i, const double* weights, std::size_t children, std::size_t batch) {
  for (std::size_t off = 0; off < batch; off += kW) {
    const std::size_t w = std::min(kW, batch - off);
    double ar[kW], ai[kW];
    for (std::size_t l = 0; l < kW; ++l) {
      ar[l] = 0.0;
      ai[l] = 0.0;
    }
    for (std::size_t c = 0; c < children; ++c) {
      const double wc = weights[c];
      const double* cr = base_r + c * batch + off;
      const double* ci = base_i + c * batch + off;
      for (std::size_t l = 0; l < w; ++l) {
        ar[l] += wc * cr[l];
        ai[l] += wc * ci[l];
      }
    }
    for (std::size_t l = 0; l < w; ++l) {
      base_r[off + l] = ar[l];
      base_i[off + l] = ai[l];
    }
  }
}

void tier_mix(double* hit_r, double* hit_i, const double* miss_r, const double* miss_i, double hit_w, double miss_w,
              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    hit_r[i] = hit_w * hit_r[i] + miss_w * miss_r[i];
    hit_i[i] = hit_w * hit_i[i] + miss_w * miss_i[i];
  }
}

void cpoisson(double* base_r, double* base_i, const double* extra_r, const double* extra_i, double rate,
              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::complex<double> base(base_r[i], base_i[i]);
    const std::complex<double> extra(extra_r[i], extra_i[i]);
    const std::complex<double> v = base * std::exp(rate * (extra - 1.0));
    base_r[i] = v.real();
    base_i[i] = v.imag();
  }
}

void cpoisson_fast(double* base_r, double* base_i, const double* extra_r, const double* extra_i, double rate,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    double wr, wi;
    cexp_fast(rate * (extra_r[i] - 1.0), rate * extra_i[i], wr, wi);
    cmul(base_r[i], base_i[i], wr, wi, base_r[i], base_i[i]);
  }
}

void shift(const double* sr, const double* si, double offset, double* vr, double* vi, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::complex<double> sv(sr[i], si[i]);
    const std::complex<double> inner(vr[i], vi[i]);
    const std::complex<double> v = std::exp(-sv * offset) * inner;
    vr[i] = v.real();
    vi[i] = v.imag();
  }
}

void shift_fast(const double* sr, const double* si, double offset, double* vr, double* vi, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    double wr, wi;
    cexp_fast(-sr[i] * offset, -si[i] * offset, wr, wi);
    cmul(wr, wi, vr[i], vi[i], vr[i], vi[i]);
  }
}

void scale_arg(const double* sr, const double* si, double factor, double* dr, double* di, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dr[i] = factor * sr[i];
    di[i] = factor * si[i];
  }
}

void pk_wait(const double* sr, const double* si, double arrival, double rho, double* vr, double* vi, std::size_t n) {
  const double numw = 1.0 - rho;
  for (std::size_t i = 0; i < n; ++i) {
    const double scr = sr[i];
    const double sci = si[i];
    double qr, qi;
    cdiv(numw * scr, numw * sci, arrival * vr[i] + scr - arrival, arrival * vi[i] + sci, qr, qi);
    const bool guard = std::abs(std::complex<double>(scr, sci)) < 1e-14;
    vr[i] = guard ? 1.0 : qr;
    vi[i] = guard ? 0.0 : qi;
  }
}

void mg1k(const double* sr, const double* si, const double* params, std::size_t nw, double* vr, double* vi,
          std::size_t n) {
  const double mean_service = params[0];
  const double* weights = params + 1;
  for (std::size_t base = 0; base < n; base += kW) {
    const std::size_t w = std::min(kW, n - base);
    double xr[kW], xi[kW], lr[kW], li[kW];
    for (std::size_t l = 0; l < w; ++l) {
      xr[l] = sr[base + l];
      xi[l] = si[base + l];
      lr[l] = vr[base + l];
      li[l] = vi[base + l];
    }
    for (std::size_t l = w; l < kW; ++l) {
      xr[l] = xr[0];
      xi[l] = xi[0];
      lr[l] = lr[0];
      li[l] = li[0];
    }
    double rr[kW], ri[kW], tr[kW], ti[kW], pr[kW], pi[kW];
    for (std::size_t l = 0; l < kW; ++l) {
      // residual = (1 - lb) / (s * mean_service)
      cdiv(1.0 - lr[l], -li[l], xr[l] * mean_service, xi[l] * mean_service, rr[l], ri[l]);
      tr[l] = weights[0] * lr[l];
      ti[l] = weights[0] * li[l];
      pr[l] = 1.0;
      pi[l] = 0.0;
    }
    for (std::size_t k = 1; k < nw; ++k) {
      const double wk = weights[k];
      for (std::size_t l = 0; l < kW; ++l) {
        double ur, ui;
        cmul(wk * rr[l], wk * ri[l], pr[l], pi[l], ur, ui);
        cmul(ur, ui, lr[l], li[l], ur, ui);
        tr[l] += ur;
        ti[l] += ui;
        cmul(pr[l], pi[l], lr[l], li[l], pr[l], pi[l]);
      }
    }
    for (std::size_t l = 0; l < w; ++l) {
      const bool guard =
          std::abs(std::complex<double>(xr[l], xi[l])) * mean_service < 1e-8;
      vr[base + l] = guard ? 1.0 : tr[l];
      vi[base + l] = guard ? 0.0 : ti[l];
    }
  }
}

}  // namespace

extern const TapeKernels kKernels;
const TapeKernels kKernels = {
    COSM_SIMD_NAME,  //
    leaf_degenerate, leaf_exponential, leaf_gamma, leaf_uniform, leaf_erlang, leaf_hyperexp, leaf_mm1k, order_stat,
    mul,             mix,              tier_mix,   cpoisson,     shift,       scale_arg,     pk_wait,   mg1k,
    // kSimdFast alternates.
    leaf_degenerate_fast, leaf_gamma_fast, leaf_uniform_fast, leaf_erlang_fast, order_stat_fast, cpoisson_fast,
    shift_fast,
};

}  // namespace COSM_SIMD_NS
}  // namespace cosm::numerics::simd
