// Distribution combinators — the algebra the paper's model is written in.
//
//  * Mixture        — "serve from cache w.p. 1-m (zero latency), from disk
//                     w.p. m" is a two-component mixture (Sec. III-B:
//                     index(t) = m·index_d(t) + (1-m)·δ(t)).
//  * Convolution    — latency components in sequence add; transforms
//                     multiply (Eq. 1 and Eq. 2 of the paper).
//  * CompoundPoissonConvolution — the union-operation service time: a fixed
//                     base (parse * index * meta * data) convolved with a
//                     Poisson(p)-distributed number of extra data reads.
//                     L[B](s) = L[base](s) · exp(p·(L[extra](s) − 1)).
//  * LaplaceDistribution — wraps a transform produced by queueing formulas
//                     (P–K waiting time, M/M/1/K sojourn) as a Distribution;
//                     transform-only, so sample() throws.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "numerics/distribution.hpp"
#include "numerics/lt_inversion.hpp"

namespace cosm::numerics {

class Mixture final : public Distribution {
 public:
  struct Component {
    double weight;
    DistPtr dist;
  };

  // Weights must be non-negative and sum to 1 (within 1e-9).
  explicit Mixture(std::vector<Component> components);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override;
  double second_moment() const override;
  double third_moment() const override;
  double cdf(double t) const override;
  double sample(Rng& rng) const override;

  const std::vector<Component>& components() const { return components_; }

 private:
  std::vector<Component> components_;
};

// Builds the paper's cache-hit/miss mixture: an atom at zero with
// probability (1 - miss_ratio) plus `on_miss` with probability miss_ratio.
DistPtr atom_at_zero_mixture(double miss_ratio, DistPtr on_miss);

class Convolution final : public Distribution {
 public:
  // Sum of independent non-negative parts; at least one part required.
  explicit Convolution(std::vector<DistPtr> parts);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override;
  double second_moment() const override;
  double third_moment() const override;
  double sample(Rng& rng) const override;

  const std::vector<DistPtr>& parts() const { return parts_; }

 private:
  std::vector<DistPtr> parts_;
};

// base + sum of N i.i.d. `extra` terms with N ~ Poisson(rate).
class CompoundPoissonConvolution final : public Distribution {
 public:
  CompoundPoissonConvolution(DistPtr base, double rate, DistPtr extra);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override;
  double second_moment() const override;
  double third_moment() const override;
  double sample(Rng& rng) const override;

  double rate() const { return rate_; }
  const DistPtr& base() const { return base_; }
  const DistPtr& extra() const { return extra_; }

 private:
  DistPtr base_;
  double rate_;
  DistPtr extra_;
};

class LaplaceDistribution final : public Distribution {
 public:
  // `second_moment` may be NaN when the caller has no closed form.
  LaplaceDistribution(std::string name, LaplaceFn lt, double mean,
                      double second_moment);

  std::string name() const override { return name_; }
  std::complex<double> laplace(std::complex<double> s) const override {
    return lt_(s);
  }
  double mean() const override { return mean_; }
  double second_moment() const override { return second_moment_; }

 private:
  std::string name_;
  LaplaceFn lt_;
  double mean_;
  double second_moment_;
};

// Y = c · X for a positive constant c (robustness extension): the degraded
// what-if model inflates a slow device's disk service times by wrapping
// them in Scaled.  L[Y](s) = L[X](c·s), moments scale by c^k, cdf(t) =
// F_X(t / c), and sample() forwards to the inner distribution when it can
// sample.
class Scaled final : public Distribution {
 public:
  Scaled(DistPtr inner, double factor);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override;
  double second_moment() const override;
  double third_moment() const override;
  double cdf(double t) const override;
  double sample(Rng& rng) const override;

  double factor() const { return factor_; }
  const DistPtr& inner() const { return inner_; }

 private:
  DistPtr inner_;
  double factor_;
};

// TieredService — the two-tier storage mixture (tiering extension): a
// data access is served by the SSD cache tier with probability
// `hit_ratio` and falls through to the capacity tier behind it
// otherwise:
//
//   L[T](s) = h · L[hit](s) + (1 − h) · L[miss](s).
//
// Numerically this is a two-component Mixture, but it is kept as its own
// node so the TransformTape compiles it to a dedicated op (TIER-MIX) and
// tiered / untiered response trees stay structurally distinct for regime
// fingerprints — the same reason MIN-OF-K and KTH-OF-N are separate
// opcodes.  The miss weight (1 − h) is computed once here and reused
// verbatim by the tape op, keeping tape evaluation bit-identical to this
// tree walk.  Derivation and validity limits: docs/TIERING.md.
class TieredService final : public Distribution {
 public:
  // hit_ratio in [0, 1]; `hit` and `miss` are the per-tier response-time
  // distributions (service or sojourn, as the caller composes them).
  TieredService(double hit_ratio, DistPtr hit, DistPtr miss);

  std::string name() const override;
  std::complex<double> laplace(std::complex<double> s) const override;
  double mean() const override;
  double second_moment() const override;
  double third_moment() const override;
  double cdf(double t) const override;
  double sample(Rng& rng) const override;

  double hit_ratio() const { return hit_ratio_; }
  double miss_ratio() const { return miss_ratio_; }
  const DistPtr& hit() const { return hit_; }
  const DistPtr& miss() const { return miss_; }

 private:
  double hit_ratio_;
  double miss_ratio_;  // 1 − hit_ratio, stored once (see header doc)
  DistPtr hit_;
  DistPtr miss_;
};

// Convenience: c == 1 returns `inner` unchanged (no wrapper cost).
DistPtr scale_dist(DistPtr inner, double factor);

// Convenience: convolve two or three distributions.
DistPtr convolve_dists(std::vector<DistPtr> parts);

}  // namespace cosm::numerics
