// Scalar root finding and minimization used across the model: Brent's
// method drives quantile-from-CDF searches, the Gamma-MLE shape equation,
// and capacity-planning "what-if" inversions.
#pragma once

#include <functional>

namespace cosm::numerics {

struct RootResult {
  double x = 0.0;
  double f = 0.0;          // residual at x
  int iterations = 0;
  bool converged = false;
};

// Brent's method on [lo, hi].  Requires f(lo) and f(hi) to bracket a root
// (opposite signs, or one of them within tol of zero).
RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 double x_tol = 1e-12, int max_iter = 200);

// Newton iteration with a derivative, safeguarded by bisection against the
// supplied bracket.  Used where the derivative is cheap (digamma/trigamma).
RootResult newton_safeguarded(const std::function<double(double)>& f,
                              const std::function<double(double)>& dfdx,
                              double x0, double lo, double hi,
                              double x_tol = 1e-12, int max_iter = 100);

// Expands [lo, hi] geometrically upward until f changes sign or the limit
// is reached.  Returns true and updates hi on success.  Handy for quantile
// searches where the upper bound is unknown.
bool expand_bracket_upward(const std::function<double(double)>& f, double lo,
                           double& hi, double growth = 2.0,
                           int max_steps = 80);

}  // namespace cosm::numerics
