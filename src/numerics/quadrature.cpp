#include "numerics/quadrature.hpp"

#include <array>
#include <cmath>

#include "common/require.hpp"

namespace cosm::numerics {

namespace {

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_step(const std::function<double(double)>& f, double a,
                     double fa, double b, double fb, double m, double fm,
                     double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive_step(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive_step(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

// 16 positive abscissae/weights of the 32-point Gauss–Legendre rule on
// [-1, 1]; the rule is symmetric.
constexpr std::array<double, 16> kGlNodes = {
    0.0483076656877383162, 0.1444719615827964934, 0.2392873622521370745,
    0.3318686022821276497, 0.4213512761306353454, 0.5068999089322293900,
    0.5877157572407623290, 0.6630442669302152010, 0.7321821187402896804,
    0.7944837959679424069, 0.8493676137325699701, 0.8963211557660521240,
    0.9349060759377396892, 0.9647622555875064308, 0.9856115115452683354,
    0.9972638618494815635};
constexpr std::array<double, 16> kGlWeights = {
    0.0965400885147278006, 0.0956387200792748594, 0.0938443990808045654,
    0.0911738786957638847, 0.0876520930044038111, 0.0833119242269467552,
    0.0781938957870703065, 0.0723457941088485062, 0.0658222227763618468,
    0.0586840934785355471, 0.0509980592623761762, 0.0428358980222266807,
    0.0342738629130214331, 0.0253920653092620595, 0.0162743947309056706,
    0.0070186100094700966};

}  // namespace

double integrate_adaptive(const std::function<double(double)>& f, double a,
                          double b, double tol, int max_depth) {
  COSM_REQUIRE(a <= b, "integration bounds must be ordered");
  if (a == b) return 0.0;
  const double fa = f(a);
  const double fb = f(b);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return adaptive_step(f, a, fa, b, fb, m, fm, whole, tol, max_depth);
}

double integrate_gauss(const std::function<double(double)>& f, double a,
                       double b, int panels) {
  COSM_REQUIRE(a <= b, "integration bounds must be ordered");
  COSM_REQUIRE(panels > 0, "need at least one panel");
  const double h = (b - a) / panels;
  double total = 0.0;
  for (int p = 0; p < panels; ++p) {
    const double mid = a + (p + 0.5) * h;
    const double half = 0.5 * h;
    double panel_sum = 0.0;
    for (std::size_t i = 0; i < kGlNodes.size(); ++i) {
      const double dx = half * kGlNodes[i];
      panel_sum += kGlWeights[i] * (f(mid - dx) + f(mid + dx));
    }
    total += panel_sum * half;
  }
  return total;
}

std::complex<double> integrate_gauss_complex(
    const std::function<std::complex<double>(double)>& f, double a, double b,
    int panels) {
  COSM_REQUIRE(a <= b, "integration bounds must be ordered");
  COSM_REQUIRE(panels > 0, "need at least one panel");
  const double h = (b - a) / panels;
  std::complex<double> total = 0.0;
  for (int p = 0; p < panels; ++p) {
    const double mid = a + (p + 0.5) * h;
    const double half = 0.5 * h;
    std::complex<double> panel_sum = 0.0;
    for (std::size_t i = 0; i < kGlNodes.size(); ++i) {
      const double dx = half * kGlNodes[i];
      panel_sum += kGlWeights[i] * (f(mid - dx) + f(mid + dx));
    }
    total += panel_sum * half;
  }
  return total;
}

}  // namespace cosm::numerics
