#include "numerics/grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "numerics/fft.hpp"

namespace cosm::numerics {

GridDensity::GridDensity(double dt, std::vector<double> mass)
    : dt_(dt), mass_(std::move(mass)) {
  COSM_REQUIRE(dt > 0, "grid bin width must be positive");
  COSM_REQUIRE(!mass_.empty(), "grid must have at least one bin");
}

GridDensity GridDensity::discretize(const Distribution& dist, double dt,
                                    double horizon) {
  COSM_REQUIRE(dt > 0 && horizon > dt, "invalid discretization window");
  const auto bins = static_cast<std::size_t>(std::ceil(horizon / dt));
  std::vector<double> mass(bins, 0.0);
  // Difference the *monotone envelope* of the CDF: numerically inverted
  // CDFs ring (Gibbs) around atoms, and naive differencing with a
  // negative clamp would count each overshoot as extra mass.
  double prev_cdf = 0.0;
  for (std::size_t i = 0; i < bins; ++i) {
    const double edge = static_cast<double>(i + 1) * dt;
    const double c = std::min(1.0, std::max(dist.cdf(edge), prev_cdf));
    mass[i] = c - prev_cdf;
    prev_cdf = c;
  }
  mass.back() += std::max(0.0, 1.0 - prev_cdf);  // fold the tail in
  return GridDensity(dt, std::move(mass));
}

double GridDensity::total_mass() const {
  double sum = 0.0;
  for (const double m : mass_) sum += m;
  return sum;
}

double GridDensity::mean() const {
  // Bin mass is attributed to the bin midpoint.
  double sum = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    sum += mass_[i] * (static_cast<double>(i) + 0.5) * dt_;
  }
  return sum;
}

double GridDensity::cdf(double t) const {
  if (t <= 0) return 0.0;
  const double position = t / dt_;
  const auto full_bins = static_cast<std::size_t>(position);
  if (full_bins >= mass_.size()) return total_mass();
  double sum = 0.0;
  for (std::size_t i = 0; i < full_bins; ++i) sum += mass_[i];
  sum += mass_[full_bins] * (position - static_cast<double>(full_bins));
  return std::min(sum, 1.0);
}

double GridDensity::quantile(double p) const {
  COSM_REQUIRE(p >= 0 && p <= 1, "quantile level must be in [0, 1]");
  double cumulative = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    const double next = cumulative + mass_[i];
    if (next >= p) {
      const double inside = mass_[i] > 0 ? (p - cumulative) / mass_[i] : 0.0;
      return (static_cast<double>(i) + inside) * dt_;
    }
    cumulative = next;
  }
  return static_cast<double>(mass_.size()) * dt_;
}

GridDensity GridDensity::convolve_with(const GridDensity& other,
                                       std::size_t max_bins) const {
  COSM_REQUIRE(std::abs(dt_ - other.dt_) < 1e-15 * dt_,
               "grids must share the bin width");
  COSM_REQUIRE(max_bins > 0, "result must keep at least one bin");
  std::vector<double> out = convolve(mass_, other.mass_);
  if (out.size() > max_bins) {
    double overflow = 0.0;
    for (std::size_t i = max_bins; i < out.size(); ++i) overflow += out[i];
    out.resize(max_bins);
    out.back() += overflow;
  }
  // FFT round-off can leave tiny negatives; clip them.
  for (double& m : out) m = std::max(0.0, m);
  return GridDensity(dt_, std::move(out));
}

GridDensity GridDensity::mix_with(const GridDensity& other, double w) const {
  COSM_REQUIRE(std::abs(dt_ - other.dt_) < 1e-15 * dt_,
               "grids must share the bin width");
  COSM_REQUIRE(w >= 0 && w <= 1, "mixture weight must be in [0, 1]");
  std::vector<double> out(std::max(mass_.size(), other.mass_.size()), 0.0);
  for (std::size_t i = 0; i < mass_.size(); ++i) out[i] += w * mass_[i];
  for (std::size_t i = 0; i < other.mass_.size(); ++i) {
    out[i] += (1.0 - w) * other.mass_[i];
  }
  return GridDensity(dt_, std::move(out));
}

}  // namespace cosm::numerics
