#include "numerics/order_statistics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/require.hpp"
#include "numerics/transform_tape.hpp"

namespace cosm::numerics {

namespace detail {

std::complex<double> piecewise_cdf_laplace(std::complex<double> s, double dt,
                                           const double* cdf,
                                           std::size_t count) {
  const double t_end = dt * static_cast<double>(count - 1);
  // Atom of mass cdf[0] at zero.
  std::complex<double> total = cdf[0];
  // Shared per-segment factor (1 - e^{-s dt})/s, stabilized by its series
  // for small |s dt| (covers s == 0, where the limit is dt).
  const std::complex<double> z = s * dt;
  std::complex<double> g;
  if (std::abs(z) < 1e-6) {
    g = dt * (1.0 - z * 0.5 + z * z / 6.0 - z * z * z / 24.0);
  } else {
    g = (1.0 - std::exp(-z)) / s;
  }
  const std::complex<double> decay = std::exp(-z);
  std::complex<double> expfac = 1.0;  // e^{-s t_i}, advanced per segment
  for (std::size_t i = 0; i + 1 < count; ++i) {
    const double mass = cdf[i + 1] - cdf[i];
    total += (mass / dt) * expfac * g;
    expfac *= decay;
  }
  // Residual tail mass as an atom at the horizon.
  total += (1.0 - cdf[count - 1]) * std::exp(-s * t_end);
  return total;
}

}  // namespace detail

namespace {

// The base CDF materialized on a uniform grid by batched tape inversion.
struct BaseGrid {
  double dt = 0.0;
  std::vector<double> ts;
  std::vector<double> cdf;
};

// Quantile level that sets the grid horizon.  High enough that the tail
// atom at the horizon sits beyond every percentile the model queries
// (p999 sweeps included), low enough that Brent converges fast.
constexpr double kHorizonQuantile = 0.9999;

BaseGrid materialize_base(const DistPtr& base, std::size_t points) {
  COSM_REQUIRE(base != nullptr, "order statistic needs a base distribution");
  COSM_REQUIRE(points >= 2, "order-statistic grid needs >= 2 points");
  const double mean = base->mean();
  COSM_REQUIRE(std::isfinite(mean) && mean > 0,
               "order-statistic base needs a finite positive mean");
  const TransformTape tape = TransformTape::compile(base);
  const double horizon = tape.quantile(kHorizonQuantile, mean);
  COSM_REQUIRE(std::isfinite(horizon) && horizon > 0,
               "order-statistic horizon quantile must be finite");
  BaseGrid grid;
  grid.dt = horizon / static_cast<double>(points - 1);
  grid.ts.resize(points);
  for (std::size_t i = 0; i < points; ++i) {
    grid.ts[i] = grid.dt * static_cast<double>(i);
  }
  grid.cdf = tape.cdf_many(grid.ts);
  // Euler inversion of a CDF wobbles at the 1e-8 level; clamp into [0, 1]
  // and enforce monotonicity so the pointwise combinators below stay
  // valid probabilities.
  double running = 0.0;
  for (double& f : grid.cdf) {
    running = std::max(running, std::min(1.0, std::max(0.0, f)));
    f = running;
  }
  return grid;
}

// Geometric survival blend toward the single-attempt tail (fork-join
// correction, see header): 1 - F = (1 - F_os)^{1-c} (1 - F_base)^{c}.
void blend_correlation(std::vector<double>& combined,
                       const std::vector<double>& base_cdf,
                       double correlation) {
  if (correlation <= 0.0) return;
  for (std::size_t i = 0; i < combined.size(); ++i) {
    const double s_os = 1.0 - combined[i];
    const double s_base = 1.0 - base_cdf[i];
    combined[i] = 1.0 - std::pow(s_os, 1.0 - correlation) *
                            std::pow(s_base, correlation);
  }
}

// Moments of the piecewise-linear CDF + horizon tail atom — the same
// measure piecewise_cdf_laplace integrates, so mean()/laplace() describe
// one distribution.
void grid_moments(const std::vector<double>& cdf, double dt, double* mean,
                  double* second) {
  double m1 = 0.0;
  double m2 = 0.0;
  for (std::size_t i = 0; i + 1 < cdf.size(); ++i) {
    const double mass = cdf[i + 1] - cdf[i];
    const double t0 = dt * static_cast<double>(i);
    const double t1 = t0 + dt;
    m1 += mass * 0.5 * (t0 + t1);
    m2 += mass * (t0 * t0 + t0 * t1 + t1 * t1) / 3.0;
  }
  const double t_end = dt * static_cast<double>(cdf.size() - 1);
  const double tail = 1.0 - cdf.back();
  m1 += tail * t_end;
  m2 += tail * t_end * t_end;
  *mean = m1;
  *second = m2;
}

double grid_cdf_at(const std::vector<double>& cdf, double dt, double t) {
  if (t < 0.0) return 0.0;
  const double t_end = dt * static_cast<double>(cdf.size() - 1);
  if (t >= t_end) return 1.0;  // tail atom sits at the horizon
  const double pos = t / dt;
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  return cdf[idx] + frac * (cdf[idx + 1] - cdf[idx]);
}

// P[at least k of n successes] at success probability f:
// sum_{j=k}^{n} C(n,j) f^j (1-f)^{n-j}, with the binomial coefficient
// built multiplicatively (n is a replica count, single digits).
double binomial_tail(unsigned n, unsigned k, double f) {
  if (k == 1) {
    // The min statistic in its stable form (no cancellation near f = 0).
    return 1.0 - std::pow(1.0 - f, static_cast<double>(n));
  }
  double total = 0.0;
  for (unsigned j = k; j <= n; ++j) {
    double coeff = 1.0;
    for (unsigned i = 0; i < j; ++i) {
      coeff *= static_cast<double>(n - i) / static_cast<double>(i + 1);
    }
    total += coeff * std::pow(f, static_cast<double>(j)) *
             std::pow(1.0 - f, static_cast<double>(n - j));
  }
  return std::min(1.0, total);
}

}  // namespace

OrderStatistic::OrderStatistic(DistPtr base, unsigned n, unsigned k,
                               double correlation, std::size_t grid_points)
    : base_(std::move(base)), n_(n), k_(k), correlation_(correlation) {
  COSM_REQUIRE(n_ >= 1, "order statistic needs n >= 1");
  COSM_REQUIRE(k_ >= 1 && k_ <= n_, "order statistic needs 1 <= k <= n");
  COSM_REQUIRE(std::isfinite(correlation_) && correlation_ >= 0.0 &&
                   correlation_ <= 1.0,
               "order-statistic correlation must be in [0, 1]");
  BaseGrid grid = materialize_base(base_, grid_points);
  dt_ = grid.dt;
  grid_.resize(grid.cdf.size());
  for (std::size_t i = 0; i < grid.cdf.size(); ++i) {
    grid_[i] = binomial_tail(n_, k_, grid.cdf[i]);
  }
  blend_correlation(grid_, grid.cdf, correlation_);
  grid_moments(grid_, dt_, &mean_, &second_);
}

std::string OrderStatistic::name() const {
  std::ostringstream out;
  out << "OrderStatistic(k=" << k_ << ",n=" << n_ << ",corr=" << correlation_
      << ") of " << base_->name();
  return out.str();
}

std::complex<double> OrderStatistic::laplace(std::complex<double> s) const {
  return detail::piecewise_cdf_laplace(s, dt_, grid_.data(), grid_.size());
}

double OrderStatistic::cdf(double t) const {
  return grid_cdf_at(grid_, dt_, t);
}

HedgedResponse::HedgedResponse(DistPtr base, double delay, double correlation,
                               std::size_t grid_points)
    : base_(std::move(base)), delay_(delay), correlation_(correlation) {
  COSM_REQUIRE(std::isfinite(delay_) && delay_ > 0,
               "hedge delay must be finite and positive");
  COSM_REQUIRE(std::isfinite(correlation_) && correlation_ >= 0.0 &&
                   correlation_ <= 1.0,
               "hedged-response correlation must be in [0, 1]");
  BaseGrid grid = materialize_base(base_, grid_points);
  dt_ = grid.dt;
  // F(t - d) at the grid points needs a second inversion pass over the
  // shifted abscissae (interpolating the first grid would smear the tail
  // for no reason when the tape can evaluate exactly there).
  std::vector<double> shifted_ts;
  shifted_ts.reserve(grid.ts.size());
  for (const double t : grid.ts) {
    if (t > delay_) shifted_ts.push_back(t - delay_);
  }
  std::vector<double> shifted_cdf;
  if (!shifted_ts.empty()) {
    const TransformTape tape = TransformTape::compile(base_);
    shifted_cdf = tape.cdf_many(shifted_ts);
    double running = 0.0;
    for (double& f : shifted_cdf) {
      running = std::max(running, std::min(1.0, std::max(0.0, f)));
      f = running;
    }
  }
  grid_.resize(grid.cdf.size());
  std::size_t shifted_index = 0;
  for (std::size_t i = 0; i < grid.cdf.size(); ++i) {
    if (grid.ts[i] <= delay_) {
      grid_[i] = grid.cdf[i];
    } else {
      const double f_shift = shifted_cdf[shifted_index++];
      grid_[i] = 1.0 - (1.0 - grid.cdf[i]) * (1.0 - f_shift);
    }
  }
  blend_correlation(grid_, grid.cdf, correlation_);
  // The hedged CDF is monotone when the base is, but enforce it against
  // inversion wobble around the splice at t = delay.
  double running = 0.0;
  for (double& f : grid_) {
    running = std::max(running, f);
    f = running;
  }
  grid_moments(grid_, dt_, &mean_, &second_);
}

std::string HedgedResponse::name() const {
  std::ostringstream out;
  out << "HedgedResponse(delay=" << delay_ << ",corr=" << correlation_
      << ") of " << base_->name();
  return out.str();
}

std::complex<double> HedgedResponse::laplace(std::complex<double> s) const {
  return detail::piecewise_cdf_laplace(s, dt_, grid_.data(), grid_.size());
}

double HedgedResponse::cdf(double t) const {
  return grid_cdf_at(grid_, dt_, t);
}

}  // namespace cosm::numerics
