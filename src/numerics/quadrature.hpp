// Numerical integration.
//
// Two tools: an adaptive Simpson rule for real integrands (moment and CDF
// sanity checks in tests), and fixed-order Gauss–Legendre panels that also
// accept complex-valued integrands — used to evaluate Laplace transforms of
// distributions that lack a closed form (lognormal, truncated normal,
// Weibull, Pareto) along the inversion contours.
#pragma once

#include <complex>
#include <functional>

namespace cosm::numerics {

// Adaptive Simpson integration of f over [a, b] to absolute tolerance tol.
double integrate_adaptive(const std::function<double(double)>& f, double a,
                          double b, double tol = 1e-10, int max_depth = 40);

// Composite 32-point Gauss–Legendre over `panels` equal panels of [a, b].
double integrate_gauss(const std::function<double(double)>& f, double a,
                       double b, int panels = 8);

std::complex<double> integrate_gauss_complex(
    const std::function<std::complex<double>(double)>& f, double a, double b,
    int panels = 8);

}  // namespace cosm::numerics
