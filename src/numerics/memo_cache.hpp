// Keyed, size-bounded memoization for repeated expensive kernels.
//
// The prediction pipeline re-evaluates the same numerics constantly: a
// homogeneous cluster builds one backend model per *distinct* device
// parameter set but the serial pipeline rebuilds it per device; a
// percentile sweep inverts the same response transform at the same SLA
// for every identical device; what-if variants re-derive every component
// they did not change.  MemoCache lets callers reuse those results across
// devices, percentile points, and what-if variants, with hit/miss/eviction
// counters exposed for observability (bench/perf_pipeline reports them in
// BENCH_pipeline.json).
//
// MemoCache<Key, Value> is a lock-striped LRU map:
//  * lookup/insert/get_or_compute are safe to call concurrently;
//  * get_or_compute runs the compute callback *outside* the lock, so a
//    slow kernel never serializes other threads (two threads missing on
//    the same key may both compute — last insert wins, which is harmless
//    exactly when cached values are deterministic functions of their key,
//    the contract every caller here satisfies);
//  * capacity is a hard bound on resident entries; inserting past it
//    evicts the least-recently-used entry.
//
// Sharding.  The single constructor mutex was the bottleneck when many
// threads share one PredictionCache (the what-if service hits it from
// every tenant): `shards` > 1 splits the table into independently locked
// stripes selected by key hash.  Each stripe is an exact LRU over its own
// keys with its own slice of the capacity, so eviction is per-stripe
// (approximate global LRU) while hit/miss/eviction counters stay exact —
// they are summed over stripes under their locks.  The default of one
// shard preserves strict global LRU order; callers that need scalability
// over strict recency (PredictionCache) opt into more.
//
// Keys are compared with operator== (hash collisions inside the table are
// therefore handled exactly, not probabilistically).  Callers that fold a
// *composite* identity into a 64-bit key via hash_mix/fingerprint accept
// the usual 2^-64-per-pair fingerprint collision odds — see
// fingerprint(const Distribution&) below.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cosm::numerics {

class Distribution;

// Counter snapshot; all fields are totals since construction or clear().
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;      // resident entries
  std::size_t capacity = 0;  // maximum resident entries

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class MemoCache {
 public:
  // Capacity must be >= 1 (a zero-capacity cache would turn every insert
  // into an immediate eviction; reject it loudly instead).  `shards` is
  // clamped to [1, capacity] so every stripe owns at least one entry.
  explicit MemoCache(std::size_t capacity, std::size_t shards = 1) {
    if (capacity == 0) {
      throw std::invalid_argument("MemoCache capacity must be >= 1");
    }
    if (shards == 0) shards = 1;
    if (shards > capacity) shards = capacity;
    shards_.reserve(shards);
    // Distribute capacity exactly: the first (capacity % shards) stripes
    // take one extra entry, so stripe capacities sum to `capacity`.
    const std::size_t base = capacity / shards;
    const std::size_t extra = capacity % shards;
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(base + (i < extra ? 1 : 0)));
    }
  }

  // Returns the cached value and refreshes its recency, or nullopt.
  std::optional<Value> lookup(const Key& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return std::nullopt;
    }
    ++shard.hits;
    shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
    return it->second->second;
  }

  // Inserts (or overwrites) key -> value, evicting the stripe's least
  // recently used entry when the stripe is full.
  void insert(const Key& key, Value value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
      return;
    }
    if (shard.entries.size() >= shard.capacity) {
      shard.index.erase(shard.entries.back().first);
      shard.entries.pop_back();
      ++shard.evictions;
    }
    shard.entries.emplace_front(key, std::move(value));
    shard.index[key] = shard.entries.begin();
  }

  // lookup(); on miss, runs compute() outside the lock and inserts the
  // result.  `compute` must be a deterministic function of `key`.
  template <typename F>
  Value get_or_compute(const Key& key, F&& compute) {
    if (auto cached = lookup(key)) return std::move(*cached);
    Value value = std::forward<F>(compute)();
    insert(key, value);
    return value;
  }

  // Removes `key` if resident; returns whether an entry was dropped.  The
  // targeted-invalidation primitive of the online calibration loop: a
  // re-fit makes a *known* set of fingerprints stale, so the loop erases
  // exactly those keys instead of clearing caches that other tenants are
  // still hitting.  Not counted as an eviction (evictions measure capacity
  // pressure; erasure is a correctness action).
  bool erase(const Key& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.entries.erase(it->second);
    shard.index.erase(it);
    return true;
  }

  CacheStats stats() const {
    CacheStats total;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total.hits += shard->hits;
      total.misses += shard->misses;
      total.evictions += shard->evictions;
      total.size += shard->entries.size();
      total.capacity += shard->capacity;
    }
    return total;
  }

  void clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->entries.clear();
      shard->index.clear();
      shard->hits = shard->misses = shard->evictions = 0;
    }
  }

  std::size_t shard_count() const { return shards_.size(); }

 private:
  // front = most recently used.
  using EntryList = std::list<std::pair<Key, Value>>;

  struct Shard {
    explicit Shard(std::size_t cap) : capacity(cap) {}
    mutable std::mutex mutex;
    EntryList entries;
    std::unordered_map<Key, typename EntryList::iterator, Hash> index;
    std::size_t capacity;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const Key& key) {
    if (shards_.size() == 1) return *shards_.front();
    // Spread the raw hash before reducing: std::hash<uint64_t> is the
    // identity on libstdc++, and MemoCache keys are often fingerprints
    // whose low bits alone would stripe unevenly.
    std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return *shards_[h % shards_.size()];
  }

  // unique_ptr keeps Shard (with its mutex) immovable while the vector
  // itself stays constructible; the shard set is fixed after construction.
  std::vector<std::unique_ptr<Shard>> shards_;
};

// ------------------------- key fingerprinting ----------------------------

// Order-sensitive 64-bit mixing (splitmix64 core), for folding composite
// identities — parameter sets, (distribution, SLA point) pairs — into
// MemoCache keys.  Doubles are mixed by IEEE-754 bit pattern, so keys are
// exact: two parameter sets collide only if every field is bit-equal (or
// with ~2^-64 fingerprint-collision probability otherwise).
std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t value);
std::uint64_t hash_mix(std::uint64_t seed, double value);

// Value-based fingerprint of a distribution: hashes its name, moments,
// and Laplace-transform probes at fixed contour points, so two separately
// constructed but identically parameterized distributions (e.g. the same
// Gamma built twice) fingerprint equal — the property that lets identical
// devices share cached work.
std::uint64_t fingerprint(const Distribution& dist);

}  // namespace cosm::numerics
