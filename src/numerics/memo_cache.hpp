// Keyed, size-bounded memoization for repeated expensive kernels.
//
// The prediction pipeline re-evaluates the same numerics constantly: a
// homogeneous cluster builds one backend model per *distinct* device
// parameter set but the serial pipeline rebuilds it per device; a
// percentile sweep inverts the same response transform at the same SLA
// for every identical device; what-if variants re-derive every component
// they did not change.  MemoCache lets callers reuse those results across
// devices, percentile points, and what-if variants, with hit/miss/eviction
// counters exposed for observability (bench/perf_pipeline reports them in
// BENCH_pipeline.json).
//
// MemoCache<Key, Value> is a mutex-guarded LRU map:
//  * lookup/insert/get_or_compute are safe to call concurrently;
//  * get_or_compute runs the compute callback *outside* the lock, so a
//    slow kernel never serializes other threads (two threads missing on
//    the same key may both compute — last insert wins, which is harmless
//    exactly when cached values are deterministic functions of their key,
//    the contract every caller here satisfies);
//  * capacity is a hard bound on resident entries; inserting past it
//    evicts the least-recently-used entry.
//
// Keys are compared with operator== (hash collisions inside the table are
// therefore handled exactly, not probabilistically).  Callers that fold a
// *composite* identity into a 64-bit key via hash_mix/fingerprint accept
// the usual 2^-64-per-pair fingerprint collision odds — see
// fingerprint(const Distribution&) below.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace cosm::numerics {

class Distribution;

// Counter snapshot; all fields are totals since construction or clear().
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;      // resident entries
  std::size_t capacity = 0;  // maximum resident entries

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class MemoCache {
 public:
  // Capacity must be >= 1 (a zero-capacity cache would turn every insert
  // into an immediate eviction; reject it loudly instead).
  explicit MemoCache(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) {
      throw std::invalid_argument("MemoCache capacity must be >= 1");
    }
  }

  // Returns the cached value and refreshes its recency, or nullopt.
  std::optional<Value> lookup(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return it->second->second;
  }

  // Inserts (or overwrites) key -> value, evicting the least recently
  // used entry when full.
  void insert(const Key& key, Value value) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    if (entries_.size() >= capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
      ++evictions_;
    }
    entries_.emplace_front(key, std::move(value));
    index_[key] = entries_.begin();
  }

  // lookup(); on miss, runs compute() outside the lock and inserts the
  // result.  `compute` must be a deterministic function of `key`.
  template <typename F>
  Value get_or_compute(const Key& key, F&& compute) {
    if (auto cached = lookup(key)) return std::move(*cached);
    Value value = std::forward<F>(compute)();
    insert(key, value);
    return value;
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return CacheStats{hits_, misses_, evictions_, entries_.size(), capacity_};
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    index_.clear();
    hits_ = misses_ = evictions_ = 0;
  }

 private:
  // front = most recently used.
  using EntryList = std::list<std::pair<Key, Value>>;

  mutable std::mutex mutex_;
  EntryList entries_;
  std::unordered_map<Key, typename EntryList::iterator, Hash> index_;
  std::size_t capacity_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

// ------------------------- key fingerprinting ----------------------------

// Order-sensitive 64-bit mixing (splitmix64 core), for folding composite
// identities — parameter sets, (distribution, SLA point) pairs — into
// MemoCache keys.  Doubles are mixed by IEEE-754 bit pattern, so keys are
// exact: two parameter sets collide only if every field is bit-equal (or
// with ~2^-64 fingerprint-collision probability otherwise).
std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t value);
std::uint64_t hash_mix(std::uint64_t seed, double value);

// Value-based fingerprint of a distribution: hashes its name, moments,
// and Laplace-transform probes at fixed contour points, so two separately
// constructed but identically parameterized distributions (e.g. the same
// Gamma built twice) fingerprint equal — the property that lets identical
// devices share cached work.
std::uint64_t fingerprint(const Distribution& dist);

}  // namespace cosm::numerics
