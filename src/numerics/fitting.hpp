// Distribution fitting for Section IV-A of the paper.
//
// The calibration pipeline benchmarks the storage device, records per-
// operation latencies, and fits candidate distributions (the paper tries
// Exponential, Degenerate, Normal, Gamma and finds Gamma best).  This
// module provides the MLE fitters, the Kolmogorov–Smirnov statistic used
// for model selection, and a `fit_best` driver that reproduces that
// selection (Fig. 5).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "numerics/distribution.hpp"

namespace cosm::numerics {

struct SampleStats {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // unbiased
  double min = 0.0;
  double max = 0.0;
  double mean_log = 0.0;      // mean of ln(x); NaN if any x <= 0
  double variance_log = 0.0;  // variance of ln(x)
};

SampleStats compute_stats(std::span<const double> samples);

// MLE fitters.  All require a non-empty sample of non-negative values.
Degenerate fit_degenerate(std::span<const double> samples);
Exponential fit_exponential(std::span<const double> samples);
// Gamma MLE: solves ln(k) - psi(k) = ln(mean) - mean(ln x) by Newton on the
// digamma equation, seeded with the Minka/moment estimate; falls back to
// moment matching when samples are (near-)constant.
Gamma fit_gamma(std::span<const double> samples);
TruncatedNormal fit_truncated_normal(std::span<const double> samples);
Lognormal fit_lognormal(std::span<const double> samples);
Weibull fit_weibull(std::span<const double> samples);

// One-sample Kolmogorov–Smirnov statistic sup_t |F_n(t) - F(t)| against an
// arbitrary CDF.  `sorted_samples` must be ascending.
double ks_statistic(std::span<const double> sorted_samples,
                    const Distribution& dist);

struct FitCandidate {
  std::string name;
  DistPtr dist;
  double ks = 0.0;
};

struct FitSelection {
  std::vector<FitCandidate> candidates;  // all fits, ascending KS
  // Convenience view of the winner (candidates.front()).
  const FitCandidate& best() const { return candidates.front(); }
};

// Fits the paper's four candidates (plus lognormal and weibull as modern
// extras when `extended`), ranks them by KS statistic, and returns all of
// them, best first.  Candidates whose fitter throws (e.g. lognormal on
// zero-containing data) are skipped.
FitSelection fit_best(std::span<const double> samples, bool extended = false);

}  // namespace cosm::numerics
