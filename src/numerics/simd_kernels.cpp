#include "numerics/simd_kernels.hpp"

#include <cstdlib>
#include <cstring>

// COSM_HAVE_AVX2 / COSM_HAVE_AVX512 come from CMake: defined only when the
// variant TU is part of the build (x86 compiler accepting the flags and
// COSM_NO_SIMD unset).  Runtime support is probed separately below, so a
// binary built with the vector variants still runs on older CPUs.

namespace cosm::numerics::simd {

namespace scalar_variant {
extern const TapeKernels kKernels;
}
#ifdef COSM_HAVE_AVX2
namespace avx2_variant {
extern const TapeKernels kKernels;
}
#endif
#ifdef COSM_HAVE_AVX512
namespace avx512_variant {
extern const TapeKernels kKernels;
}
#endif

const TapeKernels& scalar_kernels() { return scalar_variant::kKernels; }

const TapeKernels* avx2_kernels() {
#ifdef COSM_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) {
    return &avx2_variant::kKernels;
  }
#endif
  return nullptr;
}

const TapeKernels* avx512_kernels() {
#ifdef COSM_HAVE_AVX512
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq")) {
    return &avx512_variant::kKernels;
  }
#endif
  return nullptr;
}

const TapeKernels& active_kernels() {
  static const TapeKernels* const chosen = [] {
    if (const char* env = std::getenv("COSM_SIMD")) {
      if (std::strcmp(env, "scalar") == 0) {
        return &scalar_kernels();
      }
      if (std::strcmp(env, "avx2") == 0 && avx2_kernels() != nullptr) {
        return avx2_kernels();
      }
      if (std::strcmp(env, "avx512") == 0 && avx512_kernels() != nullptr) {
        return avx512_kernels();
      }
      // Unknown or unavailable override: fall through to auto-detect.
    }
    if (const TapeKernels* k = avx512_kernels()) {
      return k;
    }
    if (const TapeKernels* k = avx2_kernels()) {
      return k;
    }
    return &scalar_kernels();
  }();
  return *chosen;
}

const char* dispatch_name() { return active_kernels().name; }

}  // namespace cosm::numerics::simd
