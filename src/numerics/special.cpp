#include "numerics/special.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "common/require.hpp"

namespace cosm::numerics {

double digamma(double x) {
  COSM_REQUIRE(x > 0, "digamma requires x > 0");
  double result = 0.0;
  // Shift x into the asymptotic regime.
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic series: ln x - 1/(2x) - sum B_{2n} / (2n x^{2n}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv;
  result -= inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 -
                                            inv2 * (1.0 / 132.0)))));
  return result;
}

double trigamma(double x) {
  COSM_REQUIRE(x > 0, "trigamma requires x > 0");
  double result = 0.0;
  while (x < 12.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // 1/x + 1/(2x^2) + sum B_{2n} / x^{2n+1}.
  result += inv * (1.0 +
                   inv * (0.5 +
                          inv * (1.0 / 6.0 -
                                 inv2 * (1.0 / 30.0 -
                                         inv2 * (1.0 / 42.0 -
                                                 inv2 * (1.0 / 30.0 -
                                                         inv2 * (5.0 /
                                                                 66.0)))))));
  return result;
}

namespace {

// Series representation of P(a, x), valid (fast) for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued-fraction representation of Q(a, x), valid for x >= a + 1.
double gamma_q_cf(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double gamma_p(double a, double x) {
  COSM_REQUIRE(a > 0, "gamma_p requires a > 0");
  COSM_REQUIRE(x >= 0, "gamma_p requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  COSM_REQUIRE(a > 0, "gamma_q requires a > 0");
  COSM_REQUIRE(x >= 0, "gamma_q requires x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double gamma_p_inv(double a, double p) {
  COSM_REQUIRE(a > 0, "gamma_p_inv requires a > 0");
  COSM_REQUIRE(p >= 0 && p < 1, "gamma_p_inv requires p in [0, 1)");
  if (p == 0.0) return 0.0;
  // Wilson–Hilferty starting guess, then a guaranteed bracket + bisection/
  // secant hybrid; Newton-style polish is not worth the divergence risk for
  // small shapes (a < 1 has an infinite density at 0).
  const double g = normal_cdf_inv(p);
  const double c = 2.0 / (9.0 * a);
  double guess = a * std::pow(1.0 - c + g * std::sqrt(c), 3.0);
  if (!(guess > 0.0) || !std::isfinite(guess)) guess = a;
  double lo = guess;
  double hi = guess;
  while (lo > 1e-300 && gamma_p(a, lo) > p) lo *= 0.25;
  while (hi < 1e300 && gamma_p(a, hi) < p) hi *= 4.0;
  // Bisection with a secant-style midpoint; 120 iterations bound the
  // bracket width by 2^-120 even in the pure-bisection worst case.
  for (int iter = 0; iter < 120; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) return mid;
    if (gamma_p(a, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    // Purely relative stop: quantiles for small p can be arbitrarily tiny.
    if (hi - lo < 4e-16 * hi) break;
  }
  return 0.5 * (lo + hi);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double normal_cdf_inv(double p) {
  COSM_REQUIRE(p > 0 && p < 1, "normal_cdf_inv requires p in (0, 1)");
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley polish step.
  const double e = normal_cdf(x) - p;
  const double u =
      e * std::sqrt(2.0 * std::numbers::pi) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double generalized_harmonic(unsigned long long n, double s) {
  double sum = 0.0;
  // Sum smallest terms first to limit floating-point error.
  for (unsigned long long i = n; i >= 1; --i) {
    sum += 1.0 / std::pow(static_cast<double>(i), s);
  }
  return sum;
}

}  // namespace cosm::numerics
